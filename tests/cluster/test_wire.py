"""Control-channel and mesh data-plane codecs, plus socket behavior."""

from __future__ import annotations

import socket
import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.meshwire import (
    KIND_HELLO,
    KIND_TRAIN,
    MESH_CHUNK_BYTES,
    MESH_MAGIC,
    TrainAssembler,
    decode_chunk,
    decode_train_body,
    encode_hello,
    encode_train_body,
    split_train,
)
from repro.cluster.wire import (
    DONE,
    HEARTBEAT,
    KINDS,
    ROUND,
    ChannelClosed,
    Message,
    MessageChannel,
    accept_channel,
    open_listener,
)
from repro.errors import (
    MALFORMED_INPUT_ERRORS,
    ClusterError,
    SerializationError,
)
from repro.runtime.transport import Frame, _LENGTH
from tests.strategies import bit_flips, truncations

@st.composite
def frames(draw):
    # Delivery strictly after send: the frame decoder rejects anything
    # else as malformed.  Charges are wire-canonical (>= 0): the Frame
    # codec resolves the -1 charge-by-payload sentinel on encode, so
    # only resolved charges survive an exact-equality round trip (the
    # mesh codec below preserves -1 and keeps it in its strategy).
    sent_round = draw(st.integers(min_value=0, max_value=500))
    delay = draw(st.integers(min_value=1, max_value=16))
    return Frame(
        sender=draw(st.integers(min_value=0, max_value=255)),
        recipient=draw(st.integers(min_value=0, max_value=255)),
        payload=draw(st.binary(max_size=48)),
        sent_round=sent_round,
        deliver_round=sent_round + delay,
        charge_bits=draw(st.integers(min_value=0, max_value=1 << 20)),
        seq=draw(st.integers(min_value=0, max_value=1 << 16)),
    )

json_fields = st.dictionaries(
    st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12
    ).filter(lambda k: k != "kind"),
    st.one_of(
        st.integers(min_value=-(1 << 31), max_value=1 << 31),
        st.booleans(),
        st.text(max_size=16),
    ),
    max_size=4,
)

messages = st.builds(
    Message,
    kind=st.sampled_from(KINDS),
    fields=json_fields,
    frames=st.lists(frames(), max_size=6),
    blob=st.binary(max_size=128),
)


@given(messages)
def test_message_round_trip(message):
    decoded = Message.decode(message.encode()[_LENGTH.size:])
    assert decoded.kind == message.kind
    assert decoded.fields == message.fields
    assert decoded.frames == message.frames
    assert decoded.blob == message.blob


def test_unknown_kind_rejected_on_encode():
    with pytest.raises(ClusterError, match="kind"):
        Message("gremlin").encode()


def test_corrupt_body_rejected():
    with pytest.raises(ClusterError):
        Message.decode(b"\x07garbage-that-is-not-a-message")


def test_payload_round_trip():
    payload = {"outputs": {0: 1}, "trace": {0: [{"seq": 0}]}}
    message = Message(DONE, blob=Message.pack_payload(payload))
    assert message.payload() == payload
    assert Message(DONE).payload() is None


def _channel_pair():
    a, b = socket.socketpair()
    return MessageChannel(a), MessageChannel(b)


class TestMessageChannel:
    def test_send_recv(self):
        left, right = _channel_pair()
        try:
            left.send(Message(ROUND, {"round": 3},
                              frames=[Frame(0, 1, b"x")]))
            got = right.recv(timeout=5.0)
            assert got.kind == ROUND
            assert got.fields == {"round": 3}
            assert got.frames[0].payload == b"x"
        finally:
            left.close()
            right.close()

    def test_timeout_preserves_framing(self):
        """A deadline mid-message must not lose partial bytes."""
        left, right = _channel_pair()
        try:
            data = Message(HEARTBEAT).encode()
            # Dribble the first half, let the recv time out, then finish.
            left._sock.sendall(data[:3])
            with pytest.raises(TimeoutError):
                right.recv(timeout=0.05)
            left._sock.sendall(data[3:])
            assert right.recv(timeout=5.0).kind == HEARTBEAT
        finally:
            left.close()
            right.close()

    def test_clean_eof_raises_channel_closed(self):
        left, right = _channel_pair()
        left.close()
        with pytest.raises(ChannelClosed):
            right.recv(timeout=5.0)
        right.close()

    def test_eof_mid_message_is_a_torn_stream(self):
        left, right = _channel_pair()
        data = Message(HEARTBEAT).encode()
        left._sock.sendall(data[:-2])
        left.close()
        with pytest.raises(ClusterError, match="mid-message"):
            right.recv(timeout=5.0)
        right.close()

    def test_oversized_message_is_chunked_transparently(self, monkeypatch):
        """Bodies past the chunk threshold ride as ``part`` trains and
        reassemble on recv — the n=64 OWF gossip rounds depend on it."""
        import repro.cluster.wire as wire

        monkeypatch.setattr(wire, "_CHUNK_BYTES", 64)
        left, right = _channel_pair()
        try:
            big = Message(
                DONE,
                {"round": 9},
                frames=[Frame(0, 1, bytes([i]) * 40) for i in range(8)],
                blob=b"\xab" * 500,
            )
            left.send(Message(HEARTBEAT))
            left.send(big)
            left.send(Message(HEARTBEAT))
            assert right.recv(timeout=5.0).kind == HEARTBEAT
            got = right.recv(timeout=5.0)
            assert got.kind == DONE
            assert got.fields == {"round": 9}
            assert got.blob == big.blob
            assert [f.payload for f in got.frames] == [
                f.payload for f in big.frames
            ]
            assert right.recv(timeout=5.0).kind == HEARTBEAT
        finally:
            left.close()
            right.close()

    def test_chunked_transfer_survives_recv_timeout(self, monkeypatch):
        import repro.cluster.wire as wire

        monkeypatch.setattr(wire, "_CHUNK_BYTES", 64)
        left, right = _channel_pair()
        try:
            big = Message(DONE, blob=b"y" * 300)
            body = big.encode_body()
            pieces = [body[o:o + 64] for o in range(0, len(body), 64)]
            records = [
                Message(
                    wire.PART, {"last": i == len(pieces) - 1}, blob=p
                ).encode()
                for i, p in enumerate(pieces)
            ]
            left._sock.sendall(records[0])
            with pytest.raises(TimeoutError):
                right.recv(timeout=0.05)
            for record in records[1:]:
                left._sock.sendall(record)
            got = right.recv(timeout=5.0)
            assert got.kind == DONE and got.blob == big.blob
        finally:
            left.close()
            right.close()

    def test_concurrent_sends_stay_framed(self):
        """Heartbeat-thread + main-loop interleaving never tears frames."""
        left, right = _channel_pair()
        per_thread = 50

        def blast(kind):
            for _ in range(per_thread):
                left.send(Message(kind))

        threads = [
            threading.Thread(target=blast, args=(HEARTBEAT,)),
            threading.Thread(target=blast, args=(DONE,)),
        ]
        try:
            for t in threads:
                t.start()
            got = [right.recv(timeout=5.0).kind for _ in range(2 * per_thread)]
            assert sorted(got).count(HEARTBEAT) == per_thread
            assert sorted(got).count(DONE) == per_thread
        finally:
            for t in threads:
                t.join()
            left.close()
            right.close()


class TestListener:
    def test_accept_timeout(self):
        listener, _port = open_listener()
        try:
            with pytest.raises(TimeoutError):
                accept_channel(listener, timeout=0.05)
        finally:
            listener.close()

    def test_preferred_port_falls_back_when_busy(self):
        first, port = open_listener(port=0)
        try:
            second, actual = open_listener(
                port=port, retries=1, retry_delay=0.01
            )
            try:
                assert actual != port
            finally:
                second.close()
        finally:
            first.close()


# -- mesh data-plane codec ----------------------------------------------------

#: Frames as the mesh ships them: obs ``phase`` labels ride the train's
#: string table, and ``charge_bits=-1`` (the "charge payload size"
#: sentinel) must survive the signed header field.
@st.composite
def mesh_frames(draw):
    sent_round = draw(st.integers(min_value=0, max_value=500))
    delay = draw(st.integers(min_value=1, max_value=16))
    return Frame(
        sender=draw(st.integers(min_value=0, max_value=1 << 16)),
        recipient=draw(st.integers(min_value=0, max_value=1 << 16)),
        payload=draw(st.binary(max_size=48)),
        sent_round=sent_round,
        deliver_round=sent_round + delay,
        charge_bits=draw(st.integers(min_value=-1, max_value=1 << 30)),
        seq=draw(st.integers(min_value=0, max_value=1 << 16)),
        phase=draw(st.sampled_from(
            ["", "setup", "vote", "κ/graded-consensus"]
        )),
    )


trains = st.lists(mesh_frames(), max_size=8)

#: (round, train_seq, chunk size) coordinates for split/reassemble runs.
coords = st.tuples(
    st.integers(min_value=0, max_value=1 << 20),
    st.integers(min_value=0, max_value=1 << 20),
    st.integers(min_value=1, max_value=64),
)


def _assemble(records, assembler=None):
    """Feed chunk records to an assembler; return the completed bodies."""
    assembler = assembler or TrainAssembler()
    completed = []
    for record in records:
        done = assembler.add(decode_chunk(record))
        if done is not None:
            completed.append(done)
    return completed


class TestTrainBodyCodec:
    @given(trains)
    def test_round_trip(self, train):
        assert decode_train_body(encode_train_body(train)) == train

    def test_empty_train_round_trips(self):
        assert decode_train_body(encode_train_body([])) == []

    @given(trains.filter(bool).flatmap(
        lambda t: truncations(encode_train_body(t))
    ))
    def test_truncation_raises_not_hangs(self, cut):
        with pytest.raises(MALFORMED_INPUT_ERRORS):
            decode_train_body(cut)

    @given(trains.flatmap(lambda t: bit_flips(encode_train_body(t))))
    def test_bit_flip_never_crashes(self, corrupted):
        """A flipped bit either decodes to well-typed frames (payload
        bytes are opaque) or raises a library error — never an
        unhandled crash."""
        try:
            for frame in decode_train_body(corrupted):
                assert isinstance(frame, Frame)
        except MALFORMED_INPUT_ERRORS:
            pass

    def test_trailing_bytes_rejected(self):
        body = encode_train_body([Frame(0, 1, b"x")])
        with pytest.raises(SerializationError, match="trailing"):
            decode_train_body(body + b"\x00")

    def test_unknown_phase_id_rejected(self):
        body = bytearray(encode_train_body([Frame(0, 1, b"x", phase="p")]))
        # One phase in the table; point the frame header at id 7.
        offset = 4 + 2 + 1 + 4 + (4 + 4 + 4 + 4 + 8 + 4)
        body[offset:offset + 2] = (7).to_bytes(2, "big")
        with pytest.raises(SerializationError, match="phase id"):
            decode_train_body(bytes(body))


class TestChunkCodec:
    @given(trains, coords)
    def test_split_reassemble_round_trip(self, train, coordinates):
        round_index, train_seq, chunk_bytes = coordinates
        body = encode_train_body(train)
        records = split_train(3, 5, round_index, train_seq, body,
                              chunk_bytes=chunk_bytes)
        completed = _assemble(records)
        assert completed == [(round_index, body)]
        assert decode_train_body(completed[0][1]) == train

    @given(trains, coords, st.randoms(use_true_random=False))
    def test_reorder_and_duplicate_tolerated(self, train, coordinates, rng):
        round_index, train_seq, chunk_bytes = coordinates
        body = encode_train_body(train)
        records = split_train(3, 5, round_index, train_seq, body,
                              chunk_bytes=chunk_bytes)
        noisy = records + rng.sample(records, k=min(3, len(records)))
        rng.shuffle(noisy)
        completed = _assemble(noisy)
        assert completed == [(round_index, body)]

    def test_empty_body_yields_one_barrier_chunk(self):
        records = split_train(0, 1, 7, 0, b"")
        assert len(records) == 1
        assert _assemble(records) == [(7, b"")]

    def test_oversized_body_splits_at_chunk_threshold(self):
        """A >32 MiB body rides as multiple records and reassembles —
        the heavy OWF gossip rounds depend on it."""
        body = b"\xab" * (MESH_CHUNK_BYTES + 1024)
        records = split_train(0, 1, 2, 0, body)
        assert len(records) == 2
        assert _assemble(records) == [(2, body)]

    @given(st.binary(max_size=40).flatmap(
        lambda b: truncations(split_train(1, 2, 3, 4, b, chunk_bytes=16)[0])
    ))
    def test_truncated_record_raises(self, cut):
        with pytest.raises(MALFORMED_INPUT_ERRORS):
            decode_chunk(cut)

    @given(st.binary(max_size=40).flatmap(
        lambda b: bit_flips(split_train(1, 2, 3, 4, b, chunk_bytes=16)[0])
    ))
    def test_bit_flipped_record_never_crashes(self, corrupted):
        try:
            chunk = decode_chunk(corrupted)
            assert chunk.kind in (KIND_TRAIN, KIND_HELLO)
        except MALFORMED_INPUT_ERRORS:
            pass

    def test_bad_magic_rejected(self):
        record = bytearray(split_train(1, 2, 3, 4, b"x")[0])
        record[:4] = b"NOPE"
        with pytest.raises(SerializationError, match="magic"):
            decode_chunk(bytes(record))
        assert MESH_MAGIC != b"NOPE"

    def test_hello_round_trip(self):
        chunk = decode_chunk(encode_hello(2, 6, have_round=41))
        assert chunk.kind == KIND_HELLO
        assert (chunk.src_worker, chunk.dst_worker) == (2, 6)
        assert chunk.hello_have() == 41
        assert decode_chunk(encode_hello(0, 1, -1)).hello_have() == -1


class TestTrainAssembler:
    def test_newer_seq_supersedes_torn_train(self):
        """A torn half-train from before a redial never mixes with its
        resend: the resend's higher ``train_seq`` evicts it."""
        torn = split_train(0, 1, 5, train_seq=2,
                           body=b"old" * 20, chunk_bytes=8)
        resend_body = b"new" * 20
        resend = split_train(0, 1, 5, train_seq=3,
                             body=resend_body, chunk_bytes=8)
        assembler = TrainAssembler()
        assert _assemble(torn[:-1], assembler) == []  # torn: last chunk lost
        assert _assemble(resend, assembler) == [(5, resend_body)]

    def test_stale_seq_discarded_after_supersession(self):
        fresh_body = b"fresh" * 10
        stale = split_train(0, 1, 5, train_seq=1, body=b"stale" * 10,
                            chunk_bytes=8)
        fresh = split_train(0, 1, 5, train_seq=2, body=fresh_body,
                            chunk_bytes=8)
        assembler = TrainAssembler()
        assert _assemble(fresh[:1], assembler) == []
        assert _assemble(stale, assembler) == []  # all ignored
        assert _assemble(fresh[1:], assembler) == [(5, fresh_body)]

    def test_geometry_contradiction_raises(self):
        a = split_train(0, 1, 5, train_seq=2, body=b"x" * 20,
                        chunk_bytes=8)
        b = split_train(0, 1, 5, train_seq=2, body=b"x" * 60,
                        chunk_bytes=8)
        assembler = TrainAssembler()
        assembler.add(decode_chunk(a[0]))
        with pytest.raises(SerializationError, match="chunks"):
            assembler.add(decode_chunk(b[-1]))

    def test_size_cap_enforced(self):
        assembler = TrainAssembler(max_bytes=32)
        records = split_train(0, 1, 5, 0, b"z" * 64, chunk_bytes=16)
        with pytest.raises(SerializationError, match="exceeds"):
            _assemble(records, assembler)
        assert assembler.pending_rounds() == []

    def test_interleaved_rounds_complete_independently(self):
        body_a, body_b = b"a" * 24, b"b" * 40
        recs_a = split_train(0, 1, 10, 0, body_a, chunk_bytes=8)
        recs_b = split_train(0, 1, 11, 0, body_b, chunk_bytes=8)
        interleaved = [r for pair in zip(recs_b, recs_a) for r in pair]
        interleaved += recs_b[len(recs_a):]
        assembler = TrainAssembler()
        completed = _assemble(interleaved, assembler)
        assert completed == [(10, body_a), (11, body_b)]
        assert assembler.pending_rounds() == []
