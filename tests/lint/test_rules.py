"""Fixture-driven positive/negative tests, one pair per domain rule."""

from tests.lint.conftest import lint_fixture, rule_ids_of


# -- DET001: unseeded randomness --------------------------------------------

def test_det001_flags_every_unseeded_source():
    result = lint_fixture("anywhere/det001_bad.py")
    ids = rule_ids_of(result)
    assert ids.count("DET001") == 6  # randint, urandom, token_hex,
    #                                  uuid4, Random(), SystemRandom
    messages = " | ".join(v.message for v in result.violations)
    assert "os.urandom" in messages
    assert "without a seed" in messages


def test_det001_accepts_seeded_random():
    result = lint_fixture("anywhere/det001_ok.py")
    assert rule_ids_of(result) == []


def test_det001_allowlists_the_sanctioned_wrapper():
    # utils/randomness.py is the one file allowed to touch `random`.
    result = lint_fixture("utils/randomness.py")
    assert "DET001" not in rule_ids_of(result)


# -- DET002: wall clock in protocol scopes ----------------------------------

def test_det002_flags_calls_aliases_and_references():
    result = lint_fixture("protocols/det002_bad.py")
    ids = rule_ids_of(result)
    assert ids.count("DET002") == 4  # aliased call, datetime.now,
    #                                  from-import call, bare reference
    assert {v.line for v in result.violations if v.rule_id == "DET002"}


def test_det002_accepts_injected_clock_and_justified_wall_time():
    result = lint_fixture("protocols/det002_ok.py")
    assert rule_ids_of(result) == []
    # The deliberate perf_counter is suppressed, not invisible.
    assert len(result.suppressed) == 1
    violation, pragma = result.suppressed[0]
    assert violation.rule_id == "DET002"
    assert "observability" in pragma.reason


def test_det002_is_scoped_to_protocol_directories():
    # The same wall-clock calls outside protocols/srds/runtime/campaign
    # are not protocol state and pass.
    from pathlib import Path

    from repro.lint.config import LintConfig
    from repro.lint.engine import run_lint
    from tests.lint.conftest import FIXTURES

    src = FIXTURES / "protocols" / "det002_bad.py"
    elsewhere = FIXTURES / "anywhere" / "_det002_copy.py"
    elsewhere.write_text(src.read_text(encoding="utf-8"), encoding="utf-8")
    try:
        config = LintConfig(
            root=FIXTURES, paths=("anywhere/_det002_copy.py",),
            rules=("DET002",),
        )
        assert run_lint(config).violations == []
    finally:
        Path(elsewhere).unlink()


# -- ACC001: uncharged byte paths -------------------------------------------

def test_acc001_flags_raw_transport_sends():
    result = lint_fixture("protocols/acc001_bad.py")
    ids = rule_ids_of(result)
    assert ids.count("ACC001") == 5  # socket(), sendall, writer.write,
    #                                  put_nowait, asyncio.Queue()


def test_acc001_accepts_party_send_and_metrics_charges():
    result = lint_fixture("protocols/acc001_ok.py")
    assert rule_ids_of(result) == []


# -- ASY001: fire-and-forget async ------------------------------------------

def test_asy001_flags_dropped_tasks_and_unawaited_coroutines():
    result = lint_fixture("runtime/asy001_bad.py")
    ids = rule_ids_of(result)
    assert ids.count("ASY001") == 4  # create_task, ensure_future,
    #                                  bare pump(), self.drain()
    messages = " | ".join(v.message for v in result.violations)
    assert "garbage-collected" in messages
    assert "never" in messages and "awaited" in messages


def test_asy001_accepts_retained_and_awaited():
    result = lint_fixture("runtime/asy001_ok.py")
    assert rule_ids_of(result) == []


def test_asy001_is_scoped_to_async_execution_layers():
    # The same dropped tasks outside runtime/cluster (e.g. an analysis
    # helper spawning a task) are out of ASY001's blast radius.
    from repro.lint.engine import run_lint
    from tests.lint.conftest import FIXTURES
    from repro.lint.config import LintConfig

    src = FIXTURES / "runtime" / "asy001_bad.py"
    elsewhere = FIXTURES / "anywhere" / "_asy001_copy.py"
    elsewhere.write_text(src.read_text(encoding="utf-8"), encoding="utf-8")
    try:
        config = LintConfig(
            root=FIXTURES, paths=("anywhere/_asy001_copy.py",),
        )
        result = run_lint(config)
        assert "ASY001" not in rule_ids_of(result)
    finally:
        elsewhere.unlink()


# -- EXC001: swallowed broad excepts ----------------------------------------

def test_exc001_flags_silent_broad_excepts():
    result = lint_fixture("exceptions/exc001_bad.py")
    ids = rule_ids_of(result)
    assert ids.count("EXC001") == 3  # except Exception, bare, tuple


def test_exc001_accepts_narrow_reraise_logged_and_justified():
    result = lint_fixture("exceptions/exc001_ok.py")
    assert rule_ids_of(result) == []
    assert [v.rule_id for v, _ in result.suppressed] == ["EXC001"]


# -- OBS001: unspanned charges in instrumented protocols --------------------

def test_obs001_flags_charges_outside_spans():
    result = lint_fixture("obs_bad")
    ids = rule_ids_of(result)
    assert ids.count("OBS001") == 2  # bare charge + uncovered helper


def test_obs001_span_coverage_is_transitive():
    result = lint_fixture("obs_ok")
    assert rule_ids_of(result) == []


# -- SER001: wire dataclasses need codecs -----------------------------------

def test_ser001_flags_codec_less_wire_dataclasses():
    result = lint_fixture("wire_bad")
    violations = [v for v in result.violations if v.rule_id == "SER001"]
    assert len(violations) == 2
    by_message = " | ".join(v.message for v in violations)
    assert "OrphanRecord" in by_message
    assert "HalfRecord" in by_message and "decoder" in by_message


def test_ser001_accepts_both_codec_styles():
    result = lint_fixture("wire_ok")
    assert rule_ids_of(result) == []


# -- cross-cutting -----------------------------------------------------------

def test_rules_can_be_subset():
    result = lint_fixture("protocols/acc001_bad.py", rules=("DET002",))
    assert rule_ids_of(result) == []  # ACC001 sites, DET002-only run


def test_violations_carry_symbol_and_snippet():
    result = lint_fixture("exceptions/exc001_bad.py")
    violation = result.violations[0]
    assert violation.symbol == "swallow_all"
    assert "except" in violation.snippet
    assert violation.fix_hint
