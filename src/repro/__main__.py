"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``ba [n]`` — run pi_ba with both SRDS constructions; print agreement,
  certificate size, and per-party communication.
* ``attacks`` — the Thm 1.3 (CRS) and Thm 1.4 (OWF) attacks, summarized.
* ``tree [n]`` — build an almost-everywhere tree under random corruption
  and print its Def. 2.3 guarantees.
* ``runtime [n] [tcp] [trace-dir]`` — run protocols over the
  event-driven asyncio runtime: phase-king under a seeded fault plan
  (reordering, duplication, a crash), then the pi_ba differential
  parity check (hybrid-model reference vs wire replay over the
  transport).  Pass ``tcp`` to use loopback TCP sockets instead of
  in-process queues; pass a directory to dump per-party JSONL traces.
* ``report [path]`` — assemble the benchmark records from
  ``benchmarks/results/`` into one measured-experiment report (stdout,
  or written to ``path``).
* ``obs report [path] [n] [--out dir]`` — observability: with no
  ``path``, run pi_ba fresh (default n=16) under both SRDS
  constructions with phase spans recording, print the per-phase and
  per-party communication tables, and verify that every party's phase
  sums equal its ``bits_total`` (exit 0 iff they all match); with a
  ``BENCH_*.json`` path, render that record; with a trace directory,
  summarize its per-party JSONL streams.  ``--out dir`` additionally
  writes ``BENCH_*.json`` records and Perfetto timeline JSON there.
* ``obs timeline <trace-dir> <out.json>`` — convert a runtime trace
  directory into Chrome trace-event JSON (loads in ui.perfetto.dev).
* ``lint {check,baseline,explain,rules}`` — protocol-aware static
  analysis: determinism (seeded randomness, injected clocks),
  bits-accounting (no byte path bypasses ``CommunicationMetrics``),
  async-safety, exception hygiene, and wire-codec rules with a
  ratcheted committed baseline (``lint check`` fails only on *new*
  violations; ``lint explain DET001`` documents a rule).
* ``cluster {run,resume,status,bench}`` — sharded multi-process party
  execution: shard the party set across worker OS processes with
  durable checkpoints and crash-restart recovery (``run --kill 3:1``
  SIGKILLs worker 1 mid-round to exercise resume), describe a run
  directory (``status``), pick an interrupted run back up (``resume``),
  or record the 1-vs-k-worker scaling benchmark with differential
  parity against the single-process runtime (``bench``).
* ``serve {run,client,bench}`` — the agreement-as-a-service gateway:
  a long-running asyncio server multiplexing concurrent BA sessions
  with admission control and explicit backpressure, amortized SRDS
  setup across sessions (Corollary 1.2), a newline-delimited JSON
  client protocol plus ``GET /metrics`` Prometheus scraping on the
  same port, and graceful SIGTERM drain.  ``serve bench`` records the
  pipelined repeated-BA throughput (``BENCH_gateway.json``) with
  bit-tally parity against a one-shot run.
* ``campaign {run,replay,minimize,list}`` — adversarial conformance
  campaigns: sweep Byzantine strategies x fault schedules x protocol
  configs with invariant checking (``run --budget 25 --seed 0``),
  re-execute a failing run from its single-line repro spec
  (``replay``), shrink it to a minimal failing instance
  (``minimize``), or show the matrix (``list``).

Longer, annotated versions of these demos live in ``examples/``.
"""

from __future__ import annotations

import sys

from repro.analysis.tables import format_bits
from repro.net.adversary import random_corruption
from repro.params import ProtocolParameters
from repro.utils.randomness import Randomness


def _cmd_ba(n: int) -> int:
    from repro.protocols.balanced_ba import run_balanced_ba
    from repro.srds.base_sigs import HashRegistryBase
    from repro.srds.owf import OwfSRDS
    from repro.srds.snark_based import SnarkSRDS

    params = ProtocolParameters()
    rng = Randomness(2021)
    plan = random_corruption(n, params.max_corruptions(n), rng.fork("c"))
    inputs = {i: i % 2 for i in range(n)}
    print(f"pi_ba: n={n}, t={plan.t}, split inputs")
    for label, scheme in (
        ("snark-srds", SnarkSRDS(base_scheme=HashRegistryBase())),
        ("owf-srds", OwfSRDS(message_bits=64)),
    ):
        result = run_balanced_ba(inputs, plan, scheme, params,
                                 rng.fork(label))
        print(
            f"  {label:<11} agree={result.agreement} y={result.agreed_value} "
            f"cert={result.certificate_bytes:,}B "
            f"max/party={format_bits(result.metrics.max_bits_per_party)} "
            f"imbalance={result.metrics.imbalance:.2f}"
        )
    return 0


def _cmd_runtime(n: int, kind: str, trace_dir=None) -> int:
    from repro.protocols.balanced_ba import run_balanced_ba
    from repro.protocols.phase_king import run_phase_king
    from repro.runtime import (
        FaultPlan,
        TraceRecorder,
        run_balanced_ba_runtime,
        run_phase_king_runtime,
    )
    from repro.runtime.trace import summarize
    from repro.srds.base_sigs import HashRegistryBase
    from repro.srds.snark_based import SnarkSRDS

    params = ProtocolParameters()
    rng = Randomness(2021)
    print(f"runtime: n={n}, transport={kind}")

    # 1. Phase-king over the event-driven runtime, hostile schedule.
    inputs = {i: i % 2 for i in range(n)}
    byzantine = sorted(rng.fork("byz").sample(range(n), max(1, (n - 1) // 3)))
    faults = FaultPlan(
        crashes={byzantine[0]: 2},
        reorder=True,
        duplicate_probability=0.05,
        rng=rng.fork("faults"),
    )
    trace = TraceRecorder()
    outputs, metrics = run_phase_king_runtime(
        inputs, byzantine, transport=kind, fault_plan=faults, trace=trace
    )
    reference, _ = run_phase_king(inputs, byzantine)
    decided = set(outputs.values())
    print(
        f"  phase-king  honest={len(outputs)} byz={len(byzantine)} "
        f"(1 crashed@r2) agree={len(decided) == 1} "
        f"matches-sync={outputs == reference} "
        f"max/party={format_bits(metrics.max_bits_per_party)}"
    )
    counts = summarize(
        event for p in trace.party_ids for event in trace.events_of(p)
    )
    print(
        f"  trace       events={trace.count():,} "
        f"(send={counts.get('send', 0):,} recv={counts.get('recv', 0):,} "
        f"barriers={counts.get('round-barrier', 0):,}) "
        f"max-queue-depth={trace.max_queue_depth()}"
    )
    if trace_dir is not None:
        paths = trace.dump_dir(trace_dir)
        print(f"  trace       {len(paths)} JSONL files -> {trace_dir}")

    # 2. pi_ba: hybrid-model reference vs wire replay over the transport.
    plan_rng = Randomness(7)
    from repro.net.adversary import random_corruption

    plan = random_corruption(n, params.max_corruptions(n), plan_rng.fork("c"))
    scheme = SnarkSRDS(base_scheme=HashRegistryBase())
    ref = run_balanced_ba(inputs, plan, scheme, params, Randomness(99))
    res, replay = run_balanced_ba_runtime(
        inputs, plan, scheme, params, Randomness(99), transport=kind
    )
    parity = (
        res.outputs == ref.outputs
        and res.metrics.max_bits_per_party == ref.metrics.max_bits_per_party
        and res.metrics.total_bits == ref.metrics.total_bits
    )
    print(
        f"  pi_ba       t={plan.t} wire-replay rounds={replay.rounds} "
        f"agree={res.agreement} parity-with-hybrid={parity} "
        f"max/party={format_bits(res.metrics.max_bits_per_party)}"
    )
    return 0 if parity else 1


def _cmd_attacks() -> int:
    from repro.lowerbounds.crs_attack import attack_success_rate as crs_rate
    from repro.lowerbounds.owf_attack import attack_success_rate as owf_rate

    rng = Randomness(1)
    crs = crs_rate(200, 30, 10, 40, rng.fork("crs"))
    pki = crs_rate(200, 30, 10, 40, rng.fork("pki"), with_pki=True)
    print(f"Thm 1.3  CRS-only single-round boost: victim errs {crs:.0%}")
    print(f"         with PKI/SRDS certificates:  victim errs {pki:.0%}")
    weak = owf_rate(80, 12, 6, secret_bits=8, effort_bits=12, trials=15,
                    rng=rng.fork("w"))
    strong = owf_rate(80, 12, 6, secret_bits=40, effort_bits=12, trials=15,
                      rng=rng.fork("s"))
    print(f"Thm 1.4  invertible (8-bit) PKI keys: victim errs {weak:.0%}")
    print(f"         one-way (40-bit) PKI keys:   victim errs {strong:.0%}")
    return 0


def _cmd_tree(n: int) -> int:
    from repro.aetree import analyze, build_tree

    params = ProtocolParameters()
    rng = Randomness(7)
    plan = random_corruption(n, params.max_corruptions(n), rng.fork("c"))
    tree = build_tree(n, params, rng.fork("t"), honest_root_hint=plan.honest)
    report = analyze(tree, plan)
    print(f"(n, I)-tree for n={n}, t={plan.t}:")
    print(f"  leaves={report.num_leaves} height={report.height} "
          f"z={tree.z} z*={tree.z_star}")
    print(f"  good-path leaves: {report.good_path_leaf_fraction:.1%}")
    print(f"  well-connected parties: {report.well_connected_fraction:.1%}")
    print(f"  supreme committee 2/3-honest: {report.root_is_good}")
    return 0


def _obs_fresh_report(n: int, out_dir=None) -> int:
    """Run pi_ba under both SRDS schemes with span recording and verify
    the phase attribution invariant; optionally persist BENCH + timeline."""
    import time as time_mod

    from repro.analysis.report import (
        render_party_phase_table,
        render_phase_breakdown,
    )
    from repro.obs.bench import bench_payload, write_bench_json
    from repro.obs.spans import SpanLog, recording, span
    from repro.net.metrics import CommunicationMetrics
    from repro.obs.timeline import export_chrome_trace
    from repro.protocols.balanced_ba import run_balanced_ba
    from repro.srds.base_sigs import HashRegistryBase
    from repro.srds.owf import OwfSRDS
    from repro.srds.snark_based import SnarkSRDS

    params = ProtocolParameters()
    rng = Randomness(2021)
    plan = random_corruption(n, params.max_corruptions(n), rng.fork("c"))
    inputs = {i: i % 2 for i in range(n)}
    print(f"obs report: pi_ba n={n}, t={plan.t}, split inputs")
    all_ok = True
    for label, scheme in (
        ("snark-srds", SnarkSRDS(base_scheme=HashRegistryBase())),
        ("owf-srds", OwfSRDS(message_bits=64)),
    ):
        log = SpanLog()
        metrics = CommunicationMetrics()
        started = time_mod.perf_counter()
        with recording(log):
            with span("obs-report", scheme=label):
                result = run_balanced_ba(
                    inputs, plan, scheme, params, rng.fork(label),
                    metrics=metrics,
                )
        elapsed = time_mod.perf_counter() - started
        print(f"\n== {label} "
              f"(agree={result.agreement}, wall={elapsed:.2f}s) ==")
        print(render_phase_breakdown(metrics.phase_breakdown()))
        print()
        print(render_party_phase_table(metrics))
        sums = [
            sum(metrics.bits_by_phase(p).values())
            for p in sorted(metrics.party_ids)
        ]
        totals = [
            metrics.tally_of(p).bits_total
            for p in sorted(metrics.party_ids)
        ]
        ok = (
            sums == totals
            and max(sums, default=0) == metrics.max_bits_per_party
        )
        all_ok = all_ok and ok
        print(
            f"invariant sum(bits_by_phase) == bits_total per party: "
            f"{'ok' if ok else 'VIOLATED'} "
            f"(max/party={format_bits(metrics.max_bits_per_party)})"
        )
        if out_dir is not None:
            payload = bench_payload(
                f"obs_report_{label.replace('-', '_')}",
                snapshot=metrics.snapshot(),
                phase_breakdown=metrics.phase_breakdown(),
                wall_times={"pi_ba": elapsed},
                extra={"n": n, "t": plan.t, "scheme": label,
                       "agreement": result.agreement},
            )
            bench_path = write_bench_json(out_dir, payload)
            timeline_path = export_chrome_trace(
                out_dir / f"timeline_{label.replace('-', '_')}.json",
                trace=None,
                spans=log,
            )
            print(f"wrote {bench_path} and {timeline_path}")
    return 0 if all_ok else 1


def _cmd_obs(args) -> int:
    import pathlib

    if not args:
        args = ["report"]
    sub, *rest = args
    if sub == "timeline":
        from repro.obs.timeline import export_chrome_trace, load_trace_dir

        if len(rest) != 2:
            print("usage: obs timeline <trace-dir> <out.json>")
            return 2
        events = load_trace_dir(pathlib.Path(rest[0]))
        path = export_chrome_trace(pathlib.Path(rest[1]), trace=events)
        print(f"timeline ({sum(len(e) for e in events.values()):,} events, "
              f"{len(events)} parties) -> {path}")
        return 0
    if sub != "report":
        print("usage: obs report [path] [n] [--out dir] | "
              "obs timeline <trace-dir> <out.json>")
        return 2

    out_dir = None
    n = 16
    target = None
    rest = list(rest)
    while rest:
        arg = rest.pop(0)
        if arg == "--out":
            if not rest:
                print("--out needs a directory")
                return 2
            out_dir = pathlib.Path(rest.pop(0))
        elif arg.isdigit():
            n = int(arg)
        else:
            target = pathlib.Path(arg)

    if target is None:
        return _obs_fresh_report(n, out_dir)

    if target.is_dir():
        from repro.obs.timeline import export_chrome_trace, load_trace_dir
        from repro.runtime.trace import summarize

        events = load_trace_dir(target)
        if not events:
            print(f"no party-*.jsonl files under {target}")
            return 2
        print(f"trace dir {target}: {len(events)} parties")
        for party in sorted(events):
            counts = summarize(events[party])
            parts = " ".join(
                f"{kind}={count}" for kind, count in sorted(counts.items())
            )
            print(f"  party-{party}: {len(events[party])} events ({parts})")
        if out_dir is not None:
            path = export_chrome_trace(out_dir / "timeline.json", trace=events)
            print(f"timeline -> {path}")
        return 0

    if target.suffix == ".json":
        from repro.analysis.report import render_bench_record
        from repro.obs.bench import load_bench_json

        print(render_bench_record(load_bench_json(target)))
        return 0

    print(f"don't know how to report on {target}")
    return 2


def main(argv) -> int:
    if not argv:
        print(__doc__)
        return 2
    command, *args = argv
    if command == "ba":
        return _cmd_ba(int(args[0]) if args else 64)
    if command == "attacks":
        return _cmd_attacks()
    if command == "tree":
        return _cmd_tree(int(args[0]) if args else 256)
    if command == "runtime":
        n = 16
        kind = "local"
        trace_dir = None
        for arg in args:
            if arg in ("local", "tcp"):
                kind = arg
            elif arg.isdigit():
                n = int(arg)
            else:
                trace_dir = arg
        return _cmd_runtime(n, kind, trace_dir)
    if command == "report":
        import pathlib

        from repro.analysis.report import assemble_report, write_report

        if args:
            write_report(pathlib.Path(args[0]))
            print(f"report written to {args[0]}")
        else:
            print(assemble_report())
        return 0
    if command == "obs":
        return _cmd_obs(args)
    if command == "serve":
        from repro.serve.cli import cmd_serve

        return cmd_serve(args)
    if command == "campaign":
        from repro.campaign.cli import cmd_campaign

        return cmd_campaign(args)
    if command == "cluster":
        from repro.cluster.cli import cmd_cluster

        return cmd_cluster(args)
    if command == "lint":
        from repro.lint.cli import cmd_lint

        return cmd_lint(args)
    print(__doc__)
    return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
