"""The two-way link between count-certified multisignatures and SNARGs.

§1.2 / full version: the natural route to SRDS in weak PKI models is
"multi-signature + a succinct proof that it contains >= k contributions".
This module makes both directions of the paper's observation executable:

**Forward (construction)** — :class:`CountCertifiedMultisig` builds that
natural scheme: an XOR-homomorphic multisignature whose aggregate carries
(combined tag, count k, SNARG proof that some size-k subset of the
published per-party tags XORs to the combined tag).  The certificate is
succinct and counts contributions without naming contributors — i.e. it
has the SRDS verification interface — but it visibly consumes a SNARG
for the subset problem.

**Backward (barrier)** — :func:`snarg_for_subset_from_certifier` shows
the converse: *any* succinct count-certifier for this multisignature
yields an average-case SNARG for the group subset problem, because a
planted subset instance *is* a multisig transcript (uniform tags, target
= combination of a hidden size-k subset).  The wrapper literally re-types
a certifier into a (prove, verify) pair for random subset instances —
the paper's barrier, as code: you cannot get the certificate without
getting the SNARG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.crypto.snark import Proof, SnarkSystem
from repro.errors import MALFORMED_INPUT_ERRORS, ProofError
from repro.snarg_connection.subset_problems import (
    SubsetInstance,
    XorGroup,
    decode_witness,
    encode_witness,
)
from repro.utils.randomness import Randomness

_SUBSET_RELATION = "snarg-connection/subset"


def register_subset_relation(snark_system: SnarkSystem,
                             group: XorGroup) -> None:
    """Register the subset NP relation with an argument system.

    The statement is :meth:`SubsetInstance.statement_bytes`; the witness
    is the encoded index subset.  Idempotent per system.
    """
    if snark_system.has_relation(_SUBSET_RELATION):
        return

    def relation(statement: bytes, witness: bytes) -> bool:
        instance = _decode_statement(statement, group)
        if instance is None:
            return False
        try:
            indices = decode_witness(witness)
        except MALFORMED_INPUT_ERRORS:
            return False
        return instance.check_witness(indices)

    snark_system.register_relation(_SUBSET_RELATION, relation)


def _decode_statement(statement: bytes, group: XorGroup
                      ) -> Optional[SubsetInstance]:
    from repro.utils.serialization import decode_sequence, decode_uint

    try:
        fields, _ = decode_sequence(statement, 0)
        if len(fields) < 4 or fields[0] != group.name.encode("utf-8"):
            return None
        n, _ = decode_uint(fields[1], 0)
        subset_size, _ = decode_uint(fields[2], 0)
        target = fields[3]
        elements = tuple(fields[4:])
        if len(elements) != n:
            return None
        if any(len(e) != group.width_bytes for e in elements):
            return None
        if len(target) != group.width_bytes:
            return None
    except MALFORMED_INPUT_ERRORS:
        return None
    return SubsetInstance(
        group=group, elements=elements, target=target,
        subset_size=subset_size,
    )


@dataclass(frozen=True)
class CountCertificate:
    """A succinct 'at least k signed' certificate for a multisig."""

    combined_tag: bytes
    count: int
    proof: Proof

    def size_bytes(self) -> int:
        """Constant: tag + count + SNARG proof."""
        return len(self.combined_tag) + 8 + self.proof.size_bytes()


class CountCertifiedMultisig:
    """The 'natural approach': multisig + SNARG-certified count.

    Per-party tags are published on the bulletin board (registered-PKI
    flavor: a tag plays the role of a public key here — in the real
    scheme tags are message-bound; for the connection only the
    homomorphic structure matters, so the module works directly over the
    tag vector).  Aggregation XORs a subset of tags and proves, with the
    subset SNARG, that ``count`` of the published tags entered the
    combination — without revealing which.
    """

    def __init__(self, snark_system: SnarkSystem,
                 group: Optional[XorGroup] = None) -> None:
        self.group = group if group is not None else XorGroup(32)
        self.snark_system = snark_system
        register_subset_relation(snark_system, self.group)

    def aggregate(
        self,
        published_tags: Sequence[bytes],
        contributing_indices: Sequence[int],
    ) -> CountCertificate:
        """Combine the chosen tags and certify their count."""
        indices = sorted(set(contributing_indices))
        combined = self.group.combine_all(
            [published_tags[i] for i in indices]
        )
        instance = SubsetInstance(
            group=self.group,
            elements=tuple(published_tags),
            target=combined,
            subset_size=len(indices),
        )
        proof = self.snark_system.prove(
            _SUBSET_RELATION,
            instance.statement_bytes(),
            encode_witness(indices),
        )
        return CountCertificate(
            combined_tag=combined, count=len(indices), proof=proof
        )

    def verify(
        self,
        published_tags: Sequence[bytes],
        certificate: CountCertificate,
    ) -> bool:
        """Check the count certificate against the bulletin board."""
        instance = SubsetInstance(
            group=self.group,
            elements=tuple(published_tags),
            target=certificate.combined_tag,
            subset_size=certificate.count,
        )
        return self.snark_system.verify(
            _SUBSET_RELATION, instance.statement_bytes(), certificate.proof
        )


# A count-certifier, abstractly: given the published tag vector and a
# contributing subset, produce an opaque succinct certificate; plus a
# verifier for (tags, combined, count, certificate).
CertifierProve = Callable[[Sequence[bytes], Sequence[int]], CountCertificate]
CertifierVerify = Callable[[Sequence[bytes], CountCertificate], bool]


@dataclass(frozen=True)
class SubsetSnarg:
    """A non-interactive argument for average-case subset instances."""

    prove: Callable[[SubsetInstance, Sequence[int]], CountCertificate]
    verify: Callable[[SubsetInstance, CountCertificate], bool]
    proof_size_bytes: int


def snarg_for_subset_from_certifier(
    certifier_prove: CertifierProve,
    certifier_verify: CertifierVerify,
) -> SubsetSnarg:
    """The barrier direction, as code.

    Any succinct count-certifier for the XOR multisig *is* an
    average-case SNARG for the subset problem: an average-case subset
    instance (uniform elements, planted size-k target) is literally a
    multisig bulletin board plus an honest aggregate, so the certifier's
    (prove, verify) pair transfers verbatim.  The returned object proves
    and verifies subset instances using nothing but the certifier.
    """

    def prove(instance: SubsetInstance,
              witness: Sequence[int]) -> CountCertificate:
        if not instance.check_witness(witness):
            raise ProofError("witness does not satisfy the instance")
        certificate = certifier_prove(list(instance.elements), witness)
        if (
            certificate.count != instance.subset_size
            or certificate.combined_tag != instance.group.encode(
                instance.target
            )
        ):
            raise ProofError("certifier output does not match the instance")
        return certificate

    def verify(instance: SubsetInstance,
               certificate: CountCertificate) -> bool:
        if certificate.count != instance.subset_size:
            return False
        if certificate.combined_tag != instance.group.encode(instance.target):
            return False
        return certifier_verify(list(instance.elements), certificate)

    probe = CountCertificate(
        combined_tag=bytes(32), count=0,
        proof=Proof(relation_name=_SUBSET_RELATION, tag=bytes(32)),
    )
    return SubsetSnarg(
        prove=prove,
        verify=verify,
        proof_size_bytes=probe.size_bytes(),
    )
