"""The lint engine: file discovery, parsing, rule execution, suppression.

One :func:`run_lint` call produces a :class:`LintResult` holding

* ``violations`` — active findings (after pragma suppression, before
  baseline application; the baseline ratchet is a separate layer so the
  CLI can show *which* findings are legacy),
* ``suppressed`` — findings silenced by an in-source pragma (kept for
  the JSON report: suppressions are auditable, not invisible),
* ``meta_violations`` — findings *about the lint annotations
  themselves*: malformed pragmas (LNT000), unused pragmas (LNT001),
  unparseable files (LNT002).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

from repro.lint.config import LintConfig
from repro.lint.model import ModuleUnit, ProjectRule, Rule, Severity, Violation
from repro.lint.pragmas import Pragma, parse_pragmas
from repro.lint.rules import ALL_RULES, select_rules

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.lint.xmod.project import ProjectUnit

#: Meta-rule ids (engine-emitted; not in the rule registry).
MALFORMED_PRAGMA = "LNT000"
UNUSED_PRAGMA = "LNT001"
PARSE_ERROR = "LNT002"


@dataclass
class LintResult:
    """Everything one engine run learned."""

    violations: List[Violation] = field(default_factory=list)
    suppressed: List[Tuple[Violation, Pragma]] = field(default_factory=list)
    meta_violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    #: The cross-module view, present when any ProjectRule ran (the CLI
    #: reuses it for ``lint graph`` without a second extraction).
    project: "Optional[ProjectUnit]" = None

    @property
    def errors(self) -> List[Violation]:
        return [v for v in self.violations if v.severity is Severity.ERROR]


def iter_source_files(config: LintConfig) -> Iterator[Path]:
    """Yield the Python files selected by ``config``, sorted."""
    seen = set()
    for entry in config.paths:
        target = (config.root / entry).resolve()
        if target.is_file() and target.suffix == ".py":
            if target not in seen:
                seen.add(target)
                yield target
            continue
        if not target.is_dir():
            continue
        for path in sorted(target.rglob("*.py")):
            if any(part in config.exclude_dirs for part in path.parts):
                continue
            if path not in seen:
                seen.add(path)
                yield path


def load_module(path: Path, config: LintConfig) -> "ModuleUnit | Violation":
    """Parse one file into a :class:`ModuleUnit` (or a PARSE_ERROR)."""
    rel = _relative(path, config.root)
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        return Violation(
            rule_id=PARSE_ERROR,
            severity=Severity.ERROR,
            path=rel,
            line=getattr(exc, "lineno", 1) or 1,
            col=0,
            message=f"cannot parse file: {exc}",
            fix_hint="fix the syntax error (nothing else was checked)",
        )
    lines = source.splitlines()
    return ModuleUnit(
        path=path,
        rel=rel,
        source=source,
        lines=lines,
        tree=tree,
        pragmas=parse_pragmas(source),
    )


def _relative(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(
    config: LintConfig,
    rules: Optional[Tuple[Rule, ...]] = None,
    cache_path: Optional[Path] = None,
) -> LintResult:
    """Run ``rules`` (default: config-selected) over the configured tree.

    Per-file rules run module by module; :class:`ProjectRule` subclasses
    run once against the assembled cross-module
    :class:`~repro.lint.xmod.project.ProjectUnit` (``cache_path``
    enables the content-hash facts cache for that pass).  Pragma hygiene
    runs last so a pragma that suppresses only a project-level finding
    is correctly counted as used.
    """
    if rules is None:
        rules = select_rules(config.rules) if config.rules else ALL_RULES
    active_ids = {rule.meta.rule_id for rule in rules}
    file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    result = LintResult()
    modules: List[ModuleUnit] = []
    for path in iter_source_files(config):
        loaded = load_module(path, config)
        if isinstance(loaded, Violation):
            result.meta_violations.append(loaded)
            continue
        result.files_checked += 1
        modules.append(loaded)

    def record(module: ModuleUnit, violation: Violation) -> None:
        pragma = module.pragmas.suppression_for(
            violation.rule_id, violation.line
        )
        if pragma is not None:
            result.suppressed.append((violation, pragma))
        else:
            result.violations.append(violation)

    for module in modules:
        for rule in file_rules:
            for violation in rule.check(module, config):
                record(module, violation)

    if project_rules:
        from repro.lint.xmod.cache import build_project

        project = build_project(modules, cache_path)
        result.project = project
        by_rel = {module.rel: module for module in modules}
        for rule in project_rules:
            for violation in rule.check_project(project, by_rel, config):
                module_for = by_rel.get(violation.path)
                if module_for is not None:
                    record(module_for, violation)
                else:
                    result.violations.append(violation)

    for module in modules:
        # Pragma hygiene: malformed pragmas are errors, unused ones
        # warnings (a suppression must never outlive its violation).
        for problem in module.pragmas.problems:
            result.meta_violations.append(Violation(
                rule_id=MALFORMED_PRAGMA,
                severity=Severity.ERROR,
                path=module.rel,
                line=problem.line,
                col=0,
                message=problem.message,
                fix_hint="`# lint: allow[RULE001] reason=why this is "
                "protocol-correct`",
                symbol=module.symbol_at(problem.line),
                snippet=module.snippet_at(problem.line),
            ))
        for pragma in module.pragmas.unused():
            if not set(pragma.rule_ids) <= active_ids:
                # A partial run must not flag pragmas for rules it never
                # executed.
                continue
            result.meta_violations.append(Violation(
                rule_id=UNUSED_PRAGMA,
                severity=Severity.WARNING,
                path=module.rel,
                line=pragma.line,
                col=0,
                message=(
                    f"pragma allows [{', '.join(pragma.rule_ids)}] but "
                    "suppressed nothing — remove it"
                ),
                fix_hint="delete the stale `# lint: allow[...]` comment",
                symbol=module.symbol_at(pragma.line),
                snippet=module.snippet_at(pragma.line),
            ))
    result.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    result.meta_violations.sort(
        key=lambda v: (v.path, v.line, v.col, v.rule_id)
    )
    return result
