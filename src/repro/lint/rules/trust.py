"""TRU001 — trust-boundary taint from wire decoders to protocol logic.

In the Byzantine model every byte read off a socket is
adversary-controlled, so the linter draws an explicit trust boundary
around the decoder surfaces (``cluster/wire.py``, ``cluster/
meshwire.py``, ``serve/wire.py``, the runtime ``Frame`` codec, and
``pickle.loads`` in cluster/serve/runtime scopes) and enforces two
disciplines over the :class:`~repro.lint.xmod.project.ProjectUnit`:

**(a) Decoder field strictness.**  Inside a decoder function, every
``struct``-unpacked field that escapes into the return value must be
*individually* guarded — appear in an ``if``/``while``/``assert`` test
whose body raises a malformed-input exception, or be passed to a local
raising helper.  This is what makes the gate bite when a single
validation line is deleted: the field it covered becomes unguarded even
though the decoder as a whole still validates plenty.

**(b) Interprocedural taint.**  A call returning wire-derived data (a
decoder call, ``pickle.loads``, or any function whose summary says its
return carries such data — computed by a cross-module fixpoint to the
configured depth) taints its result; attribute access, iteration, and
method calls propagate the taint.  Tainted values must not reach a sink
— a call into ``protocols/``/``srds/`` or a ledger-charging method
(``record_message``/``replay_digest``/``charge_functionality``) —
unless narrowed first by a sanitizer call (name contains
``validate``/``narrow``/``sanitize``), killed by a raising guard on the
value, or produced by a strict decoder invoked under ``try/except``
over a malformed-input exception (the "guarded construction" pattern:
the decoder's own raises are the validation).

The analysis is flow-ordered but not path-sensitive, and taint dies at
attribute *stores* (``self.x = tainted`` does not taint later
``self.x`` reads) — both are documented trade-offs that keep findings
local and actionable.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.model import ModuleUnit, ProjectRule, RuleMeta, Severity, Violation
from repro.lint.xmod.project import (
    CallNode,
    FunctionFacts,
    ModuleFacts,
    ProjectUnit,
)


class TrustBoundaryRule(ProjectRule):
    """Wire-decoded values must be validated before protocol use."""

    meta = RuleMeta(
        rule_id="TRU001",
        name="unvalidated-wire-data",
        severity=Severity.ERROR,
        summary=(
            "wire-decoded values must pass a malformed-input guard or "
            "sanitizer before reaching protocol/SRDS logic or the "
            "bit-accounting ledger"
        ),
        rationale=(
            "Boyle-Cohen-Goel's bounds assume parties act on validated "
            "messages; an adaptive adversary's cheapest attack is a "
            "decoded field (round index, worker id, charge count) that "
            "reaches protocol or ledger code unchecked. Decoders must "
            "guard each escaping field, and wire-derived values must be "
            "narrowed before crossing into protocols/, srds/, or "
            "CommunicationMetrics charging."
        ),
        fix_hint=(
            "guard the field with a raising check (SerializationError/"
            "ClusterError/GatewayError/...), pass the value through a "
            "validate*/narrow* helper, or decode under try/except over "
            "malformed-input errors"
        ),
    )

    # -- policy helpers ------------------------------------------------------

    def _decoder_modules(self, project: ProjectUnit,
                         config: LintConfig) -> Set[str]:
        return {
            name for name, facts in project.facts.items()
            if config.in_scope(facts.rel, config.tru001_decoder_modules)
        }

    @staticmethod
    def _is_decoder_function(function: FunctionFacts) -> bool:
        name = function.name
        return name.startswith("decode") or name == "decode"

    def _is_source(
        self,
        project: ProjectUnit,
        decoder_modules: Set[str],
        modfacts: ModuleFacts,
        resolved: Optional[str],
        call: CallNode,
        config: LintConfig,
    ) -> bool:
        if call.callee == "pickle.loads" and config.in_scope(
            modfacts.rel, config.tru001_pickle_scopes
        ):
            return True
        tail = call.callee.rsplit(".", 1)[-1]
        if resolved is not None:
            owner = project.functions.get(resolved)
            if owner is not None and owner[0] in decoder_modules:
                if owner[1].name.startswith("decode"):
                    return True
            return False
        # Unresolved decode_* calls on decoder modules still count when
        # the raw callee's module prefix is a decoder module.
        head = call.callee.rsplit(".", 1)[0] if "." in call.callee else ""
        return tail.startswith("decode") and head in decoder_modules

    @staticmethod
    def _is_sanitizer(callee: str, markers: Tuple[str, ...]) -> bool:
        tail = callee.rsplit(".", 1)[-1].lower()
        return any(marker in tail for marker in markers)

    def _is_sink(
        self,
        project: ProjectUnit,
        call: CallNode,
        resolved: Optional[str],
        config: LintConfig,
    ) -> Optional[str]:
        """A human-readable sink label, or ``None``."""
        tail = call.callee.rsplit(".", 1)[-1]
        if tail in config.tru001_sink_methods:
            return f"ledger call {tail}()"
        if resolved is not None:
            owner = project.functions.get(resolved)
            if owner is not None:
                rel = project.facts[owner[0]].rel
                if config.in_scope(rel, config.tru001_sink_scopes):
                    return f"{resolved} ({rel})"
        return None

    # -- (a) decoder field strictness ---------------------------------------

    def _guarded_names(self, function: FunctionFacts,
                       guard_exceptions: Set[str]) -> Set[str]:
        guarded: Set[str] = set()
        for guard in function.guards:
            if set(guard.raised) & guard_exceptions:
                guarded.add(guard.name)
        # Fields handed to a raising local helper (the `need(length)`
        # pattern) or to a module-level checker that raises.
        raising_helpers = {
            name for name, raised in function.nested_raises.items()
            if set(raised) & guard_exceptions
        }
        for call in function.calls:
            helper = call.callee.rsplit(".", 1)[-1]
            if helper in raising_helpers or call.callee in raising_helpers:
                for root in call.arg_roots:
                    if root is not None:
                        guarded.add(root)
        return guarded

    def _escape_lines(self, function: FunctionFacts) -> Dict[str, int]:
        """Name -> line where its value first escapes into the return.

        Reporting at the *escape site* (the constructor kwarg line, in
        practice) gives every field its own pragma-able line, so
        suppressing one contextually-validated field cannot mask a
        regression on a neighbouring field of the same unpack.
        """
        escaping: Dict[str, int] = {}

        def note(name: Optional[str], line: int) -> None:
            if name is None:
                return
            if name not in escaping or line < escaping[name]:
                escaping[name] = line

        return_origins: Set[str] = set()
        for ret in function.returns:
            return_origins.update(ret.origins)
        # Grow backwards through the call DAG: a call feeding the return
        # exposes its own argument roots, at the argument's own line
        # (one kwarg per line in the repo's constructors).
        calls_by_id = {call.id: call for call in function.calls}
        frontier = [
            origin for origin in return_origins if origin in calls_by_id
        ]
        seen: Set[str] = set(frontier)
        while frontier:
            call = calls_by_id[frontier.pop()]
            for index, root in enumerate(call.arg_roots):
                line = (
                    call.arg_lines[index]
                    if index < len(call.arg_lines) else call.line
                )
                note(root, line)
            for key, root in call.kw_roots.items():
                note(root, call.kw_lines.get(key, call.line))
            feeds: Set[str] = set(call.receiver_origins)
            for origins in call.arg_origins:
                feeds.update(origins)
            for origins in call.kw_origins.values():
                feeds.update(origins)
            for origin in feeds:
                if origin in calls_by_id and origin not in seen:
                    seen.add(origin)
                    frontier.append(origin)
        # Names returned directly (or via expressions the DAG did not
        # cover) anchor at the return line — but a call-argument line,
        # when one exists, is the more pragma-able anchor, so it wins.
        for ret in function.returns:
            for root in ret.roots:
                if root not in escaping:
                    escaping[root] = ret.line
        return escaping

    def _check_decoder_fields(
        self,
        project: ProjectUnit,
        modules: Dict[str, ModuleUnit],
        decoder_modules: Set[str],
        guard_exceptions: Set[str],
        config: LintConfig,
    ) -> Iterator[Violation]:
        for modname in sorted(decoder_modules):
            modfacts = project.facts[modname]
            for function in modfacts.functions:
                if not self._is_decoder_function(function):
                    continue
                if not function.unpacks:
                    continue
                guarded = self._guarded_names(function, guard_exceptions)
                escaping = self._escape_lines(function)
                for unpack in function.unpacks:
                    for field in unpack.fields:
                        if field.startswith("_") or field in guarded:
                            continue
                        if field not in escaping:
                            continue
                        yield self.project_violation(
                            modules, modfacts.rel, escaping[field],
                            message=(
                                f"decoder {function.qualname}() lets "
                                f"the field {field!r} unpacked at line "
                                f"{unpack.line} escape into its return "
                                "value without a malformed-input guard"
                            ),
                        )

    # -- (b) interprocedural taint ------------------------------------------

    def _taint_summaries(
        self,
        project: ProjectUnit,
        decoder_modules: Set[str],
        guard_exceptions: Set[str],
        config: LintConfig,
    ) -> Set[str]:
        """Qualified names of functions whose return carries wire taint.

        Fixpoint to ``tru001_depth`` rounds: each round may propagate
        taint one call level further.  Decoder functions themselves are
        *not* summarized as tainted — calling them is the source event,
        and call sites under a malformed-input ``try`` are exempt.
        """
        tainted_returns: Set[str] = set()
        for _ in range(max(1, config.tru001_depth)):
            changed = False
            for qualified, (modname, function) in project.functions.items():
                if qualified in tainted_returns:
                    continue
                if modname in decoder_modules and \
                        self._is_decoder_function(function):
                    continue
                tainted_ids = self._tainted_call_ids(
                    project, decoder_modules, tainted_returns,
                    modname, function, guard_exceptions, config,
                )
                for ret in function.returns:
                    if tainted_ids & set(ret.origins):
                        tainted_returns.add(qualified)
                        changed = True
                        break
            if not changed:
                break
        return tainted_returns

    def _tainted_call_ids(
        self,
        project: ProjectUnit,
        decoder_modules: Set[str],
        tainted_returns: Set[str],
        modname: str,
        function: FunctionFacts,
        guard_exceptions: Set[str],
        config: LintConfig,
    ) -> Set[str]:
        modfacts = project.facts[modname]
        markers = config.tru001_sanitizer_markers
        guarded_names = self._guard_killed_names(function, guard_exceptions)

        tainted: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for call in function.calls:
                if call.id in tainted:
                    continue
                if self._is_sanitizer(call.callee, markers):
                    continue
                resolved = project.resolve_call(modname, function, call)
                if self._is_source(
                    project, decoder_modules, modfacts, resolved, call,
                    config,
                ):
                    # Guarded construction: a strict decoder invoked
                    # under try/except over malformed-input errors is
                    # the sanctioned ingress pattern.
                    if not set(call.try_handlers) & guard_exceptions:
                        tainted.add(call.id)
                        changed = True
                    continue
                if resolved is not None and resolved in tainted_returns:
                    if not set(call.try_handlers) & guard_exceptions:
                        tainted.add(call.id)
                        changed = True
                    continue
                if self._tainted_feeds(call, tainted, guarded_names):
                    tainted.add(call.id)
                    changed = True
        return tainted

    @staticmethod
    def _guard_killed_names(function: FunctionFacts,
                            guard_exceptions: Set[str]) -> Set[str]:
        """Names a raising guard validated — kills taint *by name* at
        use sites, so guarding ``recipients`` does not launder the
        ``rows`` it was derived from."""
        return {
            guard.name
            for guard in function.guards
            if set(guard.raised) & guard_exceptions
        }

    @staticmethod
    def _tainted_feeds(call: CallNode, tainted: Set[str],
                       guarded_names: Set[str]) -> bool:
        """Does tainted data reach this call through an unguarded name?"""
        if call.receiver_root not in guarded_names and (
            set(call.receiver_origins) & tainted
        ):
            return True
        for root, origins in zip(call.arg_roots, call.arg_origins):
            if root in guarded_names:
                continue
            if set(origins) & tainted:
                return True
        for key, origins in call.kw_origins.items():
            if call.kw_roots.get(key) in guarded_names:
                continue
            if set(origins) & tainted:
                return True
        return False

    def _check_sinks(
        self,
        project: ProjectUnit,
        modules: Dict[str, ModuleUnit],
        decoder_modules: Set[str],
        guard_exceptions: Set[str],
        config: LintConfig,
    ) -> Iterator[Violation]:
        tainted_returns = self._taint_summaries(
            project, decoder_modules, guard_exceptions, config,
        )
        for qualified in sorted(project.functions):
            modname, function = project.functions[qualified]
            modfacts = project.facts[modname]
            # Sink-scope modules consuming their own data is fine; the
            # boundary is crossed by *callers* outside those scopes.
            if config.in_scope(modfacts.rel, config.tru001_sink_scopes):
                continue
            tainted = self._tainted_call_ids(
                project, decoder_modules, tainted_returns,
                modname, function, guard_exceptions, config,
            )
            if not tainted:
                continue
            guarded_names = self._guard_killed_names(
                function, guard_exceptions
            )
            calls_by_id = {call.id: call for call in function.calls}
            for call in function.calls:
                resolved = project.resolve_call(modname, function, call)
                sink = self._is_sink(project, call, resolved, config)
                if sink is None:
                    continue
                hot: Set[str] = set()
                for root, origins in zip(call.arg_roots, call.arg_origins):
                    if root in guarded_names:
                        continue
                    hot.update(set(origins) & tainted)
                for key, origins in call.kw_origins.items():
                    if call.kw_roots.get(key) in guarded_names:
                        continue
                    hot.update(set(origins) & tainted)
                if not hot:
                    continue
                source_lines = sorted(
                    calls_by_id[origin].line
                    for origin in hot if origin in calls_by_id
                )
                origin_note = (
                    f" (wire data ingested at line "
                    f"{', '.join(str(line) for line in source_lines)})"
                    if source_lines else ""
                )
                yield self.project_violation(
                    modules, modfacts.rel, call.line,
                    message=(
                        f"{function.qualname}() passes unvalidated wire-"
                        f"derived data into {sink}{origin_note}"
                    ),
                )

    # -- entry point ---------------------------------------------------------

    def check_project(
        self,
        project: ProjectUnit,
        modules: Dict[str, ModuleUnit],
        config: LintConfig,
    ) -> Iterator[Violation]:
        decoder_modules = self._decoder_modules(project, config)
        guard_exceptions = set(config.tru001_guard_exceptions)
        yield from self._check_decoder_fields(
            project, modules, decoder_modules, guard_exceptions, config,
        )
        yield from self._check_sinks(
            project, modules, decoder_modules, guard_exceptions, config,
        )
