"""Wire-format rule: SER001 (dataclasses without a codec round-trip).

Wire modules (``campaign/spec.py``-style) define the records that cross
process/replay boundaries: campaign repro specs, schedule descriptors,
anything a CI artifact or a `replay` subcommand must reconstruct
byte-for-byte.  A dataclass added to such a module without a registered
encode/decode pair is a record that can be produced but never replayed
— exactly the class of drift the single-line ``campaign/1`` spec format
exists to prevent.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.lint.config import LintConfig
from repro.lint.model import ModuleUnit, Rule, RuleMeta, Severity, Violation


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator
        if isinstance(target, ast.Call):
            target = target.func
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _annotation_names(annotation: Optional[ast.expr]) -> Set[str]:
    """All plain identifiers appearing in an annotation expression."""
    names: Set[str] = set()
    if annotation is None:
        return names
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # String annotations: "CampaignSpec", "Optional[CampaignSpec]".
            for token in _identifier_tokens(node.value):
                names.add(token)
    return names


def _identifier_tokens(text: str) -> List[str]:
    tokens: List[str] = []
    current = ""
    for char in text:
        if char.isalnum() or char == "_":
            current += char
        else:
            if current:
                tokens.append(current)
            current = ""
    if current:
        tokens.append(current)
    return tokens


class WireCodecRule(Rule):
    """SER001 — every wire dataclass needs an encode/decode round-trip."""

    meta = RuleMeta(
        rule_id="SER001",
        name="wire-dataclass-without-codec",
        severity=Severity.ERROR,
        summary=(
            "top-level dataclass in a wire module lacking a registered "
            "encode/decode pair"
        ),
        rationale=(
            "Campaign repro specs promise: any failure is replayable "
            "from one line.  That only holds if every record in a wire "
            "module round-trips — an encoder (a function/method taking "
            "the class) AND a decoder (a function/classmethod returning "
            "it).  A codec-less wire dataclass produces artifacts that "
            "`replay`/`minimize` cannot reconstruct."
        ),
        fix_hint=(
            "add `encode`/`decode` methods, or a module-level "
            "format_x(obj: X) / parse_x(...) -> X pair, and a round-trip "
            "test"
        ),
    )

    def check(
        self, module: ModuleUnit, config: LintConfig
    ) -> Iterator[Violation]:
        if not config.in_scope(module.rel, config.ser001_wire_modules):
            return
        # Collect module-level functions' parameter/return annotations.
        encoder_types: Set[str] = set()  # classes some function consumes
        decoder_types: Set[str] = set()  # classes some function returns
        for node in module.tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for arg in (
                list(node.args.posonlyargs)
                + list(node.args.args)
                + list(node.args.kwonlyargs)
            ):
                encoder_types |= _annotation_names(arg.annotation)
            decoder_types |= _annotation_names(node.returns)

        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if not _is_dataclass_decorated(node):
                continue
            has_encode = False
            has_decode = False
            for member in node.body:
                if not isinstance(
                    member, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if member.name in ("encode", "to_line", "to_json"):
                    has_encode = True
                if member.name in ("decode", "from_line", "from_json"):
                    has_decode = True
                # Methods returning the class count as decoders too.
                if node.name in _annotation_names(member.returns):
                    has_decode = has_decode or _is_constructorish(member)
            if node.name in encoder_types:
                has_encode = True
            if node.name in decoder_types:
                has_decode = True
            missing = []
            if not has_encode:
                missing.append("encoder")
            if not has_decode:
                missing.append("decoder")
            if missing:
                yield self.violation(
                    module, node,
                    f"wire dataclass `{node.name}` has no registered "
                    f"{' or '.join(missing)} — it cannot round-trip "
                    "through a repro spec/artifact",
                )


def _is_constructorish(member: ast.AST) -> bool:
    """Whether a method is classmethod/staticmethod (a factory decoder)."""
    if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    for decorator in member.decorator_list:
        if isinstance(decorator, ast.Name) and decorator.id in (
            "classmethod", "staticmethod",
        ):
            return True
    return False
