"""The worker↔worker mesh data plane.

Hub-and-spoke relaying made n=64 pi_ba *anti-scale* (2.0s on one
worker, 2.8s on four): every party frame crossed the supervisor twice
as a pickled control message.  :class:`MeshRouter` moves party traffic
point-to-point — each worker opens a listener via
:func:`repro.net.bind.open_listener`, learns its peers' addresses from
a supervisor-brokered ``peers`` broadcast, and ships each round's
frames for each peer as one binary **train**
(:mod:`repro.cluster.meshwire`), chunked above 32 MiB.

The router owns exactly the properties the differential suite pins:

* **barrier** — an empty train is still a train; ``wait_round`` blocks
  until every peer's train for the round arrived (or was already
  collected), so round lockstep survives without the supervisor seeing
  a single frame;
* **dedup by send-seq** — every send attempt bumps a per-link
  ``train_seq``; receivers keep at most one train per (peer, round),
  and the assembler discards stale attempts and supersedes torn
  half-trains, so a link drop mid-train followed by a redial never
  duplicates (or double-charges) a frame;
* **retained-train replay** — senders retain each round's encoded body
  until the supervisor's checkpoint barrier says ``trim``; the link
  handshake exchanges consumed-round watermarks and resends everything
  the other side is missing, which transparently covers startup
  ordering, redials, *and* a SIGKILLed worker rejoining from its RPCK1
  checkpoint;
* **liveness signals** — link failures are queued for the worker to
  report as ``peerdown`` control messages, and ``progress()`` exposes a
  moved-bytes counter the heartbeat ships home so the supervisor can
  tell "dead" from "slow shipping a huge body".

Dial direction is fixed — worker *i* dials every peer *j < i* and
accepts from every *j > i* — so reconnection responsibility is never
ambiguous.  No wall-clock reads: all pacing uses event waits.
"""

# lint: file-allow[ACC001] reason=the mesh data plane is the sanctioned
# transport seam itself; its bytes are charged centrally when the
# supervisor replays worker round digests into CommunicationMetrics.

from __future__ import annotations

import socket
import struct
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import ClusterError, SerializationError
from repro.net.bind import open_listener
from repro.runtime.transport import Frame
from repro.cluster.meshwire import (
    KIND_HELLO,
    KIND_TRAIN,
    MESH_CHUNK_BYTES,
    TrainAssembler,
    decode_chunk,
    decode_train_body,
    encode_hello,
    encode_train_body,
    split_train,
)

_LENGTH = struct.Struct(">I")
#: One framed record is one chunk; anything larger is garbage framing.
_MAX_RECORD = MESH_CHUNK_BYTES + 4096

#: Redial pacing (seconds) after a link drops: immediate, then backoff.
_DIAL_DELAYS = (0.0, 0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2)
_DIAL_TIMEOUT = 10.0


@dataclass(frozen=True)
class LinkFailure:
    """One observed link problem, for the worker to report home."""

    peer: int
    reason: str


@dataclass
class _Link:
    """One live TCP connection to a peer."""

    sock: socket.socket
    send_lock: threading.Lock = field(default_factory=threading.Lock)


def _read_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` if the link dies first."""
    pieces = []
    remaining = count
    while remaining:
        try:
            piece = sock.recv(min(remaining, 1 << 20))
        except OSError:
            return None
        if not piece:
            return None
        pieces.append(piece)
        remaining -= len(piece)
    return b"".join(pieces)


def _read_record(sock: socket.socket) -> Optional[bytes]:
    """Read one length-prefixed mesh record; ``None`` on link death."""
    prefix = _read_exact(sock, _LENGTH.size)
    if prefix is None:
        return None
    (length,) = _LENGTH.unpack(prefix)
    if length > _MAX_RECORD:
        raise SerializationError(
            f"mesh record length {length} exceeds {_MAX_RECORD}"
        )
    return _read_exact(sock, length)


class MeshRouter:
    """Point-to-point frame transport between cluster workers.

    Thread model: one accept thread, one receiver thread per live link,
    short-lived dial threads.  All shared state lives under one
    condition variable; per-peer locks serialize sends against
    handshake resends so a train is never interleaved with its own
    replay.
    """

    def __init__(
        self,
        worker_id: int,
        host: str = "127.0.0.1",
        first_round: int = 0,
        chunk_bytes: int = MESH_CHUNK_BYTES,
    ) -> None:
        self.worker_id = worker_id
        self._host = host
        self._first_round = first_round
        self._chunk_bytes = chunk_bytes
        self._closed = threading.Event()

        self._cond = threading.Condition()
        self._links: Dict[int, _Link] = {}
        self._peers: Dict[int, Tuple[str, int]] = {}
        self._consumed: Dict[int, int] = {}
        self._inbox: Dict[Tuple[int, int], List[Frame]] = {}
        self._retained: Dict[int, Dict[int, bytes]] = {}
        self._assemblers: Dict[int, TrainAssembler] = {}
        self._train_seq: Dict[int, int] = {}
        self._peer_locks: Dict[int, threading.Lock] = {}
        self._dialing: Set[int] = set()
        self._failures: List[LinkFailure] = []
        self._progress = 0

        listener, port = open_listener(host=host, port=0)
        self._listener = listener
        self.address: Tuple[str, int] = (host, port)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"mesh-accept-{worker_id}",
            daemon=True,
        )
        self._accept_thread.start()

    # -- shared-state helpers ------------------------------------------------

    def _peer_lock(self, peer: int) -> threading.Lock:
        with self._cond:
            lock = self._peer_locks.get(peer)
            if lock is None:
                lock = self._peer_locks[peer] = threading.Lock()
            return lock

    def _watermark(self, peer: int) -> int:
        with self._cond:
            return self._consumed.setdefault(peer, self._first_round - 1)

    def _bump_progress(self, count: int) -> None:
        with self._cond:
            self._progress += count

    def _record_failure(self, peer: int, reason: str) -> None:
        with self._cond:
            self._failures.append(LinkFailure(peer=peer, reason=reason))
            self._cond.notify_all()

    # -- public API ----------------------------------------------------------

    def update_peers(self, addresses: Dict[int, Tuple[str, int]]) -> None:
        """Absorb a supervisor ``peers`` broadcast and (re)dial.

        Only peers with an id *below* ours are dialed; higher peers dial
        us.  A changed address (a respawned worker's fresh listener)
        drops the stale link so the dial thread reconnects and the
        handshake replays whatever the respawn is missing.
        """
        to_dial: List[int] = []
        with self._cond:
            for peer, address in addresses.items():
                if peer == self.worker_id:
                    continue
                known = self._peers.get(peer)
                self._peers[peer] = address
                self._consumed.setdefault(peer, self._first_round - 1)
                if peer >= self.worker_id:
                    continue
                link = self._links.get(peer)
                if known is not None and known != address and link:
                    del self._links[peer]
                    _close_quietly(link.sock)
                    link = None
                if link is None and peer not in self._dialing:
                    self._dialing.add(peer)
                    to_dial.append(peer)
        for peer in to_dial:
            thread = threading.Thread(
                target=self._dial_loop, args=(peer,),
                name=f"mesh-dial-{self.worker_id}-{peer}", daemon=True,
            )
            thread.start()

    def send_train(self, peer: int, round_index: int,
                   frames: List[Frame]) -> None:
        """Retain and (if the link is up) ship one round's train.

        Retention happens unconditionally *before* any socket write, so
        a crash mid-send leaves the train replayable; the handshake's
        watermark exchange delivers it after any reconnect.
        """
        body = encode_train_body(frames)
        with self._peer_lock(peer):
            with self._cond:
                self._retained.setdefault(peer, {})[round_index] = body
                link = self._links.get(peer)
            if link is not None:
                self._ship(peer, link, round_index, body)

    def wait_round(self, round_index: int, peers: Iterable[int],
                   timeout: Optional[float] = None) -> bool:
        """Block until every peer's train for ``round_index`` arrived."""
        peer_list = list(peers)

        def ready() -> bool:
            return all(
                self._consumed.get(p, self._first_round - 1) >= round_index
                or (p, round_index) in self._inbox
                for p in peer_list
            )

        with self._cond:
            return self._cond.wait_for(ready, timeout=timeout)

    def collect_round(self, round_index: int,
                      peers: Iterable[int]) -> List[Frame]:
        """Pop and return the round's frames, in sorted-peer order."""
        frames: List[Frame] = []
        with self._cond:
            for peer in sorted(peers):
                batch = self._inbox.pop((peer, round_index), None)
                if batch is None and self._consumed.get(
                    peer, self._first_round - 1
                ) < round_index:
                    raise ClusterError(
                        f"collect_round({round_index}): no train from "
                        f"peer {peer}"
                    )
                if self._consumed.get(
                    peer, self._first_round - 1
                ) < round_index:
                    self._consumed[peer] = round_index
                frames.extend(batch or [])
        return frames

    def trim(self, below: int) -> None:
        """Drop retained trains for rounds below a durable barrier."""
        with self._cond:
            for rounds in self._retained.values():
                for round_index in [r for r in rounds if r < below]:
                    del rounds[round_index]
            for assembler in self._assemblers.values():
                assembler.trim_below(below)

    def drain_failures(self) -> List[LinkFailure]:
        with self._cond:
            failures, self._failures = self._failures, []
            return failures

    def progress(self) -> int:
        """Monotonic moved-bytes counter (sent + received)."""
        with self._cond:
            return self._progress

    def close(self) -> None:
        self._closed.set()
        _close_quietly(self._listener)
        with self._cond:
            links = list(self._links.values())
            self._links.clear()
            self._cond.notify_all()
        for link in links:
            _close_quietly(link.sock)

    # -- link establishment --------------------------------------------------

    def _dial_loop(self, peer: int) -> None:
        pacer = threading.Event()
        reason = "no address for peer"
        for delay in _DIAL_DELAYS:
            if delay:
                pacer.wait(delay)
            if self._closed.is_set():
                return
            with self._cond:
                address = self._peers.get(peer)
                if self._links.get(peer) is not None:
                    self._dialing.discard(peer)
                    return
            if address is None:
                continue
            try:
                sock = socket.create_connection(
                    address, timeout=_DIAL_TIMEOUT
                )
            except OSError as exc:
                reason = f"dial {address[0]}:{address[1]}: {exc}"
                continue
            try:
                self._handshake(peer, sock, dialer=True)
                return
            except (OSError, SerializationError, ClusterError) as exc:
                reason = f"handshake with peer {peer}: {exc}"
                _close_quietly(sock)
        with self._cond:
            self._dialing.discard(peer)
        self._record_failure(peer, f"dial attempts exhausted: {reason}")

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return
            try:
                sock.settimeout(_DIAL_TIMEOUT)
                record = _read_record(sock)
                if record is None:
                    _close_quietly(sock)
                    continue
                hello = decode_chunk(record)
                if hello.kind != KIND_HELLO:
                    raise SerializationError(
                        "mesh connection did not open with a hello"
                    )
                self._bump_progress(len(record) + _LENGTH.size)
                self._handshake(
                    hello.src_worker, sock, dialer=False,
                    peer_have=hello.hello_have(),
                )
            except (OSError, SerializationError, ClusterError):
                _close_quietly(sock)

    def _handshake(
        self,
        peer: int,
        sock: socket.socket,
        dialer: bool,
        peer_have: Optional[int] = None,
    ) -> None:
        """Exchange hellos, install the link, replay missing trains."""
        sock.settimeout(_DIAL_TIMEOUT)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        hello = encode_hello(
            self.worker_id, peer, self._watermark(peer)
        )
        with self._peer_lock(peer):
            sock.sendall(_LENGTH.pack(len(hello)) + hello)
            self._bump_progress(len(hello) + _LENGTH.size)
            if dialer:
                record = _read_record(sock)
                if record is None:
                    raise ClusterError(
                        f"peer {peer} closed during handshake"
                    )
                reply = decode_chunk(record)
                if reply.kind != KIND_HELLO or reply.src_worker != peer:
                    raise SerializationError(
                        "mesh handshake reply is not the peer's hello"
                    )
                self._bump_progress(len(record) + _LENGTH.size)
                peer_have = reply.hello_have()
            assert peer_have is not None
            sock.settimeout(None)
            link = _Link(sock=sock)
            with self._cond:
                stale = self._links.get(peer)
                self._links[peer] = link
                if dialer:
                    self._dialing.discard(peer)
                retained = sorted(
                    (r, body)
                    for r, body in self._retained.get(peer, {}).items()
                    if r > peer_have
                )
            if stale is not None and stale is not link:
                _close_quietly(stale.sock)
            receiver = threading.Thread(
                target=self._receive_loop, args=(peer, link),
                name=f"mesh-recv-{self.worker_id}-{peer}", daemon=True,
            )
            receiver.start()
            for round_index, body in retained:
                self._ship(peer, link, round_index, body)

    # -- data movement -------------------------------------------------------

    def _ship(self, peer: int, link: _Link, round_index: int,
              body: bytes) -> None:
        """Send one train (caller holds the peer lock)."""
        with self._cond:
            seq = self._train_seq.get(peer, 0) + 1
            self._train_seq[peer] = seq
        records = split_train(
            self.worker_id, peer, round_index, seq, body,
            chunk_bytes=self._chunk_bytes,
        )
        try:
            with link.send_lock:
                for record in records:
                    link.sock.sendall(_LENGTH.pack(len(record)) + record)
                    self._bump_progress(len(record) + _LENGTH.size)
        except OSError as exc:
            self._on_link_dead(
                peer, link, f"send for round {round_index}: {exc}"
            )

    def _receive_loop(self, peer: int, link: _Link) -> None:
        with self._cond:
            assembler = self._assemblers.get(peer)
            if assembler is None:
                assembler = self._assemblers[peer] = TrainAssembler()
        while True:
            try:
                record = _read_record(link.sock)
            except SerializationError as exc:
                self._on_link_dead(peer, link, f"bad framing: {exc}")
                return
            if record is None:
                self._on_link_dead(peer, link, "connection lost")
                return
            self._bump_progress(len(record) + _LENGTH.size)
            try:
                chunk = decode_chunk(record)
                if chunk.kind != KIND_TRAIN:
                    continue  # late hello after link replacement
                if chunk.dst_worker != self.worker_id:
                    raise SerializationError(
                        f"train addressed to worker {chunk.dst_worker} "
                        f"arrived at worker {self.worker_id}"
                    )
                with self._cond:
                    done = assembler.add(chunk)
                if done is None:
                    continue
                round_index, body = done
                frames = decode_train_body(body)
            except SerializationError as exc:
                self._on_link_dead(peer, link, f"corrupt train: {exc}")
                return
            with self._cond:
                if (
                    round_index > self._consumed.setdefault(
                        peer, self._first_round - 1
                    )
                    and (peer, round_index) not in self._inbox
                ):
                    self._inbox[(peer, round_index)] = frames
                    self._cond.notify_all()

    def _on_link_dead(self, peer: int, link: _Link, reason: str) -> None:
        if self._closed.is_set():
            return
        redial = False
        with self._cond:
            if self._links.get(peer) is link:
                del self._links[peer]
                redial = (
                    peer < self.worker_id and peer not in self._dialing
                )
                if redial:
                    self._dialing.add(peer)
        _close_quietly(link.sock)
        self._record_failure(peer, reason)
        if redial:
            thread = threading.Thread(
                target=self._dial_loop, args=(peer,),
                name=f"mesh-redial-{self.worker_id}-{peer}", daemon=True,
            )
            thread.start()


def _close_quietly(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass


__all__ = ["LinkFailure", "MeshRouter"]
