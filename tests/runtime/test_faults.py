"""Fault injection semantics: crash, delay, partition, duplication,
reorder — all seeded and reproducible."""

from typing import List, Sequence

import pytest

from repro.errors import ConfigurationError
from repro.net.adversary import prefix_corruption
from repro.net.party import Envelope, Party
from repro.runtime import (
    FaultPlan,
    LinkDelay,
    TraceRecorder,
    adversarial_schedule,
    crash_corrupted,
    partition_halves,
    run_parties,
    run_phase_king_runtime,
)
from repro.runtime.faults import Partition
from repro.utils.randomness import Randomness


class Recorder(Party):
    """Logs (round, sender, payload) for every delivery; halts on demand."""

    def __init__(self, party_id: int, halt_round: int = 6) -> None:
        super().__init__(party_id)
        self.log: List[tuple] = []
        self.halt_round = halt_round

    def step(self, round_index: int, inbox: Sequence[Envelope]) -> List[Envelope]:
        for envelope in inbox:
            self.log.append((round_index, envelope.sender, envelope.payload))
        if round_index >= self.halt_round:
            return self.halt()
        return []


class Beacon(Party):
    """Sends one tagged message to everyone else each round."""

    def __init__(self, party_id: int, peers: Sequence[int], halt_round: int = 6):
        super().__init__(party_id)
        self.peers = [p for p in peers if p != party_id]
        self.halt_round = halt_round

    def step(self, round_index: int, inbox: Sequence[Envelope]) -> List[Envelope]:
        if round_index >= self.halt_round:
            return self.halt()
        return [
            self.send(peer, b"r%d" % round_index) for peer in self.peers
        ]


class TestCrash:
    def test_crashed_party_goes_silent(self):
        recorder = Recorder(1)
        beacon = Beacon(0, [0, 1])
        run_parties(
            [beacon, recorder],
            fault_plan=FaultPlan(crashes={0: 2}),
            until=[1],
            max_rounds=10,
        )
        rounds_received = sorted({r for r, _, _ in recorder.log})
        # Sends from rounds 0 and 1 arrive (rounds 1, 2); nothing later.
        assert rounds_received == [1, 2]

    def test_crash_traced_once(self):
        trace = TraceRecorder()
        run_parties(
            [Beacon(0, [0, 1]), Recorder(1)],
            fault_plan=FaultPlan(crashes={0: 1}),
            until=[1],
            trace=trace,
            max_rounds=10,
        )
        crashes = [
            e for e in trace.events_of(0) if e["kind"] == "crash"
        ]
        assert len(crashes) == 1
        assert crashes[0]["round"] == 1

    def test_crash_corrupted_composes_with_corruption_plan(self):
        plan = prefix_corruption(9, 2)
        faults = crash_corrupted(plan, Randomness(3), max_round=5)
        assert set(faults.crashes) == {0, 1}
        assert all(0 <= r <= 5 for r in faults.crashes.values())
        # Honest parties never crash.
        assert all(not faults.is_crashed(p, 10_000) for p in plan.honest)


class TestDelay:
    def test_link_delay_shifts_delivery(self):
        recorder = Recorder(1)
        plan = FaultPlan(delays=[LinkDelay(sender=0, recipient=1, rounds=2)])
        run_parties(
            [Beacon(0, [0, 1], halt_round=1), recorder],
            fault_plan=plan,
            until=[1],
            max_rounds=10,
        )
        # Sent in round 0, normally due round 1, delayed to round 3.
        assert recorder.log == [(3, 0, b"r0")]

    def test_delay_window(self):
        recorder = Recorder(1)
        plan = FaultPlan(
            delays=[LinkDelay(0, 1, rounds=3, first_round=1, last_round=1)]
        )
        run_parties(
            [Beacon(0, [0, 1], halt_round=2), recorder],
            fault_plan=plan,
            until=[1],
            max_rounds=12,
        )
        assert (1, 0, b"r0") in recorder.log          # round 0: on time
        assert (5, 0, b"r1") in recorder.log          # round 1: +3 rounds

    def test_random_delays_are_reproducible(self):
        logs = []
        for _ in range(2):
            recorder = Recorder(1, halt_round=12)
            plan = FaultPlan(
                random_delay_probability=0.5,
                random_delay_max=3,
                rng=Randomness(11),
            )
            run_parties(
                [Beacon(0, [0, 1], halt_round=5), recorder],
                fault_plan=plan,
                until=[1],
                max_rounds=20,
            )
            logs.append(recorder.log)
        assert logs[0] == logs[1]


class TestPartition:
    def test_partition_drops_cross_links_and_charges_nothing(self):
        recorder_far = Recorder(1, halt_round=8)
        recorder_near = Recorder(2, halt_round=8)
        plan = partition_halves([0, 1, 2, 3], first_round=0, last_round=3)
        # groups: {0, 1} vs {2, 3}; beacon 0 reaches 1 but not 2.
        result = run_parties(
            [Beacon(0, [0, 1, 2, 3], halt_round=4), recorder_far,
             recorder_near, Recorder(3, halt_round=8)],
            fault_plan=plan,
            until=[1, 2, 3],
            max_rounds=12,
        )
        senders_to_1 = {s for _, s, _ in recorder_far.log}
        senders_to_2 = {s for _, s, _ in recorder_near.log}
        assert senders_to_1 == {0}
        assert senders_to_2 == set()  # cut severed for the whole send window
        # Dropped messages are never charged.
        assert result.metrics.tally_of(2).bits_received == 0

    def test_partition_window_heals(self):
        recorder = Recorder(2, halt_round=8)
        plan = FaultPlan(
            partitions=[
                Partition(
                    group_a=frozenset({0}),
                    group_b=frozenset({2}),
                    first_round=0,
                    last_round=1,
                )
            ]
        )
        run_parties(
            [Beacon(0, [0, 2], halt_round=4), recorder],
            fault_plan=plan,
            until=[2],
            max_rounds=12,
        )
        rounds = sorted(r for r, _, _ in recorder.log)
        assert rounds == [3, 4]  # only rounds 2 and 3 sends survive

    def test_drop_traced(self):
        trace = TraceRecorder()
        plan = partition_halves([0, 1], first_round=0, last_round=10)
        run_parties(
            [Beacon(0, [0, 1], halt_round=2), Recorder(1, halt_round=3)],
            fault_plan=plan,
            until=[1],
            trace=trace,
            max_rounds=8,
        )
        assert any(e["kind"] == "drop" for e in trace.events_of(0))


class TestDuplication:
    def test_duplicates_delivered_but_charged_once(self):
        recorder = Recorder(1, halt_round=4)
        plan = FaultPlan(duplicate_probability=1.0, rng=Randomness(1))
        result = run_parties(
            [Beacon(0, [0, 1], halt_round=1), recorder],
            fault_plan=plan,
            until=[1],
            max_rounds=8,
        )
        assert recorder.log == [(1, 0, b"r0"), (1, 0, b"r0")]
        # The wire charge covers the message once; the duplicate is the
        # delivery layer's artifact.
        assert result.metrics.tally_of(1).messages_received == 1


class TestReorder:
    def test_reorder_permutes_but_preserves_multiset(self):
        n = 6
        plain = Recorder(0, halt_round=3)
        parties = [plain] + [Beacon(i, range(n), halt_round=2) for i in range(1, n)]
        run_parties(parties, until=[0], max_rounds=8)
        canonical = [entry for entry in plain.log if entry[0] == 1]

        shuffled = Recorder(0, halt_round=3)
        parties = [shuffled] + [Beacon(i, range(n), halt_round=2) for i in range(1, n)]
        run_parties(
            parties,
            fault_plan=FaultPlan(reorder=True, rng=Randomness(5)),
            until=[0],
            max_rounds=8,
        )
        permuted = [entry for entry in shuffled.log if entry[0] == 1]
        assert sorted(permuted) == sorted(canonical)
        assert permuted != canonical  # the schedule really moved

    def test_reorder_reproducible(self):
        logs = []
        for _ in range(2):
            recorder = Recorder(0, halt_round=3)
            parties = [recorder] + [
                Beacon(i, range(5), halt_round=2) for i in range(1, 5)
            ]
            run_parties(
                parties,
                fault_plan=FaultPlan(reorder=True, rng=Randomness(8)),
                until=[0],
                max_rounds=8,
            )
            logs.append(recorder.log)
        assert logs[0] == logs[1]


class TestValidation:
    def test_random_features_require_rng(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(reorder=True)
        with pytest.raises(ConfigurationError):
            FaultPlan(duplicate_probability=0.5)

    def test_probability_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(duplicate_probability=1.5, rng=Randomness(0))

    def test_random_delay_needs_max(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(random_delay_probability=0.2, rng=Randomness(0))

    def test_adversarial_schedule_builder(self):
        plan = adversarial_schedule(Randomness(4))
        assert plan.reorder and plan.duplicate_probability > 0


def test_phase_king_survives_hostile_schedule():
    """End-to-end: phase-king under crash + reorder + duplication + delay
    still reaches agreement among surviving honest parties."""
    n = 10
    inputs = {i: i % 2 for i in range(n)}
    byzantine = [4, 8]
    faults = FaultPlan(
        crashes={4: 1},
        delays=[LinkDelay(0, 1, rounds=1, first_round=0, last_round=2)],
        reorder=True,
        duplicate_probability=0.1,
        rng=Randomness(21),
    )
    outputs, _ = run_phase_king_runtime(inputs, byzantine, fault_plan=faults)
    assert len(set(outputs.values())) == 1
