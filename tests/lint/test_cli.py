"""End-to-end CLI behaviour: subcommands, formats, and exit codes."""

import json

import pytest

from repro.lint.cli import cmd_lint
from tests.lint.conftest import FIXTURES


@pytest.fixture
def tree(tmp_path):
    """A minimal repo-shaped tree with one DET002 violation."""
    (tmp_path / "pyproject.toml").write_text("[project]\n", encoding="utf-8")
    src = tmp_path / "src" / "protocols"
    src.mkdir(parents=True)
    (src / "proto.py").write_text(
        "import time\n\n\ndef run():\n    return time.time()\n",
        encoding="utf-8",
    )
    return tmp_path


def test_check_exits_nonzero_on_new_violation(tree, capsys):
    code = cmd_lint(["check", "--root", str(tree)])
    out = capsys.readouterr().out
    assert code == 1
    assert "DET002" in out
    assert "protocols/proto.py" in out.replace("\\", "/")


def test_baseline_then_check_passes(tree, capsys):
    assert cmd_lint(["baseline", "--root", str(tree)]) == 0
    assert (tree / "lint-baseline.json").exists()
    code = cmd_lint(["check", "--root", str(tree)])
    out = capsys.readouterr().out
    assert code == 0
    assert "baselined" in out


def test_no_baseline_flag_resurfaces_legacy_debt(tree, capsys):
    cmd_lint(["baseline", "--root", str(tree)])
    capsys.readouterr()
    assert cmd_lint(["check", "--root", str(tree), "--no-baseline"]) == 1


def test_check_json_format_and_output_file(tree, tmp_path, capsys):
    report_path = tmp_path / "lint-report.json"
    code = cmd_lint([
        "check", "--root", str(tree),
        "--format", "json", "--output", str(report_path),
    ])
    assert code == 1
    payload = json.loads(report_path.read_text(encoding="utf-8"))
    assert payload["schema"] == "repro-lint-report/1"
    assert payload["exit_code"] == 1
    assert any(v["rule"] == "DET002" for v in payload["new"])
    # stdout only carries the pointer line, not the report body
    out = capsys.readouterr().out
    assert "lint report ->" in out


def test_rules_subset_flag(tree, capsys):
    code = cmd_lint(["check", "--root", str(tree), "--rules", "EXC001"])
    capsys.readouterr()
    assert code == 0  # the DET002 site is invisible to an EXC001-only run


def test_unknown_rule_id_is_usage_error(tree, capsys):
    code = cmd_lint(["check", "--root", str(tree), "--rules", "NOPE999"])
    out = capsys.readouterr().out
    assert code == 2
    assert "unknown rule" in out


def test_explain_prints_rationale(capsys):
    assert cmd_lint(["explain", "DET002"]) == 0
    out = capsys.readouterr().out
    assert "DET002" in out
    assert "reason=" in out  # shows the suppression recipe


def test_explain_unknown_rule(capsys):
    assert cmd_lint(["explain", "ZZZ999"]) == 2


def test_rules_lists_every_rule(capsys):
    assert cmd_lint(["rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "DET002", "ACC001", "OBS001",
                    "ASY001", "EXC001", "SER001", "LNT000"):
        assert rule_id in out


def test_no_subcommand_is_usage_error(capsys):
    assert cmd_lint([]) == 2


def test_baseline_prune_drops_burned_down_debt(tree, capsys):
    cmd_lint(["baseline", "--root", str(tree)])
    # Burn the debt down: the violating file becomes clean.
    proto = tree / "src" / "protocols" / "proto.py"
    proto.write_text("def run():\n    return 0\n", encoding="utf-8")
    capsys.readouterr()
    assert cmd_lint(["baseline", "--root", str(tree), "--prune"]) == 0
    out = capsys.readouterr().out
    assert "pruned 1 stale entry" in out
    payload = json.loads(
        (tree / "lint-baseline.json").read_text(encoding="utf-8")
    )
    assert payload["entries"] == []
    # Idempotent: a second prune removes nothing.
    assert cmd_lint(["baseline", "--root", str(tree), "--prune"]) == 0
    assert "pruned 0 stale entries" in capsys.readouterr().out


def test_graph_exports_schema_versioned_json(tree, tmp_path, capsys):
    out_path = tmp_path / "callgraph.json"
    code = cmd_lint([
        "graph", "--root", str(tree), "--output", str(out_path),
    ])
    assert code == 0
    assert "call graph ->" in capsys.readouterr().out
    payload = json.loads(out_path.read_text(encoding="utf-8"))
    assert payload["schema"] == "repro-lint-callgraph/1"
    assert [m["name"] for m in payload["modules"]] == ["protocols.proto"]
    assert any(f["name"] == "run" for f in payload["functions"])
    # The cache file landed beside the tree root and is reused.
    assert (tree / ".lint-cache.json").exists()
    assert cmd_lint([
        "graph", "--root", str(tree), "--output", str(out_path),
    ]) == 0


def test_graph_no_cache_writes_nothing(tree, capsys):
    assert cmd_lint(["graph", "--root", str(tree), "--no-cache"]) == 0
    assert not (tree / ".lint-cache.json").exists()
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro-lint-callgraph/1"


def test_check_on_fixture_tree_with_explicit_paths(capsys):
    code = cmd_lint([
        "check", "--root", str(FIXTURES),
        "--no-baseline", "protocols/det002_ok.py",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "suppressed" in out
