"""Prime-field arithmetic GF(p).

The coin-tossing substrate (Chor et al. VSS, §3.1 of the paper) needs
Shamir secret sharing over a field whose size matches the security
parameter, and the Feldman commitments need the field to be the scalar
field of the secp256k1 group.  Elements are immutable value objects so
they can key dictionaries and be compared in tests.
"""

from __future__ import annotations

from typing import Iterator, List, Union

from repro.errors import ConfigurationError

# The scalar-field order of secp256k1; Feldman VSS commits shares in the
# group, so the default Shamir field must match the group order.
SECP256K1_ORDER = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141

IntoElement = Union[int, "FieldElement"]


def _is_probable_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for the bases that cover 64-bit inputs,
    plus a probabilistic tail for larger moduli."""
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for p in small_primes:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in small_primes:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


class PrimeField:
    """The field GF(p) for a prime modulus p."""

    def __init__(self, modulus: int, check_prime: bool = True) -> None:
        if modulus < 2:
            raise ConfigurationError(f"field modulus must be >= 2, got {modulus}")
        if check_prime and not _is_probable_prime(modulus):
            raise ConfigurationError(f"field modulus {modulus} is not prime")
        self.modulus = modulus

    # -- construction -------------------------------------------------------

    def element(self, value: IntoElement) -> "FieldElement":
        """Coerce an int (or element of this field) into a field element."""
        if isinstance(value, FieldElement):
            if value.field is not self and value.field.modulus != self.modulus:
                raise ConfigurationError("element belongs to a different field")
            return value
        return FieldElement(self, value % self.modulus)

    def zero(self) -> "FieldElement":
        """The additive identity."""
        return FieldElement(self, 0)

    def one(self) -> "FieldElement":
        """The multiplicative identity."""
        return FieldElement(self, 1)

    def random_element(self, rng) -> "FieldElement":
        """A uniform element, drawn from a :class:`Randomness` source."""
        return FieldElement(self, rng.random_int(self.modulus))

    def elements_range(self, count: int) -> Iterator["FieldElement"]:
        """The elements 1..count (Shamir evaluation points)."""
        if count >= self.modulus:
            raise ConfigurationError("not enough distinct field points")
        return (FieldElement(self, i) for i in range(1, count + 1))

    # -- identity -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimeField) and other.modulus == self.modulus

    def __hash__(self) -> int:
        return hash(("PrimeField", self.modulus))

    def __repr__(self) -> str:
        return f"PrimeField(modulus=0x{self.modulus:x})"


class FieldElement:
    """An immutable element of a :class:`PrimeField`."""

    __slots__ = ("field", "value")

    def __init__(self, field: PrimeField, value: int) -> None:
        object.__setattr__(self, "field", field)
        object.__setattr__(self, "value", value % field.modulus)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("FieldElement is immutable")

    # -- arithmetic ----------------------------------------------------------

    def _coerce(self, other: IntoElement) -> "FieldElement":
        return self.field.element(other)

    def __add__(self, other: IntoElement) -> "FieldElement":
        rhs = self._coerce(other)
        return FieldElement(self.field, self.value + rhs.value)

    __radd__ = __add__

    def __sub__(self, other: IntoElement) -> "FieldElement":
        rhs = self._coerce(other)
        return FieldElement(self.field, self.value - rhs.value)

    def __rsub__(self, other: IntoElement) -> "FieldElement":
        return self._coerce(other) - self

    def __mul__(self, other: IntoElement) -> "FieldElement":
        rhs = self._coerce(other)
        return FieldElement(self.field, self.value * rhs.value)

    __rmul__ = __mul__

    def __neg__(self) -> "FieldElement":
        return FieldElement(self.field, -self.value)

    def inverse(self) -> "FieldElement":
        """Multiplicative inverse; raises on zero."""
        if self.value == 0:
            raise ZeroDivisionError("zero has no multiplicative inverse")
        return FieldElement(self.field, pow(self.value, -1, self.field.modulus))

    def __truediv__(self, other: IntoElement) -> "FieldElement":
        return self * self._coerce(other).inverse()

    def __rtruediv__(self, other: IntoElement) -> "FieldElement":
        return self._coerce(other) / self

    def __pow__(self, exponent: int) -> "FieldElement":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        return FieldElement(self.field, pow(self.value, exponent, self.field.modulus))

    # -- identity -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            return self.value == other % self.field.modulus
        return (
            isinstance(other, FieldElement)
            and other.field == self.field
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.field.modulus, self.value))

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"FieldElement({self.value} mod 0x{self.field.modulus:x})"


def default_field() -> PrimeField:
    """The secp256k1 scalar field, shared by Shamir/VSS and Feldman."""
    return PrimeField(SECP256K1_ORDER, check_prime=False)


def batch_values(elements: List[FieldElement]) -> List[int]:
    """Extract raw integer values (testing/serialization helper)."""
    return [element.value for element in elements]
