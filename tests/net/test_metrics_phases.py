"""Phase attribution on the communication ledger + tally_of regression."""

from repro.net.metrics import CommunicationMetrics, PhaseBreakdown
from repro.obs.spans import UNATTRIBUTED, span


class TestPhaseAttribution:
    def test_charges_outside_spans_are_unattributed(self):
        metrics = CommunicationMetrics()
        metrics.record_message(0, 1, 10)
        assert metrics.bits_by_phase(0) == {UNATTRIBUTED: 10}
        assert metrics.bits_by_phase(1) == {UNATTRIBUTED: 10}

    def test_innermost_span_wins(self):
        metrics = CommunicationMetrics()
        with span("outer"):
            metrics.record_message(0, 1, 8)
            with span("inner"):
                metrics.record_message(0, 1, 4)
        assert metrics.bits_by_phase(0) == {"outer": 8, "inner": 4}
        assert metrics.phases == ["inner", "outer"]

    def test_both_endpoints_charged(self):
        # bits_by_phase follows the bits_total convention: a transfer
        # contributes its size to the sender AND the recipient.
        metrics = CommunicationMetrics()
        with span("p"):
            metrics.record_message(3, 7, 100)
        assert metrics.bits_by_phase(3) == {"p": 100}
        assert metrics.bits_by_phase(7) == {"p": 100}
        assert metrics.tally_of(3).bits_total == 100

    def test_functionality_charges_attributed_per_participant(self):
        metrics = CommunicationMetrics()
        with span("committee-ba"):
            metrics.charge_functionality([0, 1, 2], 64, 2)
        for party in (0, 1, 2):
            assert metrics.bits_by_phase(party) == {"committee-ba": 64}
            assert metrics.tally_of(party).bits_total == 64

    def test_sum_of_phases_equals_bits_total(self):
        metrics = CommunicationMetrics()
        with span("a"):
            metrics.record_message(0, 1, 11)
        with span("b"):
            metrics.record_message(1, 0, 7)
            metrics.charge_functionality([0, 1], 33, 1)
        metrics.record_message(0, 1, 5)
        for party in (0, 1):
            assert sum(metrics.bits_by_phase(party).values()) == (
                metrics.tally_of(party).bits_total
            )

    def test_breakdown_aggregates(self):
        metrics = CommunicationMetrics()
        with span("p"):
            metrics.record_message(0, 1, 10)
            metrics.record_message(0, 2, 30)
        breakdown = metrics.phase_breakdown()
        assert breakdown["p"] == PhaseBreakdown(
            phase="p",
            total_bits=80,  # 40 at party 0, 10 at 1, 30 at 2
            max_bits_per_party=40,
            parties=3,
            messages=2,
        )

    def test_bits_by_phase_returns_a_copy(self):
        metrics = CommunicationMetrics()
        with span("p"):
            metrics.record_message(0, 1, 10)
        view = metrics.bits_by_phase(0)
        view["p"] = 0
        assert metrics.bits_by_phase(0) == {"p": 10}

    def test_unknown_party_has_empty_breakdown(self):
        assert CommunicationMetrics().bits_by_phase(42) == {}

    def test_aggregates_unchanged_by_attribution(self):
        # The phase dimension is additive-only: snapshots of a spanned
        # and an unspanned run of the same traffic are identical.
        def run(with_span_):
            metrics = CommunicationMetrics()
            if with_span_:
                with span("p"):
                    metrics.record_message(0, 1, 10)
            else:
                metrics.record_message(0, 1, 10)
            metrics.end_round()
            return metrics.snapshot()

        assert run(True) == run(False)


class TestTallyOfRegression:
    def test_unknown_party_phantom_tally_is_disconnected(self):
        # Historically tally_of() for an unknown party returned a fresh
        # mutable PartyTally that was NOT stored in the ledger; mutating
        # it silently changed nothing, while mutating a known party's
        # returned tally corrupted the ledger.  Both are now copies.
        metrics = CommunicationMetrics()
        phantom = metrics.tally_of(9)
        phantom.bits_sent += 1_000
        assert metrics.tally_of(9).bits_sent == 0
        assert metrics.total_bits == 0

    def test_known_party_tally_is_a_defensive_copy(self):
        metrics = CommunicationMetrics()
        metrics.record_message(0, 1, 10)
        view = metrics.tally_of(0)
        view.bits_sent += 1_000
        view.peers_sent_to.add(99)
        assert metrics.tally_of(0).bits_sent == 10
        assert metrics.tally_of(0).peers_sent_to == {1}
        assert metrics.max_bits_per_party == 10
