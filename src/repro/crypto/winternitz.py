"""Winternitz one-time signatures (W-OTS) with oblivious key generation.

A drop-in alternative to Lamport for the OWF-based SRDS: instead of one
preimage pair per message bit, W-OTS signs ``w``-bit chunks with hash
chains of length ``2^w``, shrinking signatures by a factor of ~``w`` at
the cost of ``2^w / 2`` extra hash evaluations per chunk.  With the
standard checksum chunks appended, revealing a deeper chain position for
any message chunk forces a *shallower* position in some checksum chunk,
which is what prevents forgery-by-chain-extension.

Like the Lamport module, key generation is deterministic from a seed and
an *oblivious* variant samples a verification key with no signing
capability — the property the sortition construction (Thm 2.7) needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.crypto.hashing import hash_domain
from repro.crypto.prg import PRG
from repro.errors import ConfigurationError, KeyError_, SignatureError
from repro.utils.serialization import encode_uint

_CHAIN_DOMAIN = "wots/chain"
_SECRET_DOMAIN = "wots/secret"
_OBLIVIOUS_DOMAIN = "wots/oblivious"
_MESSAGE_DOMAIN = "wots/message"

DEFAULT_MESSAGE_BITS = 128
DEFAULT_W = 4  # chunk width in bits; chains of length 16


def _chain(start: bytes, steps: int, chunk_index: int) -> bytes:
    """Apply the hash chain ``steps`` times (domain-bound per chunk)."""
    value = start
    for _ in range(steps):
        value = hash_domain(_CHAIN_DOMAIN, encode_uint(chunk_index), value)
    return value


def _parameters(message_bits: int, w: int) -> Tuple[int, int, int]:
    """Return (message_chunks, checksum_chunks, total_chunks)."""
    if w < 1 or w > 8:
        raise ConfigurationError("w must be in [1, 8]")
    if message_bits % w != 0:
        raise ConfigurationError("message_bits must be divisible by w")
    message_chunks = message_bits // w
    max_checksum = message_chunks * ((1 << w) - 1)
    checksum_chunks = 1
    while (1 << (w * checksum_chunks)) <= max_checksum:
        checksum_chunks += 1
    return message_chunks, checksum_chunks, message_chunks + checksum_chunks


def _message_chunks(message: bytes, message_bits: int, w: int) -> List[int]:
    """Digest the message and split it into w-bit chunks + checksum."""
    message_chunks, checksum_chunks, _ = _parameters(message_bits, w)
    needed = (message_bits + 7) // 8
    stream = b""
    counter = 0
    while len(stream) < needed:
        stream += hash_domain(_MESSAGE_DOMAIN, encode_uint(counter), message)
        counter += 1
    bits: List[int] = []
    for byte in stream[:needed]:
        for position in range(8):
            bits.append((byte >> (7 - position)) & 1)
            if len(bits) == message_bits:
                break
    chunks = [
        int("".join(str(b) for b in bits[i * w:(i + 1) * w]), 2)
        for i in range(message_chunks)
    ]
    checksum = sum(((1 << w) - 1) - c for c in chunks)
    checksum_values = []
    for _ in range(checksum_chunks):
        checksum_values.append(checksum & ((1 << w) - 1))
        checksum >>= w
    return chunks + checksum_values


@dataclass(frozen=True)
class WotsVerificationKey:
    """Chain endpoints, one per chunk."""

    message_bits: int
    w: int
    endpoints: Tuple[bytes, ...]

    def encode(self) -> bytes:
        return b"".join(self.endpoints)

    def size_bytes(self) -> int:
        """Wire size of the key."""
        return 32 * len(self.endpoints)


@dataclass(frozen=True)
class WotsSigningKey:
    """Chain starting points, one per chunk."""

    message_bits: int
    w: int
    starts: Tuple[bytes, ...]


@dataclass(frozen=True)
class WotsSignature:
    """One intermediate chain value per chunk."""

    values: Tuple[bytes, ...]

    def encode(self) -> bytes:
        return b"".join(self.values)

    def size_bytes(self) -> int:
        """Wire size of the signature."""
        return 32 * len(self.values)


def keygen_from_seed(
    seed: bytes,
    message_bits: int = DEFAULT_MESSAGE_BITS,
    w: int = DEFAULT_W,
) -> Tuple[WotsVerificationKey, WotsSigningKey]:
    """Deterministically expand a seed into a W-OTS key pair."""
    _, _, total = _parameters(message_bits, w)
    prg = PRG(seed, domain=_SECRET_DOMAIN)
    starts = tuple(prg.block(i) for i in range(total))
    endpoints = tuple(
        _chain(start, (1 << w) - 1, index)
        for index, start in enumerate(starts)
    )
    return (
        WotsVerificationKey(message_bits=message_bits, w=w, endpoints=endpoints),
        WotsSigningKey(message_bits=message_bits, w=w, starts=starts),
    )


def oblivious_keygen(
    seed: bytes,
    message_bits: int = DEFAULT_MESSAGE_BITS,
    w: int = DEFAULT_W,
) -> WotsVerificationKey:
    """Sample endpoints directly — no signing capability exists.

    Honest endpoints are deep hash-chain outputs, i.e. uniform-looking
    32-byte strings; sampling them directly is indistinguishable without
    inverting the chain (the OWF).
    """
    _, _, total = _parameters(message_bits, w)
    prg = PRG(seed, domain=_OBLIVIOUS_DOMAIN)
    endpoints = tuple(prg.block(i) for i in range(total))
    return WotsVerificationKey(
        message_bits=message_bits, w=w, endpoints=endpoints
    )


def sign(signing_key: WotsSigningKey, message: bytes) -> WotsSignature:
    """Reveal chain position ``chunk_value`` for each chunk."""
    chunks = _message_chunks(message, signing_key.message_bits, signing_key.w)
    if len(chunks) != len(signing_key.starts):
        raise KeyError_("signing key does not match parameterization")
    values = tuple(
        _chain(start, chunk, index)
        for index, (start, chunk) in enumerate(zip(signing_key.starts, chunks))
    )
    return WotsSignature(values=values)


def verify(
    verification_key: WotsVerificationKey,
    message: bytes,
    signature: WotsSignature,
) -> bool:
    """Walk each chain the remaining steps and compare endpoints."""
    if len(signature.values) != len(verification_key.endpoints):
        return False
    chunks = _message_chunks(
        message, verification_key.message_bits, verification_key.w
    )
    top = (1 << verification_key.w) - 1
    for index, (value, chunk, endpoint) in enumerate(
        zip(signature.values, chunks, verification_key.endpoints)
    ):
        if _chain(value, top - chunk, index) != endpoint:
            return False
    return True


def decode_signature(
    data: bytes,
    message_bits: int = DEFAULT_MESSAGE_BITS,
    w: int = DEFAULT_W,
) -> WotsSignature:
    """Decode a flat signature encoding (32 bytes per chunk)."""
    _, _, total = _parameters(message_bits, w)
    if len(data) != 32 * total:
        raise SignatureError("malformed W-OTS signature encoding")
    return WotsSignature(
        values=tuple(data[32 * i: 32 * (i + 1)] for i in range(total))
    )


def decode_verification_key(
    data: bytes,
    message_bits: int = DEFAULT_MESSAGE_BITS,
    w: int = DEFAULT_W,
) -> WotsVerificationKey:
    """Decode a flat verification-key encoding (32 bytes per chunk)."""
    _, _, total = _parameters(message_bits, w)
    if len(data) != 32 * total:
        raise KeyError_("malformed W-OTS verification key encoding")
    return WotsVerificationKey(
        message_bits=message_bits,
        w=w,
        endpoints=tuple(data[32 * i: 32 * (i + 1)] for i in range(total)),
    )
