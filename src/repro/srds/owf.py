"""SRDS from one-way functions in the trusted-PKI model (Thm 2.7).

The "sortition" construction: during trusted key generation each virtual
party tosses a biased coin.  With probability ``rho ~ polylog(n)/n`` it
receives a *real* one-time signing key and can sign; otherwise it
receives an *obliviously sampled* verification key with no signing key.
Because oblivious keys are indistinguishable from real ones, an
adversary that corrupts after seeing the bulletin board still hits
signers only at its proportional rate — so among the hidden signer set,
the honest fraction is preserved.

Aggregation is concatenation (with deduplication by index);
verification counts how many distinct, index-valid one-time signatures
on the message the aggregate contains and accepts at half the *expected*
signer count.  Everything is polylog-sized because only ~polylog parties
can sign at all.

The one-time signature scheme is pluggable through
:class:`repro.srds.ots.OneTimeSignatureScheme`: the paper's Lamport
instantiation is the default; Winternitz (w = 4) shrinks aggregates
about eightfold (the E8-adjacent size ablation measures this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    MALFORMED_INPUT_ERRORS,
    ConfigurationError,
    SignatureError,
)
from repro.obs.spans import span
from repro.params import ceil_log2
from repro.pki.registry import PKIMode
from repro.srds.base import (
    PublicParameters,
    SRDSScheme,
    SRDSSignature,
    ensure_same_message_space,
)
from repro.srds.ots import LamportOts, OneTimeSignatureScheme
from repro.utils.serialization import (
    decode_bytes,
    decode_uint,
    encode_bytes,
    encode_uint,
)


@dataclass(frozen=True)
class OwfBaseSignature(SRDSSignature):
    """A base signature: one virtual index plus its OTS signature bytes."""

    index: int
    ots_signature: bytes

    @property
    def min_index(self) -> int:
        return self.index

    @property
    def max_index(self) -> int:
        return self.index

    def _base_marker(self) -> bool:
        return True

    def encode(self) -> bytes:
        return encode_uint(self.index) + encode_bytes(self.ots_signature)


@dataclass(frozen=True)
class OwfAggregateSignature(SRDSSignature):
    """An aggregated signature: the sorted multiset of base signatures.

    Size is ``O(signers * |ots sig|) = polylog(n) * poly(kappa)`` —
    succinct in the paper's Õ(1) sense because the signer set itself is
    polylog.
    """

    contributions: Tuple[OwfBaseSignature, ...]

    @property
    def min_index(self) -> int:
        if not self.contributions:
            raise SignatureError("empty aggregate has no index range")
        return self.contributions[0].index

    @property
    def max_index(self) -> int:
        if not self.contributions:
            raise SignatureError("empty aggregate has no index range")
        return self.contributions[-1].index

    def encode(self) -> bytes:
        body = b"".join(c.encode() for c in self.contributions)
        return encode_uint(len(self.contributions)) + body


class OwfSRDS(SRDSScheme):
    """The OWF + trusted-PKI SRDS construction (Thm 2.7)."""

    name = "srds-owf-sortition"
    pki_mode = PKIMode.TRUSTED
    assumptions = "owf"
    needs_crs = False

    def __init__(
        self,
        sortition_factor: int = 4,
        message_bits: Optional[int] = None,
        ots: Optional[OneTimeSignatureScheme] = None,
    ) -> None:
        if sortition_factor < 1:
            raise ConfigurationError("sortition_factor must be positive")
        if ots is not None and message_bits is not None:
            raise ConfigurationError(
                "pass either an OTS instance or message_bits, not both"
            )
        if ots is None:
            ots = LamportOts(
                message_bits if message_bits is not None else 128
            )
        self.sortition_factor = sortition_factor
        self.ots = ots
        # Base-signature verification is deterministic, and in pi_ba the
        # same signature is re-checked by every committee member on its
        # path; memoizing is purely an optimization.
        self._verify_cache: Dict[Tuple[int, bytes, bytes], bool] = {}

    # -- Def. 2.1 algorithms ---------------------------------------------------

    def setup(self, num_parties: int, rng) -> PublicParameters:
        """Fix the sortition rate and acceptance threshold.

        The expected signer count is ``sortition_factor * log^2 n``
        (the paper's polylog(n)); the acceptance threshold is half of it,
        which separates the honest floor (> 2/3 of signers, minus
        concentration slack) from the adversarial ceiling (< 1/3 plus
        slack) for any beta < 1/3 with large enough committees.
        """
        if num_parties < 2:
            raise ConfigurationError("need at least 2 parties")
        log_n = ceil_log2(num_parties)
        expected_signers = min(num_parties, self.sortition_factor * log_n * log_n)
        signer_probability = expected_signers / num_parties
        return PublicParameters(
            num_parties=num_parties,
            security_bits=self.ots.signature_bytes() * 8,
            acceptance_threshold=max(1, expected_signers // 2),
            extra={
                "signer_probability": signer_probability,
                "expected_signers": expected_signers,
                "ots_name": self.ots.name,
            },
        )

    def keygen(self, pp: PublicParameters, rng) -> Tuple[bytes, object]:
        """Trusted keygen: biased coin decides real vs oblivious key.

        This runs inside the trusted setup (public-coin in the weak sense
        of §1.2 — each party learns its own sampling coins).  The
        bulletin-board entry is an OTS verification key either way, so
        the board leaks nothing about who can sign.
        """
        probability = float(pp.extra["signer_probability"])
        seed = rng.random_bytes(32)
        if rng.bernoulli(probability):
            return self.ots.keygen_from_seed(seed)
        return self.ots.oblivious_keygen(seed), None

    def sign(
        self,
        pp: PublicParameters,
        index: int,
        signing_key: object,
        message: bytes,
    ) -> Optional[OwfBaseSignature]:
        """Sign if this virtual identity holds a real signing key."""
        message = ensure_same_message_space(message)
        if signing_key is None:
            return None
        return OwfBaseSignature(
            index=index,
            ots_signature=self.ots.sign(signing_key, message),
        )

    def aggregate1(
        self,
        pp: PublicParameters,
        verification_keys: Dict[int, bytes],
        message: bytes,
        signatures: Sequence[SRDSSignature],
    ) -> List[SRDSSignature]:
        """Deterministic filter: flatten, verify each base signature
        against its published key, and dedupe by index (the anti-replay
        rule — the same base signature must not count twice)."""
        with span("srds-aggregate1", scheme="owf"):
            message = ensure_same_message_space(message)
            seen: Dict[int, OwfBaseSignature] = {}
            for signature in signatures:
                for base in _flatten(signature):
                    if base.index in seen:
                        continue
                    key_bytes = verification_keys.get(base.index)
                    if key_bytes is None:
                        continue
                    cache_key = (base.index, message, base.ots_signature)
                    valid = self._verify_cache.get(cache_key)
                    if valid is None:
                        valid = self.ots.verify(
                            key_bytes, message, base.ots_signature
                        )
                        self._verify_cache[cache_key] = valid
                    if valid:
                        seen[base.index] = base
            return [seen[index] for index in sorted(seen)]

    def aggregate2(
        self,
        pp: PublicParameters,
        message: bytes,
        filtered: Sequence[SRDSSignature],
    ) -> Optional[OwfAggregateSignature]:
        """Succinct combiner: sorted concatenation (no keys consulted)."""
        with span("srds-aggregate2", scheme="owf"):
            bases: Dict[int, OwfBaseSignature] = {}
            for signature in filtered:
                for base in _flatten(signature):
                    bases.setdefault(base.index, base)
            if not bases:
                return None
            ordered = tuple(bases[index] for index in sorted(bases))
            return OwfAggregateSignature(contributions=ordered)

    def verify(
        self,
        pp: PublicParameters,
        verification_keys: Dict[int, bytes],
        message: bytes,
        signature: SRDSSignature,
    ) -> bool:
        """Count distinct valid base signatures; accept at threshold."""
        message = ensure_same_message_space(message)
        valid = self.aggregate1(pp, verification_keys, message, [signature])
        return len(valid) >= pp.acceptance_threshold


def _flatten(signature: SRDSSignature) -> List[OwfBaseSignature]:
    """Expand base/aggregate signatures into their base contributions."""
    if isinstance(signature, OwfBaseSignature):
        return [signature]
    if isinstance(signature, OwfAggregateSignature):
        return list(signature.contributions)
    raise SignatureError(
        f"foreign signature type {type(signature).__name__} in OWF SRDS"
    )


def decode_signature(data: bytes) -> SRDSSignature:
    """Decode either a base or aggregate OWF-SRDS signature.

    Aggregates are encoded as a count followed by base records; a base
    signature alone is (index, ots-sig bytes).  The two are
    distinguished by attempting the aggregate framing first (its count
    prefix must be followed by exactly that many base records).
    """
    try:
        count, pos = decode_uint(data, 0)
        bases: List[OwfBaseSignature] = []
        for _ in range(count):
            index, pos = decode_uint(data, pos)
            sig_bytes, pos = decode_bytes(data, pos)
            bases.append(
                OwfBaseSignature(index=index, ots_signature=sig_bytes)
            )
        if pos == len(data) and bases:
            return OwfAggregateSignature(contributions=tuple(bases))
    except MALFORMED_INPUT_ERRORS:
        pass
    index, pos = decode_uint(data, 0)
    sig_bytes, pos = decode_bytes(data, pos)
    if pos != len(data):
        raise SignatureError("trailing bytes in OWF-SRDS signature")
    return OwfBaseSignature(index=index, ots_signature=sig_bytes)
