"""Almost-everywhere communication trees (Def. 2.3 / Def. 3.4)."""

from repro.aetree.analysis import (
    TreeReport,
    analyze,
    good_nodes,
    good_path_fraction,
    good_path_leaves,
    is_good_node,
    isolated_parties,
    validate_against_plan,
    validate_structure,
    well_connected_parties,
)
from repro.aetree.tree import CommTree, TreeNode, build_tree

__all__ = [
    "CommTree",
    "TreeNode",
    "TreeReport",
    "analyze",
    "build_tree",
    "good_nodes",
    "good_path_fraction",
    "good_path_leaves",
    "is_good_node",
    "isolated_parties",
    "validate_against_plan",
    "validate_structure",
    "well_connected_parties",
]
