"""Hierarchical phase spans — the attribution backbone of ``repro.obs``.

The paper's headline claim (Thm 3.1) is *per-party* polylog communication,
argued phase by phase in §3.1: KSSV almost-everywhere agreement, committee
BA + coin-toss, SRDS aggregation up the tree, and the one-round PRF boost
each get their own cost envelope.  The flat
:class:`~repro.net.metrics.CommunicationMetrics` ledger can report the
worst-case party but not *which phase* dominated it.  Spans close that
gap: protocol code wraps each phase in a context manager ::

    from repro.obs import span

    with span("srds-aggregate", level=k):
        ...  # every record_message / charge_functionality in here

and every ledger charge made while a span is active is attributed to the
*innermost* active span's name (see ``CommunicationMetrics.bits_by_phase``).

Design notes:

* The active-span stack lives in a :class:`contextvars.ContextVar`, so
  attribution is correct under ``asyncio`` — each task sees its own stack
  (the runtime's party coroutines all run phases of the same protocol, so
  in practice they share one stack, but nothing breaks if they diverge).
* Attribution works with *zero* registration: the stack is module-global
  state that the metrics ledger consults on every charge.  Interval
  *records* (for timelines and reports) additionally require an installed
  collector — see :func:`recording` / :class:`SpanLog`.
* Determinism contract mirrors :mod:`repro.runtime.trace`: a
  :class:`SpanLog` with ``clock=None`` (the default) stamps spans with a
  logical tick counter only, so two seeded runs produce identical logs;
  pass ``clock=time.perf_counter`` for wall-time profiling.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

#: Label under which charges made outside any span are accumulated.
UNATTRIBUTED = "(unattributed)"

#: The innermost-first stack of active span names (per asyncio context).
_stack: "contextvars.ContextVar[Tuple[str, ...]]" = contextvars.ContextVar(
    "repro_obs_span_stack", default=()
)

#: Installed interval collectors (module-global, like logging handlers).
_collectors: "List[SpanLog]" = []


@dataclass
class SpanRecord:
    """One recorded span interval.

    ``start_tick`` / ``end_tick`` come from the owning log's logical
    clock (monotonically increasing across the log, one tick per span
    open/close), so nesting can be reconstructed without wall times.
    ``end_tick`` is ``None`` while the span is still open.
    """

    name: str
    path: str
    depth: int
    start_tick: int
    end_tick: Optional[int] = None
    start_wall: Optional[float] = None
    end_wall: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.end_tick is not None


class SpanLog:
    """Collects :class:`SpanRecord` intervals from :func:`span` calls.

    Install with :func:`recording`; one execution can feed several logs
    (e.g. a test's assertion log and a timeline exporter's log).
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock
        self.records: List[SpanRecord] = []
        self._tick = 0

    # -- recording (called by span()) ----------------------------------------

    def _next_tick(self) -> int:
        tick = self._tick
        self._tick += 1
        return tick

    def open(self, name: str, path: str, depth: int,
             attrs: Dict[str, Any]) -> SpanRecord:
        record = SpanRecord(
            name=name,
            path=path,
            depth=depth,
            start_tick=self._next_tick(),
            start_wall=self._clock() if self._clock is not None else None,
            attrs=dict(attrs),
        )
        self.records.append(record)
        return record

    def close(self, record: SpanRecord) -> None:
        record.end_tick = self._next_tick()
        if self._clock is not None:
            record.end_wall = self._clock()

    def preload(self, records: "List[SpanRecord]") -> None:
        """Adopt records drained elsewhere (resume, cross-process merge),
        advancing the logical clock past them so fresh ticks never
        collide with the adopted intervals."""
        for record in records:
            self.records.append(record)
            upper = (
                record.end_tick
                if record.end_tick is not None
                else record.start_tick
            )
            self._tick = max(self._tick, upper + 1)

    # -- queries -------------------------------------------------------------

    def by_name(self, name: str) -> List[SpanRecord]:
        """All recorded spans with the given name, in open order."""
        return [record for record in self.records if record.name == name]

    @property
    def names(self) -> List[str]:
        """Distinct span names, in first-open order."""
        seen: Dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.name, None)
        return list(seen)

    def roots(self) -> List[SpanRecord]:
        """Top-level (depth-0) spans."""
        return [record for record in self.records if record.depth == 0]

    def wall_of(self, name: str) -> Optional[float]:
        """Total wall seconds spent in spans of this name (needs a clock)."""
        total = 0.0
        any_wall = False
        for record in self.by_name(name):
            if record.start_wall is not None and record.end_wall is not None:
                total += record.end_wall - record.start_wall
                any_wall = True
        return total if any_wall else None


# -- the context-manager API -------------------------------------------------


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[None]:
    """Enter a named phase span; nests, and attributes ledger charges.

    While the span is active, every
    :meth:`~repro.net.metrics.CommunicationMetrics.record_message` /
    :meth:`~repro.net.metrics.CommunicationMetrics.charge_functionality`
    call (in any ledger) is attributed to ``name`` — unless a *nested*
    span is entered, in which case the innermost name wins.  Extra
    ``attrs`` (``level=k``, ...) are stored on the interval records of
    any installed :class:`SpanLog` (and exported to timelines), but do
    not affect attribution.
    """
    if not name:
        raise ValueError("span name must be non-empty")
    parent = _stack.get()
    token = _stack.set(parent + (name,))
    path = "/".join(parent + (name,))
    opened = [
        (log, log.open(name, path, len(parent), attrs))
        for log in _collectors
    ]
    try:
        yield
    finally:
        for log, record in reversed(opened):
            log.close(record)
        _stack.reset(token)


def current_phase() -> Optional[str]:
    """The innermost active span name, or ``None`` outside any span."""
    stack = _stack.get()
    return stack[-1] if stack else None


def current_path() -> Optional[str]:
    """The full ``outer/inner`` span path, or ``None`` outside any span."""
    stack = _stack.get()
    return "/".join(stack) if stack else None


def span_to_wire(record: SpanRecord) -> Dict[str, Any]:
    """A JSON-safe dict for shipping span records across processes.

    Cluster workers drain their local :class:`SpanLog` every round and
    ship the records home in ``done`` blobs; the supervisor rebuilds
    them with :func:`span_from_wire` for the merged timeline.
    """
    return {
        "name": record.name,
        "path": record.path,
        "depth": record.depth,
        "start_tick": record.start_tick,
        "end_tick": record.end_tick,
        "start_wall": record.start_wall,
        "end_wall": record.end_wall,
        "attrs": dict(record.attrs),
    }


def span_from_wire(row: Dict[str, Any]) -> SpanRecord:
    """Rebuild a :class:`SpanRecord` from :func:`span_to_wire` output."""
    return SpanRecord(
        name=str(row["name"]),
        path=str(row.get("path", row["name"])),
        depth=int(row.get("depth", 0)),
        start_tick=int(row["start_tick"]),
        end_tick=(
            int(row["end_tick"]) if row.get("end_tick") is not None else None
        ),
        start_wall=row.get("start_wall"),
        end_wall=row.get("end_wall"),
        attrs=dict(row.get("attrs", {})),
    )


@contextmanager
def recording(log: Optional[SpanLog] = None) -> Iterator[SpanLog]:
    """Install a :class:`SpanLog` collector for the enclosed block.

    Usage::

        with recording() as log:
            run_balanced_ba(...)
        assert "prf-boost" in log.names
    """
    log = log if log is not None else SpanLog()
    _collectors.append(log)
    try:
        yield log
    finally:
        _collectors.remove(log)
