"""Suppression-pragma semantics: placement, reasons, and meta-rules."""

from repro.lint.config import LintConfig
from repro.lint.engine import run_lint
from repro.lint.pragmas import parse_pragmas
from tests.lint.conftest import FIXTURES, rule_ids_of


def _lint_source(tmp_path, source: str, rules: tuple = ("DET002",)):
    target = tmp_path / "protocols" / "module.py"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    config = LintConfig(
        root=tmp_path, paths=("protocols/module.py",), rules=rules,
    )
    return run_lint(config)


def test_same_line_pragma_suppresses(tmp_path):
    result = _lint_source(
        tmp_path,
        "import time\n"
        "t = time.time()  # lint: allow[DET002] reason=timing harness only\n",
    )
    assert rule_ids_of(result) == []
    assert len(result.suppressed) == 1
    violation, pragma = result.suppressed[0]
    assert violation.rule_id == "DET002"
    assert pragma.reason == "timing harness only"


def test_line_above_pragma_suppresses(tmp_path):
    result = _lint_source(
        tmp_path,
        "import time\n"
        "# lint: allow[DET002] reason=wall time feeds a histogram only\n"
        "t = time.time()\n",
    )
    assert rule_ids_of(result) == []
    assert len(result.suppressed) == 1


def test_file_allow_pragma_suppresses_everywhere(tmp_path):
    result = _lint_source(
        tmp_path,
        "# lint: file-allow[DET002] reason=benchmark driver, not protocol\n"
        "import time\n"
        "a = time.time()\n"
        "b = time.monotonic()\n",
    )
    assert rule_ids_of(result) == []
    assert len(result.suppressed) == 2


def test_pragma_does_not_leak_to_other_lines(tmp_path):
    result = _lint_source(
        tmp_path,
        "import time\n"
        "a = time.time()  # lint: allow[DET002] reason=observability\n"
        "\n"
        "\n"
        "b = time.time()\n",
    )
    assert rule_ids_of(result) == ["DET002"]
    assert len(result.suppressed) == 1


def test_missing_reason_is_lnt000(tmp_path):
    result = _lint_source(
        tmp_path,
        "import time\n"
        "t = time.time()  # lint: allow[DET002]\n",
    )
    meta_ids = [v.rule_id for v in result.meta_violations]
    assert "LNT000" in meta_ids
    # The un-backed pragma must not silence the violation.
    assert rule_ids_of(result) == ["DET002"]


def test_malformed_rule_id_is_lnt000(tmp_path):
    result = _lint_source(
        tmp_path,
        "import time\n"
        "t = time.time()  # lint: allow[det-2] reason=lowercase id\n",
    )
    assert "LNT000" in [v.rule_id for v in result.meta_violations]
    assert rule_ids_of(result) == ["DET002"]


def test_unused_pragma_is_lnt001(tmp_path):
    result = _lint_source(
        tmp_path,
        "# lint: allow[DET002] reason=nothing here actually needs this\n"
        "x = 1\n",
    )
    assert [v.rule_id for v in result.meta_violations] == ["LNT001"]
    assert rule_ids_of(result) == []


def test_unused_pragma_not_reported_for_inactive_rules(tmp_path):
    # A subset run must not flag pragmas for rules it never evaluated.
    result = _lint_source(
        tmp_path,
        "# lint: allow[ACC001] reason=charged one frame up\n"
        "x = 1\n",
        rules=("DET002",),
    )
    assert result.meta_violations == []


def test_pragmas_inside_strings_are_ignored():
    source = (
        'DOC = """\n'
        "# lint: allow[DET002] reason=this is documentation, not a pragma\n"
        '"""\n'
        "# lint: allow[EXC001] reason=a real comment pragma\n"
        "x = 1\n"
    )
    index = parse_pragmas(source)
    assert index.problems == []
    assert len(index.pragmas) == 1
    assert index.pragmas[0].rule_ids == ("EXC001",)


def test_repo_fixture_suppression_records_reason():
    config = LintConfig(root=FIXTURES, paths=("protocols/det002_ok.py",))
    result = run_lint(config)
    assert result.violations == []
    (_, pragma), = result.suppressed
    assert "observability" in pragma.reason
