"""Mesh fault injection: link death, slow trains, SIGKILL, budget.

Three layers of failure tolerance under test:

* the :class:`~repro.cluster.mesh.MeshRouter` itself — a killed TCP
  link redials, the handshake's watermark exchange resends retained
  trains, and send-seq dedup means a frame is *delivered once* no
  matter how many times the link tears (in-process, no subprocesses);
* the supervisor's per-control-message liveness judgment — a worker
  slowly trickling a huge body past ``round_timeout`` is NOT declared
  dead (the regression for the bug where "slow relaying a big train"
  was conflated with "dead"), while a worker whose progress genuinely
  stalls still is;
* whole-process faults on the mesh data plane (``cluster`` marker) —
  SIGKILL mid-round respawns, re-handshakes, resumes from the durable
  checkpoint and still charges bit-identical ledgers (no double-charged
  bits across the replayed rounds), and an exhausted restart budget
  exits loudly carrying the last failure reason.
"""

from __future__ import annotations

import time
from functools import lru_cache

import pytest

from repro.cluster.drivers import (
    make_scheme,
    run_balanced_ba_cluster,
)
from repro.cluster.job import phase_king_job
from repro.cluster.mesh import MeshRouter
from repro.cluster.supervisor import (
    ClusterConfig,
    ClusterSupervisor,
    _Worker,
    _WorkerDied,
)
from repro.cluster.wire import DONE, HEARTBEAT, Message
from repro.errors import ClusterError
from repro.net.adversary import random_corruption
from repro.net.metrics import CommunicationMetrics
from repro.obs.flow import FlowLedger
from repro.params import ProtocolParameters
from repro.runtime.drivers import run_balanced_ba_runtime
from repro.runtime.replay import tallies_equal
from repro.runtime.transport import Frame
from repro.utils.randomness import Randomness

SEED = 2021


# -- router-level link faults (in-process, tier-1) ----------------------------


def _mesh_pair(chunk_bytes=16):
    """Two routers with an established link (1 dials 0, by convention)."""
    a = MeshRouter(0, chunk_bytes=chunk_bytes)
    b = MeshRouter(1, chunk_bytes=chunk_bytes)
    a.update_peers({1: b.address})
    b.update_peers({0: a.address})
    return a, b


def _frames(round_index, tag):
    return [
        Frame(0, 9, tag, sent_round=round_index,
              deliver_round=round_index + 1, seq=seq)
        for seq in range(3)
    ]


class TestLinkFaults:
    def test_round_trip_over_live_link(self):
        a, b = _mesh_pair()
        try:
            sent = _frames(0, b"hello")
            a.send_train(1, 0, sent)
            assert b.wait_round(0, [0], timeout=5.0)
            assert b.collect_round(0, [0]) == sent
        finally:
            a.close()
            b.close()

    def test_send_before_link_established_is_replayed(self):
        """Startup ordering: a train sent before the peer has even
        dialed in is retained and shipped by the first handshake."""
        a = MeshRouter(0)
        b = MeshRouter(1)
        try:
            sent = _frames(0, b"early")
            a.send_train(1, 0, sent)  # no link yet: retained only
            a.update_peers({1: b.address})
            b.update_peers({0: a.address})
            assert b.wait_round(0, [0], timeout=5.0)
            assert b.collect_round(0, [0]) == sent
        finally:
            a.close()
            b.close()

    def test_link_kill_mid_train_redials_and_dedups(self):
        """Kill the live link, keep sending: the dialer redials, the
        handshake watermark resends retained trains, and send-seq dedup
        delivers every round exactly once."""
        a, b = _mesh_pair(chunk_bytes=8)  # multi-chunk trains
        try:
            first = _frames(0, b"round-zero")
            a.send_train(1, 0, first)
            assert b.wait_round(0, [0], timeout=5.0)
            assert b.collect_round(0, [0]) == first

            # Tear the link out from under the dialer's receiver.
            b._links[0].sock.close()

            # The sender pushes the next round into the torn link; some
            # chunks land in a dead TCP buffer, some fail outright.
            second = _frames(1, b"round-one")
            a.send_train(1, 1, second)
            # Redial + retained-train replay must deliver it exactly
            # once despite any duplicate resend racing the original.
            assert b.wait_round(1, [0], timeout=5.0)
            assert b.collect_round(1, [0]) == second

            # The next round flows over the healed link normally.
            third = _frames(2, b"round-two")
            a.send_train(1, 2, third)
            assert b.wait_round(2, [0], timeout=5.0)
            assert b.collect_round(2, [0]) == third
            assert a.progress() > 0 and b.progress() > 0
        finally:
            a.close()
            b.close()

    def test_repeated_link_kills_still_converge(self):
        a, b = _mesh_pair(chunk_bytes=8)
        try:
            for round_index in range(4):
                if round_index in (1, 3):
                    b._links[0].sock.close()
                sent = _frames(round_index, b"r%d" % round_index)
                a.send_train(1, round_index, sent)
                assert b.wait_round(round_index, [0], timeout=5.0)
                assert b.collect_round(round_index, [0]) == sent
        finally:
            a.close()
            b.close()

    def test_trim_discards_retained_rounds(self):
        a, b = _mesh_pair()
        try:
            a.send_train(1, 0, _frames(0, b"old"))
            a.send_train(1, 1, _frames(1, b"new"))
            assert b.wait_round(1, [0], timeout=5.0)
            a.trim(1)
            assert 0 not in a._retained.get(1, {0: None})
            assert 1 in a._retained[1]
        finally:
            a.close()
            b.close()


# -- the per-control-message liveness judgment (unit, tier-1) -----------------


class _ScriptedChannel:
    """A stand-in control channel replaying a recv script.

    Events: ``("trickle", sleep, nbytes)`` — sleep, grow the byte
    counter, raise TimeoutError (a huge body arriving slowly);
    ``("beat", sleep, progress)`` — sleep, deliver a heartbeat;
    ``("msg", message)`` — deliver a message.
    """

    def __init__(self, events):
        self._events = list(events)
        self.bytes_received = 0

    def recv(self, timeout):
        assert self._events, "recv past the end of the script"
        event = self._events.pop(0)
        if event[0] == "trickle":
            time.sleep(event[1])
            self.bytes_received += event[2]
            raise TimeoutError("recv deadline")
        if event[0] == "beat":
            time.sleep(event[1])
            return Message(HEARTBEAT, {"progress": event[2]})
        return event[1]


def _await_harness(events, *, round_timeout=0.25, heartbeat_timeout=5.0):
    supervisor = ClusterSupervisor(
        phase_king_job({i: 0 for i in range(4)}),
        ClusterConfig(
            num_workers=2,
            round_timeout=round_timeout,
            heartbeat_timeout=heartbeat_timeout,
        ),
    )
    worker = _Worker(
        worker_id=0, shard=[0, 1], process=None, channel=_ScriptedChannel(events),
        log_handle=None,
    )
    return supervisor._await(worker, DONE, round_index=7)


class TestSlowTrainIsNotDead:
    def test_trickling_body_outlives_round_timeout(self):
        """The satellite bugfix: ~2s of slow train (byte growth across
        recv deadlines) far past ``round_timeout=0.25`` must NOT be
        declared dead — liveness is per control message, reset by
        demonstrable byte progress."""
        events = [("trickle", 0.1, 4096)] * 8  # ~0.8s of slow body
        events.append(("msg", Message(DONE, {"round": 7})))
        message = _await_harness(events, round_timeout=0.25)
        assert message.kind == DONE

    def test_advancing_progress_heartbeats_keep_worker_alive(self):
        events = [("beat", 0.1, tick) for tick in range(8)]
        events.append(("msg", Message(DONE, {"round": 7})))
        message = _await_harness(events, round_timeout=0.25)
        assert message.kind == DONE

    def test_stalled_progress_still_dies(self):
        """Heartbeats whose progress counter never advances exhaust the
        round deadline: a livelocked worker is still a dead worker."""
        events = [("beat", 0.1, 5)] * 30
        with pytest.raises(_WorkerDied, match="no progress"):
            _await_harness(events, round_timeout=0.25)

    def test_total_silence_still_dies(self):
        events = [("trickle", 0.05, 0)]  # timeout with zero byte growth
        with pytest.raises(_WorkerDied, match="no heartbeat"):
            _await_harness(events, round_timeout=5.0)


# -- whole-process mesh faults (cluster marker) -------------------------------


@lru_cache(maxsize=None)
def _setup(n):
    params = ProtocolParameters()
    inputs = {i: i % 2 for i in range(n)}
    plan = random_corruption(
        n, params.max_corruptions(n), Randomness(SEED).fork("corruption")
    )
    return params, inputs, plan


@lru_cache(maxsize=None)
def _reference(n):
    """(ba_result, transport-charged ledger) for the crash-free run."""
    params, inputs, plan = _setup(n)
    ledger = CommunicationMetrics()
    result, _ = run_balanced_ba_runtime(
        inputs, plan, make_scheme("snark"), params,
        Randomness(SEED).fork("protocol"), metrics=ledger,
    )
    return result, ledger


def _mesh_run(n, *, kill_plan=None, max_restarts=3, flow=None,
              run_dir=None, resume=False):
    params, inputs, plan = _setup(n)
    config = ClusterConfig(
        num_workers=2,
        kill_plan=dict(kill_plan or {}),
        max_restarts=max_restarts,
        data_plane="mesh",
        flow=flow,
    )
    return run_balanced_ba_cluster(
        inputs, plan, make_scheme("snark"), params,
        Randomness(SEED).fork("protocol"),
        num_workers=2, checkpoint_interval=2,
        config=config, run_dir=run_dir, resume=resume,
    )


@pytest.mark.cluster
class TestMeshProcessFaults:
    def test_sigkill_mid_round_resumes_without_double_charge(self):
        """SIGKILL a worker mid-round: it respawns, re-handshakes into
        the mesh, resumes from its checkpoint — and the replayed rounds
        charge nothing twice (ledger and flow stay bit-identical to the
        crash-free reference)."""
        flow = FlowLedger()
        reference, ref_ledger = _reference(16)
        result, cluster = _mesh_run(16, kill_plan={3: 1}, flow=flow)
        assert cluster.restarts == 1
        assert result.agreement
        assert result.outputs == reference.outputs
        assert (
            result.metrics.max_bits_per_party
            == reference.metrics.max_bits_per_party
        )
        assert tallies_equal(cluster.metrics, ref_ledger, range(16))
        assert flow.verify_against(cluster.metrics) == []
        flow.close()

    def test_two_sigkills_different_workers(self):
        result, cluster = _mesh_run(16, kill_plan={2: 0, 5: 1})
        assert cluster.restarts == 2
        assert result.outputs == _reference(16)[0].outputs

    def test_restart_budget_exhaustion_exits_loudly(self, tmp_path):
        with pytest.raises(
            ClusterError, match="restart budget.*last failure"
        ):
            _mesh_run(
                16, kill_plan={3: 0}, max_restarts=0, run_dir=tmp_path
            )
        # ... and the wreck is resumable from its durable barrier.
        result, _cluster = _mesh_run(16, run_dir=tmp_path, resume=True)
        assert result.outputs == _reference(16)[0].outputs
