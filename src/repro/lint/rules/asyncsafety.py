"""Async-safety rule: ASY001 (fire-and-forget tasks, unawaited coroutines).

HoneyBadgerMPC-style asyncio protocol stacks are notorious for
``asyncio.create_task`` calls whose reference is dropped — the event
loop only holds a weak reference, so the task can be garbage-collected
mid-flight and its exception silently lost.  In this repo that failure
mode is worse than a latent bug: a dropped transport pump stalls a
round barrier nondeterministically, which the differential-parity suite
can only see as a flaky hang.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.config import LintConfig
from repro.lint.model import ModuleUnit, Rule, RuleMeta, Severity, Violation

_SPAWNERS: Set[str] = {"create_task", "ensure_future"}


class FireAndForgetRule(Rule):
    """ASY001 — retain task handles; await your coroutines."""

    meta = RuleMeta(
        rule_id="ASY001",
        name="fire-and-forget-async",
        severity=Severity.ERROR,
        summary=(
            "asyncio.create_task/ensure_future with a discarded result, "
            "or a locally-defined coroutine called without await"
        ),
        rationale=(
            "The event loop keeps only a weak reference to tasks: a "
            "create_task whose return value is dropped can be collected "
            "mid-run, losing its exception and stalling round barriers "
            "nondeterministically (the classic HoneyBadger-stack hang).  "
            "A coroutine called without await never runs at all — the "
            "protocol step it implements is silently skipped."
        ),
        fix_hint=(
            "assign the task to a retained attribute/collection (and "
            "cancel/await it on shutdown), or await the coroutine"
        ),
    )

    def check(
        self, module: ModuleUnit, config: LintConfig
    ) -> Iterator[Violation]:
        if not config.in_scope(module.rel, config.asy001_scopes):
            return
        async_defs = {
            node.name
            for node in ast.walk(module.tree)
            if isinstance(node, ast.AsyncFunctionDef)
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Expr):
                continue
            call = node.value
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            spawner = None
            if isinstance(func, ast.Attribute) and func.attr in _SPAWNERS:
                spawner = func.attr
            elif isinstance(func, ast.Name) and func.id in _SPAWNERS:
                spawner = func.id
            if spawner is not None:
                yield self.violation(
                    module, node,
                    f"`{spawner}(...)` result is discarded — the task can "
                    "be garbage-collected mid-flight",
                )
                continue
            called = None
            if isinstance(func, ast.Name) and func.id in async_defs:
                called = func.id
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in async_defs
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
            ):
                called = func.attr
            if called is not None:
                yield self.violation(
                    module, node,
                    f"coroutine `{called}(...)` is called but never "
                    "awaited — it will not run",
                    fix_hint=f"`await {called}(...)` (or schedule and "
                    "retain it as a task)",
                )
