"""Tests for communication accounting."""

import pytest

from repro.errors import NetworkError
from repro.net.metrics import CommunicationMetrics


class TestRecordMessage:
    def test_basic_accounting(self):
        metrics = CommunicationMetrics()
        metrics.record_message(0, 1, 100)
        assert metrics.tally_of(0).bits_sent == 100
        assert metrics.tally_of(0).messages_sent == 1
        assert metrics.tally_of(1).bits_received == 100
        assert metrics.tally_of(1).messages_received == 1

    def test_negative_size_rejected(self):
        with pytest.raises(NetworkError):
            CommunicationMetrics().record_message(0, 1, -1)

    def test_total_counts_each_message_once(self):
        metrics = CommunicationMetrics()
        metrics.record_message(0, 1, 100)
        metrics.record_message(1, 0, 50)
        assert metrics.total_bits == 150

    def test_bits_total_sums_both_directions(self):
        metrics = CommunicationMetrics()
        metrics.record_message(0, 1, 100)
        metrics.record_message(1, 0, 60)
        assert metrics.tally_of(0).bits_total == 160

    def test_locality(self):
        metrics = CommunicationMetrics()
        metrics.record_message(0, 1, 1)
        metrics.record_message(0, 2, 1)
        metrics.record_message(3, 0, 1)
        assert metrics.tally_of(0).locality == 3

    def test_max_metrics(self):
        metrics = CommunicationMetrics()
        metrics.record_message(0, 1, 100)
        metrics.record_message(2, 1, 100)
        assert metrics.max_bits_per_party == 200  # party 1 receives both
        assert metrics.max_messages_per_party == 1
        assert metrics.max_locality == 2

    def test_empty_metrics(self):
        metrics = CommunicationMetrics()
        assert metrics.max_bits_per_party == 0
        assert metrics.mean_bits_per_party == 0.0
        assert metrics.max_locality == 0
        assert metrics.imbalance() == 1.0


class TestChargeFunctionality:
    def test_per_party_charges(self):
        metrics = CommunicationMetrics()
        metrics.charge_functionality([0, 1, 2], bits_per_party=90,
                                     peers_per_party=2, rounds=3)
        for party in (0, 1, 2):
            assert metrics.tally_of(party).bits_total == 90
        assert metrics.rounds_completed == 3

    def test_peers_widened(self):
        metrics = CommunicationMetrics()
        metrics.charge_functionality([0, 1, 2, 3], bits_per_party=8,
                                     peers_per_party=2, rounds=1)
        assert metrics.tally_of(0).locality == 2

    def test_mix_with_messages(self):
        metrics = CommunicationMetrics()
        metrics.record_message(0, 1, 10)
        metrics.charge_functionality([0], bits_per_party=10,
                                     peers_per_party=1, rounds=1)
        assert metrics.tally_of(0).bits_total == 20


class TestRoundAccountingConsistency:
    """Regression tests: hybrid charges follow the record_message
    convention — each wire transfer counted once, at the sender — in
    *both* the per-round counters and ``total_bits``.  (Historically
    ``charge_functionality`` added the full per-party charge to the
    round counter, ~2x what ``total_bits`` accrued.)"""

    def test_functionality_round_bits_match_total_bits(self):
        metrics = CommunicationMetrics()
        metrics.charge_functionality([0, 1, 2], bits_per_party=90,
                                     peers_per_party=2, rounds=3)
        metrics.end_round()
        # Sent halves: 3 parties x ceil(90 / 2) = 135, not 3 x 90 = 270.
        assert metrics.total_bits == 135
        assert metrics.round_bits == [135]

    def test_odd_split_counts_sent_half(self):
        metrics = CommunicationMetrics()
        metrics.charge_functionality([0], bits_per_party=9,
                                     peers_per_party=1)
        assert metrics.tally_of(0).bits_sent == 5
        assert metrics.tally_of(0).bits_received == 4
        assert metrics.tally_of(0).bits_total == 9
        assert metrics.current_round_bits == 5
        assert metrics.total_bits == 5

    def test_mixed_wire_and_hybrid_charges_stay_consistent(self):
        metrics = CommunicationMetrics()
        metrics.record_message(0, 1, 100)
        metrics.charge_functionality([0, 1], bits_per_party=50,
                                     peers_per_party=1)
        metrics.end_round()
        metrics.record_message(1, 0, 60)
        # Invariant: closed rounds + open round == total_bits, always.
        assert (
            sum(metrics.round_bits) + metrics.current_round_bits
            == metrics.total_bits
        )
        assert metrics.total_bits == 100 + 2 * 25 + 60

    def test_per_party_totals_unchanged_by_fix(self):
        # The headline metric (max bits per party) must be unaffected by
        # the round-counter alignment: bits_total still grows by the
        # full bits_per_party.
        metrics = CommunicationMetrics()
        metrics.charge_functionality([0, 1, 2, 3], bits_per_party=71,
                                     peers_per_party=2)
        assert all(
            metrics.tally_of(p).bits_total == 71 for p in range(4)
        )
        assert metrics.max_bits_per_party == 71


class TestSnapshot:
    def test_snapshot_fields(self):
        metrics = CommunicationMetrics()
        metrics.record_message(0, 1, 100)
        metrics.end_round()
        snapshot = metrics.snapshot()
        assert snapshot.total_bits == 100
        assert snapshot.max_bits_per_party == 100
        assert snapshot.num_parties == 2
        assert snapshot.rounds == 1

    def test_imbalance(self):
        metrics = CommunicationMetrics()
        metrics.record_message(0, 1, 300)   # party 0: 300, party 1: 300
        metrics.record_message(2, 3, 100)   # parties 2,3: 100
        snapshot = metrics.snapshot()
        assert snapshot.imbalance == pytest.approx(300 / 200)

    def test_snapshot_immutable(self):
        snapshot = CommunicationMetrics().snapshot()
        with pytest.raises(Exception):
            snapshot.total_bits = 5
