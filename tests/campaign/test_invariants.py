"""Unit tests for the invariant checkers (no protocol execution)."""

from repro.campaign.invariants import (
    check_ba_invariants,
    check_broadcast_invariants,
    check_gradecast_invariants,
    check_srds_robustness,
    check_srds_unforgeability,
)


def _names(violations):
    return sorted(v.name for v in violations)


class TestBAInvariants:
    def test_clean_run(self):
        inputs = {0: 0, 1: 1, 2: 0, 3: 1}
        outputs = {i: 1 for i in range(4)}
        assert check_ba_invariants(inputs, outputs, [0, 1, 2, 3]) == []

    def test_agreement_split(self):
        inputs = {i: 1 for i in range(4)}
        outputs = {0: 0, 1: 1, 2: 1, 3: 1}
        names = _names(check_ba_invariants(inputs, outputs, [0, 1, 2, 3]))
        assert "agreement" in names

    def test_corrupt_outputs_ignored(self):
        inputs = {i: i % 2 for i in range(4)}
        outputs = {0: 1, 1: 0, 2: 1, 3: 1}  # party 1 is corrupt
        assert check_ba_invariants(inputs, outputs, [0, 2, 3]) == []

    def test_missing_output(self):
        inputs = {i: 1 for i in range(4)}
        outputs = {0: 1, 1: None, 2: 1}
        names = _names(check_ba_invariants(inputs, outputs, [0, 1, 2, 3]))
        assert "no-output" in names

    def test_validity(self):
        inputs = {i: 1 for i in range(4)}
        outputs = {i: 0 for i in range(4)}
        names = _names(check_ba_invariants(inputs, outputs, [0, 1, 2, 3]))
        assert "validity" in names
        assert "agreement" not in names

    def test_split_inputs_any_common_value_is_valid(self):
        inputs = {0: 0, 1: 1, 2: 0, 3: 1}
        outputs = {i: 0 for i in range(4)}
        assert check_ba_invariants(inputs, outputs, [0, 1, 2, 3]) == []

    def test_bits_budget(self):
        inputs = {i: 1 for i in range(4)}
        outputs = {i: 1 for i in range(4)}
        ok = check_ba_invariants(
            inputs, outputs, [0, 1, 2, 3],
            measured_bits=100, budget_bits=200,
        )
        assert ok == []
        over = check_ba_invariants(
            inputs, outputs, [0, 1, 2, 3],
            measured_bits=300, budget_bits=200,
        )
        assert _names(over) == ["bits-budget"]


class TestBroadcastInvariants:
    def test_honest_sender_delivers(self):
        outputs = {i: 1 for i in range(4)}
        assert check_broadcast_invariants(outputs, True, 1) == []

    def test_honest_sender_wrong_value(self):
        outputs = {i: 0 for i in range(4)}
        names = _names(check_broadcast_invariants(outputs, True, 1))
        assert "validity" in names

    def test_corrupt_sender_common_bot_is_fine(self):
        # Dolev-Strong's guarantee under a corrupt sender is agreement
        # on *some* value; the default fallback counts.
        outputs = {i: 0 for i in range(4)}
        assert check_broadcast_invariants(outputs, False, 1) == []

    def test_split_is_agreement_violation(self):
        outputs = {0: 0, 1: 1, 2: 1, 3: 1}
        names = _names(check_broadcast_invariants(outputs, False, 1))
        assert names == ["agreement"]


class TestGradecastInvariants:
    def test_honest_sender_full_grade(self):
        outputs = {i: (1, 2) for i in range(4)}
        assert check_gradecast_invariants(outputs, True, 1) == []

    def test_honest_sender_low_grade_flagged(self):
        outputs = {i: (1, 1) for i in range(4)}
        names = _names(check_gradecast_invariants(outputs, True, 1))
        assert names == ["gradecast"]


class TestSrdsInvariants:
    def test_robustness_verdicts(self):
        assert check_srds_robustness(True, "ctx") == []
        violations = check_srds_robustness(False, "ctx")
        assert _names(violations) == ["srds-robustness"]
        assert "ctx" in violations[0].detail

    def test_forgery_verdicts(self):
        assert check_srds_unforgeability(False, "ctx") == []
        violations = check_srds_unforgeability(True, "ctx")
        assert _names(violations) == ["srds-forgery"]
