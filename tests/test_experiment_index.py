"""Meta-tests: the experiment index stays consistent across artifacts.

DESIGN.md promises a bench target per experiment; the report assembler
knows each record name; the benchmark modules must actually exist.
These tests keep documentation, harness, and report in lock-step.
"""

import pathlib
import re

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def _design_text() -> str:
    return (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")


class TestDesignIndex:
    def test_every_bench_target_exists(self):
        """Every `benchmarks/...py` referenced in DESIGN.md is a file."""
        targets = set(re.findall(r"`(benchmarks/[\w_]+\.py)`",
                                 _design_text()))
        assert targets, "DESIGN.md should reference bench targets"
        for target in targets:
            assert (REPO_ROOT / target).exists(), f"missing {target}"

    def test_every_benchmark_module_indexed(self):
        """Every benchmark module appears in DESIGN.md's index."""
        design = _design_text()
        for path in (REPO_ROOT / "benchmarks").glob("test_*.py"):
            assert f"benchmarks/{path.name}" in design, (
                f"{path.name} is not in DESIGN.md's experiment index"
            )

    def test_experiment_ids_cover_t1_f123_e_series(self):
        design = _design_text()
        for exp_id in ["T1", "F1", "F2", "F3"] + [
            f"E{i}" for i in range(1, 13)
        ]:
            assert f"| {exp_id} " in design, f"{exp_id} missing from index"


class TestReportSections:
    def test_report_sections_match_result_writers(self):
        """Each write_result(...) name in benchmarks is a known report
        section (or would land in the 'extra records' tail)."""
        from repro.analysis.report import _SECTIONS

        known = {name for name, _ in _SECTIONS}
        written = set()
        for path in (REPO_ROOT / "benchmarks").glob("test_*.py"):
            written.update(
                re.findall(r'write_result\([^,]+,\s*"([\w_]+)"',
                           path.read_text(encoding="utf-8"))
            )
        assert written, "benchmarks should write result records"
        missing = written - known
        assert not missing, (
            f"records not in the report section list: {missing}"
        )

    def test_experiments_md_mentions_every_record(self):
        experiments = (REPO_ROOT / "EXPERIMENTS.md").read_text(
            encoding="utf-8"
        )
        from repro.analysis.report import _SECTIONS

        for name, _ in _SECTIONS:
            assert f"results/{name}.txt" in experiments, (
                f"EXPERIMENTS.md does not reference results/{name}.txt"
            )


class TestDocsExist:
    def test_required_documents(self):
        for relative in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                         "docs/paper_map.md", "docs/substitutions.md"):
            assert (REPO_ROOT / relative).exists(), f"missing {relative}"

    def test_design_records_paper_match(self):
        assert "Paper-text check" in _design_text()
