"""The cluster worker process.

A worker is one OS process owning one shard of the party set.  Its life
is a small state machine driven entirely by the supervisor over a single
:class:`~repro.cluster.wire.MessageChannel`:

1. dial the supervisor, introduce itself (``hello``);
2. receive its ``job`` (builder reference + shard assignment + resume
   flag), rebuild the shard — from the last durable checkpoint when
   resuming — and report the round it stands at (``resumed``);
3. loop: on ``round`` step the :class:`~repro.cluster.engine.ShardEngine`
   and reply ``done`` with the emitted frames, the shard's halted
   outputs, and the round's drained trace events; on ``checkpoint``
   durably snapshot the shard and ack; on ``stop`` exit 0.

A daemon heartbeat thread shares the channel (sends are locked) and
beacons ``heartbeat`` on a fixed interval so the supervisor can tell a
slow round from a dead process.  The worker never owns a metrics
ledger: the supervisor charges the authoritative one as it routes
frames, so sharding cannot double-charge the paper's headline metric.

The worker is deliberately crash-naked: any unexpected exception
escapes, the process dies nonzero, and the supervisor's recovery path —
restart, resume from checkpoint, replay the logged rounds — is the only
error handling.  That is what makes SIGKILL fault injection honest.
"""

# lint: file-allow[ACC001] reason=channel.send ships control replies; the
# worker never owns a ledger — the supervisor charges frames as it routes them

from __future__ import annotations

import threading
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.checkpoint import load_checkpoint, save_checkpoint
from repro.cluster.engine import ShardEngine
from repro.cluster.job import ClusterJob
from repro.cluster.mesh import MeshRouter
from repro.cluster.wire import (
    CHECKPOINT,
    CHECKPOINTED,
    DONE,
    HEARTBEAT,
    HELLO,
    JOB,
    PEERDOWN,
    PEERS,
    RESUMED,
    ROUND,
    STOP,
    ChannelClosed,
    Message,
    MessageChannel,
    connect_channel,
)
from repro.errors import ClusterError
from repro.obs.spans import SpanLog, span_to_wire
from repro.runtime.trace import TraceRecorder
from repro.runtime.transport import Frame

#: Default seconds between heartbeat beacons.
HEARTBEAT_INTERVAL = 0.25


class _Heartbeat(threading.Thread):
    """Beacons liveness on the shared channel until stopped.

    Each beacon carries a monotonic moved-bytes ``progress`` counter
    (control sends minus heartbeats, plus mesh traffic) so the
    supervisor can distinguish "dead" from "slow shipping a huge body":
    a worker mid-train keeps advancing the counter even though no
    result message has landed yet.
    """

    def __init__(
        self,
        channel: MessageChannel,
        interval: float,
        progress: Optional[Callable[[], int]] = None,
    ) -> None:
        super().__init__(name="cluster-heartbeat", daemon=True)
        self._channel = channel
        self._interval = interval
        self._progress = progress
        self._stop = threading.Event()

    def run(self) -> None:
        # Event.wait paces the beacon; the worker never reads a clock.
        while not self._stop.wait(self._interval):
            fields = {}
            if self._progress is not None:
                fields["progress"] = int(self._progress())
            try:
                self._channel.send(Message(HEARTBEAT, fields))
            except ClusterError:
                return  # supervisor is gone; main loop will notice too

    def stop(self) -> None:
        self._stop.set()


def worker_main(
    host: str,
    port: int,
    worker_id: int,
    heartbeat_interval: float = HEARTBEAT_INTERVAL,
) -> int:
    """Run one worker to completion; returns the process exit code."""
    channel = connect_channel(host, port)
    heartbeat: Optional[_Heartbeat] = None
    router: Optional[MeshRouter] = None
    try:
        channel.send(Message(HELLO, {"worker_id": worker_id}))
        job_msg = channel.recv()
        if job_msg.kind != JOB:
            raise ClusterError(
                f"worker {worker_id} expected a job, got {job_msg.kind!r}"
            )
        job = job_msg.payload()
        if not isinstance(job, ClusterJob):
            raise ClusterError(
                f"job payload decoded to {type(job).__name__}, not ClusterJob"
            )
        shard = list(job_msg.fields["shard"])
        resume_round = int(job_msg.fields.get("resume_round", 0))
        checkpoint_dir = Path(job_msg.fields["checkpoint_dir"])
        checkpoint_stem = str(job_msg.fields["checkpoint_stem"])
        # Cross-process trace propagation: the supervisor mints one
        # trace id per run and stamps it on the job; every done reply
        # echoes it so any hop of the conversation can be correlated.
        trace_id = str(job_msg.fields.get("trace_id", ""))

        data_plane = str(job_msg.fields.get("data_plane", "relay"))

        trace = TraceRecorder()
        span_log = SpanLog()
        engine, staged = _build_engine(
            job, shard, resume_round, checkpoint_dir, checkpoint_stem, trace
        )

        peers: List[int] = []
        owner: Dict[int, int] = {}
        if data_plane == "mesh":
            shards = [
                [int(p) for p in s] for s in job_msg.fields["shards"]
            ]
            owner = {p: w for w, s in enumerate(shards) for p in s}
            peers = sorted(
                w for w, s in enumerate(shards) if s and w != worker_id
            )
            router = MeshRouter(
                worker_id,
                host=str(job_msg.fields.get("mesh_host", host)),
                first_round=engine.next_round,
            )
            channel.send(
                Message(
                    RESUMED,
                    {
                        "next_round": engine.next_round,
                        "mesh_host": router.address[0],
                        "mesh_port": router.address[1],
                    },
                )
            )
        else:
            channel.send(
                Message(RESUMED, {"next_round": engine.next_round})
            )

        def progress() -> int:
            moved = channel.data_bytes_sent + channel.bytes_received
            if router is not None:
                moved += router.progress()
            return moved

        heartbeat = _Heartbeat(channel, heartbeat_interval, progress)
        heartbeat.start()

        while True:
            message = channel.recv()
            if message.kind == STOP:
                return 0
            if message.kind == PEERS:
                if router is not None:
                    router.update_peers(
                        _decode_addresses(message.fields["addresses"])
                    )
                continue
            if message.kind == CHECKPOINT:
                # The checkpoint name is versioned by barrier round so
                # the supervisor can pin a resume to its last fully-
                # acknowledged barrier even if this worker raced ahead.
                # On the mesh the worker owns its own staging, so the
                # in-flight frames ride in the checkpoint (sorted for
                # deterministic bytes); on the relay the supervisor
                # owns staging and the list is empty.
                barrier = int(message.fields["round"])
                save_checkpoint(
                    checkpoint_dir,
                    checkpoint_name(checkpoint_stem, barrier),
                    engine.snapshot(
                        staged=sorted(
                            staged,
                            key=lambda f: (f.deliver_round, f.sender, f.seq),
                        )
                    ),
                )
                if router is not None:
                    router.trim(int(message.fields.get("trim_below", 0)))
                channel.send(Message(CHECKPOINTED, {"round": barrier}))
                continue
            if message.kind != ROUND:
                raise ClusterError(
                    f"worker {worker_id} cannot handle {message.kind!r}"
                )
            round_index = int(message.fields["round"])
            if router is not None:
                due = [f for f in staged if f.deliver_round <= round_index]
                staged = [
                    f for f in staged if f.deliver_round > round_index
                ]
            else:
                due = message.frames
            round_span = span_log.open(
                "cluster-round", "cluster-round", 0,
                {"round": round_index, "worker": worker_id,
                 "frames_in": len(due)},
            )
            out_frames = engine.step_round(round_index, due)
            round_span.attrs["frames_out"] = len(out_frames)
            span_log.close(round_span)
            span_digest = [span_to_wire(r) for r in span_log.records]
            span_log.records.clear()
            if router is None:
                channel.send(
                    Message(
                        DONE,
                        {
                            "round": round_index,
                            "replay": bool(
                                message.fields.get("replay", False)
                            ),
                            "trace_id": trace_id,
                            # Flow refinement: the obs phase of each
                            # emitted frame, parallel to the frames
                            # list, so the supervisor can charge its
                            # flow ledger with the phase recorded at
                            # emit time.
                            "phases": engine.last_phases,
                        },
                        frames=out_frames,
                        blob=Message.pack_payload(
                            {
                                "outputs": engine.outputs(),
                                "trace": trace.drain(),
                                "spans": span_digest,
                            }
                        ),
                    )
                )
                continue
            # -- mesh data plane: route frames peer-to-peer, ship a
            # metrics digest home instead of the frames themselves.
            digest: List[Tuple[int, int, int, str]] = []
            trains: Dict[int, List[Frame]] = {peer: [] for peer in peers}
            for frame, phase in zip(out_frames, engine.last_phases):
                digest.append(
                    (frame.sender, frame.recipient, frame.bits(), phase)
                )
                dest = owner.get(frame.recipient)
                if dest is None:
                    raise ClusterError(
                        f"frame for party {frame.recipient} matches no "
                        "shard in the mesh address book"
                    )
                if dest == worker_id:
                    staged.append(frame)
                else:
                    trains[dest].append(frame)
            # An empty train is still sent: it is the peer's evidence
            # this worker finished the round (the mesh round barrier).
            for peer in peers:
                router.send_train(peer, round_index, trains[peer])
            while peers:
                if router.wait_round(round_index, peers, timeout=0.05):
                    break
                for failure in router.drain_failures():
                    channel.send(
                        Message(
                            PEERDOWN,
                            {
                                "peer": failure.peer,
                                "round": round_index,
                                "reason": failure.reason,
                            },
                        )
                    )
                try:
                    extra = channel.recv(timeout=0.001)
                except TimeoutError:
                    continue
                if extra.kind == PEERS:
                    router.update_peers(
                        _decode_addresses(extra.fields["addresses"])
                    )
                    continue
                raise ClusterError(
                    f"worker {worker_id} got {extra.kind!r} while "
                    f"awaiting round {round_index} trains"
                )
            if peers:
                staged.extend(router.collect_round(round_index, peers))
            channel.send(
                Message(
                    DONE,
                    {
                        "round": round_index,
                        "replay": bool(message.fields.get("replay", False)),
                        "trace_id": trace_id,
                        "halted": engine.halted_ids(),
                    },
                    blob=Message.pack_payload(
                        {
                            "outputs": engine.outputs(),
                            "trace": trace.drain(),
                            "spans": span_digest,
                            "digest": digest,
                        }
                    ),
                )
            )
    except ChannelClosed:
        # Supervisor vanished without a STOP: die loudly so an attached
        # terminal sees a nonzero exit, but don't traceback.
        return 1
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        if router is not None:
            router.close()
        channel.close()


def checkpoint_name(stem: str, barrier: int) -> str:
    """Canonical versioned checkpoint name: ``<stem>-r<barrier>``."""
    return f"{stem}-r{barrier}"


def _decode_addresses(raw: Dict[str, list]) -> Dict[int, Tuple[str, int]]:
    """Decode a ``peers`` address book (JSON keys are strings)."""
    return {
        int(worker): (str(entry[0]), int(entry[1]))
        for worker, entry in raw.items()
    }


def _build_engine(
    job: ClusterJob,
    shard: list,
    resume_round: int,
    checkpoint_dir: Path,
    checkpoint_stem: str,
    trace: TraceRecorder,
) -> "Tuple[ShardEngine, List[Frame]]":
    """Fresh build, or restore from a specific durable checkpoint.

    ``resume_round == 0`` means a fresh build (the supervisor replays
    from round 0); a positive value names the barrier the supervisor
    knows every shard has durably reached, so the file must exist.
    Returns the engine plus the checkpoint's staged frames — empty on
    the relay plane (staging is supervisor-owned there), the worker's
    own in-flight frames on the mesh.
    """
    if resume_round > 0:
        name = checkpoint_name(checkpoint_stem, resume_round)
        checkpoint = load_checkpoint(checkpoint_dir, name)
        if checkpoint is None:
            raise ClusterError(
                f"supervisor pinned resume to missing checkpoint {name!r} "
                f"in {checkpoint_dir}"
            )
        engine = ShardEngine.restore(checkpoint, trace=trace)
        if set(engine.party_ids) != set(shard):
            raise ClusterError(
                f"checkpoint {name!r} holds parties "
                f"{engine.party_ids}, job assigns {sorted(shard)}"
            )
        return engine, list(checkpoint.staged)
    parties = [
        party for party in job.build_parties() if party.party_id in set(shard)
    ]
    return ShardEngine(parties, trace=trace), []
