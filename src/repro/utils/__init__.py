"""Shared utilities: canonical serialization and seeded randomness."""

from repro.utils.randomness import Randomness, make_randomness
from repro.utils.serialization import (
    bit_length,
    canonical_tuple,
    decode_bytes,
    decode_sequence,
    decode_str,
    decode_uint,
    encode_bytes,
    encode_sequence,
    encode_str,
    encode_uint,
    fixed_bytes_to_int,
    int_to_fixed_bytes,
)

__all__ = [
    "Randomness",
    "make_randomness",
    "bit_length",
    "canonical_tuple",
    "decode_bytes",
    "decode_sequence",
    "decode_str",
    "decode_uint",
    "encode_bytes",
    "encode_sequence",
    "encode_str",
    "encode_uint",
    "fixed_bytes_to_int",
    "int_to_fixed_bytes",
]
