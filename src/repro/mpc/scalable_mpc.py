"""Scalable MPC with guaranteed output delivery (Corollary 1.2(2)).

Given the polylog-degree communication graph pi_ba establishes (every
party has an honest path to a 2/3-honest supreme committee) and
threshold FHE, any function f : ({0,1}^l_in)^n -> {0,1}^l_out can be
computed with **total** communication n * polylog(n) * poly(kappa) *
(l_in + l_out):

1. the supreme committee runs the FHE key ceremony (threshold =
   committee majority, so the corrupt minority can never decrypt);
2. every party encrypts its input and routes the ciphertext up the tree
   — each tree edge carries the batch of ciphertexts below it, so each
   party handles polylog ciphertexts and the total is n * polylog *
   ciphertext-size;
3. the committee evaluates f homomorphically, produces decryption
   shares, and threshold-decrypts the output;
4. the output is propagated to everyone through f_ae-comm plus the
   one-round PRF boost — certified by the SRDS exactly like pi_ba's
   (y, s), giving guaranteed output delivery to *all* honest parties.

Corrupt parties may substitute their own inputs (standard for MPC with
abort-free delivery); the adversary hook chooses those inputs.  Privacy
holds against the modeled adversary because only ciphertext handles and
sub-threshold share sets ever reach corrupt parties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ProtocolError
from repro.functionalities.ae_comm import AlmostEverywhereComm
from repro.mpc.fhe import ThresholdFHE
from repro.net.adversary import CorruptionPlan
from repro.net.metrics import CommunicationMetrics, MetricsSnapshot
from repro.params import ProtocolParameters
from repro.protocols import cost_model
from repro.utils.randomness import Randomness


@dataclass(frozen=True)
class MPCResult:
    """Outcome of one scalable-MPC execution."""

    outputs: Dict[int, Optional[bytes]]
    expected_output: bytes
    all_honest_correct: bool
    metrics: MetricsSnapshot
    committee_size: int


def run_scalable_mpc(
    inputs: Dict[int, bytes],
    function: Callable[[List[bytes]], bytes],
    output_size: int,
    plan: CorruptionPlan,
    params: ProtocolParameters,
    rng: Randomness,
    corrupt_input: Optional[Callable[[int, bytes], bytes]] = None,
) -> MPCResult:
    """Execute the Corollary 1.2(2) protocol once.

    ``function`` receives the n input strings ordered by party id (with
    corrupt parties' inputs possibly substituted via ``corrupt_input``)
    and returns the common output, truncated/padded to ``output_size``.
    """
    n = len(inputs)
    if plan.t * 3 >= n:
        raise ProtocolError("corruption budget must be below n/3")
    metrics = CommunicationMetrics()

    # Phase 1: tree + committee (f_ae-comm establishment costs charged).
    ae = AlmostEverywhereComm(n, params, plan, metrics, rng)
    tree = ae.tree
    committee = list(tree.supreme_committee)
    honest_committee = [
        member for member in committee if not plan.is_corrupt(member)
    ]

    # FHE key ceremony inside the committee (a constant-round MPC of its
    # own; charged like the coin-toss realization).
    fhe = ThresholdFHE(
        num_holders=len(committee),
        threshold=len(committee) // 2 + 1,
        rng=rng.fork("fhe-ceremony"),
    )
    charge = cost_model.committee_coin_toss(len(committee))
    metrics.charge_functionality(
        committee, charge.bits_per_party, charge.peers_per_party,
        charge.rounds,
    )

    # Phase 2: encrypt inputs and route them up the tree.  A party's
    # ciphertext travels leaf -> root; at each tree edge every committee
    # member of the child forwards the batch to the parent committee —
    # charged per edge at batch size (the [13]-style routing).
    effective_inputs: Dict[int, bytes] = {}
    ciphertexts: Dict[int, object] = {}
    for party in range(n):
        value = inputs[party]
        if plan.is_corrupt(party) and corrupt_input is not None:
            value = corrupt_input(party, value)
        effective_inputs[party] = value
        ciphertexts[party] = fhe.encrypt(value, rng.fork(f"enc-{party}"))

    # Party -> its primary leaf committee.
    ciphertext_bits = 8 * next(iter(ciphertexts.values())).size_bytes
    for party in range(n):
        leaf = tree.leaves_of_party(party)[0]
        for member in leaf.committee:
            metrics.record_message(party, member, ciphertext_bits)

    # Leaf -> root routing: each node forwards the ciphertexts of the
    # parties below it; charge each edge at (subtree input count) *
    # ciphertext size, member-to-member.
    subtree_count: Dict[int, int] = {}
    for level in range(1, tree.height + 1):
        for node in tree.level_nodes(level):
            if node.is_leaf:
                lo, hi = node.virtual_range
                owners = {tree.owner_of_virtual(v) for v in range(lo, hi)}
                subtree_count[node.node_id] = len(owners)
            else:
                subtree_count[node.node_id] = sum(
                    subtree_count[child] for child in node.children
                )
            parent_id = node.parent_id
            if parent_id is None:
                continue
            parent = tree.nodes[parent_id]
            batch_bits = subtree_count[node.node_id] * ciphertext_bits
            # One representative relay per committee pair would suffice
            # information-theoretically; the robust routing sends along
            # a log-size sub-committee for fault tolerance.
            relays = min(3, len(node.committee))
            for sender in node.committee[:relays]:
                for recipient in parent.committee[:relays]:
                    metrics.record_message(sender, recipient, batch_bits)

    # Phase 3: the committee evaluates f and threshold-decrypts.
    ordered_ciphertexts = [ciphertexts[party] for party in range(n)]
    evaluated = fhe.evaluate(function, ordered_ciphertexts, output_size)
    shares = []
    for position, member in enumerate(committee):
        if plan.is_corrupt(member):
            continue  # corrupt members may withhold; majority is honest
        share = fhe.decryption_share(position, evaluated)
        shares.append(share)
        for recipient in committee:
            metrics.record_message(member, recipient,
                                   8 * share.size_bytes())
    output = fhe.threshold_decrypt(evaluated, shares)

    # Phase 4: certified propagation of the output (send-down + boost
    # charged per the pi_ba phases; the output replaces (y, s)).
    deliveries = ae.send_down(8 * len(output), output)
    fanout = params.fanout(n)
    boost_bits = 8 * (len(output) + 32)
    outputs: Dict[int, Optional[bytes]] = {party: None for party in range(n)}
    for party, value in deliveries.items():
        outputs[party] = value
    for party in range(n):
        if outputs[party] is None:
            continue
        for offset in range(fanout):
            recipient = (party + offset + 1) % n
            metrics.record_message(party, recipient, boost_bits)
            if outputs[recipient] is None:
                outputs[recipient] = outputs[party]

    expected = function(
        [effective_inputs[party] for party in range(n)]
    )[:output_size].ljust(output_size, b"\x00")
    honest_correct = all(
        outputs[party] == expected for party in plan.honest
    )
    return MPCResult(
        outputs=outputs,
        expected_output=expected,
        all_honest_correct=honest_correct,
        metrics=metrics.snapshot(),
        committee_size=len(committee),
    )
