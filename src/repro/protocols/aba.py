"""MMR14-style common-coin asynchronous binary agreement (ABA).

The asynchronous baseline the paper's synchronous π_ba is compared
against.  This is the Mostéfaoui–Moumen–Raynal (PODC'14) signature-free
binary agreement, structured exactly like the classic HoneyBadgerBFT
realization:

* **BV-broadcast** — each party broadcasts ``BVAL(r, est)``; on ``f+1``
  distinct ``BVAL(r, v)`` it relays ``BVAL(r, v)`` once; on ``2f+1`` it
  adds ``v`` to ``bin_values[r]``.  BV-broadcast guarantees every value
  in any honest ``bin_values`` was proposed by some honest party.
* **AUX** — once ``bin_values[r]`` is non-empty the party broadcasts one
  ``AUX(r, w)`` with ``w ∈ bin_values[r]`` and waits for ``n − f`` AUX
  values inside its (growing) ``bin_values[r]``.
* **CONF** — the party broadcasts the set it collected and waits for
  ``n − f`` CONF sets contained in ``bin_values[r]``; the combined view
  yields ``values ⊆ bin_values[r]``.
* **coin** — a common coin ``b = coin(r)`` (here: the ideal ``f_ct``
  seam shared with :mod:`repro.protocols.coin_toss`, charged through the
  metrics ledger like every other hybrid functionality).  If
  ``values == {v}`` the party adopts ``est = v`` and *decides* ``v``
  when ``v == b``; otherwise it adopts ``est = b`` and starts round
  ``r + 1``.

Agreement/validity hold under any message schedule with ``n > 3f``;
termination holds with probability 1 because each round decides with
probability ≥ 1/2 once the adversary can no longer bias which single
value survives (expected ~4 rounds; the asynchrony benchmarks assert
the observed mean stays within 2× of that).

The state machine is *transport-free*: it subclasses
:class:`~repro.net.party.AsyncParty` and is driven by
:class:`repro.asynchrony.scheduler.AsyncScheduler` — there is no round
synchronizer anywhere in its execution.  All wire traffic is plain
length-charged envelopes tagged with ``aba-bval`` / ``aba-aux`` /
``aba-conf`` phases, so flow ledgers and BENCH records break its cost
down exactly like the synchronous protocols.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError, SerializationError
from repro.net.metrics import CommunicationMetrics
from repro.net.party import AsyncParty, Envelope
from repro.obs.flow import flow_tags
from repro.obs.spans import span
from repro.protocols.coin_toss import ideal_f_ct
from repro.protocols import cost_model
from repro.crypto.hashing import hash_domain
from repro.utils.randomness import Randomness
from repro.utils.serialization import decode_uint, encode_uint

# Wire tags (varint-encoded, followed by round and value/mask varints).
MSG_BVAL = 0
MSG_AUX = 1
MSG_CONF = 2

#: Obs phase names stamped on outgoing envelopes, by message tag.
PHASE_OF_TAG = {MSG_BVAL: "aba-bval", MSG_AUX: "aba-aux", MSG_CONF: "aba-conf"}


def encode_aba_message(tag: int, round_index: int, value: int) -> bytes:
    """``tag ‖ round ‖ value`` as varints (CONF's value is a set mask)."""
    return encode_uint(tag) + encode_uint(round_index) + encode_uint(value)


def decode_aba_message(payload: bytes) -> Tuple[int, int, int]:
    """Inverse of :func:`encode_aba_message`; rejects trailing bytes."""
    tag, offset = decode_uint(payload, 0)
    round_index, offset = decode_uint(payload, offset)
    value, offset = decode_uint(payload, offset)
    if offset != len(payload):
        raise SerializationError("trailing bytes in ABA message")
    return tag, round_index, value


def _mask_of(values: Set[int]) -> int:
    return (1 if 0 in values else 0) | (2 if 1 in values else 0)


def _values_of(mask: int) -> FrozenSet[int]:
    return frozenset(v for v in (0, 1) if mask & (1 << v))


class CommonCoin:
    """The round coin: the ideal ``f_ct`` seam, charged per first query.

    One session seed is drawn from the caller's rng through
    :func:`~repro.protocols.coin_toss.ideal_f_ct` (the same hybrid-model
    functionality π_ba's committee coin uses); round ``r``'s bit is a
    domain-separated hash of the session and ``r``, so every party
    querying the coin sees the same bit without further interaction —
    the functionality's promise.  The realization cost
    (:func:`repro.protocols.cost_model.committee_coin_toss` over the
    given committee) is charged to the ledger on the *first* query of
    each round, under an ``aba-coin`` span and flow tag.

    ``subscribe`` registers observers — the adaptive-adversary seam:
    a corruption strategy may watch coin outcomes and only then choose
    whom to corrupt (:mod:`repro.asynchrony.adaptive`).
    """

    def __init__(
        self,
        rng: Randomness,
        metrics: Optional[CommunicationMetrics] = None,
        committee: Sequence[int] = (),
    ) -> None:
        self._session = ideal_f_ct(rng.fork("aba/coin-session"))
        self._metrics = metrics
        self._committee = list(committee)
        self._cache: Dict[int, int] = {}
        self._observers: List[Callable[[int, int], None]] = []

    def subscribe(self, observer: Callable[[int, int], None]) -> None:
        """Register ``observer(round_index, bit)`` for each new round."""
        self._observers.append(observer)

    def value(self, round_index: int) -> int:
        """The round's common coin bit (charges on first query)."""
        if round_index not in self._cache:
            digest = hash_domain(
                "aba/coin", self._session, encode_uint(round_index)
            )
            bit = digest[0] & 1
            if self._metrics is not None and self._committee:
                charge = cost_model.committee_coin_toss(len(self._committee))
                with span("aba-coin"), flow_tags(phase="aba-coin"):
                    self._metrics.charge_functionality(
                        self._committee,
                        charge.bits_per_party,
                        charge.peers_per_party,
                        charge.rounds,
                    )
            self._cache[round_index] = bit
            for observer in self._observers:
                observer(round_index, bit)
        return self._cache[round_index]


class ABAParty(AsyncParty):
    """One honest MMR14 participant (reactive state machine).

    Messages for *any* round are accepted and buffered — BV-broadcast
    relays fire regardless of the party's current round, so a straggler
    catches up from the buffered evidence the moment it advances.  All
    thresholds count distinct senders, which makes delivery idempotent:
    duplicated or reordered deliveries can never double-count
    (pinned by the dup/reorder Hypothesis properties).
    """

    def __init__(
        self,
        party_id: int,
        party_ids: Sequence[int],
        input_bit: int,
        coin: CommonCoin,
    ) -> None:
        super().__init__(party_id)
        if input_bit not in (0, 1):
            raise ConfigurationError("ABA input must be a bit")
        self.peers = sorted(party_ids)
        if party_id not in self.peers:
            raise ConfigurationError("party_id must be in party_ids")
        self.n = len(self.peers)
        self.f = (self.n - 1) // 3
        self.coin = coin
        self.est = input_bit
        self.round = 0
        # (round, value) -> distinct senders seen.
        self._bval_recv: Dict[Tuple[int, int], Set[int]] = {}
        # (round, value) pairs this party has already BVAL-broadcast.
        self._bval_sent: Set[Tuple[int, int]] = set()
        self._bin_values: Dict[int, Set[int]] = {}
        self._aux_recv: Dict[int, Dict[int, int]] = {}
        self._aux_sent: Set[int] = set()
        self._conf_recv: Dict[int, Dict[int, FrozenSet[int]]] = {}
        self._conf_sent: Set[int] = set()

    # -- wire ----------------------------------------------------------------

    def _broadcast(self, tag: int, round_index: int, value: int) -> List[Envelope]:
        payload = encode_aba_message(tag, round_index, value)
        out = [
            self.send(peer, payload, phase=PHASE_OF_TAG[tag])
            for peer in self.peers
            if peer != self.party_id
        ]
        # Loopback: count our own vote immediately — no wire, no charge.
        out.extend(
            self.on_message(
                Envelope(
                    sender=self.party_id,
                    recipient=self.party_id,
                    payload=payload,
                )
            )
        )
        return out

    def _broadcast_bval(self, round_index: int, value: int) -> List[Envelope]:
        self._bval_sent.add((round_index, value))
        return self._broadcast(MSG_BVAL, round_index, value)

    # -- protocol ------------------------------------------------------------

    def start(self) -> List[Envelope]:
        return self._broadcast_bval(0, self.est)

    def on_message(self, envelope: Envelope) -> List[Envelope]:
        try:
            tag, round_index, value = decode_aba_message(envelope.payload)
        except SerializationError:
            return []  # Byzantine garbage: ignore, never crash.
        out: List[Envelope] = []
        if tag == MSG_BVAL and value in (0, 1):
            senders = self._bval_recv.setdefault((round_index, value), set())
            if envelope.sender in senders:
                return []
            senders.add(envelope.sender)
            if (
                len(senders) >= self.f + 1
                and (round_index, value) not in self._bval_sent
            ):
                out.extend(self._broadcast_bval(round_index, value))
            if len(senders) >= 2 * self.f + 1:
                self._bin_values.setdefault(round_index, set()).add(value)
        elif tag == MSG_AUX and value in (0, 1):
            received = self._aux_recv.setdefault(round_index, {})
            if envelope.sender in received:
                return []
            received[envelope.sender] = value
        elif tag == MSG_CONF and value in (1, 2, 3):
            received = self._conf_recv.setdefault(round_index, {})
            if envelope.sender in received:
                return []
            received[envelope.sender] = _values_of(value)
        else:
            return []  # unknown tag / out-of-range value: ignore.
        out.extend(self._advance())
        return out

    def _advance(self) -> List[Envelope]:
        """Drive the current round as far as the evidence allows."""
        out: List[Envelope] = []
        progressed = True
        while progressed:
            progressed = False
            round_index = self.round
            bin_values = self._bin_values.get(round_index, set())
            if round_index not in self._aux_sent and bin_values:
                self._aux_sent.add(round_index)
                out.extend(
                    self._broadcast(MSG_AUX, round_index, min(bin_values))
                )
                progressed = True
                continue
            if (
                round_index in self._aux_sent
                and round_index not in self._conf_sent
            ):
                aux = self._aux_recv.get(round_index, {})
                good = {v for s, v in aux.items() if v in bin_values}
                count = sum(1 for v in aux.values() if v in bin_values)
                if count >= self.n - self.f:
                    self._conf_sent.add(round_index)
                    out.extend(
                        self._broadcast(
                            MSG_CONF, round_index, _mask_of(good)
                        )
                    )
                    progressed = True
                    continue
            if round_index in self._conf_sent:
                values = self._conf_values(round_index, bin_values)
                if values is not None:
                    coin_bit = self.coin.value(round_index)
                    if len(values) == 1:
                        (candidate,) = values
                        if candidate == coin_bit:
                            self.decide(candidate)
                        self.est = candidate
                    else:
                        self.est = coin_bit
                    self.round = round_index + 1
                    if (self.round, self.est) not in self._bval_sent:
                        out.extend(self._broadcast_bval(self.round, self.est))
                    progressed = True
        return out

    def _conf_values(
        self, round_index: int, bin_values: Set[int]
    ) -> Optional[Set[int]]:
        """The CONF-stage output set, or ``None`` if not yet determined."""
        conf = self._conf_recv.get(round_index, {})
        if 1 in bin_values:
            if sum(1 for s in conf.values() if s == {1}) >= self.n - self.f:
                return {1}
        if 0 in bin_values:
            if sum(1 for s in conf.values() if s == {0}) >= self.n - self.f:
                return {0}
        contained = sum(1 for s in conf.values() if s <= bin_values)
        if contained >= self.n - self.f:
            return {0, 1}
        return None


# -- Byzantine behaviors -----------------------------------------------------


class SilentABAParty(AsyncParty):
    """A corrupted participant that never speaks (crash-equivalent)."""

    def start(self) -> List[Envelope]:
        return []

    def on_message(self, envelope: Envelope) -> List[Envelope]:
        return []


class EquivocatingABAParty(AsyncParty):
    """A corrupted participant that votes both ways every round.

    For every round it learns of, it broadcasts *both* ``BVAL(r, 0)``
    and ``BVAL(r, 1)`` and sends each recipient a recipient-dependent
    ``AUX(r, recipient & 1)`` — the strongest split-the-vote behavior
    BV-broadcast is designed to neutralize (any value reaching an honest
    ``bin_values`` still needs ``2f+1`` distinct senders).
    """

    def __init__(self, party_id: int, party_ids: Sequence[int]) -> None:
        super().__init__(party_id)
        self.peers = sorted(party_ids)
        self._spammed: Set[int] = set()

    def _spam_round(self, round_index: int) -> List[Envelope]:
        if round_index in self._spammed:
            return []
        self._spammed.add(round_index)
        out: List[Envelope] = []
        for peer in self.peers:
            if peer == self.party_id:
                continue
            for value in (0, 1):
                out.append(
                    self.send(
                        peer,
                        encode_aba_message(MSG_BVAL, round_index, value),
                        phase=PHASE_OF_TAG[MSG_BVAL],
                    )
                )
            out.append(
                self.send(
                    peer,
                    encode_aba_message(MSG_AUX, round_index, peer & 1),
                    phase=PHASE_OF_TAG[MSG_AUX],
                )
            )
        return out

    def start(self) -> List[Envelope]:
        return self._spam_round(0)

    def on_message(self, envelope: Envelope) -> List[Envelope]:
        try:
            _tag, round_index, _value = decode_aba_message(envelope.payload)
        except SerializationError:
            return []
        return self._spam_round(round_index)
