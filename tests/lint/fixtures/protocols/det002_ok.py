"""DET002 negative fixture: injected clock + justified wall time."""

import time


class Synchronizer:
    def __init__(self, clock) -> None:
        self.clock = clock  # injected: replayable under seed
        self.tick = 0

    def now(self) -> int:
        self.tick += 1
        return self.tick

    def profile(self) -> float:
        # lint: allow[DET002] reason=observability-only latency probe
        return time.perf_counter()
