"""Tests for the secp256k1 group implementation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import ec
from repro.errors import CryptoError

scalars = st.integers(min_value=1, max_value=ec.N - 1)
small_scalars = st.integers(min_value=1, max_value=1 << 20)


class TestGroupLaws:
    def test_generator_on_curve(self):
        assert ec.is_on_curve(ec.GENERATOR)

    def test_identity_on_curve(self):
        assert ec.is_on_curve(ec.IDENTITY)

    def test_identity_neutral(self):
        point = ec.scalar_mult(5, ec.GENERATOR)
        assert ec.point_add(point, ec.IDENTITY) == point
        assert ec.point_add(ec.IDENTITY, point) == point

    def test_inverse(self):
        point = ec.scalar_mult(5, ec.GENERATOR)
        assert ec.point_add(point, -point) == ec.IDENTITY

    def test_group_order(self):
        assert ec.scalar_mult(ec.N, ec.GENERATOR) == ec.IDENTITY

    @settings(max_examples=20, deadline=None)
    @given(small_scalars, small_scalars)
    def test_scalar_mult_homomorphic(self, a, b):
        left = ec.scalar_mult(a + b, ec.GENERATOR)
        right = ec.point_add(
            ec.scalar_mult(a, ec.GENERATOR), ec.scalar_mult(b, ec.GENERATOR)
        )
        assert left == right

    def test_doubling_matches_addition(self):
        point = ec.scalar_mult(7, ec.GENERATOR)
        assert ec.point_add(point, point) == ec.scalar_mult(14, ec.GENERATOR)

    def test_scalar_reduction_mod_order(self):
        assert ec.scalar_mult(5, ec.GENERATOR) == ec.scalar_mult(
            5 + ec.N, ec.GENERATOR
        )

    def test_results_on_curve(self):
        for scalar in (1, 2, 3, 12345, ec.N - 1):
            assert ec.is_on_curve(ec.scalar_mult(scalar, ec.GENERATOR))


class TestEncoding:
    def test_identity_roundtrip(self):
        assert ec.decode_point(ec.IDENTITY.encode()) == ec.IDENTITY

    @settings(max_examples=15, deadline=None)
    @given(small_scalars)
    def test_point_roundtrip(self, scalar):
        point = ec.scalar_mult(scalar, ec.GENERATOR)
        assert ec.decode_point(point.encode()) == point

    def test_encoded_width(self):
        assert len(ec.GENERATOR.encode()) == 33
        assert len(ec.IDENTITY.encode()) == 1

    def test_malformed_rejected(self):
        with pytest.raises(CryptoError):
            ec.decode_point(b"\x05" + bytes(32))
        with pytest.raises(CryptoError):
            ec.decode_point(b"\x02" + bytes(10))

    def test_off_curve_x_rejected(self):
        # x = 5 yields a non-residue y^2 for secp256k1.
        blob = b"\x02" + (5).to_bytes(32, "big")
        with pytest.raises(CryptoError):
            ec.decode_point(blob)

    def test_x_above_field_rejected(self):
        blob = b"\x02" + ec.P.to_bytes(32, "big")
        with pytest.raises(CryptoError):
            ec.decode_point(blob)


class TestOperatorSugar:
    def test_mul_operator(self):
        assert 3 * ec.GENERATOR == ec.scalar_mult(3, ec.GENERATOR)
        assert ec.GENERATOR * 3 == ec.scalar_mult(3, ec.GENERATOR)

    def test_add_operator(self):
        double = ec.GENERATOR + ec.GENERATOR
        assert double == ec.scalar_mult(2, ec.GENERATOR)

    def test_commit_helper(self):
        assert ec.commit(9) == ec.scalar_mult(9, ec.GENERATOR)

    def test_multi_scalar_mult(self):
        point = ec.scalar_mult(4, ec.GENERATOR)
        combined = ec.multi_scalar_mult(((2, ec.GENERATOR), (3, point)))
        assert combined == ec.scalar_mult(14, ec.GENERATOR)
