"""Determinism rules: DET001 (unseeded randomness), DET002 (wall clock).

The repo's replay contract (PR 1) and trace fingerprints (PR 2/3) only
hold if every random draw descends from one seed and every timestamp
comes from the injected logical clock.  King et al.'s almost-everywhere
agreement (the KSSV layer) composes across committees *because* each
seam is deterministic under a seed; one stray ``random.random()``
de-syncs the wire replay from the hybrid-model reference silently.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.lint.config import LintConfig
from repro.lint.model import ModuleUnit, Rule, RuleMeta, Severity, Violation

#: Module-level random API: all of these share interpreter-global state
#: (or OS entropy) and are therefore unreplayable.
_BANNED_RANDOM_CALLS: Set[str] = {
    "random.random", "random.randint", "random.randrange", "random.choice",
    "random.choices", "random.shuffle", "random.sample", "random.getrandbits",
    "random.uniform", "random.gauss", "random.betavariate", "random.seed",
    "os.urandom", "uuid.uuid4", "secrets.token_bytes", "secrets.token_hex",
    "secrets.token_urlsafe", "secrets.randbelow", "secrets.choice",
    "secrets.randbits", "numpy.random.rand", "numpy.random.randn",
    "numpy.random.randint", "numpy.random.random", "numpy.random.choice",
    "numpy.random.shuffle", "numpy.random.seed",
}

#: Wall-clock reads: forbidden in protocol scopes whether *called* or
#: merely *referenced* (e.g. passed as a ``clock=`` argument).
_WALL_CLOCK: Set[str] = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "datetime.datetime.now",
    "datetime.datetime.utcnow", "datetime.datetime.today",
    "datetime.date.today",
}


class UnseededRandomnessRule(Rule):
    """DET001 — all randomness must flow from a seeded source."""

    meta = RuleMeta(
        rule_id="DET001",
        name="unseeded-randomness",
        severity=Severity.ERROR,
        summary=(
            "module-level random.*, unseeded random.Random(), os.urandom, "
            "secrets.*, or uuid4 outside the sanctioned wrapper"
        ),
        rationale=(
            "Record-and-replay drivers, trace fingerprints, and campaign "
            "repro specs pin executions by seed.  Global-state or "
            "OS-entropy randomness produces runs that cannot be replayed "
            "or minimized, invalidating every `campaign/1` spec and the "
            "differential parity suite.  All draws must descend from "
            "repro.utils.randomness.Randomness (which forks child seeds "
            "deterministically)."
        ),
        fix_hint=(
            "take a Randomness parameter (or fork one from the caller's) "
            "instead; if this file IS the sanctioned wrapper, add it to "
            "det001_allow"
        ),
    )

    def check(
        self, module: ModuleUnit, config: LintConfig
    ) -> Iterator[Violation]:
        if config.in_scope(module.rel, config.det001_allow):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.resolve(node.func)
            if dotted is None:
                continue
            if dotted in _BANNED_RANDOM_CALLS:
                yield self.violation(
                    module, node,
                    f"call to `{dotted}` draws unseeded randomness",
                )
            elif dotted == "random.Random" and not (
                node.args or node.keywords
            ):
                yield self.violation(
                    module, node,
                    "`random.Random()` without a seed is entropy-seeded "
                    "and unreplayable",
                    fix_hint="pass an explicit seed: random.Random(seed)",
                )
            elif dotted == "random.SystemRandom":
                yield self.violation(
                    module, node,
                    "`random.SystemRandom` reads OS entropy and is "
                    "unreplayable",
                )


class WallClockRule(Rule):
    """DET002 — protocol scopes must use the injected clock."""

    meta = RuleMeta(
        rule_id="DET002",
        name="wall-clock-in-protocol",
        severity=Severity.ERROR,
        summary=(
            "time.time/perf_counter/datetime.now (called or referenced) "
            "inside protocols/, srds/, runtime/, campaign/"
        ),
        rationale=(
            "The runtime's RoundSynchronizer recovers the paper's "
            "synchronous model with a logical clock; traces stamp events "
            "with ticks so two seeded runs are byte-identical.  A wall- "
            "clock read in protocol logic makes behavior (timeouts, "
            "orderings, recorded fields) machine-dependent and breaks "
            "trace-fingerprint regression.  Observability-only wall time "
            "is fine — annotate it with "
            "`# lint: allow[DET002] reason=...`."
        ),
        fix_hint=(
            "use the injected clock/tick counter; for observability-only "
            "wall time add `# lint: allow[DET002] reason=...`"
        ),
    )

    def check(
        self, module: ModuleUnit, config: LintConfig
    ) -> Iterator[Violation]:
        if not config.in_scope(module.rel, config.det002_scopes):
            return
        for node in ast.walk(module.tree):
            # References count too: passing `time.perf_counter` as a
            # clock= argument injects wall time just as surely as
            # calling it.  Resolve Attribute/Name chains only at their
            # outermost position to avoid double-reporting `a.b.c`.
            if isinstance(node, ast.Call):
                continue  # the func/args are visited as expressions
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            dotted = module.resolve(node)
            if dotted in _WALL_CLOCK:
                yield self.violation(
                    module, node,
                    f"wall-clock source `{dotted}` in protocol scope",
                )
