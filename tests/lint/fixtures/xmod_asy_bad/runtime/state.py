"""ASY002 fixture (bad): shared containers mutated outside the lock."""

import threading


class MeshState:
    def __init__(self):
        self._lock = threading.Lock()
        self._inbox = {}
        self._journal = []

    def start(self):
        worker = threading.Thread(target=self._pump)
        worker.start()

    def _pump(self):
        with self._lock:
            self._inbox.update(ready=True)
        self._journal.append("pumped")

    def drop(self, key):
        # `_inbox` is lock-affine (mutated under the lock in `_pump`)
        # but this mutation skips the lock.
        self._inbox.pop(key, None)

    async def drain(self):
        # `_journal` is written from the `_pump` thread *and* this
        # event-loop coroutine, with no lock on either side.
        self._journal.append("drained")
