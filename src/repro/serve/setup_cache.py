"""Amortized SRDS setup: the gateway's cross-session key cache.

Corollary 1.2 of the paper gets Õ(1) bits per party for *repeated*
invocations because the expensive trusted setup — SRDS public
parameters plus one key pair per virtual identity — is paid once and
reused.  :class:`SetupCache` is that amortization made operational: it
keys :class:`~repro.protocols.balanced_ba.SRDSSetupMaterial` (and the
scheme instance whose internal verify-memoization the material belongs
with) by ``(scheme label, n, session seed)`` and serves it to every
session that shares the key.

Correctness relies on two facts pinned by tests:

* setup/keygen charge **nothing** to the communication ledger, so a
  cache hit cannot perturb any per-party bit tally; and
* :func:`~repro.protocols.balanced_ba.compute_srds_setup` derives all
  key material from stateless, label-derived randomness forks, so the
  cached material is byte-identical to what the session would have
  computed in line.

Hit/miss counters (both on the cache object and, when a registry is
bound, as ``repro_gateway_setup_cache_{hits,misses}_total``) are the
observable proof of the amortization: the first session on a key
records a miss and pays keygen, every later one records a hit and
skips it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.errors import GatewayError
from repro.obs.registry import MetricsRegistry
from repro.protocols.balanced_ba import (
    SRDSSetupMaterial,
    compute_srds_setup,
)
from repro.srds.base import SRDSScheme
from repro.utils.randomness import Randomness

#: (scheme label, n, seed): one long-lived setup domain.
SetupKey = Tuple[str, int, int]

#: The gateway's scheme labels — ``snark`` is the real-crypto default
#: (Schnorr base signatures), ``snark-hash`` the simulated-base
#: accelerator for large sweeps, ``owf`` the Lamport/sortition scheme.
SCHEME_LABELS = ("snark", "snark-hash", "owf")


def scheme_for(label: str) -> SRDSScheme:
    """Construct a fresh scheme instance for a gateway scheme label."""
    if label == "snark":
        from repro.srds.snark_based import SnarkSRDS

        return SnarkSRDS()
    if label == "snark-hash":
        from repro.srds.base_sigs import HashRegistryBase
        from repro.srds.snark_based import SnarkSRDS

        return SnarkSRDS(base_scheme=HashRegistryBase())
    if label == "owf":
        from repro.srds.owf import OwfSRDS

        return OwfSRDS(message_bits=64)
    raise GatewayError(
        f"unknown scheme label {label!r} (expected one of {SCHEME_LABELS})"
    )


@dataclass
class _Entry:
    """One cached setup domain: the scheme instance + lazy material."""

    scheme: SRDSScheme
    material: Optional[SRDSSetupMaterial] = None
    lock: threading.Lock = field(default_factory=threading.Lock)


class SetupLease:
    """One session's handle on a cache entry.

    ``scheme`` is the shared instance for the key (its verify-memo
    caches warm up across sessions); :meth:`provider` plugs into
    :class:`~repro.protocols.balanced_ba.BalancedBA` as the
    ``setup_provider`` seam.  Per-lease ``hits``/``misses`` expose the
    session-local amortization delta for result payloads.
    """

    def __init__(self, cache: "SetupCache", key: SetupKey,
                 entry: _Entry) -> None:
        self._cache = cache
        self._key = key
        self._entry = entry
        self.hits = 0
        self.misses = 0

    @property
    def scheme(self) -> SRDSScheme:
        return self._entry.scheme

    def provider(
        self, scheme: SRDSScheme, num_virtual: int, rng: Randomness
    ) -> SRDSSetupMaterial:
        """Serve cached material, computing (and storing) it on miss.

        The per-entry lock makes concurrent same-key sessions serialize
        on the *one* keygen instead of racing to duplicate it; material
        whose ``(num_virtual, rng seed)`` does not match the run is
        recomputed rather than served — a wrong-key hit would corrupt
        parity, which defeats the cache's whole purpose.
        """
        with self._entry.lock:
            material = self._entry.material
            if (
                material is not None
                and material.num_virtual == num_virtual
                and material.rng_seed == rng.seed
            ):
                self.hits += 1
                self._cache._note_hit()
                return material
            material = compute_srds_setup(scheme, num_virtual, rng)
            self._entry.material = material
            self.misses += 1
            self._cache._note_miss()
            return material


class SetupCache:
    """LRU cache of SRDS setup domains shared by all gateway sessions.

    Thread-safe: leases are taken on the event-loop thread, but the
    providers run inside session executor threads.  ``max_entries``
    bounds resident key material; evicting a domain only costs the next
    session on that key one fresh keygen (a miss), never correctness.
    """

    def __init__(
        self,
        max_entries: int = 8,
        registry: Optional[MetricsRegistry] = None,
        scheme_factory: Callable[[str], SRDSScheme] = scheme_for,
    ) -> None:
        if max_entries < 1:
            raise GatewayError("setup cache needs at least one entry")
        self._max_entries = max_entries
        self._scheme_factory = scheme_factory
        self._entries: "OrderedDict[SetupKey, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self._hits_counter = None
        self._misses_counter = None
        if registry is not None:
            self._hits_counter = registry.counter(
                "repro_gateway_setup_cache_hits_total",
                "Sessions that reused cached SRDS setup/PKI material",
            )
            self._misses_counter = registry.counter(
                "repro_gateway_setup_cache_misses_total",
                "Sessions that had to run SRDS setup + keygen",
            )

    def lease(self, scheme_label: str, n: int, seed: int) -> SetupLease:
        """Take a lease on the setup domain ``(scheme_label, n, seed)``.

        Constructs the scheme instance on first use of a key; touching
        an existing key refreshes its LRU position.
        """
        key: SetupKey = (scheme_label, n, seed)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = _Entry(scheme=self._scheme_factory(scheme_label))
                self._entries[key] = entry
                while len(self._entries) > self._max_entries:
                    self._entries.popitem(last=False)
            else:
                self._entries.move_to_end(key)
            return SetupLease(self, key, entry)

    def _note_hit(self) -> None:
        with self._lock:
            self.hits += 1
        if self._hits_counter is not None:
            self._hits_counter.inc()

    def _note_miss(self) -> None:
        with self._lock:
            self.misses += 1
        if self._misses_counter is not None:
            self._misses_counter.inc()

    def stats(self) -> Dict[str, int]:
        """Counters + occupancy for ``status`` responses and benches."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "entries": len(self._entries),
                "max_entries": self._max_entries,
            }
