"""BENCH_aba.json: asynchronous ABA vs synchronous π_ba, same cells.

The point of the record is the paper's headline contrast made concrete:
MMR14 ABA is the classic *O(n)-bits-per-party-per-round* asynchronous
baseline, π_ba is the paper's polylog(n)-bits synchronous protocol.
Running both on identical ``(n, seed)`` cells and reading
``max_bits_per_party`` off the same
:class:`~repro.net.metrics.CommunicationMetrics` ledger shows the gap
(and its growth in ``n``) without any modeling slack in between.

The ABA half also doubles as the subsystem's round-count gate: every
cell asserts the observed decision round stays within
:data:`MAX_EXPECTED_ROUNDS` — twice the MMR14 expected-round bound —
under every latency model *and* the adversarial-order scheduler.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

from repro.errors import ProtocolError
from repro.asynchrony.driver import run_aba
from repro.obs.bench import bench_payload, write_bench_json

#: Latency models every bench cell sweeps (plus the adversarial policy).
BENCH_LATENCY_MODELS = ("fixed", "uniform", "lognormal", "partition-heal")

#: MMR14 decides each round w.p. ≥ 1/2 ⇒ expected ≤ ~4 rounds; the gate
#: allows twice that before calling the run a regression.
MAX_EXPECTED_ROUNDS = 8


def _aba_cell(n: int, seed: int, mode: str) -> Dict[str, Any]:
    if mode == "adversarial":
        result = run_aba(n, seed=seed, policy="adversarial")
    else:
        result = run_aba(n, seed=seed, latency=mode)
    if result.rounds > MAX_EXPECTED_ROUNDS:
        raise ProtocolError(
            f"ABA n={n} seed={seed} mode={mode} took {result.rounds} "
            f"rounds (gate: {MAX_EXPECTED_ROUNDS} = 2x the MMR14 bound)"
        )
    agreed = result.agreed_value
    if agreed is None:
        raise ProtocolError(
            f"ABA n={n} seed={seed} mode={mode} violated agreement"
        )
    return {
        "mode": mode,
        "n": n,
        "seed": seed,
        "rounds": result.rounds,
        "deliveries": result.deliveries,
        "agreed_value": agreed,
        "max_bits_per_party": result.metrics.max_bits_per_party,
        "total_bits": result.metrics.total_bits,
    }


def _pi_ba_cell(n: int, seed: int, scheme_name: str) -> Dict[str, Any]:
    from repro.cluster.drivers import make_scheme
    from repro.net.metrics import CommunicationMetrics
    from repro.params import ProtocolParameters
    from repro.net.adversary import CorruptionPlan
    from repro.protocols.balanced_ba import run_balanced_ba
    from repro.utils.randomness import Randomness

    metrics = CommunicationMetrics()
    result = run_balanced_ba(
        {i: i % 2 for i in range(n)},
        CorruptionPlan(corrupted=frozenset(), n=n),
        make_scheme(scheme_name),
        ProtocolParameters(),
        Randomness(seed).fork("bench/pi-ba"),
        metrics=metrics,
    )
    return {
        "n": n,
        "seed": seed,
        "scheme": scheme_name,
        "agreement": result.agreement,
        "max_bits_per_party": result.metrics.max_bits_per_party,
        "total_bits": result.metrics.total_bits,
    }


def run_aba_bench(
    party_counts: Sequence[int] = (16, 64),
    seed: int = 2025,
    scheme_name: str = "snark",
    results_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Sweep ABA (all models + adversarial) and π_ba per cell.

    Returns the assembled BENCH payload; also writes
    ``BENCH_aba.json`` when ``results_dir`` is given.
    """
    cells = []
    comparison = []
    for n in party_counts:
        aba_fixed: Optional[Dict[str, Any]] = None
        for mode in (*BENCH_LATENCY_MODELS, "adversarial"):
            cell = _aba_cell(n, seed, mode)
            cells.append(cell)
            if mode == "fixed":
                aba_fixed = cell
        pi_ba = _pi_ba_cell(n, seed, scheme_name)
        assert aba_fixed is not None
        comparison.append(
            {
                "n": n,
                "seed": seed,
                "aba_max_bits_per_party": aba_fixed["max_bits_per_party"],
                "pi_ba_max_bits_per_party": pi_ba["max_bits_per_party"],
                "ratio_aba_over_pi_ba": (
                    aba_fixed["max_bits_per_party"]
                    / max(1, pi_ba["max_bits_per_party"])
                ),
                "pi_ba": pi_ba,
            }
        )
    payload = bench_payload(
        "aba",
        extra={
            "description": (
                "MMR14 asynchronous ABA vs synchronous pi_ba, "
                "max_bits_per_party on identical (n, seed) cells"
            ),
            "max_expected_rounds": MAX_EXPECTED_ROUNDS,
            "aba_cells": cells,
            "comparison": comparison,
        },
    )
    if results_dir is not None:
        write_bench_json(results_dir, payload)
    return payload
