"""Shared helpers for the lint-subsystem tests."""

from pathlib import Path

import pytest

from repro.lint.config import LintConfig
from repro.lint.engine import LintResult, run_lint

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def lint_fixture(*paths: str, rules: tuple = ()) -> LintResult:
    """Run the engine over fixture subtrees with the default rule knobs.

    The fixture tree mirrors the scope substrings of the default config
    (``protocols/``, ``campaign/spec.py``, ``utils/randomness.py``, ...)
    so the repo configuration applies unchanged.
    """
    config = LintConfig(root=FIXTURES, paths=tuple(paths), rules=rules)
    return run_lint(config)


def rule_ids_of(result: LintResult) -> list:
    return [violation.rule_id for violation in result.violations]


@pytest.fixture
def fixtures_root() -> Path:
    return FIXTURES


@pytest.fixture
def repo_root() -> Path:
    return REPO_ROOT
