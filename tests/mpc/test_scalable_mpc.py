"""Tests for the Corollary 1.2(2) scalable-MPC protocol."""

import pytest

from repro.errors import ProtocolError
from repro.net.adversary import random_corruption, targeted_corruption
from repro.params import ProtocolParameters
from repro.mpc.scalable_mpc import run_scalable_mpc
from repro.utils.randomness import Randomness

N = 64


def _sum_function(plaintexts):
    return sum(p[0] for p in plaintexts).to_bytes(4, "big")


def _majority_bit(plaintexts):
    ones = sum(1 for p in plaintexts if p[0])
    return b"\x01" if 2 * ones > len(plaintexts) else b"\x00"


@pytest.fixture
def setup(rng):
    params = ProtocolParameters()
    plan = random_corruption(N, params.max_corruptions(N), rng.fork("c"))
    return params, plan


class TestCorrectness:
    def test_sum(self, setup, rng):
        params, plan = setup
        inputs = {i: bytes([i % 5]) for i in range(N)}
        result = run_scalable_mpc(
            inputs, _sum_function, 4, plan, params, rng.fork("r")
        )
        assert result.all_honest_correct
        expected = sum(i % 5 for i in range(N)).to_bytes(4, "big")
        assert result.expected_output == expected

    def test_majority(self, setup, rng):
        params, plan = setup
        inputs = {i: (b"\x01" if i % 3 else b"\x00") for i in range(N)}
        result = run_scalable_mpc(
            inputs, _majority_bit, 1, plan, params, rng.fork("r")
        )
        assert result.all_honest_correct
        assert result.expected_output == b"\x01"

    def test_corrupt_input_substitution(self, setup, rng):
        params, plan = setup
        inputs = {i: b"\x01" for i in range(N)}
        result = run_scalable_mpc(
            inputs, _sum_function, 4, plan, params, rng.fork("r"),
            corrupt_input=lambda party, value: b"\x00",
        )
        assert result.all_honest_correct
        honest_count = len(plan.honest)
        assert result.expected_output == honest_count.to_bytes(4, "big")

    def test_every_honest_party_gets_output(self, setup, rng):
        params, plan = setup
        inputs = {i: bytes([1]) for i in range(N)}
        result = run_scalable_mpc(
            inputs, _sum_function, 4, plan, params, rng.fork("r")
        )
        for party in plan.honest:
            assert result.outputs[party] == result.expected_output


class TestModel:
    def test_oversized_corruption_rejected(self, rng):
        params = ProtocolParameters()
        plan = targeted_corruption(N, list(range(N // 3 + 1)))
        with pytest.raises(ProtocolError):
            run_scalable_mpc(
                {i: b"\x00" for i in range(N)}, _sum_function, 4,
                plan, params, rng,
            )


class TestCommunication:
    def test_total_scales_with_input_size(self, setup, rng):
        params, plan = setup
        small = run_scalable_mpc(
            {i: b"\x01" for i in range(N)}, _sum_function, 4,
            plan, params, rng.fork("a"),
        )
        large = run_scalable_mpc(
            {i: b"\x01" * 64 for i in range(N)},
            lambda plains: bytes([plains[0][0]]),
            4, plan, params, rng.fork("b"),
        )
        assert large.metrics.total_bits > 2 * small.metrics.total_bits

    def test_balanced_outside_committee(self, setup, rng):
        params, plan = setup
        result = run_scalable_mpc(
            {i: b"\x01" for i in range(N)}, _sum_function, 4,
            plan, params, rng.fork("r"),
        )
        # Mean per-party stays within polylog of the input size: the
        # total is n * polylog * ciphertext, so mean = polylog * ctxt.
        assert result.metrics.mean_bits_per_party < (
            result.metrics.total_bits / 4
        )
