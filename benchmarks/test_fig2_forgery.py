"""F2 — Figure 2: the SRDS forgery experiment, executed.

Runs Expt^forge for both constructions against every implemented forgery
adversary, plus the threshold-tightness sanity check: a coalition that
*illegally* exceeds the n/3 budget does forge, demonstrating the game
has teeth and the threshold is where the security lives.
"""

import pytest

from benchmarks.conftest import write_result
from repro.params import ProtocolParameters
from repro.pki.registry import PKIMode
from repro.srds import adversaries as adv
from repro.srds.base_sigs import HashRegistryBase
from repro.srds.experiments import run_forgery_experiment
from repro.srds.owf import OwfSRDS
from repro.srds.snark_based import SnarkSRDS
from repro.utils.randomness import Randomness

N, T, TRIALS = 64, 10, 5

SCHEMES = [
    ("owf/trusted-pki", lambda: OwfSRDS(message_bits=32), PKIMode.TRUSTED),
    ("snark/bare-pki", lambda: SnarkSRDS(base_scheme=HashRegistryBase()),
     PKIMode.BARE),
]

ADVERSARIES = [
    ("coalition", adv.CoalitionForgeryAdversary),
    ("replay", adv.ReplayForgeryAdversary),
    ("random-proof", adv.RandomProofForgeryAdversary),
]


def _run_grid():
    params = ProtocolParameters()
    results = {}
    for scheme_name, factory, mode in SCHEMES:
        for adv_name, adversary_cls in ADVERSARIES:
            wins = 0
            for trial in range(TRIALS):
                if run_forgery_experiment(
                    factory(), N, T, mode, adversary_cls(), params,
                    Randomness(2000 + trial),
                ):
                    wins += 1
            results[(scheme_name, adv_name)] = wins / TRIALS

    # Threshold tightness: a >majority coalition forges directly.
    rng = Randomness(3000)
    scheme = SnarkSRDS(base_scheme=HashRegistryBase())
    pp = scheme.setup(60, rng.fork("s"))
    vks, sks = {}, {}
    for i in range(60):
        vks[i], sks[i] = scheme.keygen(pp, rng.fork(f"k{i}"))
    message = b"illegal-majority"
    coalition = [scheme.sign(pp, i, sks[i], message) for i in range(40)]
    forged = scheme.aggregate(pp, vks, message, coalition)
    results[("snark/bare-pki", "ILLEGAL-majority-sanity")] = float(
        scheme.verify(pp, vks, message, forged)
    )
    return results


@pytest.mark.benchmark(group="fig2")
def test_fig2_forgery_experiment(benchmark, results_dir):
    results = benchmark.pedantic(_run_grid, rounds=1, iterations=1)

    lines = [
        f"Expt^forge (Fig. 2): n={N}, t={T}, {TRIALS} trials per cell",
        f"{'scheme':<18} {'adversary':<26} {'adversary win rate':>20}",
    ]
    for (scheme_name, adv_name), rate in sorted(results.items()):
        lines.append(f"{scheme_name:<18} {adv_name:<26} {rate:>19.0%}")
    write_result(results_dir, "fig2_forgery", "\n".join(lines))

    for (scheme_name, adv_name), rate in results.items():
        if adv_name.startswith("ILLEGAL"):
            # Sanity: an over-budget coalition must succeed.
            assert rate == 1.0
        else:
            assert rate == 0.0, f"forgery in cell {(scheme_name, adv_name)}"
