"""SRDS in the registered-PKI model: the "natural approach" of §1.2.

The paper discusses an intermediate setup model — *registered PKI*,
where parties choose their own keys but must prove knowledge of the
secret key to publish (footnote 13) — and the natural SRDS candidate in
it: take a multi-signature (constructible from falsifiable assumptions
in registered PKI, e.g. LOSSW'13) and augment it "with some method of
succinctly convincing the verifier that a given multi-signature is
composed of signatures from sufficiently many parties".  The full
version then shows this method *necessitates* SNARG-like tools.

This module is that candidate, built and plugged into the same SRDS
interface pi_ba consumes.  Base signatures are XOR-homomorphic
designated-verifier tags (the HashRegistry substitution recorded in
DESIGN.md); aggregation combines tags and certifies the contributor
*count* with two SNARG relations in the PCD pattern of Thm 2.8:

* **leaf**: "I know ``count`` distinct valid per-party tags with indices
  in ``[lo, hi]`` XOR-ing to the combined tag" — validity of a tag is
  checked against the party's registered key;
* **internal**: "I know child certificates with verifying proofs and
  pairwise-disjoint index ranges whose counts sum to ``count`` and whose
  tags XOR to the combined tag."

The visible moral of the construction (= the paper's barrier): strip the
SNARG out and the only ways left to convince a verifier of the count are
shipping the Theta(n) contributor list (the multisig bitmap baseline) or
having it solve an average-case Subset-XOR instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.prf import prf
from repro.crypto.snark import Proof, SnarkSystem
from repro.errors import (
    MALFORMED_INPUT_ERRORS,
    ConfigurationError,
    SignatureError,
)
from repro.pki.registry import PKIMode
from repro.srds.base import (
    PublicParameters,
    SRDSScheme,
    SRDSSignature,
    ensure_same_message_space,
)
from repro.utils.serialization import (
    canonical_tuple,
    decode_sequence,
    decode_uint,
    encode_sequence,
    encode_uint,
)

_LEAF_RELATION = "registered-srds/leaf"
_INTERNAL_RELATION = "registered-srds/internal"
TAG_BYTES = 32


def _xor(left: bytes, right: bytes) -> bytes:
    return bytes(a ^ b for a, b in zip(left, right))


def proof_of_possession(secret: bytes, verification_key: bytes) -> bytes:
    """The registered-PKI PoP: a tag only the secret holder can form."""
    return prf(secret, "registered-srds/pop", verification_key)


@dataclass(frozen=True)
class RegisteredBaseSignature(SRDSSignature):
    """A base contribution: index + message-bound multisig tag."""

    index: int
    tag: bytes

    @property
    def min_index(self) -> int:
        return self.index

    @property
    def max_index(self) -> int:
        return self.index

    def _base_marker(self) -> bool:
        return True

    def encode(self) -> bytes:
        return encode_uint(self.index) + self.tag


@dataclass(frozen=True)
class RegisteredAggregateSignature(SRDSSignature):
    """A constant-size aggregate: combined tag, count, range, proof.

    ``board_digest`` binds the aggregate to the exact bulletin-board
    snapshot it was formed against (the public input of the relation):
    a tag is only valid if the secret behind it belongs to the key
    registered at that index on *that* board.
    """

    combined_tag: bytes
    count: int
    lo: int
    hi: int
    message_digest: bytes
    board_digest: bytes
    proof: Proof

    @property
    def min_index(self) -> int:
        return self.lo

    @property
    def max_index(self) -> int:
        return self.hi

    def encode(self) -> bytes:
        return canonical_tuple(
            encode_uint(self.count),
            encode_uint(self.lo),
            encode_uint(self.hi),
            self.combined_tag,
            self.message_digest,
            self.board_digest,
            self.proof.encode(),
        )

    def statement(self) -> bytes:
        """The statement both relations attest to."""
        return canonical_tuple(
            self.message_digest,
            encode_uint(self.count),
            encode_uint(self.lo),
            encode_uint(self.hi),
            self.combined_tag,
            self.board_digest,
        )


@dataclass(frozen=True)
class FilteredItem:
    """Aggregate1 output item: a validated contribution plus context.

    Carries the message and board fingerprint Aggregate2 needs (keeping
    its circuit free of the n-key board, per Def. 2.2) while exposing the
    ``encode``/``min_index``/``max_index`` surface the committee
    functionality (f_aggr-sig majority filter) and the Fig. 3 range
    checks consume.
    """

    kind: str                     # "base" | "agg"
    payload: object
    message: bytes
    board_digest: bytes

    def encode(self) -> bytes:
        return self.payload.encode()

    @property
    def min_index(self) -> int:
        return self.payload.min_index

    @property
    def max_index(self) -> int:
        return self.payload.max_index


class RegisteredSRDS(SRDSScheme):
    """SRDS from multisig tags + subset-SNARG, registered PKI + CRS."""

    name = "srds-registered-multisig-snarg"
    pki_mode = PKIMode.REGISTERED
    assumptions = "multisig+subset-snarg"
    needs_crs = True

    def __init__(self) -> None:
        self._secrets_by_vk: Dict[bytes, bytes] = {}
        # O(1) lookup path for tags produced by this deployment's sign();
        # the relation falls back to a registry scan for foreign tags.
        self._tag_origins: Dict[Tuple[int, bytes], bytes] = {}
        # Bulletin-board snapshots by digest: the relations' public input.
        self._boards: Dict[bytes, Dict[int, bytes]] = {}
        self._board_digest_memo: Dict[Tuple[int, int], bytes] = {}

    def _register_board(self, verification_keys: Dict[int, bytes]) -> bytes:
        """Fingerprint (and cache) a bulletin-board snapshot.

        Fingerprinting is Theta(n); pi_ba consults the board at every
        tree node, so the digest is memoized on the dict identity (the
        board is immutable within a run — mutations arrive as new dicts,
        e.g. in the key-replacement experiments).
        """
        identity = (id(verification_keys), len(verification_keys))
        cached = self._board_digest_memo.get(identity)
        if cached is not None:
            return cached
        items = sorted(verification_keys.items())
        digest = prf(
            b"", "registered-srds/board",
            *[encode_uint(index) + key for index, key in items],
        )
        self._boards.setdefault(digest, dict(verification_keys))
        self._board_digest_memo[identity] = digest
        return digest

    # -- Def. 2.1 algorithms ---------------------------------------------------

    def setup(self, num_parties: int, rng) -> PublicParameters:
        if num_parties < 2:
            raise ConfigurationError("need at least 2 parties")
        snark_system = SnarkSystem(crs_seed=rng.random_bytes(32))
        scheme = self

        def leaf_relation(statement: bytes, witness: bytes) -> bool:
            return scheme._check_leaf(statement, witness)

        def internal_relation(statement: bytes, witness: bytes) -> bool:
            return scheme._check_internal(statement, witness, snark_system)

        snark_system.register_relation(_LEAF_RELATION, leaf_relation)
        snark_system.register_relation(_INTERNAL_RELATION, internal_relation)
        return PublicParameters(
            num_parties=num_parties,
            security_bits=256,
            acceptance_threshold=num_parties // 2 + 1,
            extra={"snark": snark_system},
        )

    def keygen(self, pp: PublicParameters, rng) -> Tuple[bytes, object]:
        """Local keygen; registration carries a proof of possession."""
        secret = rng.random_bytes(32)
        verification_key = prf(secret, "registered-srds/vk")
        self._secrets_by_vk[verification_key] = secret
        return verification_key, secret

    def pop_check(self, verification_key: bytes, pop: bytes) -> bool:
        """The knowledge check a registered-PKI bulletin board runs."""
        secret = self._secrets_by_vk.get(verification_key)
        if secret is None:
            return False
        return proof_of_possession(secret, verification_key) == pop

    def sign(
        self,
        pp: PublicParameters,
        index: int,
        signing_key: object,
        message: bytes,
    ) -> Optional[RegisteredBaseSignature]:
        message = ensure_same_message_space(message)
        if signing_key is None:
            return None
        if not isinstance(signing_key, bytes):
            raise SignatureError("wrong signing-key type for RegisteredSRDS")
        tag = prf(signing_key, "registered-srds/tag",
                  encode_uint(index), message)
        self._tag_origins[(index, tag)] = signing_key
        return RegisteredBaseSignature(index=index, tag=tag)

    def _tag_valid(self, verification_key: Optional[bytes], index: int,
                   message: bytes, tag: bytes) -> bool:
        if verification_key is None:
            return False
        secret = self._secrets_by_vk.get(verification_key)
        if secret is None:
            return False
        expected = prf(
            secret, "registered-srds/tag", encode_uint(index), message
        )
        return expected == tag

    def aggregate1(
        self,
        pp: PublicParameters,
        verification_keys: Dict[int, bytes],
        message: bytes,
        signatures: Sequence[SRDSSignature],
    ) -> List[object]:
        """Validate base tags against the board; keep disjoint aggregates.

        Each surviving base signature is wrapped with (index, message) so
        Aggregate2's circuit never touches the n-key board (Def. 2.2) —
        validity travels as the SNARG witness.
        """
        message = ensure_same_message_space(message)
        snark_system: SnarkSystem = pp.extra["snark"]
        digest = prf(b"", "registered-srds/msg", message)
        board_digest = self._register_board(verification_keys)
        bases: Dict[int, RegisteredBaseSignature] = {}
        aggregates: List[RegisteredAggregateSignature] = []
        for signature in signatures:
            if isinstance(signature, RegisteredBaseSignature):
                if not 0 <= signature.index < pp.num_parties:
                    continue
                if signature.index in bases:
                    continue
                if self._tag_valid(
                    verification_keys.get(signature.index),
                    signature.index, message, signature.tag,
                ):
                    bases[signature.index] = signature
            elif isinstance(signature, RegisteredAggregateSignature):
                if signature.message_digest != digest:
                    continue
                if signature.board_digest != board_digest:
                    continue
                statement = signature.statement()
                if (
                    snark_system.verify(_LEAF_RELATION, statement,
                                        signature.proof)
                    or snark_system.verify(_INTERNAL_RELATION, statement,
                                           signature.proof)
                ):
                    aggregates.append(signature)
            else:
                raise SignatureError(
                    f"foreign signature type {type(signature).__name__}"
                )
        aggregates.sort(key=lambda a: (-a.count, a.lo, a.hi))
        chosen: List[RegisteredAggregateSignature] = []
        for aggregate in aggregates:
            if all(
                aggregate.hi < other.lo or other.hi < aggregate.lo
                for other in chosen
            ):
                chosen.append(aggregate)
        survivors = [
            FilteredItem("base", bases[index], message, board_digest)
            for index in sorted(bases)
            if all(not (agg.lo <= index <= agg.hi) for agg in chosen)
        ]
        return survivors + [
            FilteredItem("agg", aggregate, message, board_digest)
            for aggregate in chosen
        ]

    def aggregate2(
        self,
        pp: PublicParameters,
        message: bytes,
        filtered: Sequence[object],
    ) -> Optional[RegisteredAggregateSignature]:
        message = ensure_same_message_space(message)
        snark_system: SnarkSystem = pp.extra["snark"]
        digest = prf(b"", "registered-srds/msg", message)
        bases: List[RegisteredBaseSignature] = []
        aggregates: List[RegisteredAggregateSignature] = []
        board_digest = None
        for item in filtered:
            if not isinstance(item, FilteredItem):
                continue
            board_digest = item.board_digest
            if item.kind == "base":
                bases.append(item.payload)
            else:
                aggregates.append(item.payload)
        if board_digest is None:
            return None
        parts = list(aggregates)
        if bases:
            parts.append(self._prove_leaf(snark_system, digest, message,
                                          bases, board_digest))
        if not parts:
            return None
        if len(parts) == 1:
            return parts[0]
        return self._prove_internal(snark_system, digest, parts,
                                    board_digest)

    def _prove_leaf(
        self,
        snark_system: SnarkSystem,
        digest: bytes,
        message: bytes,
        bases: List[RegisteredBaseSignature],
        board_digest: bytes,
    ) -> RegisteredAggregateSignature:
        ordered = sorted(bases, key=lambda b: b.index)
        combined = bytes(TAG_BYTES)
        for base in ordered:
            combined = _xor(combined, base.tag)
        aggregate = RegisteredAggregateSignature(
            combined_tag=combined,
            count=len(ordered),
            lo=ordered[0].index,
            hi=ordered[-1].index,
            message_digest=digest,
            board_digest=board_digest,
            proof=Proof(relation_name=_LEAF_RELATION, tag=b""),
        )
        witness = canonical_tuple(
            message,
            encode_sequence([base.encode() for base in ordered]),
        )
        proof = snark_system.prove(
            _LEAF_RELATION, aggregate.statement(), witness
        )
        return RegisteredAggregateSignature(
            combined_tag=aggregate.combined_tag,
            count=aggregate.count,
            lo=aggregate.lo,
            hi=aggregate.hi,
            message_digest=digest,
            board_digest=board_digest,
            proof=proof,
        )

    def _prove_internal(
        self,
        snark_system: SnarkSystem,
        digest: bytes,
        parts: List[RegisteredAggregateSignature],
        board_digest: bytes,
    ) -> RegisteredAggregateSignature:
        ordered = sorted(parts, key=lambda a: a.lo)
        combined = bytes(TAG_BYTES)
        for part in ordered:
            combined = _xor(combined, part.combined_tag)
        aggregate = RegisteredAggregateSignature(
            combined_tag=combined,
            count=sum(part.count for part in ordered),
            lo=ordered[0].lo,
            hi=ordered[-1].hi,
            message_digest=digest,
            board_digest=board_digest,
            proof=Proof(relation_name=_INTERNAL_RELATION, tag=b""),
        )
        witness = encode_sequence([part.encode() for part in ordered])
        proof = snark_system.prove(
            _INTERNAL_RELATION, aggregate.statement(), witness
        )
        return RegisteredAggregateSignature(
            combined_tag=aggregate.combined_tag,
            count=aggregate.count,
            lo=aggregate.lo,
            hi=aggregate.hi,
            message_digest=digest,
            board_digest=board_digest,
            proof=proof,
        )

    def verify(
        self,
        pp: PublicParameters,
        verification_keys: Dict[int, bytes],
        message: bytes,
        signature: SRDSSignature,
    ) -> bool:
        message = ensure_same_message_space(message)
        if not isinstance(signature, RegisteredAggregateSignature):
            return False
        snark_system: SnarkSystem = pp.extra["snark"]
        if signature.message_digest != prf(
            b"", "registered-srds/msg", message
        ):
            return False
        if signature.board_digest != self._register_board(verification_keys):
            return False
        statement = signature.statement()
        proof_ok = snark_system.verify(
            _LEAF_RELATION, statement, signature.proof
        ) or snark_system.verify(_INTERNAL_RELATION, statement,
                                 signature.proof)
        return proof_ok and signature.count >= pp.acceptance_threshold

    # -- SNARG relations ----------------------------------------------------------

    def _check_leaf(self, statement: bytes, witness: bytes) -> bool:
        decoded = _decode_statement(statement)
        if decoded is None:
            return False
        digest, count, lo, hi, combined, board_digest = decoded
        board = self._boards.get(board_digest)
        if board is None:
            return False
        try:
            fields, _ = decode_sequence(witness, 0)
            message, encoded_bases_blob = fields
            encoded_bases, _ = decode_sequence(encoded_bases_blob, 0)
        except MALFORMED_INPUT_ERRORS:
            return False
        if prf(b"", "registered-srds/msg", message) != digest:
            return False
        if len(encoded_bases) != count or count == 0:
            return False
        seen = set()
        running = bytes(TAG_BYTES)
        indices = []
        for blob in encoded_bases:
            try:
                index, pos = decode_uint(blob, 0)
                tag = blob[pos:]
            except MALFORMED_INPUT_ERRORS:
                return False
            if len(tag) != TAG_BYTES or index in seen:
                return False
            seen.add(index)
            if not lo <= index <= hi:
                return False
            # Tag validity against the key registered at this index on
            # the statement's board: the relation plays the multisig
            # verification circuit, with the board as public input.
            if not self._tag_valid(board.get(index), index, message, tag):
                return False
            running = _xor(running, tag)
            indices.append(index)
        if min(indices) != lo or max(indices) != hi:
            return False
        return running == combined

    def _check_internal(self, statement: bytes, witness: bytes,
                        snark_system: SnarkSystem) -> bool:
        decoded = _decode_statement(statement)
        if decoded is None:
            return False
        digest, count, lo, hi, combined, board_digest = decoded
        try:
            encoded_children, _ = decode_sequence(witness, 0)
        except MALFORMED_INPUT_ERRORS:
            return False
        if not encoded_children:
            return False
        children = []
        for blob in encoded_children:
            child = decode_aggregate(blob)
            if child is None or child.message_digest != digest:
                return False
            if child.board_digest != board_digest:
                return False
            child_statement = child.statement()
            if not (
                snark_system.verify(_LEAF_RELATION, child_statement,
                                    child.proof)
                or snark_system.verify(_INTERNAL_RELATION, child_statement,
                                       child.proof)
            ):
                return False
            children.append(child)
        for first, second in zip(children, children[1:]):
            if first.hi >= second.lo:
                return False
        if sum(child.count for child in children) != count:
            return False
        if children[0].lo != lo or children[-1].hi != hi:
            return False
        running = bytes(TAG_BYTES)
        for child in children:
            running = _xor(running, child.combined_tag)
        return running == combined


def _decode_statement(statement: bytes):
    try:
        fields, _ = decode_sequence(statement, 0)
        if len(fields) != 6:
            return None
        digest = fields[0]
        count, _ = decode_uint(fields[1], 0)
        lo, _ = decode_uint(fields[2], 0)
        hi, _ = decode_uint(fields[3], 0)
        combined = fields[4]
        board_digest = fields[5]
        if len(combined) != TAG_BYTES:
            return None
    except MALFORMED_INPUT_ERRORS:
        return None
    return digest, count, lo, hi, combined, board_digest


def decode_aggregate(data: bytes) -> Optional[RegisteredAggregateSignature]:
    """Decode an aggregate from its wire form (None on malformed)."""
    try:
        fields, _ = decode_sequence(data, 0)
        if len(fields) != 7:
            return None
        count, _ = decode_uint(fields[0], 0)
        lo, _ = decode_uint(fields[1], 0)
        hi, _ = decode_uint(fields[2], 0)
        combined = fields[3]
        digest = fields[4]
        board_digest = fields[5]
        proof_tag = fields[6]
    except MALFORMED_INPUT_ERRORS:
        return None
    return RegisteredAggregateSignature(
        combined_tag=combined,
        count=count,
        lo=lo,
        hi=hi,
        message_digest=digest,
        board_digest=board_digest,
        proof=Proof(relation_name=_LEAF_RELATION, tag=proof_tag),
    )
