"""Schnorr signatures over secp256k1.

These serve as the per-party "base" signatures in the SNARK-based SRDS
construction (Thm 2.8): every party locally generates a key pair (bare
PKI) and signs the agreed pair ``(y, s)``.  The scheme is the standard
Fiat-Shamir Schnorr with RFC-6979-style deterministic nonces (derived by
hashing the secret key and message) so signing is reproducible and never
reuses a nonce.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import ec
from repro.crypto.hashing import hash_to_int
from repro.errors import KeyError_
from repro.utils.serialization import (
    fixed_bytes_to_int,
    int_to_fixed_bytes,
)


@dataclass(frozen=True)
class SchnorrKeyPair:
    """A Schnorr key pair: secret scalar and public point."""

    secret: int
    public: ec.Point

    @property
    def public_bytes(self) -> bytes:
        """Compressed public key (33 bytes)."""
        return self.public.encode()


@dataclass(frozen=True)
class SchnorrSignature:
    """A Schnorr signature (R, s); 65 bytes on the wire."""

    nonce_point: ec.Point
    response: int

    def encode(self) -> bytes:
        """Canonical 65-byte encoding."""
        return self.nonce_point.encode() + int_to_fixed_bytes(self.response, 32)

    @classmethod
    def decode(cls, data: bytes) -> "SchnorrSignature":
        """Inverse of :meth:`encode`."""
        if len(data) != 65:
            raise KeyError_("malformed Schnorr signature encoding")
        return cls(
            nonce_point=ec.decode_point(data[:33]),
            response=fixed_bytes_to_int(data[33:]),
        )


def keygen(rng) -> SchnorrKeyPair:
    """Generate a key pair from a :class:`Randomness` source."""
    secret = 1 + rng.random_int(ec.N - 1)
    return SchnorrKeyPair(secret=secret, public=ec.commit(secret))


def _challenge(nonce_point: ec.Point, public: ec.Point, message: bytes) -> int:
    return hash_to_int(
        "schnorr/challenge", nonce_point.encode(), public.encode(), message
    ) % ec.N


def sign(keypair: SchnorrKeyPair, message: bytes) -> SchnorrSignature:
    """Sign a message (deterministic nonce derivation)."""
    nonce = hash_to_int(
        "schnorr/nonce", int_to_fixed_bytes(keypair.secret, 32), message
    ) % ec.N
    if nonce == 0:
        nonce = 1
    nonce_point = ec.commit(nonce)
    challenge = _challenge(nonce_point, keypair.public, message)
    response = (nonce + challenge * keypair.secret) % ec.N
    return SchnorrSignature(nonce_point=nonce_point, response=response)


def verify(public: ec.Point, message: bytes, signature: SchnorrSignature) -> bool:
    """Verify a Schnorr signature; returns False on any failure."""
    if public.is_identity() or not ec.is_on_curve(public):
        return False
    if not 0 <= signature.response < ec.N:
        return False
    challenge = _challenge(signature.nonce_point, public, message)
    lhs = ec.commit(signature.response)
    rhs = ec.point_add(
        signature.nonce_point, ec.scalar_mult(challenge, public)
    )
    return lhs == rhs
