"""E9 — Corollary 1.2(2): MPC with n·polylog·(l_in + l_out) total bits.

Two sweeps: total communication vs n at fixed input size (the per-party
average must be polylog — total/n flat-ish), and total communication vs
input length at fixed n (linear in l_in, the ciphertext payload).
"""

import pytest

from benchmarks.conftest import write_result
from repro.analysis.scaling import classify_growth, fit_power_law
from repro.analysis.tables import format_bits
from repro.net.adversary import random_corruption
from repro.params import ProtocolParameters
from repro.mpc.scalable_mpc import run_scalable_mpc
from repro.utils.randomness import Randomness

NS = [64, 128, 256, 512]
INPUT_SIZES = [1, 8, 32, 128]
PARAMS = ProtocolParameters()


def _sum_first_bytes(plaintexts):
    return (sum(p[0] for p in plaintexts) % 256).to_bytes(1, "big")


def _sweep():
    rng = Randomness(66)
    by_n = []
    for n in NS:
        plan = random_corruption(
            n, PARAMS.max_corruptions(n), rng.fork(f"c{n}")
        )
        result = run_scalable_mpc(
            {i: b"\x01" for i in range(n)}, _sum_first_bytes, 1,
            plan, PARAMS, rng.fork(f"r{n}"),
        )
        assert result.all_honest_correct
        by_n.append(result.metrics)

    n = 128
    plan = random_corruption(n, PARAMS.max_corruptions(n), rng.fork("ci"))
    by_input = []
    for size in INPUT_SIZES:
        result = run_scalable_mpc(
            {i: bytes([1] * size) for i in range(n)}, _sum_first_bytes, 1,
            plan, PARAMS, rng.fork(f"ri{size}"),
        )
        assert result.all_honest_correct
        by_input.append(result.metrics)
    return by_n, by_input


@pytest.mark.benchmark(group="mpc")
def test_mpc_corollary(benchmark, results_dir):
    by_n, by_input = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    per_party_avg = [m.total_bits / n for n, m in zip(NS, by_n)]
    lines = ["E9 — Corollary 1.2(2): scalable MPC totals", "",
             f"{'n':>6} {'total bits':>12} {'avg/party':>12}"]
    for n, metrics, avg in zip(NS, by_n, per_party_avg):
        lines.append(
            f"{n:>6} {format_bits(metrics.total_bits):>12} "
            f"{format_bits(avg):>12}"
        )
    lines.append("")
    lines.append(f"{'l_in (B)':>9} {'total bits (n=128)':>19}")
    for size, metrics in zip(INPUT_SIZES, by_input):
        lines.append(f"{size:>9} {format_bits(metrics.total_bits):>19}")

    avg_class = classify_growth(NS, per_party_avg)
    input_fit = fit_power_law(
        INPUT_SIZES, [m.total_bits for m in by_input]
    )
    lines.append("")
    lines.append(f"avg-per-party growth class: {avg_class}")
    lines.append(f"total vs l_in exponent: {input_fit.exponent:.2f}")
    write_result(results_dir, "mpc_corollary", "\n".join(lines))

    # Total = n * polylog * (l_in + l_out): the per-party average must be
    # genuinely sublinear (polylog window shape).
    assert avg_class in ("polylog", "sublinear", "sqrt-like")
    avg_fit = fit_power_law(NS, per_party_avg)
    assert avg_fit.exponent < 0.85
    # Linear in the input length once the payload dominates the fixed
    # per-ciphertext overhead.
    large_ratio = by_input[-1].total_bits / by_input[-2].total_bits
    assert 2.0 < large_ratio < 4.5  # l_in 32 -> 128 with 64B overhead
