"""Executable companions to the paper's lower bounds (Thms 1.3, 1.4)."""

from repro.lowerbounds import crs_attack, owf_attack

__all__ = ["crs_attack", "owf_attack"]
