"""Graph fixture: an island module outside the cycle."""


def gamma():
    return 3
