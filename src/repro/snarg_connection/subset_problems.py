"""The NP-complete subset family behind the paper's SNARG barrier.

§1.2 ("Connections to succinct arguments"): a natural route to SRDS in
weak PKI models is to augment a multi-signature with a succinct proof
that sufficiently many parties contributed — and the paper shows this
*necessitates* average-case succinct arguments for a particular type of
NP-complete problems "generalizing Subset-Sum and Subset-Product".

This module makes that family concrete and executable: the
*group subset problem* over a commutative group G —

    given elements g_1..g_n in G, a target T, and a count k:
    is there a size-k subset S of [n] with  (+)_{i in S} g_i = T ?

Instantiating G = (Z_M, +) gives Subset-Sum; G = (Z_M*, *) gives
Subset-Product; G = GF(2)^256 with XOR gives the instance class that
XOR-homomorphic multi-signature counting induces (see
:mod:`repro.snarg_connection.multisig_link`).  Average-case instances
are sampled with a planted solution, matching the distribution the
reduction produces from honestly generated signature tags.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from itertools import combinations
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.utils.randomness import Randomness
from repro.utils.serialization import (
    canonical_tuple,
    encode_uint,
    int_to_fixed_bytes,
)


class CommutativeGroup(abc.ABC):
    """A finite commutative group: the carrier of a subset problem."""

    name: str = "abstract"

    @abc.abstractmethod
    def identity(self) -> object:
        """The neutral element."""

    @abc.abstractmethod
    def combine(self, left: object, right: object) -> object:
        """The group operation."""

    @abc.abstractmethod
    def random_element(self, rng: Randomness) -> object:
        """A uniform element."""

    @abc.abstractmethod
    def encode(self, element: object) -> bytes:
        """Canonical byte encoding."""

    def combine_all(self, elements: Sequence[object]) -> object:
        """Fold the operation over a sequence."""
        accumulator = self.identity()
        for element in elements:
            accumulator = self.combine(accumulator, element)
        return accumulator


class AdditiveGroup(CommutativeGroup):
    """(Z_M, +) — the Subset-Sum carrier."""

    name = "additive"

    def __init__(self, modulus: int) -> None:
        if modulus < 2:
            raise ConfigurationError("modulus must be at least 2")
        self.modulus = modulus

    def identity(self) -> int:
        return 0

    def combine(self, left: int, right: int) -> int:
        return (left + right) % self.modulus

    def random_element(self, rng: Randomness) -> int:
        return rng.random_int(self.modulus)

    def encode(self, element: int) -> bytes:
        width = (self.modulus.bit_length() + 7) // 8
        return int_to_fixed_bytes(element, max(1, width))


class MultiplicativeGroup(CommutativeGroup):
    """(Z_P^*, *) for prime P — the Subset-Product carrier."""

    name = "multiplicative"

    def __init__(self, prime_modulus: int) -> None:
        if prime_modulus < 3:
            raise ConfigurationError("prime modulus must exceed 2")
        self.modulus = prime_modulus

    def identity(self) -> int:
        return 1

    def combine(self, left: int, right: int) -> int:
        return left * right % self.modulus

    def random_element(self, rng: Randomness) -> int:
        return 1 + rng.random_int(self.modulus - 1)

    def encode(self, element: int) -> bytes:
        width = (self.modulus.bit_length() + 7) // 8
        return int_to_fixed_bytes(element, max(1, width))


class XorGroup(CommutativeGroup):
    """GF(2)^(8*width) under XOR — what multisig tags live in."""

    name = "xor"

    def __init__(self, width_bytes: int = 32) -> None:
        if width_bytes < 1:
            raise ConfigurationError("width must be positive")
        self.width_bytes = width_bytes

    def identity(self) -> bytes:
        return bytes(self.width_bytes)

    def combine(self, left: bytes, right: bytes) -> bytes:
        return bytes(a ^ b for a, b in zip(left, right))

    def random_element(self, rng: Randomness) -> bytes:
        return rng.random_bytes(self.width_bytes)

    def encode(self, element: bytes) -> bytes:
        return element


@dataclass(frozen=True)
class SubsetInstance:
    """One instance of the group subset problem."""

    group: CommutativeGroup
    elements: Tuple[object, ...]
    target: object
    subset_size: int

    def statement_bytes(self) -> bytes:
        """Canonical statement encoding (what a SNARG signs off on)."""
        return canonical_tuple(
            self.group.name.encode("utf-8"),
            encode_uint(len(self.elements)),
            encode_uint(self.subset_size),
            self.group.encode(self.target),
            *[self.group.encode(element) for element in self.elements],
        )

    def check_witness(self, indices: Sequence[int]) -> bool:
        """Verify a claimed size-k subset (the NP verifier)."""
        index_list = list(indices)
        if len(index_list) != self.subset_size:
            return False
        if len(set(index_list)) != len(index_list):
            return False
        if any(not 0 <= i < len(self.elements) for i in index_list):
            return False
        combined = self.group.combine_all(
            [self.elements[i] for i in index_list]
        )
        return self.group.encode(combined) == self.group.encode(self.target)


def sample_planted_instance(
    group: CommutativeGroup,
    n: int,
    subset_size: int,
    rng: Randomness,
) -> Tuple[SubsetInstance, List[int]]:
    """Average-case instance with a planted solution.

    All n elements are uniform; the target is the combination of a
    uniformly random size-k subset.  This is exactly the distribution
    induced by honestly generated multisignature tags (uniform PRF
    outputs) and an honest aggregation of k of them.
    """
    if not 0 < subset_size <= n:
        raise ConfigurationError("subset size must lie in [1, n]")
    elements = tuple(group.random_element(rng) for _ in range(n))
    witness = sorted(rng.sample(range(n), subset_size))
    target = group.combine_all([elements[i] for i in witness])
    return (
        SubsetInstance(
            group=group, elements=elements, target=target,
            subset_size=subset_size,
        ),
        witness,
    )


def solve_brute_force(
    instance: SubsetInstance, limit_combinations: int = 2_000_000
) -> Optional[List[int]]:
    """Exact solver by exhaustive search (the problem is NP-complete;
    this is for small test instances only).

    Raises :class:`ConfigurationError` if the search space exceeds the
    limit, so tests cannot accidentally explode.
    """
    from math import comb

    n = len(instance.elements)
    k = instance.subset_size
    if comb(n, k) > limit_combinations:
        raise ConfigurationError(
            f"C({n},{k}) exceeds the brute-force limit"
        )
    for candidate in combinations(range(n), k):
        if instance.check_witness(candidate):
            return list(candidate)
    return None


def encode_witness(indices: Sequence[int]) -> bytes:
    """Canonical witness encoding for argument systems."""
    return canonical_tuple(*[encode_uint(i) for i in sorted(indices)])


def decode_witness(data: bytes) -> List[int]:
    """Inverse of :func:`encode_witness`."""
    from repro.utils.serialization import decode_sequence, decode_uint

    encoded, _ = decode_sequence(data, 0)
    indices = []
    for blob in encoded:
        value, _ = decode_uint(blob, 0)
        indices.append(value)
    return indices
