"""Event-driven asyncio execution layer with fault injection and tracing.

The runtime runs the repo's existing :class:`~repro.net.party.Party`
state machines — unchanged — over an asyncio event loop:

* :mod:`repro.runtime.transport` — the :class:`Transport` abstraction:
  in-process :class:`AsyncLocalTransport` and loopback-socket
  :class:`TcpTransport`, both charging the shared metrics ledger;
* :mod:`repro.runtime.synchronizer` — :class:`RoundSynchronizer`, the
  round barrier that recovers the paper's synchronous model (§1) and the
  :func:`run_parties` facade;
* :mod:`repro.runtime.faults` — seeded, reproducible crash / delay /
  reorder / duplication / partition injection (:class:`FaultPlan`);
* :mod:`repro.runtime.trace` — per-party JSONL execution traces;
* :mod:`repro.runtime.replay` — wire replay of metered (hybrid-model)
  executions such as π_ba;
* :mod:`repro.runtime.drivers` — event-driven twins of the synchronous
  protocol drivers.

See ``docs/runtime.md`` for the architecture and the differential
guarantees tying the runtime to :class:`SynchronousNetwork`.

Re-exports resolve lazily (PEP 562): cluster workers import
:class:`Frame` through :mod:`repro.runtime.transport` on every process
spawn and must not pay for the protocol drivers in
:mod:`repro.runtime.drivers`.
"""

from typing import TYPE_CHECKING, List

#: Lazily re-exported name -> defining module.
_EXPORTS = {
    "run_balanced_ba_runtime": "repro.runtime.drivers",
    "run_gradecast_runtime": "repro.runtime.drivers",
    "run_phase_king_runtime": "repro.runtime.drivers",
    "FaultPlan": "repro.runtime.faults",
    "LinkDelay": "repro.runtime.faults",
    "Partition": "repro.runtime.faults",
    "adversarial_schedule": "repro.runtime.faults",
    "churn_schedule": "repro.runtime.faults",
    "crash_corrupted": "repro.runtime.faults",
    "crash_everyone": "repro.runtime.faults",
    "partition_halves": "repro.runtime.faults",
    "RecordingLedger": "repro.runtime.replay",
    "ReplayParty": "repro.runtime.replay",
    "ReplayScript": "repro.runtime.replay",
    "replay_over_simulator": "repro.runtime.replay",
    "tallies_equal": "repro.runtime.replay",
    "RoundSynchronizer": "repro.runtime.synchronizer",
    "RuntimeResult": "repro.runtime.synchronizer",
    "run_parties": "repro.runtime.synchronizer",
    "run_parties_async": "repro.runtime.synchronizer",
    "TraceRecorder": "repro.runtime.trace",
    "load_jsonl": "repro.runtime.trace",
    "wall_clock_recorder": "repro.runtime.trace",
    "AsyncLocalTransport": "repro.runtime.transport",
    "Frame": "repro.runtime.transport",
    "TcpTransport": "repro.runtime.transport",
    "Transport": "repro.runtime.transport",
    "make_transport": "repro.runtime.transport",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # static importers see the eager names
    from repro.runtime.drivers import (
        run_balanced_ba_runtime,
        run_gradecast_runtime,
        run_phase_king_runtime,
    )
    from repro.runtime.faults import (
        FaultPlan,
        LinkDelay,
        Partition,
        adversarial_schedule,
        churn_schedule,
        crash_corrupted,
        crash_everyone,
        partition_halves,
    )
    from repro.runtime.replay import (
        RecordingLedger,
        ReplayParty,
        ReplayScript,
        replay_over_simulator,
        tallies_equal,
    )
    from repro.runtime.synchronizer import (
        RoundSynchronizer,
        RuntimeResult,
        run_parties,
        run_parties_async,
    )
    from repro.runtime.trace import TraceRecorder, load_jsonl, wall_clock_recorder
    from repro.runtime.transport import (
        AsyncLocalTransport,
        Frame,
        TcpTransport,
        Transport,
        make_transport,
    )


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(__all__))
