"""Assemble the benchmark result records into one experiment report.

``pytest benchmarks/ --benchmark-only`` drops one text record per
experiment under ``benchmarks/results/``; this module stitches them into
a single document (the measured companion to EXPERIMENTS.md) so a
downstream user can regenerate and read everything in one place:

    python -m repro report [output-path]
"""

from __future__ import annotations

import pathlib
from typing import List, Optional, Tuple

# Display order and titles for the known experiment records.
_SECTIONS: List[Tuple[str, str]] = [
    ("table1", "T1 — Table 1: max communication per party"),
    ("fig1_robustness", "F1 — Figure 1: robustness experiment"),
    ("fig2_forgery", "F2 — Figure 2: forgery experiment"),
    ("fig3_protocol", "F3 — Figure 3: pi_ba end to end"),
    ("scaling_per_party", "E1 — balanced per-party communication"),
    ("lb_crs", "E2 — Thm 1.3: CRS-model lower bound"),
    ("lb_owf", "E3 — Thm 1.4: OWF necessity"),
    ("broadcast_amortized", "E4 — Corollary 1.2(1): broadcast"),
    ("srds_micro_sizes", "E5a — SRDS aggregate sizes"),
    ("srds_micro_filter", "E5b — Aggregate1 output size"),
    ("aetree", "E6 — tree combinatorics"),
    ("ablation_ranges", "E7 — range-check ablation"),
    ("ablation_sortition", "E8 — sortition-factor sweep"),
    ("mpc_corollary", "E9 — Corollary 1.2(2): MPC"),
    ("snarg_connection", "E10 — SNARG connection"),
    ("ablation_ots", "E11 — OTS choice ablation"),
    ("ablation_oblivious", "E12 — oblivious-keygen ablation"),
]


def default_results_dir() -> pathlib.Path:
    """Where the benchmark harness writes its records."""
    return (
        pathlib.Path(__file__).resolve().parents[3]
        / "benchmarks" / "results"
    )


def assemble_report(results_dir: Optional[pathlib.Path] = None) -> str:
    """Concatenate all known records (missing ones are flagged)."""
    results_dir = (
        results_dir if results_dir is not None else default_results_dir()
    )
    lines: List[str] = [
        "Measured experiment report",
        "=" * 70,
        f"source: {results_dir}",
        "regenerate with: pytest benchmarks/ --benchmark-only",
        "",
    ]
    for name, title in _SECTIONS:
        lines.append(title)
        lines.append("-" * len(title))
        path = results_dir / f"{name}.txt"
        if path.exists():
            lines.append(path.read_text(encoding="utf-8").rstrip())
        else:
            lines.append(
                "(no record — run the benchmark suite to produce it)"
            )
        lines.append("")
    # Any extra records not in the known list still get included.
    known = {name for name, _ in _SECTIONS}
    if results_dir.exists():
        for path in sorted(results_dir.glob("*.txt")):
            if path.stem not in known:
                lines.append(f"extra record: {path.stem}")
                lines.append("-" * (14 + len(path.stem)))
                lines.append(path.read_text(encoding="utf-8").rstrip())
                lines.append("")
    return "\n".join(lines)


def write_report(output_path: pathlib.Path,
                 results_dir: Optional[pathlib.Path] = None) -> None:
    """Assemble and persist the report."""
    output_path.write_text(assemble_report(results_dir), encoding="utf-8")
