"""PhaseProfiler: span-collector duck type, selection, nesting, memory."""

from __future__ import annotations

from repro.obs.profile import PhaseProfiler
from repro.obs.spans import recording, span


def _busy():
    return sum(i * i for i in range(2000))


class TestSelection:
    def test_watches_all_by_default(self):
        profiler = PhaseProfiler()
        try:
            with recording(profiler):
                with span("alpha"):
                    _busy()
                with span("beta"):
                    _busy()
        finally:
            profiler.stop()
        assert set(profiler.profiles) == {"alpha", "beta"}
        assert profiler.profiles["alpha"].profiled_calls == 1
        assert profiler.profiles["alpha"].function_calls > 0

    def test_narrowed_phases_still_count_unwatched_spans(self):
        profiler = PhaseProfiler(phases={"alpha"})
        try:
            with recording(profiler):
                with span("alpha"):
                    _busy()
                with span("beta"):
                    _busy()
        finally:
            profiler.stop()
        assert profiler.profiles["alpha"].profiled_calls == 1
        beta = profiler.profiles["beta"]
        assert beta.calls == 1
        assert beta.profiled_calls == 0

    def test_repeat_calls_accumulate(self):
        profiler = PhaseProfiler(phases={"alpha"})
        try:
            with recording(profiler):
                for _ in range(3):
                    with span("alpha"):
                        _busy()
        finally:
            profiler.stop()
        entry = profiler.profiles["alpha"]
        assert entry.calls == 3
        assert entry.profiled_calls == 3


class TestNesting:
    def test_inner_span_counted_not_reprofiled(self):
        # cProfile cannot nest: the inner span's cost already sits in
        # the outer profile, so only the call is counted.
        profiler = PhaseProfiler()
        try:
            with recording(profiler):
                with span("outer"):
                    with span("inner"):
                        _busy()
        finally:
            profiler.stop()
        assert profiler.profiles["outer"].profiled_calls == 1
        inner = profiler.profiles["inner"]
        assert inner.calls == 1
        assert inner.profiled_calls == 0


class TestMemory:
    def test_peak_bytes_recorded(self):
        profiler = PhaseProfiler(phases={"alloc"}, memory=True)
        try:
            with recording(profiler):
                with span("alloc"):
                    blob = [bytes(4096) for _ in range(64)]
                    del blob
        finally:
            profiler.stop()
        assert profiler.profiles["alloc"].peak_bytes > 0

    def test_stop_is_idempotent(self):
        profiler = PhaseProfiler(memory=True)
        profiler.stop()
        profiler.stop()


class TestReporting:
    def _profiled(self):
        profiler = PhaseProfiler()
        try:
            with recording(profiler):
                with span("alpha"):
                    _busy()
        finally:
            profiler.stop()
        return profiler

    def test_summary_shape(self):
        (entry,) = self._profiled().summary()
        assert entry["name"] == "alpha"
        assert entry["profiled_calls"] == 1
        assert entry["cpu_seconds"] >= 0

    def test_render_names_hot_functions(self):
        text = self._profiled().render(top=3)
        assert "alpha:" in text
        assert "cumtime" in text  # the pstats table survived filtering

    def test_render_empty(self):
        assert PhaseProfiler().render() == "no phases profiled"
