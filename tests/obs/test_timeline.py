"""Chrome trace-event export: schema, determinism, round-tripping."""

import json

import pytest

from repro.obs.spans import SpanLog, recording, span
from repro.obs.timeline import (
    PHASES_PID,
    export_chrome_trace,
    load_trace_dir,
    timeline_events,
    validate_trace_events,
)
from repro.runtime.trace import TraceRecorder


def _sample_trace(clock=None):
    trace = TraceRecorder(clock=clock)
    for round_index in range(2):
        for party in (0, 1):
            trace.record(party, "round-barrier", round_index, queue_depth=party)
    trace.record(0, "send", 0, peer=1, bits=16)
    trace.record(1, "recv", 1, peer=0, bits=16)
    trace.record(1, "halt", 1, output="0")
    return trace


def _sample_spans():
    log = SpanLog()
    with recording(log):
        with span("pi-ba", n=2):
            with span("prf-boost"):
                pass
    return log


class TestTimelineEvents:
    def test_validates_and_has_both_tracks(self):
        events = timeline_events(_sample_trace(), _sample_spans())
        validate_trace_events(events)
        pids = {event["pid"] for event in events}
        assert PHASES_PID in pids  # phases track
        assert {1, 2} <= pids  # party tracks (pid = party + 1)
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert "round-0" in names and "pi-ba" in names

    def test_round_slices_carry_queue_depth(self):
        events = timeline_events(_sample_trace())
        slices = [e for e in events if e["ph"] == "X" and e["pid"] == 2]
        assert [s["args"]["queue_depth"] for s in slices] == [1, 1]

    def test_deterministic_without_clock(self):
        one = timeline_events(_sample_trace(), _sample_spans())
        two = timeline_events(_sample_trace(), _sample_spans())
        assert one == two

    def test_wall_stamps_ignored_by_default(self):
        ticks = iter(float(i) for i in range(100))
        stamped = _sample_trace(clock=lambda: next(ticks))
        plain = _sample_trace()
        assert timeline_events(stamped) == timeline_events(plain)

    def test_deterministic_false_requires_wall(self):
        with pytest.raises(ValueError):
            timeline_events(_sample_trace(), deterministic=False)

    def test_wall_mode_uses_microseconds(self):
        ticks = iter(float(i) for i in range(100))
        stamped = _sample_trace(clock=lambda: next(ticks))
        events = timeline_events(stamped, deterministic=False)
        validate_trace_events(events)
        instants = [e for e in events if e["ph"] == "i"]
        assert any(e["ts"] >= 1_000_000 for e in instants)

    def test_accepts_plain_mapping(self):
        mapping = {0: _sample_trace().events_of(0)}
        validate_trace_events(timeline_events(mapping))


class TestExportAndLoad:
    def test_export_round_trips_through_trace_dir(self, tmp_path):
        trace = _sample_trace()
        trace.dump_dir(tmp_path / "traces")
        loaded = load_trace_dir(tmp_path / "traces")
        assert timeline_events(loaded) == timeline_events(trace)

    def test_export_file_is_valid_and_deterministic(self, tmp_path):
        a = export_chrome_trace(tmp_path / "a.json", _sample_trace(),
                                _sample_spans())
        b = export_chrome_trace(tmp_path / "b.json", _sample_trace(),
                                _sample_spans())
        assert a.read_bytes() == b.read_bytes()
        document = json.loads(a.read_text())
        assert document["displayTimeUnit"] == "ms"
        validate_trace_events(document["traceEvents"])


class TestValidate:
    def test_rejects_bad_phase(self):
        with pytest.raises(ValueError):
            validate_trace_events([{"ph": "Z", "pid": 0, "ts": 0}])

    def test_rejects_missing_pid(self):
        with pytest.raises(ValueError):
            validate_trace_events([{"ph": "X", "ts": 0, "dur": 1}])

    def test_rejects_x_without_duration(self):
        with pytest.raises(ValueError):
            validate_trace_events([{"ph": "X", "pid": 0, "ts": 0}])

    def test_rejects_instant_without_scope(self):
        with pytest.raises(ValueError):
            validate_trace_events([{"ph": "i", "pid": 0, "ts": 0}])
