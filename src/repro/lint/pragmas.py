"""In-source suppression pragmas.

Grammar (one comment, same line as the violation or the line directly
above it)::

    # lint: allow[EXC001] reason=adversarial blob rejection per Fig. 3
    # lint: allow[DET002,DET001] reason=observability-only wall time
    # lint: file-allow[EXC001] reason=this whole module parses attacker bytes

``reason=`` is **mandatory**: a suppression without a recorded
justification is itself reported (rule ``LNT000``), because the whole
point of the pragma channel is that every deliberate deviation from the
determinism/accounting invariants carries its argument in-line.  Unused
pragmas are reported as warnings (``LNT001``) so suppressions cannot
outlive the code they excused.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

_PRAGMA_RE = re.compile(
    r"#\s*lint:\s*(?P<kind>allow|file-allow)\s*"
    r"\[(?P<rules>[^\]]*)\]\s*"
    r"(?:reason=(?P<reason>.*))?$"
)

_RULE_ID_RE = re.compile(r"^[A-Z]{3}\d{3}$")


@dataclass
class Pragma:
    """One parsed ``# lint:`` comment."""

    line: int
    kind: str  # "allow" | "file-allow"
    rule_ids: Tuple[str, ...]
    reason: str
    used: bool = field(default=False, compare=False)

    def allows(self, rule_id: str) -> bool:
        return rule_id in self.rule_ids


@dataclass
class PragmaProblem:
    """A malformed pragma (missing reason / bad rule id)."""

    line: int
    message: str


class PragmaIndex:
    """All pragmas of one file, queryable by (rule, line)."""

    def __init__(self, pragmas: List[Pragma],
                 problems: List[PragmaProblem]) -> None:
        self.pragmas = pragmas
        self.problems = problems
        self._by_line: Dict[int, List[Pragma]] = {}
        self._file_level: List[Pragma] = []
        for pragma in pragmas:
            if pragma.kind == "file-allow":
                self._file_level.append(pragma)
            else:
                self._by_line.setdefault(pragma.line, []).append(pragma)

    def suppression_for(self, rule_id: str, line: int) -> Optional[Pragma]:
        """The pragma covering ``rule_id`` at ``line``, if any.

        A line pragma covers its own line and the line directly below
        it (so a pragma-only comment line can sit above a long
        statement).  File pragmas cover everything.
        """
        for candidate_line in (line, line - 1):
            for pragma in self._by_line.get(candidate_line, ()):
                if pragma.allows(rule_id):
                    pragma.used = True
                    return pragma
        for pragma in self._file_level:
            if pragma.allows(rule_id):
                pragma.used = True
                return pragma
        return None

    def unused(self) -> List[Pragma]:
        """Pragmas that suppressed nothing in this run."""
        return [p for p in self.pragmas if not p.used]


def _comment_tokens(source: str) -> List[Tuple[int, str]]:
    """(line, comment text) for every real COMMENT token.

    Tokenizing (rather than scanning lines) is what keeps pragma
    *documentation* — ``# lint:`` examples inside docstrings, including
    the ones in this very module — from being parsed as live pragmas.
    """
    comments: List[Tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The engine reports unparseable files separately (LNT002);
        # partial comment lists from a truncated tokenize stream are
        # still useful, so keep whatever was gathered.
        pass
    return comments


def parse_pragmas(source: str) -> PragmaIndex:
    """Extract ``# lint:`` pragmas from real comments in ``source``."""
    pragmas: List[Pragma] = []
    problems: List[PragmaProblem] = []
    for index, comment in _comment_tokens(source):
        marker = comment.find("# lint:")
        if marker < 0:
            marker = comment.find("#lint:")
        if marker < 0:
            continue
        match = _PRAGMA_RE.match(comment[marker:].strip())
        if match is None:
            problems.append(PragmaProblem(
                index,
                "malformed lint pragma (want "
                "`# lint: allow[RULE001] reason=...`)",
            ))
            continue
        rule_ids = tuple(
            token.strip() for token in match.group("rules").split(",")
            if token.strip()
        )
        if not rule_ids:
            problems.append(PragmaProblem(
                index, "lint pragma lists no rule ids"))
            continue
        bad = [r for r in rule_ids if not _RULE_ID_RE.match(r)]
        if bad:
            problems.append(PragmaProblem(
                index,
                f"lint pragma names malformed rule id(s): {', '.join(bad)}",
            ))
            continue
        reason = (match.group("reason") or "").strip()
        if not reason:
            problems.append(PragmaProblem(
                index,
                "lint pragma is missing its mandatory reason= justification",
            ))
            continue
        pragmas.append(Pragma(
            line=index,
            kind=match.group("kind"),
            rule_ids=rule_ids,
            reason=reason,
        ))
    return PragmaIndex(pragmas, problems)
