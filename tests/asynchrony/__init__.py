"""Tests for the asynchronous execution model (repro.asynchrony)."""
