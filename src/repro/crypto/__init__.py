"""Cryptographic substrates built from scratch.

Layout:

* :mod:`repro.crypto.hashing`, :mod:`repro.crypto.merkle` — CRH + Merkle.
* :mod:`repro.crypto.prf`, :mod:`repro.crypto.prg` — keyed PRF / PRG.
* :mod:`repro.crypto.lamport` — one-time signatures with oblivious keygen
  (the OWF-based SRDS substrate).
* :mod:`repro.crypto.ec`, :mod:`repro.crypto.schnorr` — secp256k1 group and
  Schnorr signatures (bare-PKI base signatures).
* :mod:`repro.crypto.shamir`, :mod:`repro.crypto.vss` — Shamir + Feldman
  VSS (coin-toss substrate).
* :mod:`repro.crypto.snark` — simulated SNARK/PCD (see DESIGN.md
  substitutions).
"""

from repro.crypto.hashing import hash_bytes, hash_chain, hash_domain, hash_to_int
from repro.crypto.merkle import MerkleProof, MerkleTree, merkle_root, verify_inclusion
from repro.crypto.prf import SubsetPRF, prf_int
from repro.crypto.prg import PRG
from repro.crypto.snark import Proof, SnarkSystem

__all__ = [
    "MerkleProof",
    "MerkleTree",
    "PRG",
    "Proof",
    "SnarkSystem",
    "SubsetPRF",
    "hash_bytes",
    "hash_chain",
    "hash_domain",
    "hash_to_int",
    "merkle_root",
    "prf_int",
    "verify_inclusion",
]
