"""Assemble the benchmark result records into one experiment report.

``pytest benchmarks/ --benchmark-only`` drops one text record per
experiment under ``benchmarks/results/``; this module stitches them into
a single document (the measured companion to EXPERIMENTS.md) so a
downstream user can regenerate and read everything in one place:

    python -m repro report [output-path]
"""

from __future__ import annotations

import pathlib
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.analysis.tables import format_bits

# Display order and titles for the known experiment records.
_SECTIONS: List[Tuple[str, str]] = [
    ("table1", "T1 — Table 1: max communication per party"),
    ("fig1_robustness", "F1 — Figure 1: robustness experiment"),
    ("fig2_forgery", "F2 — Figure 2: forgery experiment"),
    ("fig3_protocol", "F3 — Figure 3: pi_ba end to end"),
    ("scaling_per_party", "E1 — balanced per-party communication"),
    ("lb_crs", "E2 — Thm 1.3: CRS-model lower bound"),
    ("lb_owf", "E3 — Thm 1.4: OWF necessity"),
    ("broadcast_amortized", "E4 — Corollary 1.2(1): broadcast"),
    ("srds_micro_sizes", "E5a — SRDS aggregate sizes"),
    ("srds_micro_filter", "E5b — Aggregate1 output size"),
    ("aetree", "E6 — tree combinatorics"),
    ("ablation_ranges", "E7 — range-check ablation"),
    ("ablation_sortition", "E8 — sortition-factor sweep"),
    ("mpc_corollary", "E9 — Corollary 1.2(2): MPC"),
    ("snarg_connection", "E10 — SNARG connection"),
    ("ablation_ots", "E11 — OTS choice ablation"),
    ("ablation_oblivious", "E12 — oblivious-keygen ablation"),
]


def default_results_dir() -> pathlib.Path:
    """Where the benchmark harness writes its records."""
    return (
        pathlib.Path(__file__).resolve().parents[3]
        / "benchmarks" / "results"
    )


def assemble_report(results_dir: Optional[pathlib.Path] = None) -> str:
    """Concatenate all known records (missing ones are flagged)."""
    results_dir = (
        results_dir if results_dir is not None else default_results_dir()
    )
    lines: List[str] = [
        "Measured experiment report",
        "=" * 70,
        f"source: {results_dir}",
        "regenerate with: pytest benchmarks/ --benchmark-only",
        "",
    ]
    for name, title in _SECTIONS:
        lines.append(title)
        lines.append("-" * len(title))
        path = results_dir / f"{name}.txt"
        if path.exists():
            lines.append(path.read_text(encoding="utf-8").rstrip())
        else:
            lines.append(
                "(no record — run the benchmark suite to produce it)"
            )
        lines.append("")
    # Any extra records not in the known list still get included.
    known = {name for name, _ in _SECTIONS}
    if results_dir.exists():
        for path in sorted(results_dir.glob("*.txt")):
            if path.stem not in known:
                lines.append(f"extra record: {path.stem}")
                lines.append("-" * (14 + len(path.stem)))
                lines.append(path.read_text(encoding="utf-8").rstrip())
                lines.append("")
    # Observability records (python -m repro obs report / bench fixture).
    if results_dir.exists() and sorted(results_dir.glob("BENCH_*.json")):
        title = "OBS — observability bench records (BENCH_*.json)"
        lines.append(title)
        lines.append("-" * len(title))
        lines.append(assemble_bench_records(results_dir))
        lines.append("")
    return "\n".join(lines)


def write_report(output_path: pathlib.Path,
                 results_dir: Optional[pathlib.Path] = None) -> None:
    """Assemble and persist the report."""
    output_path.write_text(assemble_report(results_dir), encoding="utf-8")


# -- observability renderers (python -m repro obs report) --------------------


def _field(entry: Any, name: str, default: Any = 0) -> Any:
    """Read ``name`` from a PhaseBreakdown dataclass or a plain mapping
    (the BENCH JSON round trip turns dataclasses into dicts)."""
    if isinstance(entry, Mapping):
        return entry.get(name, default)
    return getattr(entry, name, default)


def render_phase_breakdown(breakdown: Mapping[str, Any]) -> str:
    """Per-phase communication table (§3.1 decomposition of pi_ba).

    ``breakdown`` maps phase label → :class:`~repro.net.metrics.
    PhaseBreakdown` (or its dict form from a BENCH record).  Phases are
    sorted by total bits, heaviest first, so the dominant cost — the
    paper's SRDS tree aggregation — tops the table.
    """
    rows = sorted(
        breakdown.items(),
        key=lambda item: (-int(_field(item[1], "total_bits")), item[0]),
    )
    width = max([len("phase")] + [len(name) for name, _ in rows])
    lines = [
        f"{'phase':<{width}}  {'total':>10}  {'max/party':>10}  "
        f"{'parties':>7}  {'messages':>9}"
    ]
    lines.append("-" * len(lines[0]))
    for name, entry in rows:
        lines.append(
            f"{name:<{width}}  "
            f"{format_bits(_field(entry, 'total_bits')):>10}  "
            f"{format_bits(_field(entry, 'max_bits_per_party')):>10}  "
            f"{_field(entry, 'parties'):>7}  "
            f"{_field(entry, 'messages'):>9,}"
        )
    return "\n".join(lines)


def render_party_phase_table(metrics: Any, limit: int = 32) -> str:
    """Per-party attribution check: phase sums vs the total ledger.

    For every party, the sum of its per-phase bits must equal its
    ``bits_total`` — the invariant ``python -m repro obs report``
    verifies.  ``metrics`` is a live :class:`~repro.net.metrics.
    CommunicationMetrics`.
    """
    lines = [
        f"{'party':>5}  {'bits_total':>12}  {'phase-sum':>12}  match"
    ]
    lines.append("-" * len(lines[0]))
    party_ids = sorted(metrics.party_ids)
    shown = party_ids[:limit]
    for party_id in shown:
        total = metrics.tally_of(party_id).bits_total
        phase_sum = sum(metrics.bits_by_phase(party_id).values())
        flag = "ok" if phase_sum == total else "MISMATCH"
        lines.append(
            f"{party_id:>5}  {total:>12,}  {phase_sum:>12,}  {flag}"
        )
    if len(party_ids) > limit:
        lines.append(f"... ({len(party_ids) - limit} more parties elided)")
    return "\n".join(lines)


def render_bench_record(payload: Mapping[str, Any]) -> str:
    """Render one ``BENCH_<name>.json`` record as text."""
    lines = [f"bench record: {payload.get('name', '?')}"]
    snapshot: Dict[str, Any] = dict(payload.get("snapshot") or {})
    if snapshot:
        lines.append("snapshot:")
        for key in sorted(snapshot):
            value = snapshot[key]
            if isinstance(value, int) and key.endswith(
                ("bits", "bits_per_party", "total_bits")
            ):
                value = f"{value:,} ({format_bits(value)})"
            lines.append(f"  {key}: {value}")
    breakdown = payload.get("phase_breakdown") or {}
    if breakdown:
        lines.append("phase breakdown:")
        lines.extend(
            "  " + line for line in render_phase_breakdown(breakdown).splitlines()
        )
    wall_times = payload.get("wall_times") or {}
    if wall_times:
        lines.append("wall times:")
        for key in sorted(wall_times):
            lines.append(f"  {key}: {wall_times[key]:.4f}s")
    extra = payload.get("extra") or {}
    if extra:
        lines.append("extra:")
        for key in sorted(extra):
            lines.append(f"  {key}: {extra[key]}")
    return "\n".join(lines)


def assemble_bench_records(
    results_dir: Optional[pathlib.Path] = None,
) -> str:
    """Concatenate every ``BENCH_*.json`` record under the results dir."""
    from repro.obs.bench import load_bench_json

    results_dir = (
        results_dir if results_dir is not None else default_results_dir()
    )
    paths = sorted(results_dir.glob("BENCH_*.json")) if results_dir.exists() else []
    if not paths:
        return "(no BENCH_*.json records — run the benchmark suite)"
    sections = []
    for path in paths:
        sections.append(render_bench_record(load_bench_json(path)))
    return "\n\n".join(sections)
