"""Merkle trees over the CRH substrate.

The SNARK-based SRDS commits to the set of base signatures seen at a leaf
committee with a Merkle root; inclusion proofs let experiments audit a
claimed count without shipping the whole set (succinctness, Def. 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crypto.hashing import hash_domain
from repro.errors import CryptoError

_LEAF_DOMAIN = "merkle/leaf"
_NODE_DOMAIN = "merkle/node"
_EMPTY_DOMAIN = "merkle/empty"


@dataclass(frozen=True)
class MerkleProof:
    """An authentication path for one leaf.

    Attributes:
        leaf_index: position of the proven leaf in the original sequence.
        siblings: bottom-up list of ``(sibling_digest, sibling_is_right)``.
    """

    leaf_index: int
    siblings: Tuple[Tuple[bytes, bool], ...]

    def size_bytes(self) -> int:
        """Wire size of the proof (index byte-cost is charged as 8 bytes)."""
        return 8 + sum(len(digest) + 1 for digest, _ in self.siblings)


class MerkleTree:
    """A binary Merkle tree over an ordered sequence of byte-string leaves.

    Odd levels are padded by promoting the unpaired node (Bitcoin-style
    duplication is avoided because it admits mutation attacks; promotion
    keeps the root injective in the leaf sequence).
    """

    def __init__(self, leaves: Sequence[bytes]) -> None:
        self.leaf_count = len(leaves)
        self._levels: List[List[bytes]] = []
        level = [hash_domain(_LEAF_DOMAIN, leaf) for leaf in leaves]
        if not level:
            self._root = hash_domain(_EMPTY_DOMAIN)
            return
        self._levels.append(level)
        while len(level) > 1:
            next_level: List[bytes] = []
            for i in range(0, len(level) - 1, 2):
                next_level.append(hash_domain(_NODE_DOMAIN, level[i], level[i + 1]))
            if len(level) % 2 == 1:
                next_level.append(level[-1])
            self._levels.append(next_level)
            level = next_level
        self._root = level[0]

    @property
    def root(self) -> bytes:
        """The Merkle root digest."""
        return self._root

    def prove(self, leaf_index: int) -> MerkleProof:
        """Produce an authentication path for the leaf at ``leaf_index``."""
        if not 0 <= leaf_index < self.leaf_count:
            raise CryptoError(f"leaf index {leaf_index} out of range")
        siblings: List[Tuple[bytes, bool]] = []
        index = leaf_index
        for level in self._levels[:-1]:
            if index % 2 == 0:
                if index + 1 < len(level):
                    siblings.append((level[index + 1], True))
                # Unpaired node is promoted: no sibling at this level.
            else:
                siblings.append((level[index - 1], False))
            index //= 2
        return MerkleProof(leaf_index=leaf_index, siblings=tuple(siblings))


def root_from_proof(leaf: bytes, proof: MerkleProof) -> bytes:
    """The root implied by a leaf and an authentication path."""
    digest = hash_domain(_LEAF_DOMAIN, leaf)
    for sibling, sibling_is_right in proof.siblings:
        if sibling_is_right:
            digest = hash_domain(_NODE_DOMAIN, digest, sibling)
        else:
            digest = hash_domain(_NODE_DOMAIN, sibling, digest)
    return digest


def verify_inclusion(root: bytes, leaf: bytes, proof: MerkleProof) -> bool:
    """Check a Merkle inclusion proof against a root."""
    return root_from_proof(leaf, proof) == root


def merkle_root(leaves: Sequence[bytes]) -> bytes:
    """Convenience: the root of a one-shot tree."""
    return MerkleTree(leaves).root
