"""Feige's lightest-bin committee election (full information, t < n).

KSSV'06 — the substrate of f_ae-comm — repeatedly elects small
committees whose adversarial fraction stays close to the global fraction
beta.  The classic single-shot tool is Feige's *lightest-bin* protocol:
every party announces a uniformly random bin out of ``n / k``; the
lightest bin wins and its occupants form the committee.

Why it works (executable intuition, asserted by the tests): the
adversary speaks last but can only *add* parties to bins; the lightest
bin has at most k occupants and at least (whp) k - O(sqrt(k log n))
honest occupants land in *every* bin, so the winning committee has at
least that many honest members — the adversary's fraction in it is
bounded by roughly beta + o(1).

This module implements the protocol as real message-passing parties
(one round, everyone announces a bin) with a rushing adversary that sees
honest announcements before choosing its own — the strongest standard
model for this protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.errors import ConfigurationError
from repro.net.adversary import CorruptionPlan
from repro.utils.randomness import Randomness


@dataclass(frozen=True)
class ElectionResult:
    """Outcome of one lightest-bin election."""

    committee: List[int]
    winning_bin: int
    num_bins: int
    honest_in_committee: int

    @property
    def corrupt_fraction(self) -> float:
        """Adversarial fraction inside the elected committee."""
        if not self.committee:
            return 0.0
        return 1 - self.honest_in_committee / len(self.committee)


def run_lightest_bin(
    plan: CorruptionPlan,
    target_committee_size: int,
    rng: Randomness,
    adversary_strategy: str = "stack",
) -> ElectionResult:
    """Run one lightest-bin election against a rushing adversary.

    ``adversary_strategy``:

    * ``"stack"`` — all corrupt parties pile into the bin that is
      currently lightest among honest announcements (maximizing their
      fraction in the winner if that bin still wins);
    * ``"spread"`` — corrupt parties spread uniformly (the passive
      strategy);
    * ``"silent"`` — corrupt parties announce nothing (bins they would
      have filled stay lighter).
    """
    n = plan.n
    if not 0 < target_committee_size <= n:
        raise ConfigurationError("committee size must lie in [1, n]")
    num_bins = max(1, n // target_committee_size)

    # Honest announcements: uniform bins (the full-information model —
    # everyone sees them; the adversary is rushing).
    bins: Dict[int, List[int]] = {b: [] for b in range(num_bins)}
    for party in plan.honest:
        bins[rng.random_int(num_bins)].append(party)

    honest_load = {b: len(members) for b, members in bins.items()}
    lightest_honest = min(honest_load, key=lambda b: (honest_load[b], b))

    if adversary_strategy == "stack":
        for party in sorted(plan.corrupted):
            bins[lightest_honest].append(party)
    elif adversary_strategy == "spread":
        for party in sorted(plan.corrupted):
            bins[rng.random_int(num_bins)].append(party)
    elif adversary_strategy == "silent":
        pass
    else:
        raise ConfigurationError(
            f"unknown adversary strategy {adversary_strategy!r}"
        )

    winning_bin = min(bins, key=lambda b: (len(bins[b]), b))
    committee = sorted(bins[winning_bin])
    honest_in_committee = sum(
        1 for member in committee if not plan.is_corrupt(member)
    )
    return ElectionResult(
        committee=committee,
        winning_bin=winning_bin,
        num_bins=num_bins,
        honest_in_committee=honest_in_committee,
    )


def expected_honest_floor(n: int, num_corrupt: int,
                          target_committee_size: int) -> float:
    """The analytic whp floor on honest members in the lightest bin.

    Honest parties per bin concentrate around
    ``(n - t) / num_bins = k (1 - beta)``; the lightest bin sits at most
    ``O(sqrt(k log bins))`` below the mean.  Used by the tests as the
    acceptance band.
    """
    num_bins = max(1, n // target_committee_size)
    mean = (n - num_corrupt) / num_bins
    slack = 3 * math.sqrt(max(1.0, mean) * math.log(max(2, num_bins)))
    return max(0.0, mean - slack)


def repeated_election_statistics(
    plan: CorruptionPlan,
    target_committee_size: int,
    trials: int,
    rng: Randomness,
    adversary_strategy: str = "stack",
) -> Dict[str, float]:
    """Worst/mean corrupt fraction over repeated elections (test/bench)."""
    worst = 0.0
    total = 0.0
    below_third = 0
    for trial in range(trials):
        result = run_lightest_bin(
            plan, target_committee_size, rng.fork(f"e{trial}"),
            adversary_strategy,
        )
        worst = max(worst, result.corrupt_fraction)
        total += result.corrupt_fraction
        if result.corrupt_fraction < 1 / 3:
            below_third += 1
    return {
        "worst_corrupt_fraction": worst,
        "mean_corrupt_fraction": total / trials,
        "fraction_below_third": below_third / trials,
    }
