"""A small metrics registry with Prometheus text exposition.

The runtime (``repro.runtime``) feeds this registry with operational
metrics — round-barrier latency, transport frame counts and queue
depths, injected-fault counters — so that long executions can be watched
with standard tooling.  No third-party client library is used (the repo
has zero runtime dependencies); the exposition format follows the
Prometheus text format v0.0.4, which Perfetto-adjacent dashboards and
``promtool check metrics`` both accept.

Instruments:

* :class:`Counter` — monotonically increasing totals
  (``runtime_frames_sent_total``);
* :class:`Gauge` — set-to-current values (``runtime_frames_in_flight``);
* :class:`Histogram` — bucketed observations with ``_bucket``/``_sum``/
  ``_count`` series (``runtime_round_latency_seconds``).

All instruments support labels::

    registry = MetricsRegistry()
    faults = registry.counter(
        "runtime_faults_injected_total", "Faults injected", ("kind",)
    )
    faults.inc(kind="duplicate")
    print(registry.render())
"""

from __future__ import annotations

import math
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency-shaped buckets (seconds), log-spaced.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelValues = Tuple[str, ...]


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class _Instrument:
    """Shared name/label plumbing for all instrument types."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ConfigurationError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ConfigurationError(f"invalid label name {label!r}")
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(label_names)

    def _key(self, labels: Dict[str, object]) -> LabelValues:
        if set(labels) != set(self.label_names):
            raise ConfigurationError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def _series(self, suffix: str, values: LabelValues,
                extra: Sequence[Tuple[str, str]] = ()) -> str:
        pairs = [
            f'{name}="{_escape_label_value(value)}"'
            for name, value in zip(self.label_names, values)
        ]
        pairs.extend(f'{name}="{value}"' for name, value in extra)
        label_part = "{" + ",".join(pairs) + "}" if pairs else ""
        return f"{self.name}{suffix}{label_part}"

    def header(self) -> List[str]:
        help_text = self.help_text.replace("\\", "\\\\").replace("\n", "\\n")
        return [
            f"# HELP {self.name} {help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]

    def render(self) -> List[str]:  # pragma: no cover - abstract
        raise NotImplementedError


class Counter(_Instrument):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, label_names)
        self._values: Dict[LabelValues, float] = {}

    def inc(self, amount: float = 1, **labels: object) -> None:
        if amount < 0:
            raise ConfigurationError("counters only go up")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0)

    def render(self) -> List[str]:
        lines = self.header()
        for key in sorted(self._values):
            lines.append(
                f"{self._series('', key)} {_format_value(self._values[key])}"
            )
        return lines


class Gauge(_Instrument):
    """A value that can go up and down (or be set outright)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, label_names)
        self._values: Dict[LabelValues, float] = {}

    def set(self, value: float, **labels: object) -> None:
        self._values[self._key(labels)] = value

    def inc(self, amount: float = 1, **labels: object) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: object) -> None:
        self.inc(-amount, **labels)

    def set_max(self, value: float, **labels: object) -> None:
        """Keep the running maximum (handy for high-water marks)."""
        key = self._key(labels)
        self._values[key] = max(self._values.get(key, value), value)

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0)

    def render(self) -> List[str]:
        lines = self.header()
        for key in sorted(self._values):
            lines.append(
                f"{self._series('', key)} {_format_value(self._values[key])}"
            )
        return lines


class Histogram(_Instrument):
    """Bucketed observations with cumulative ``le`` buckets."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help_text, label_names)
        bucket_list = sorted(set(float(b) for b in buckets))
        if not bucket_list:
            raise ConfigurationError("histogram needs at least one bucket")
        self.buckets = tuple(bucket_list)
        self._counts: Dict[LabelValues, List[int]] = {}
        self._sums: Dict[LabelValues, float] = {}
        self._totals: Dict[LabelValues, int] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        counts = self._counts.setdefault(key, [0] * len(self.buckets))
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                counts[index] += 1
        self._sums[key] = self._sums.get(key, 0.0) + value
        self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: object) -> int:
        return self._totals.get(self._key(labels), 0)

    def sum(self, **labels: object) -> float:
        return self._sums.get(self._key(labels), 0.0)

    def render(self) -> List[str]:
        lines = self.header()
        for key in sorted(self._totals):
            counts = self._counts[key]
            for bound, count in zip(self.buckets, counts):
                lines.append(
                    f"{self._series('_bucket', key, (('le', _format_value(bound)),))} "
                    f"{count}"
                )
            lines.append(
                f"{self._series('_bucket', key, (('le', '+Inf'),))} "
                f"{self._totals[key]}"
            )
            lines.append(
                f"{self._series('_sum', key)} {_format_value(self._sums[key])}"
            )
            lines.append(f"{self._series('_count', key)} {self._totals[key]}")
        return lines


class MetricsRegistry:
    """Holds instruments and renders them in Prometheus text format.

    ``counter``/``gauge``/``histogram`` are idempotent: asking for an
    existing name returns the existing instrument (mismatched type or
    labels raise), so independent runtime components can share series.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name: str, help_text: str,
                       label_names: Sequence[str], **kwargs):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls) or (
                existing.label_names != tuple(label_names)
            ):
                raise ConfigurationError(
                    f"metric {name!r} already registered with a different "
                    f"type or label set"
                )
            return existing
        instrument = cls(name, help_text, label_names, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help_text: str = "",
                label_names: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help_text, label_names)

    def gauge(self, name: str, help_text: str = "",
              label_names: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, label_names)

    def histogram(self, name: str, help_text: str = "",
                  label_names: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, label_names, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    @property
    def names(self) -> List[str]:
        return sorted(self._instruments)

    def render(self) -> str:
        """The full registry in Prometheus text exposition format."""
        lines: List[str] = []
        for name in sorted(self._instruments):
            lines.extend(self._instruments[name].render())
        return "\n".join(lines) + ("\n" if lines else "")

    def collect(self) -> Iterable[_Instrument]:
        for name in sorted(self._instruments):
            yield self._instruments[name]
