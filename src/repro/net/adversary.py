"""Static-corruption machinery.

The paper's model (§1.1 "One remark regarding the corruption model"): the
adversary corrupts parties *adaptively during the setup phase* — as a
function of all public setup information (CRS, bulletin board) — and is
static once the online phase starts.  :class:`CorruptionPlan` captures
exactly that: a strategy object inspects the public setup and commits to
a corrupted set of at most ``t`` parties before any protocol message
flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.utils.randomness import Randomness


@dataclass(frozen=True)
class CorruptionPlan:
    """An immutable static corruption set.

    ``budget`` is the adversary's corruption allowance ``t``: when set,
    plans holding more than ``budget`` corrupted parties are rejected at
    *construction* time with a :class:`ConfigurationError`.  Before this
    field existed, a buggy setup-adaptive strategy could mint an
    over-budget plan and only trip a check in :func:`corrupt_after_setup`
    — callers that constructed plans directly (tests, campaign
    strategies) had no error path at all.
    """

    corrupted: FrozenSet[int]
    n: int
    budget: Optional[int] = None

    def __post_init__(self) -> None:
        if any(not 0 <= i < self.n for i in self.corrupted):
            raise ConfigurationError("corrupted id out of range")
        if self.budget is not None:
            if self.budget < 0:
                raise ConfigurationError("corruption budget cannot be negative")
            if len(self.corrupted) > self.budget:
                raise ConfigurationError(
                    f"corrupted {len(self.corrupted)} parties, "
                    f"budget is {self.budget}"
                )

    def is_corrupt(self, party_id: int) -> bool:
        """Whether a party is under adversarial control."""
        return party_id in self.corrupted

    @property
    def honest(self) -> List[int]:
        """Sorted list of honest party ids."""
        return [i for i in range(self.n) if i not in self.corrupted]

    @property
    def t(self) -> int:
        """Number of corrupted parties."""
        return len(self.corrupted)


def random_corruption(n: int, t: int, rng: Randomness) -> CorruptionPlan:
    """Corrupt a uniformly random t-subset (the baseline adversary)."""
    if not 0 <= t < n:
        raise ConfigurationError(f"cannot corrupt {t} of {n} parties")
    return CorruptionPlan(
        corrupted=frozenset(rng.sample(range(n), t)), n=n, budget=t
    )


def prefix_corruption(n: int, t: int) -> CorruptionPlan:
    """Corrupt parties 0..t-1 (a worst-case clustered adversary for
    structures keyed by party index)."""
    if not 0 <= t < n:
        raise ConfigurationError(f"cannot corrupt {t} of {n} parties")
    return CorruptionPlan(corrupted=frozenset(range(t)), n=n, budget=t)


def targeted_corruption(
    n: int, targets: Sequence[int], budget: Optional[int] = None
) -> CorruptionPlan:
    """Corrupt an explicit set (setup-dependent adversaries use this after
    inspecting the bulletin board).  Pass ``budget`` to have the ``t``
    bound enforced at construction."""
    return CorruptionPlan(corrupted=frozenset(targets), n=n, budget=budget)


# A setup-adaptive corruption strategy: receives the public setup
# transcript (opaque bytes chosen by the experiment) and the randomness
# source, returns the corrupted set.
SetupAdaptiveStrategy = Callable[[bytes, int, int, Randomness], CorruptionPlan]


def corrupt_after_setup(
    public_setup: bytes,
    n: int,
    t: int,
    rng: Randomness,
    strategy: Optional[SetupAdaptiveStrategy] = None,
) -> CorruptionPlan:
    """Run the setup-adaptive corruption step of the paper's model.

    With no strategy the corruption is uniformly random; experiments pass
    strategies that, e.g., target parties whose published keys have some
    property (the bare-PKI adversary's power).
    """
    if strategy is None:
        return random_corruption(n, t, rng)
    plan = strategy(public_setup, n, t, rng)
    # Re-mint the strategy's plan with the budget attached: an
    # over-budget strategy now fails at plan *construction* (the same
    # error path a direct ``CorruptionPlan(..., budget=t)`` caller gets),
    # instead of a bespoke post-hoc check here.
    return CorruptionPlan(corrupted=plan.corrupted, n=n, budget=t)
