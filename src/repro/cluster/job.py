"""Serializable job descriptions for cluster runs.

A :class:`ClusterJob` tells a worker how to rebuild its shard of the
party set from scratch: a ``"module:function"`` builder reference plus
picklable keyword arguments.  Every worker calls the builder for the
*full* party set and keeps only its shard — builders are deterministic
(any randomness is seeded through their arguments), so all workers and
the supervisor agree on the party objects without shipping them.

Builders live at importable module scope (the job crosses a process
boundary inside the JOB control message), return one
:class:`~repro.net.party.Party` per id in ``range(n)``, and take ``n``
as their first argument.  Two stock builders cover the repo's
workloads:

* :func:`phase_king_parties` — the Berman–Garay–Perry committee BA as
  real message-passing machines;
* :func:`replay_script_parties` — π_ba's recorded wire traffic as
  :class:`~repro.runtime.replay.ReplayParty` machines (the cluster's
  headline workload: the script is recorded once from the hybrid-model
  execution and shipped inside the job).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ClusterError
from repro.net.party import Party


@dataclass
class ClusterJob:
    """Everything a worker needs to (re)build and run its shard."""

    name: str
    n: int
    builder: str
    args: Dict[str, Any] = field(default_factory=dict)
    #: Party ids whose halting ends the run (``None`` = all parties).
    until: Optional[Tuple[int, ...]] = None
    max_rounds: int = 10_000
    #: Rounds between durable checkpoints (0 disables).
    checkpoint_interval: int = 8

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ClusterError(f"job needs n > 0, got {self.n}")
        if ":" not in self.builder:
            raise ClusterError(
                f"builder reference {self.builder!r} is not 'module:function'"
            )
        if self.checkpoint_interval < 0:
            raise ClusterError("checkpoint interval cannot be negative")

    def build_parties(self) -> List[Party]:
        """Invoke the builder and validate the full party set."""
        builder = resolve_builder(self.builder)
        parties = list(builder(self.n, **self.args))
        ids = sorted(party.party_id for party in parties)
        if ids != list(range(self.n)):
            raise ClusterError(
                f"builder {self.builder!r} produced party ids {ids[:5]}..., "
                f"want exactly range({self.n})"
            )
        return parties

    def target_ids(self) -> List[int]:
        """The party ids whose halting completes the run."""
        if self.until is None:
            return list(range(self.n))
        return sorted(self.until)


def resolve_builder(reference: str) -> Callable[..., Sequence[Party]]:
    """Import a ``"module:function"`` party-builder reference."""
    module_name, _, func_name = reference.partition(":")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ClusterError(
            f"cannot import builder module {module_name!r}: {exc}"
        ) from exc
    builder = getattr(module, func_name, None)
    if not callable(builder):
        raise ClusterError(
            f"builder {reference!r} does not name a callable"
        )
    return builder


def split_shards(n: int, num_workers: int) -> List[List[int]]:
    """Partition ``range(n)`` into ``num_workers`` contiguous shards.

    Sizes differ by at most one (the first ``n % k`` shards get the
    extra party).  Contiguity keeps checkpoint files and traces easy to
    eyeball; nothing in the protocol depends on the assignment.
    """
    if num_workers <= 0:
        raise ClusterError(f"need at least one worker, got {num_workers}")
    if num_workers > n:
        raise ClusterError(
            f"{num_workers} workers for {n} parties leaves empty shards"
        )
    base, extra = divmod(n, num_workers)
    shards: List[List[int]] = []
    start = 0
    for index in range(num_workers):
        size = base + (1 if index < extra else 0)
        shards.append(list(range(start, start + size)))
        start += size
    return shards


# -- stock builders ------------------------------------------------------------


def phase_king_parties(
    n: int,
    inputs: Dict[int, int],
    byzantine: Sequence[int] = (),
) -> List[Party]:
    """The phase-king committee BA over ``range(n)``.

    Mirrors :func:`repro.runtime.drivers.run_phase_king_runtime`'s party
    construction: honest parties run the three-round King algorithm,
    byzantine ones the stock equivocator.
    """
    from repro.protocols.phase_king import (
        ByzantinePhaseKingParty,
        make_honest_party,
    )

    members = list(range(n))
    if sorted(inputs) != members:
        raise ClusterError("phase-king inputs must cover range(n)")
    byzantine_set = set(byzantine)
    f = max(1, (n - 1) // 3)
    parties: List[Party] = []
    for member in members:
        if member in byzantine_set:
            parties.append(ByzantinePhaseKingParty(member, members))
        else:
            parties.append(
                make_honest_party(member, members, f, inputs[member])
            )
    return parties


def gradecast_parties(
    n: int,
    sender: int,
    value: int,
    byzantine: Sequence[int] = (),
) -> List[Party]:
    """The four-round gradecast primitive over ``range(n)``.

    Mirrors :func:`repro.protocols.gradecast.run_gradecast`'s honest
    construction: byzantine parties are silent, the designated sender
    carries the input value, everyone else grades what they hear.
    """
    from repro.net.party import SilentParty
    from repro.protocols.gradecast import GradecastParty

    members = list(range(n))
    if sender not in members:
        raise ClusterError(f"gradecast sender {sender} not in range({n})")
    byzantine_set = set(byzantine)
    t = max(1, (n - 1) // 3)
    parties: List[Party] = []
    for member in members:
        if member in byzantine_set:
            parties.append(SilentParty(member))
        else:
            parties.append(
                GradecastParty(
                    member, members, t, sender,
                    sender_value=value if member == sender else None,
                )
            )
    return parties


def replay_script_parties(n: int, script) -> List[Party]:
    """π_ba's recorded wire schedule as replay machines.

    ``script`` is a :class:`~repro.runtime.replay.ReplayScript` (picklable,
    shipped inside the job); hybrid-model charges are *not* replayed by
    the parties — the driver applies them to the final ledger via
    :func:`~repro.runtime.replay.apply_func_ops`, exactly as
    :func:`~repro.runtime.drivers.run_balanced_ba_runtime` does.
    """
    from repro.runtime.replay import build_replay_parties

    return list(build_replay_parties(script, n))


def phase_king_job(
    inputs: Dict[int, int],
    byzantine: Sequence[int] = (),
    *,
    name: str = "phase-king",
    checkpoint_interval: int = 8,
) -> ClusterJob:
    """Convenience constructor for a phase-king cluster job."""
    n = len(inputs)
    byzantine_set = set(byzantine)
    honest = tuple(m for m in sorted(inputs) if m not in byzantine_set)
    f = max(1, (n - 1) // 3)
    return ClusterJob(
        name=name,
        n=n,
        builder="repro.cluster.job:phase_king_parties",
        args={"inputs": dict(inputs), "byzantine": tuple(byzantine)},
        until=honest,
        max_rounds=3 * (f + 2) + 3,
        checkpoint_interval=checkpoint_interval,
    )


def gradecast_job(
    n: int,
    sender: int,
    value: int,
    byzantine: Sequence[int] = (),
    *,
    name: str = "gradecast",
    checkpoint_interval: int = 8,
) -> ClusterJob:
    """Convenience constructor for a gradecast cluster job."""
    byzantine_set = set(byzantine)
    honest = tuple(m for m in range(n) if m not in byzantine_set)
    return ClusterJob(
        name=name,
        n=n,
        builder="repro.cluster.job:gradecast_parties",
        args={
            "sender": sender,
            "value": value,
            "byzantine": tuple(byzantine),
        },
        until=honest,
        max_rounds=6,
        checkpoint_interval=checkpoint_interval,
    )


def replay_job(
    script,
    n: int,
    *,
    name: str = "pi-ba-replay",
    checkpoint_interval: int = 8,
) -> ClusterJob:
    """Convenience constructor for a π_ba wire-replay cluster job."""
    return ClusterJob(
        name=name,
        n=n,
        builder="repro.cluster.job:replay_script_parties",
        args={"script": script},
        until=None,
        max_rounds=script.num_rounds + 2,
        checkpoint_interval=checkpoint_interval,
    )
