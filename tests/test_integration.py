"""Cross-module integration tests: whole-stack scenarios.

Each test wires several subsystems together in a configuration no unit
test covers: alternative OTS inside the full BA, the election-driven
tree under the functionality layer, broadcast over the OWF SRDS, and
end-to-end determinism of the whole pipeline.
"""

import pytest

from repro.aetree.kssv import build_tree_via_elections
from repro.functionalities.ae_comm import AlmostEverywhereComm
from repro.net.adversary import random_corruption
from repro.net.metrics import CommunicationMetrics
from repro.params import ProtocolParameters
from repro.protocols.balanced_ba import BalancedBA, run_balanced_ba
from repro.protocols.broadcast import BroadcastService
from repro.srds.base_sigs import HashRegistryBase, SchnorrBase
from repro.srds.ots import WinternitzOts
from repro.srds.owf import OwfSRDS
from repro.srds.snark_based import SnarkSRDS
from repro.utils.randomness import Randomness

N = 64
PARAMS = ProtocolParameters()


def _plan(seed=1):
    return random_corruption(
        N, PARAMS.max_corruptions(N), Randomness(seed).fork("c")
    )


class TestFullStackVariants:
    def test_ba_with_winternitz_owf_srds(self):
        """pi_ba over the OWF SRDS with W-OTS base signatures."""
        plan = _plan()
        scheme = OwfSRDS(ots=WinternitzOts(message_bits=64, w=4))
        result = run_balanced_ba(
            {i: 1 for i in range(N)}, plan, scheme, PARAMS,
            Randomness(2).fork("r"),
        )
        assert result.agreement and result.validity

    def test_winternitz_certificates_smaller_in_protocol(self):
        """The W-OTS optimization shows up in the protocol's certificate."""
        plan = _plan()
        lamport_result = run_balanced_ba(
            {i: 1 for i in range(N)}, plan,
            OwfSRDS(message_bits=64), PARAMS, Randomness(3).fork("a"),
        )
        wots_result = run_balanced_ba(
            {i: 1 for i in range(N)}, plan,
            OwfSRDS(ots=WinternitzOts(message_bits=64, w=4)),
            PARAMS, Randomness(3).fork("b"),
        )
        assert wots_result.agreement
        assert (
            wots_result.certificate_bytes * 2
            < lamport_result.certificate_bytes
        )

    def test_ba_with_schnorr_base_signatures(self):
        """The SNARK SRDS over real Schnorr inside the full protocol.

        Small n keeps the pure-Python EC cost manageable; the
        verification memoization makes it feasible at all.
        """
        small_n = 24
        params = PARAMS
        plan = random_corruption(
            small_n, params.max_corruptions(small_n),
            Randomness(4).fork("c"),
        )
        result = run_balanced_ba(
            {i: i % 2 for i in range(small_n)}, plan,
            SnarkSRDS(base_scheme=SchnorrBase()), params,
            Randomness(4).fork("r"),
        )
        assert result.agreement

    def test_ba_over_election_built_tree(self):
        """pi_ba running on the KSSV election-driven tree."""
        plan = _plan(5)
        rng = Randomness(5)
        metrics = CommunicationMetrics()
        tree = build_tree_via_elections(N, PARAMS, plan, rng.fork("t"))
        ae = AlmostEverywhereComm(
            N, PARAMS, plan, metrics, rng.fork("ae"), tree=tree
        )
        protocol = BalancedBA(
            {i: 1 for i in range(N)}, plan,
            SnarkSRDS(base_scheme=HashRegistryBase()), PARAMS,
            rng.fork("p"), metrics=metrics,
        )
        pp = protocol.scheme.setup(tree.num_virtual, rng.fork("srds"))
        verification_keys, signing_keys = {}, {}
        for virtual_id in range(tree.num_virtual):
            vk, sk = protocol.scheme.keygen(pp, rng.fork(f"k{virtual_id}"))
            verification_keys[virtual_id] = vk
            signing_keys[virtual_id] = sk
        outputs, certificate_bytes = protocol.certified_propagation(
            ae, pp, verification_keys, signing_keys, y=1,
            seed=rng.fork("coin").random_bytes(32),
        )
        honest_outputs = {outputs[p] for p in plan.honest}
        assert honest_outputs == {1}
        assert 0 < certificate_bytes < 1024

    def test_broadcast_service_with_owf_srds(self):
        """Corollary 1.2(1) over the trusted-PKI construction."""
        plan = _plan(6)
        service = BroadcastService(
            N, plan, OwfSRDS(message_bits=32), PARAMS,
            Randomness(6).fork("svc"),
        )
        service.setup()
        outcome = service.broadcast(plan.honest[0], 1)
        assert outcome.agreement and outcome.consistent_with_sender


class TestDeterminism:
    def test_whole_pipeline_reproducible(self):
        plan = _plan(7)

        def run():
            return run_balanced_ba(
                {i: i % 2 for i in range(N)}, plan,
                SnarkSRDS(base_scheme=HashRegistryBase()), PARAMS,
                Randomness(7).fork("r"),
            )

        first, second = run(), run()
        assert first.outputs == second.outputs
        assert (
            first.metrics.max_bits_per_party
            == second.metrics.max_bits_per_party
        )
        assert first.certificate_bytes == second.certificate_bytes


class TestMpcOverElectionTree:
    def test_mpc_runs_on_default_stack(self):
        from repro.mpc.scalable_mpc import run_scalable_mpc

        plan = _plan(8)
        result = run_scalable_mpc(
            {i: bytes([i % 7]) for i in range(N)},
            lambda plains: max(plains),
            1,
            plan,
            PARAMS,
            Randomness(8).fork("r"),
        )
        assert result.all_honest_correct
        assert result.expected_output == bytes([6])
