"""Async-safety rules: ASY001 (fire-and-forget) and ASY002 (ownership).

HoneyBadgerMPC-style asyncio protocol stacks are notorious for
``asyncio.create_task`` calls whose reference is dropped — the event
loop only holds a weak reference, so the task can be garbage-collected
mid-flight and its exception silently lost.  In this repo that failure
mode is worse than a latent bug: a dropped transport pump stalls a
round barrier nondeterministically, which the differential-parity suite
can only see as a flaky hang.

ASY002 extends the discipline to *state*: a class whose containers are
reachable from more than one execution context (reader threads feeding
an asyncio loop, worker pools behind a session manager) must mutate
them under its own lock — or keep each container single-writer.  The
rule is cross-module (it consumes the class inventories in the facts
layer) and deliberately structural: it never guesses about the GIL,
only about the ownership conventions this codebase actually uses.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from repro.lint.config import LintConfig
from repro.lint.model import (
    ModuleUnit,
    ProjectRule,
    Rule,
    RuleMeta,
    Severity,
    Violation,
)
from repro.lint.xmod.project import ClassFacts, ProjectUnit

_SPAWNERS: Set[str] = {"create_task", "ensure_future"}


class FireAndForgetRule(Rule):
    """ASY001 — retain task handles; await your coroutines."""

    meta = RuleMeta(
        rule_id="ASY001",
        name="fire-and-forget-async",
        severity=Severity.ERROR,
        summary=(
            "asyncio.create_task/ensure_future with a discarded result, "
            "or a locally-defined coroutine called without await"
        ),
        rationale=(
            "The event loop keeps only a weak reference to tasks: a "
            "create_task whose return value is dropped can be collected "
            "mid-run, losing its exception and stalling round barriers "
            "nondeterministically (the classic HoneyBadger-stack hang).  "
            "A coroutine called without await never runs at all — the "
            "protocol step it implements is silently skipped."
        ),
        fix_hint=(
            "assign the task to a retained attribute/collection (and "
            "cancel/await it on shutdown), or await the coroutine"
        ),
    )

    def check(
        self, module: ModuleUnit, config: LintConfig
    ) -> Iterator[Violation]:
        if not config.in_scope(module.rel, config.asy001_scopes):
            return
        async_defs = {
            node.name
            for node in ast.walk(module.tree)
            if isinstance(node, ast.AsyncFunctionDef)
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Expr):
                continue
            call = node.value
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            spawner = None
            if isinstance(func, ast.Attribute) and func.attr in _SPAWNERS:
                spawner = func.attr
            elif isinstance(func, ast.Name) and func.id in _SPAWNERS:
                spawner = func.id
            if spawner is not None:
                yield self.violation(
                    module, node,
                    f"`{spawner}(...)` result is discarded — the task can "
                    "be garbage-collected mid-flight",
                )
                continue
            called = None
            if isinstance(func, ast.Name) and func.id in async_defs:
                called = func.id
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in async_defs
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
            ):
                called = func.attr
            if called is not None:
                yield self.violation(
                    module, node,
                    f"coroutine `{called}(...)` is called but never "
                    "awaited — it will not run",
                    fix_hint=f"`await {called}(...)` (or schedule and "
                    "retain it as a task)",
                )


class SharedStateRule(ProjectRule):
    """ASY002 — mutate task-shared containers under their owning lock."""

    meta = RuleMeta(
        rule_id="ASY002",
        name="unlocked-shared-state",
        severity=Severity.ERROR,
        summary=(
            "containers reachable from multiple tasks/threads must be "
            "mutated under the class's own lock (or stay single-writer)"
        ),
        rationale=(
            "The mesh router and session gateway share dicts between "
            "reader threads and the asyncio loop; a mutation outside "
            "the owning lock is a data race the differential-parity "
            "suite can only observe as a flaky hang or a ledger "
            "mismatch.  A class that owns a lock has declared its "
            "discipline — every container mutation outside it is a "
            "bug, not a style choice."
        ),
        fix_hint=(
            "wrap the mutation in `with self.<lock>:` (the lock the "
            "class already owns), or confine the container to a single "
            "writer context"
        ),
    )

    @staticmethod
    def _is_locked(locks: List[str], lock_attrs: Set[str]) -> bool:
        """Does any held with-context label count as the class's lock?

        Accepts the declared lock attributes plus lock-returning
        accessors (``with self._peer_lock(peer):`` labels
        ``_peer_lock()``), recognized by name.
        """
        for label in locks:
            bare = label.rstrip("()")
            if bare in lock_attrs or "lock" in bare.lower() \
                    or "cond" in bare.lower():
                return True
        return False

    @staticmethod
    def _context_sides(
        project: ProjectUnit, modname: str, klass: ClassFacts,
    ) -> Dict[str, str]:
        """Method -> execution context: ``"thread"`` or ``"loop"``.

        Thread side: methods handed to ``threading.Thread``/executor
        ``submit``/``run_in_executor``.  Loop side: async methods and
        task entry points.  Synchronous helpers called from both stay
        unlabeled — only *declared* entry points are evidence.
        """
        sides: Dict[str, str] = {}
        for method in klass.thread_entries:
            sides[method] = "thread"
        for method in klass.task_entries:
            sides.setdefault(method, "loop")
        for function in project.facts[modname].functions:
            if function.class_name == klass.name and function.is_async:
                sides.setdefault(function.name, "loop")
        return sides

    def check_project(
        self,
        project: ProjectUnit,
        modules: Dict[str, ModuleUnit],
        config: LintConfig,
    ) -> Iterator[Violation]:
        for qualified in sorted(project.classes):
            modname, klass = project.classes[qualified]
            rel = project.facts[modname].rel
            if not config.in_scope(rel, config.asy002_scopes):
                continue
            shared = set(klass.container_attrs)
            if not shared:
                continue
            lock_attrs = set(klass.lock_attrs)
            # Lock consistency: a container mutated under the class's
            # lock *somewhere* is lock-protected state — every other
            # mutation of it must hold the lock too.  Containers never
            # mutated under the lock fall through to the cross-context
            # check (single-writer state owns no lock on purpose: a
            # recv buffer guarded by a send lock would be noise).
            lock_affine: Set[str] = set()
            if lock_attrs:
                lock_affine = {
                    mutation.attr for mutation in klass.mutations
                    if mutation.attr in shared
                    and self._is_locked(mutation.locks, lock_attrs)
                }
            for mutation in klass.mutations:
                if mutation.attr not in lock_affine:
                    continue
                if self._is_locked(mutation.locks, lock_attrs):
                    continue
                yield self.project_violation(
                    modules, rel, mutation.line,
                    message=(
                        f"{klass.name}.{mutation.method}() mutates "
                        f"shared container {mutation.attr!r} "
                        f"({mutation.kind}) without holding the "
                        "class's lock "
                        f"({', '.join(sorted(lock_attrs))}) that "
                        "guards its other mutation sites"
                    ),
                )
            # Cross-context mutation of lock-free containers: only a
            # container written from both a thread entry point and the
            # event loop is a finding (single-writer is sanctioned).
            sides = self._context_sides(project, modname, klass)
            writers: Dict[str, Set[str]] = {}
            for mutation in klass.mutations:
                if mutation.attr not in shared or \
                        mutation.attr in lock_affine:
                    continue
                side = sides.get(mutation.method)
                if side is not None:
                    writers.setdefault(mutation.attr, set()).add(side)
            contested = {
                attr for attr, attr_sides in writers.items()
                if len(attr_sides) > 1
            }
            for mutation in klass.mutations:
                if mutation.attr not in contested:
                    continue
                if mutation.locks:
                    continue
                yield self.project_violation(
                    modules, rel, mutation.line,
                    message=(
                        f"{klass.name}.{mutation.attr!r} is mutated "
                        "from both thread and event-loop contexts "
                        f"({klass.name}.{mutation.method}() at line "
                        f"{mutation.line} holds no lock) — shared "
                        "state needs an owning lock or a single "
                        "writer"
                    ),
                )
