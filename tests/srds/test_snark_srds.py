"""Tests for the CRH + SNARK + bare-PKI SRDS construction (Thm 2.8)."""

import pytest

from repro.crypto.snark import forge_random_proof
from repro.srds.base_sigs import HashRegistryBase, SchnorrBase
from repro.srds.snark_based import (
    CertifiedBaseSignature,
    SnarkAggregateSignature,
    SnarkBaseSignature,
    SnarkSRDS,
    decode_aggregate,
    vk_merkle_tree,
)
from repro.utils.randomness import Randomness

N = 120


@pytest.fixture(scope="module")
def deployment():
    rng = Randomness(88)
    scheme = SnarkSRDS(base_scheme=HashRegistryBase())
    pp = scheme.setup(N, rng.fork("setup"))
    verification_keys = {}
    signing_keys = {}
    for index in range(N):
        vk, sk = scheme.keygen(pp, rng.fork(f"kg-{index}"))
        verification_keys[index] = vk
        signing_keys[index] = sk
    return scheme, pp, verification_keys, signing_keys


def _sign_range(deployment, message, indices):
    scheme, pp, _, sks = deployment
    return [scheme.sign(pp, i, sks[i], message) for i in indices]


class TestLeafAggregation:
    def test_leaf_flow(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"leaf"
        signatures = _sign_range(deployment, message, range(40))
        aggregate = scheme.aggregate(pp, vks, message, signatures)
        assert isinstance(aggregate, SnarkAggregateSignature)
        assert aggregate.count == 40
        assert (aggregate.lo, aggregate.hi) == (0, 39)

    def test_duplicate_base_not_double_counted(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"dup"
        signatures = _sign_range(deployment, message, range(10))
        aggregate = scheme.aggregate(
            pp, vks, message, signatures + signatures
        )
        assert aggregate.count == 10

    def test_invalid_base_filtered(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"filter"
        signatures = _sign_range(deployment, message, range(10))
        bogus = SnarkBaseSignature(index=5, signature_bytes=b"junk")
        aggregate = scheme.aggregate(pp, vks, message, signatures + [bogus])
        assert aggregate.count == 10

    def test_out_of_universe_index_filtered(self, deployment):
        scheme, pp, vks, sks = deployment
        good = scheme.sign(pp, 0, sks[0], b"m")
        shifted = SnarkBaseSignature(
            index=N + 1, signature_bytes=good.signature_bytes
        )
        assert scheme.aggregate(pp, vks, b"m", [shifted]) is None

    def test_empty_returns_none(self, deployment):
        scheme, pp, vks, _ = deployment
        assert scheme.aggregate(pp, vks, b"m", []) is None


class TestRecursiveAggregation:
    def test_internal_combination(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"internal"
        left = scheme.aggregate(
            pp, vks, message, _sign_range(deployment, message, range(0, 50))
        )
        right = scheme.aggregate(
            pp, vks, message, _sign_range(deployment, message, range(50, 100))
        )
        combined = scheme.aggregate(pp, vks, message, [left, right])
        assert combined.count == 100
        assert (combined.lo, combined.hi) == (0, 99)
        assert scheme.verify(pp, vks, message, combined) == (
            combined.count >= pp.acceptance_threshold
        )

    def test_overlapping_aggregates_filtered(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"overlap"
        a = scheme.aggregate(
            pp, vks, message, _sign_range(deployment, message, range(0, 30))
        )
        b = scheme.aggregate(
            pp, vks, message, _sign_range(deployment, message, range(20, 50))
        )
        combined = scheme.aggregate(pp, vks, message, [a, b])
        # Greedy disjoint filter keeps the larger; counts never double.
        assert combined.count == 30

    def test_same_aggregate_twice_not_doubled(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"replay"
        aggregate = scheme.aggregate(
            pp, vks, message, _sign_range(deployment, message, range(0, 30))
        )
        combined = scheme.aggregate(pp, vks, message, [aggregate, aggregate])
        assert combined.count == 30

    def test_mixed_bases_and_aggregates(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"mixed"
        aggregate = scheme.aggregate(
            pp, vks, message, _sign_range(deployment, message, range(0, 30))
        )
        loose = _sign_range(deployment, message, range(60, 70))
        combined = scheme.aggregate(pp, vks, message, [aggregate] + loose)
        assert combined.count == 40

    def test_base_inside_aggregate_range_dropped(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"contained"
        aggregate = scheme.aggregate(
            pp, vks, message, _sign_range(deployment, message, range(0, 30))
        )
        inside = _sign_range(deployment, message, [10])
        combined = scheme.aggregate(pp, vks, message, [aggregate] + inside)
        assert combined.count == 30


class TestVerification:
    def test_majority_accepts(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"majority"
        aggregate = scheme.aggregate(
            pp, vks, message, _sign_range(deployment, message, range(N))
        )
        assert scheme.verify(pp, vks, message, aggregate)

    def test_minority_rejected(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"minority"
        aggregate = scheme.aggregate(
            pp, vks, message, _sign_range(deployment, message, range(N // 3))
        )
        assert not scheme.verify(pp, vks, message, aggregate)

    def test_wrong_message_rejected(self, deployment):
        scheme, pp, vks, _ = deployment
        aggregate = scheme.aggregate(
            pp, vks, b"m1", _sign_range(deployment, b"m1", range(N))
        )
        assert not scheme.verify(pp, vks, b"m2", aggregate)

    def test_base_signature_never_verifies_alone(self, deployment):
        scheme, pp, vks, sks = deployment
        base = scheme.sign(pp, 0, sks[0], b"m")
        assert not scheme.verify(pp, vks, b"m", base)

    def test_forged_count_rejected(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"forge-count"
        aggregate = scheme.aggregate(
            pp, vks, message, _sign_range(deployment, message, range(10))
        )
        inflated = SnarkAggregateSignature(
            count=N,
            lo=aggregate.lo,
            hi=aggregate.hi,
            digest=aggregate.digest,
            vk_root=aggregate.vk_root,
            message_tag=aggregate.message_tag,
            proof=aggregate.proof,
        )
        assert not scheme.verify(pp, vks, message, inflated)

    def test_random_proof_rejected(self, deployment):
        scheme, pp, vks, _ = deployment
        rng = Randomness(3)
        tree = vk_merkle_tree(vks, pp.num_parties)
        from repro.crypto.hashing import hash_domain

        forged = SnarkAggregateSignature(
            count=N,
            lo=0,
            hi=N - 1,
            digest=rng.random_bytes(32),
            vk_root=tree.root,
            message_tag=hash_domain("srds/message-tag", b"target"),
            proof=forge_random_proof("srds/internal-sum", rng),
        )
        assert not scheme.verify(pp, vks, b"target", forged)

    def test_stale_vk_root_rejected(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"stale-root"
        aggregate = scheme.aggregate(
            pp, vks, message, _sign_range(deployment, message, range(N))
        )
        # Replace one key (bare-PKI move): old aggregates must die.
        mutated = dict(vks)
        mutated[0] = b"replaced-key"
        assert not scheme.verify(pp, mutated, message, aggregate)


class TestEncoding:
    def test_aggregate_roundtrip(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"roundtrip"
        aggregate = scheme.aggregate(
            pp, vks, message, _sign_range(deployment, message, range(N))
        )
        decoded = decode_aggregate(aggregate.encode())
        assert scheme.verify(pp, vks, message, decoded)

    def test_aggregate_size_constant_in_contributors(self, deployment):
        scheme, pp, vks, _ = deployment
        small = scheme.aggregate(
            pp, vks, b"s", _sign_range(deployment, b"s", range(5))
        )
        large = scheme.aggregate(
            pp, vks, b"s", _sign_range(deployment, b"s", range(N))
        )
        assert small.size_bytes() == large.size_bytes()

    def test_metadata(self):
        scheme = SnarkSRDS()
        description = scheme.describe()
        assert description["setup"] == "bare-pki+crs"
        assert "snark" in description["assumptions"]


class TestWithSchnorr:
    def test_real_schnorr_base_scheme(self):
        rng = Randomness(11)
        scheme = SnarkSRDS(base_scheme=SchnorrBase())
        n = 12
        pp = scheme.setup(n, rng.fork("s"))
        vks, sks = {}, {}
        for i in range(n):
            vks[i], sks[i] = scheme.keygen(pp, rng.fork(f"k{i}"))
        message = b"real-crypto"
        signatures = [scheme.sign(pp, i, sks[i], message) for i in range(n)]
        aggregate = scheme.aggregate(pp, vks, message, signatures)
        assert aggregate.count == n
        assert scheme.verify(pp, vks, message, aggregate)
        assert not scheme.verify(pp, vks, b"other", aggregate)
