"""The deterministic single-shard round executor.

:class:`ShardEngine` is the *inner loop* of a cluster worker: given the
frames due at a round barrier, it steps its shard's parties in the
canonical order and returns the frames they emit.  It is deliberately a
plain synchronous object — no sockets, no clocks, no randomness — so
that

* a worker process can drive it round-by-round under supervisor control,
* the same code can run **in-process** (:func:`run_shard_locally`) for
  checkpoint round-trip tests and differential parity against
  :func:`repro.runtime.synchronizer.run_parties`, and
* a checkpoint (:mod:`repro.cluster.checkpoint`) captures its complete
  state: party snapshots, per-sender send sequence counters, and trace
  sequence offsets.

Determinism contract.  For a fault-free execution, an engine holding
*all* parties produces byte-identical traces and per-party tallies to
:class:`~repro.runtime.synchronizer.RoundSynchronizer` over any
transport: inboxes are presented in ``(sent_round, sender, seq)`` order,
parties step in ascending id order, frames carry the same
``deliver_round``/``charge_bits``/``seq`` stamps, and the per-party
trace event sequence (round-barrier, recvs, sends, halt) is identical.
Sharding the parties across engines changes nothing: each party's
stream depends only on its own inbox and program order.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.errors import ClusterError
from repro.net.metrics import CommunicationMetrics, PartyTally
from repro.net.party import Envelope, Party
from repro.obs.flow import flow_tags
from repro.runtime import trace as trace_mod
from repro.runtime.synchronizer import RuntimeResult
from repro.runtime.trace import TraceRecorder, load_jsonl
from repro.runtime.transport import Frame
from repro.cluster.checkpoint import (
    ClusterCheckpoint,
    PartyCheckpoint,
    load_checkpoint,
    save_checkpoint,
)


class ShardEngine:
    """Steps one shard of parties through synchronous rounds.

    The engine does **not** own a metrics ledger: charging is the
    caller's job (the supervisor charges the authoritative ledger as it
    routes frames; :func:`run_shard_locally` charges a local one), so a
    sharded run cannot double-charge.
    """

    def __init__(
        self,
        parties: Sequence[Party],
        trace: Optional[TraceRecorder] = None,
        first_round: int = 0,
    ) -> None:
        self.parties: Dict[int, Party] = {}
        for party in parties:
            if party.party_id in self.parties:
                raise ClusterError(f"duplicate party id {party.party_id}")
            self.parties[party.party_id] = party
        self.trace = trace
        self.next_round = first_round
        self._seq: Dict[int, int] = {p: 0 for p in self.parties}
        #: Flow-ledger side channel: after each :meth:`step_round`, the
        #: obs phase of each emitted frame (parallel to the returned
        #: list; "" when the stepped party attached none).  Checkpoints
        #: ignore it — phases only matter for the round they are routed.
        self.last_phases: List[str] = []

    # -- queries ---------------------------------------------------------------

    @property
    def party_ids(self) -> List[int]:
        return sorted(self.parties)

    @property
    def all_halted(self) -> bool:
        return all(party.halted for party in self.parties.values())

    def halted_ids(self) -> List[int]:
        return sorted(
            p for p, party in self.parties.items() if party.halted
        )

    def outputs(self) -> Dict[int, object]:
        """Outputs of this shard's halted parties (simulator API)."""
        return {
            party_id: party.output
            for party_id, party in self.parties.items()
            if party.halted
        }

    def send_seq(self, party_id: int) -> int:
        """The sequence number the party's next sent frame will carry."""
        return self._seq[party_id]

    # -- one round --------------------------------------------------------------

    def step_round(
        self, round_index: int, due_frames: Iterable[Frame]
    ) -> List[Frame]:
        """Execute one synchronous round for this shard.

        ``due_frames`` are the frames whose ``deliver_round`` has
        arrived for this shard's parties.  Returns the frames the shard
        emits (recipients may live on any shard — routing is the
        caller's job).
        """
        if round_index != self.next_round:
            raise ClusterError(
                f"shard is at round {self.next_round}, "
                f"asked to step round {round_index}"
            )
        inboxes: Dict[int, List[Frame]] = {}
        for frame in due_frames:
            if frame.recipient not in self.parties:
                raise ClusterError(
                    f"frame for party {frame.recipient} routed to a shard "
                    f"holding {self.party_ids}"
                )
            if frame.deliver_round > round_index:
                raise ClusterError(
                    f"frame due at round {frame.deliver_round} delivered "
                    f"at round {round_index}"
                )
            inboxes.setdefault(frame.recipient, []).append(frame)
        out: List[Frame] = []
        phases: List[str] = []
        for party_id in sorted(self.parties):
            party = self.parties[party_id]
            if party.halted:
                # Late frames for a halted party are dropped, exactly as
                # the synchronizer discards a halted party's inbox.
                continue
            due = inboxes.get(party_id, [])
            due.sort(key=lambda f: (f.sent_round, f.sender, f.seq))
            inbox = [
                Envelope(
                    sender=f.sender, recipient=f.recipient, payload=f.payload
                )
                for f in due
            ]
            self._trace(
                party_id,
                trace_mod.ROUND_BARRIER,
                round_index,
                queue_depth=len(inbox),
            )
            if self.trace is not None:
                for envelope in inbox:
                    self._trace(
                        party_id,
                        trace_mod.RECV,
                        round_index,
                        peer=envelope.sender,
                        bits=envelope.size_bits(),
                    )
            outgoing = party.step(round_index, inbox)
            for envelope in outgoing:
                seq = self._seq[party_id]
                self._seq[party_id] = seq + 1
                frame = Frame(
                    sender=party_id,
                    recipient=envelope.recipient,
                    payload=envelope.payload,
                    sent_round=round_index,
                    deliver_round=round_index + 1,
                    charge_bits=envelope.size_bits(),
                    seq=seq,
                )
                self._trace(
                    party_id,
                    trace_mod.SEND,
                    round_index,
                    peer=envelope.recipient,
                    bits=frame.bits(),
                )
                out.append(frame)
                phases.append(getattr(envelope, "phase", ""))
            if party.halted:
                self._trace(
                    party_id,
                    trace_mod.HALT,
                    round_index,
                    output=repr(party.output),
                )
        self.next_round = round_index + 1
        self.last_phases = phases
        return out

    def _trace(
        self, party_id: int, kind: str, round_index: int, **fields
    ) -> None:
        if self.trace is not None:
            self.trace.record(party_id, kind, round_index, **fields)

    # -- checkpoint/restore -----------------------------------------------------

    def snapshot(
        self,
        staged: Optional[Sequence[Frame]] = None,
        tallies: Optional[Dict[int, PartyTally]] = None,
    ) -> ClusterCheckpoint:
        """Freeze the shard at its current round barrier.

        ``staged`` are the caller's in-flight frames for this shard (the
        local runner's pending list; workers pass nothing because frame
        staging is supervisor-owned).  ``tallies`` lets the caller
        attach per-party metric tallies for resume recharging.
        """
        records: List[PartyCheckpoint] = []
        for party_id in sorted(self.parties):
            records.append(
                PartyCheckpoint.of(
                    self.parties[party_id],
                    send_seq=self._seq[party_id],
                    trace_seq=(
                        self.trace.seq_of(party_id)
                        if self.trace is not None
                        else 0
                    ),
                    tally=tallies.get(party_id) if tallies else None,
                )
            )
        return ClusterCheckpoint(
            next_round=self.next_round,
            parties=records,
            staged=list(staged) if staged else [],
        )

    @classmethod
    def restore(
        cls,
        checkpoint: ClusterCheckpoint,
        trace: Optional[TraceRecorder] = None,
    ) -> "ShardEngine":
        """Rebuild an engine from a checkpoint.

        Per-sender send sequence counters and (when a recorder is
        supplied) trace sequence counters are primed from the
        checkpoint, so resumed frames and events continue the exact
        numbering of the interrupted run.
        """
        parties = [record.restore_party() for record in checkpoint.parties]
        engine = cls(
            parties, trace=trace, first_round=checkpoint.next_round
        )
        for record in checkpoint.parties:
            engine._seq[record.party_id] = record.send_seq
            if trace is not None:
                trace.prime(record.party_id, record.trace_seq)
        return engine


# -- in-process driver ---------------------------------------------------------


def _trace_dir(directory: Union[str, Path], name: str) -> Path:
    """Where the local runner persists trace streams at a checkpoint."""
    return Path(directory) / f"{name}.trace"


def _drive(
    engine: ShardEngine,
    pending: List[Frame],
    metrics: CommunicationMetrics,
    until: Optional[Iterable[int]],
    max_rounds: int,
    checkpoint_dir: Optional[Union[str, Path]],
    checkpoint_interval: int,
    checkpoint_name: str,
) -> RuntimeResult:
    if until is None:
        targets = engine.party_ids
    else:
        targets = list(until)
        unknown = [p for p in targets if p not in engine.parties]
        if unknown:
            raise ClusterError(
                f"unknown target party id(s) {sorted(unknown)}; "
                f"shard holds {engine.party_ids}"
            )

    def finished() -> bool:
        return all(engine.parties[p].halted for p in targets)

    for _ in range(max_rounds):
        if finished():
            return RuntimeResult(
                outputs=engine.outputs(),
                metrics=metrics,
                rounds=engine.next_round,
                trace=engine.trace,
            )
        round_index = engine.next_round
        due = [f for f in pending if f.deliver_round <= round_index]
        pending = [f for f in pending if f.deliver_round > round_index]
        out = engine.step_round(round_index, due)
        for frame, phase in zip(out, engine.last_phases):
            # Same timing as the runtime transports: a frame is charged
            # in the round it was sent, before that round's end_round.
            # The engine's phase side channel feeds the flow ledger the
            # span recorded at emit time (replay parties carry it).
            with flow_tags(phase=phase or None, kind="frame"):
                # lint: allow[OBS001] reason=routing-plane charge; the emitting party's span was recorded at emit time and rides in via flow_tags, so phase attribution is preserved without a local span
                metrics.record_message(
                    frame.sender, frame.recipient, frame.bits()
                )
        pending.extend(out)
        metrics.end_round()
        if (
            checkpoint_dir is not None
            and checkpoint_interval > 0
            and engine.next_round % checkpoint_interval == 0
        ):
            checkpoint = engine.snapshot(
                staged=pending,
                tallies={
                    p: metrics.tally_of(p) for p in engine.party_ids
                },
            )
            save_checkpoint(checkpoint_dir, checkpoint_name, checkpoint)
            if engine.trace is not None:
                engine.trace.dump_dir(
                    _trace_dir(checkpoint_dir, checkpoint_name)
                )
    raise ClusterError(f"shard did not terminate in {max_rounds} rounds")


def run_shard_locally(
    parties: Sequence[Party],
    *,
    metrics: Optional[CommunicationMetrics] = None,
    trace: Optional[TraceRecorder] = None,
    until: Optional[Iterable[int]] = None,
    max_rounds: int = 10_000,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    checkpoint_interval: int = 0,
    checkpoint_name: str = "shard-0",
) -> RuntimeResult:
    """Run a full party set through a :class:`ShardEngine` in-process.

    Semantically equivalent to a fault-free
    :func:`~repro.runtime.synchronizer.run_parties` (same outputs, same
    metrics, same trace), without an event loop.  With
    ``checkpoint_dir`` and a positive ``checkpoint_interval`` the run
    durably checkpoints every ``interval`` rounds —
    :func:`resume_shard_locally` then continues an interrupted run to a
    byte-identical conclusion.
    """
    engine = ShardEngine(parties, trace=trace)
    return _drive(
        engine,
        [],
        metrics if metrics is not None else CommunicationMetrics(),
        until,
        max_rounds,
        checkpoint_dir,
        checkpoint_interval,
        checkpoint_name,
    )


def resume_shard_locally(
    checkpoint_dir: Union[str, Path],
    checkpoint_name: str = "shard-0",
    *,
    metrics: Optional[CommunicationMetrics] = None,
    trace: Optional[TraceRecorder] = None,
    until: Optional[Iterable[int]] = None,
    max_rounds: int = 10_000,
    checkpoint_interval: int = 0,
) -> RuntimeResult:
    """Continue an interrupted :func:`run_shard_locally` execution.

    Loads the named checkpoint, rebuilds the engine (parties, send/trace
    sequence counters, staged frames), pre-charges the fresh ledger with
    the checkpointed tallies and empty closed rounds, and — when a
    recorder is supplied — preloads the checkpointed trace streams so
    the final trace fingerprint equals an uninterrupted run's.
    """
    checkpoint = load_checkpoint(checkpoint_dir, checkpoint_name)
    if checkpoint is None:
        raise ClusterError(
            f"no checkpoint named {checkpoint_name!r} in {checkpoint_dir}"
        )
    if trace is not None:
        trace_dir = _trace_dir(checkpoint_dir, checkpoint_name)
        if trace_dir.is_dir():
            for path in sorted(trace_dir.glob("party-*.jsonl")):
                party_id = int(path.stem.split("-", 1)[1])
                trace.preload(party_id, load_jsonl(path))
    engine = ShardEngine.restore(checkpoint, trace=trace)
    ledger = metrics if metrics is not None else CommunicationMetrics()
    for record in checkpoint.parties:
        ledger.absorb_tally(record.party_id, record.tally)
    # Close the already-executed rounds so `rounds_completed` (and the
    # snapshot's `rounds`) match an uninterrupted run.  Per-round *bit*
    # history before the checkpoint is not reconstructed (the tallies
    # carry the totals).
    for _ in range(checkpoint.next_round):
        ledger.end_round()
    return _drive(
        engine,
        list(checkpoint.staged),
        ledger,
        until,
        max_rounds,
        checkpoint_dir,
        checkpoint_interval,
        checkpoint_name,
    )
