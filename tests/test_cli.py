"""Tests for the ``python -m repro`` command-line interface."""

from repro.__main__ import main


class TestCommands:
    def test_ba(self, capsys):
        assert main(["ba", "48"]) == 0
        output = capsys.readouterr().out
        assert "snark-srds" in output and "owf-srds" in output
        assert "agree=True" in output

    def test_tree(self, capsys):
        assert main(["tree", "128"]) == 0
        output = capsys.readouterr().out
        assert "good-path leaves" in output
        assert "2/3-honest: True" in output

    def test_attacks(self, capsys):
        assert main(["attacks"]) == 0
        output = capsys.readouterr().out
        assert "Thm 1.3" in output and "Thm 1.4" in output

    def test_runtime(self, capsys):
        assert main(["runtime", "16"]) == 0
        output = capsys.readouterr().out
        assert "transport=local" in output
        assert "matches-sync=True" in output
        assert "parity-with-hybrid=True" in output

    def test_runtime_tcp_with_trace_dir(self, tmp_path, capsys):
        target = tmp_path / "traces"
        assert main(["runtime", "16", "tcp", str(target)]) == 0
        output = capsys.readouterr().out
        assert "transport=tcp" in output
        assert "JSONL files" in output
        assert sorted(target.glob("party-*.jsonl"))

    def test_no_command_shows_usage(self, capsys):
        assert main([]) == 2
        assert "Commands" in capsys.readouterr().out

    def test_unknown_command_shows_usage(self, capsys):
        assert main(["frobnicate"]) == 2

    def test_report_stdout(self, capsys):
        assert main(["report"]) == 0
        output = capsys.readouterr().out
        assert "Measured experiment report" in output
        assert "T1 — Table 1" in output

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        assert main(["report", str(target)]) == 0
        assert target.exists()
        assert "E12" in target.read_text()


class TestObsCommand:
    def test_obs_report_fresh_run_verifies_invariant(self, tmp_path, capsys):
        out = tmp_path / "obs"
        assert main(["obs", "report", "16", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "snark-srds" in text and "owf-srds" in text
        assert "srds-aggregate" in text
        assert "VIOLATED" not in text and "MISMATCH" not in text
        assert sorted(p.name for p in out.glob("BENCH_*.json")) == [
            "BENCH_obs_report_owf_srds.json",
            "BENCH_obs_report_snark_srds.json",
        ]
        assert sorted(p.name for p in out.glob("timeline_*.json"))

    def test_obs_report_renders_bench_json(self, tmp_path, capsys):
        from repro.obs.bench import bench_payload, write_bench_json

        path = write_bench_json(
            tmp_path,
            bench_payload(
                "demo",
                phase_breakdown={"prf-boost": {
                    "phase": "prf-boost", "total_bits": 128,
                    "max_bits_per_party": 64, "parties": 2, "messages": 1,
                }},
                wall_times={"run": 0.25},
            ),
        )
        assert main(["obs", "report", str(path)]) == 0
        text = capsys.readouterr().out
        assert "demo" in text and "prf-boost" in text

    def test_obs_report_summarizes_trace_dir(self, tmp_path, capsys):
        from repro.runtime.trace import TraceRecorder

        trace = TraceRecorder()
        trace.record(0, "send", 0, peer=1, bits=8)
        trace.record(1, "recv", 1, peer=0, bits=8)
        trace.dump_dir(tmp_path / "traces")
        out = tmp_path / "out"
        assert main([
            "obs", "report", str(tmp_path / "traces"), "--out", str(out)
        ]) == 0
        text = capsys.readouterr().out
        assert "2 parties" in text
        assert (out / "timeline.json").exists()

    def test_obs_timeline_exports_valid_json(self, tmp_path, capsys):
        import json

        from repro.obs.timeline import validate_trace_events
        from repro.runtime.trace import TraceRecorder

        trace = TraceRecorder()
        trace.record(0, "round-barrier", 0, queue_depth=0)
        trace.record(0, "halt", 0, output="1")
        trace.dump_dir(tmp_path / "traces")
        target = tmp_path / "timeline.json"
        assert main([
            "obs", "timeline", str(tmp_path / "traces"), str(target)
        ]) == 0
        document = json.loads(target.read_text())
        validate_trace_events(document["traceEvents"])

    def test_obs_usage_errors(self, capsys):
        assert main(["obs", "bogus"]) == 2
        assert main(["obs", "timeline", "only-one-arg"]) == 2
