"""Tests for the scaling-fit analysis."""

import math

import pytest

from repro.analysis.scaling import (
    classify_growth,
    crossover_point,
    fit_polylog,
    fit_power_law,
)

NS = [64, 128, 256, 512, 1024, 2048, 4096]


class TestPowerLaw:
    def test_linear_series(self):
        fit = fit_power_law(NS, [10 * n for n in NS])
        assert fit.exponent == pytest.approx(1.0, abs=0.01)

    def test_sqrt_series(self):
        fit = fit_power_law(NS, [5 * math.sqrt(n) for n in NS])
        assert fit.exponent == pytest.approx(0.5, abs=0.01)

    def test_constant_series(self):
        fit = fit_power_law(NS, [42.0] * len(NS))
        assert fit.exponent == pytest.approx(0.0, abs=0.01)

    def test_prediction(self):
        fit = fit_power_law(NS, [3 * n for n in NS])
        assert fit.predict(1000) == pytest.approx(3000, rel=0.01)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_power_law([64], [1.0])


class TestPolylog:
    def test_log_cubed_series(self):
        values = [7 * math.log2(n) ** 3 for n in NS]
        fit = fit_polylog(NS, values)
        assert fit.degree == pytest.approx(3.0, abs=0.05)

    def test_prediction(self):
        values = [2 * math.log2(n) ** 2 for n in NS]
        fit = fit_polylog(NS, values)
        assert fit.predict(256) == pytest.approx(2 * 64, rel=0.05)


class TestClassification:
    def test_linear(self):
        assert classify_growth(NS, [9 * n for n in NS]) == "linear"

    def test_sqrt(self):
        assert classify_growth(NS, [4 * math.sqrt(n) for n in NS]) == "sqrt-like"

    def test_polylog(self):
        values = [100 * math.log2(n) ** 3 for n in NS]
        assert classify_growth(NS, values) == "polylog"

    def test_superlinear(self):
        assert classify_growth(NS, [n ** 1.5 for n in NS]) == "superlinear"


class TestCrossover:
    def test_crossing_curves(self):
        # Big constant * small exponent vs small constant * big exponent.
        flat = fit_power_law(NS, [10_000.0] * len(NS))
        steep = fit_power_law(NS, [10.0 * n for n in NS])
        crossing = crossover_point(flat, steep)
        assert crossing == pytest.approx(1000, rel=0.05)

    def test_parallel_curves_never_cross(self):
        a = fit_power_law(NS, [10 * n for n in NS])
        b = fit_power_law(NS, [20 * n for n in NS])
        assert crossover_point(a, b) == float("inf")
