"""Execute campaign cells and whole sweeps.

:func:`execute_spec` is the single execution path — the sweep, the
``replay`` command, and the minimizer all go through it, so a repro
spec re-runs *exactly* the cell that produced it: the per-cell
randomness is ``Randomness(seed).fork("campaign/<config>/<strategy>/
<schedule>/<n>")`` and the resolved spec pins the corrupted set and
crash schedule explicitly.

Outcome semantics: a cell whose strategy is a planted over-threshold
attack (``expect_violation``) or whose schedule is ``model_breaking``
is *expected* to fail — violations and loud errors
(:class:`~repro.errors.ReproError`) there are recorded but don't fail
the sweep.  Anywhere else, a violation or error is an **unexpected**
failure: the sweep prints the repro spec and exits non-zero.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace as dc_replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.catalog import (
    KIND_ABA,
    KIND_DOLEV_STRONG,
    KIND_GRADECAST,
    KIND_PHASE_KING,
    KIND_PI_BA,
    KIND_SRDS_FORGE,
    KIND_SRDS_ROBUST,
    Strategy,
    StrategyCatalog,
    default_catalog,
)
from repro.campaign.invariants import (
    Violation,
    check_aba_invariants,
    check_ba_invariants,
    check_broadcast_invariants,
    check_gradecast_invariants,
    check_srds_robustness,
    check_srds_unforgeability,
)
from repro.campaign.matrix import (
    ProtocolConfig,
    config_by_name,
    enumerate_cells,
)
from repro.campaign.schedules import Schedule, schedule_by_name
from repro.campaign.spec import CampaignSpec, format_spec
from repro.errors import ConfigurationError, ReproError
from repro.net.adversary import CorruptionPlan, targeted_corruption
from repro.params import ProtocolParameters
from repro.pki.registry import PKIMode
from repro.runtime.faults import FaultPlan
from repro.utils.randomness import Randomness


@dataclass
class RunOutcome:
    """One executed cell: resolved spec, verdicts, and bookkeeping."""

    spec: CampaignSpec
    violations: List[Violation] = field(default_factory=list)
    error: Optional[str] = None
    error_type: Optional[str] = None
    expected_failure: bool = False
    wall_time: float = 0.0
    measured_bits: Optional[int] = None
    budget_bits: Optional[int] = None

    @property
    def failed(self) -> bool:
        return bool(self.violations) or self.error is not None

    @property
    def unexpected(self) -> bool:
        """Failed where the paper's guarantees should have held."""
        return self.failed and not self.expected_failure

    @property
    def signature(self) -> Tuple[str, ...]:
        """Stable failure fingerprint the minimizer preserves."""
        if self.error_type is not None:
            return ("error:" + self.error_type,)
        return tuple(sorted({v.name for v in self.violations}))


def _scheme_for(config: ProtocolConfig):
    if config.scheme == "snark":
        from repro.srds.snark_based import SnarkSRDS

        return SnarkSRDS()
    if config.scheme == "owf":
        from repro.srds.owf import OwfSRDS

        return OwfSRDS()
    raise ConfigurationError(
        f"config {config.name!r} does not name an SRDS scheme"
    )


_BASE_SIG_CACHE: Dict[Tuple[str, int], int] = {}


def _base_signature_bytes(config: ProtocolConfig) -> int:
    """Probe (and cache) the scheme's base signature wire size."""
    key = (config.scheme or "", config.n)
    if key not in _BASE_SIG_CACHE:
        scheme = _scheme_for(config)
        rng = Randomness(0).fork("campaign/base-sig-probe")
        pp = scheme.setup(config.n, rng.fork("setup"))
        _, sk = scheme.keygen(pp, rng.fork("keygen"))
        signature = scheme.sign(pp, 0, sk, b"campaign-probe")
        _BASE_SIG_CACHE[key] = signature.size_bytes()
    return _BASE_SIG_CACHE[key]


def _inputs_for(config: ProtocolConfig) -> Dict[int, int]:
    if config.unanimous_inputs:
        return {i: 1 for i in range(config.n)}
    return {i: i % 2 for i in range(config.n)}


def _build_fault_plan(
    spec: CampaignSpec,
    schedule: Schedule,
    plan: CorruptionPlan,
    rng: Randomness,
) -> Optional[FaultPlan]:
    """Schedule-derived fault plan, with the spec's pinned crashes
    (from minimization) overriding the derived crash schedule."""
    fault_plan = schedule.build(spec.n, plan, rng)
    if spec.crashes is None:
        return fault_plan
    if fault_plan is None:
        return FaultPlan(crashes=dict(spec.crashes)) if spec.crashes else None
    return dc_replace(fault_plan, crashes=dict(spec.crashes))


def execute_spec(
    spec: CampaignSpec,
    catalog: Optional[StrategyCatalog] = None,
    matrix=None,
) -> RunOutcome:
    """Run one cell and check its invariants.  Deterministic in ``spec``."""
    catalog = catalog if catalog is not None else default_catalog()
    config = config_by_name(spec.config, matrix)
    strategy = catalog.get(spec.strategy)
    schedule = schedule_by_name(spec.schedule)
    if not strategy.applies_to(config.kind):
        raise ConfigurationError(
            f"strategy {strategy.name!r} does not apply to "
            f"config {config.name!r} (kind {config.kind})"
        )
    if not config.allows_schedule(schedule.name):
        raise ConfigurationError(
            f"schedule {schedule.name!r} not applicable to "
            f"config {config.name!r}"
        )
    if spec.n != config.n and spec.corrupt is None:
        # Non-default n is fine (the spec pins it), but note it only
        # changes the cell's rng path, which is already n-keyed.
        pass

    params = ProtocolParameters()
    rng = Randomness(spec.seed).fork(
        f"campaign/{spec.config}/{spec.strategy}/{spec.schedule}/{spec.n}"
    )
    expected = strategy.expect_violation or schedule.model_breaking

    # Resolve the corrupted set (explicit spec pin wins).
    if config.kind in (KIND_GRADECAST, KIND_DOLEV_STRONG) and (
        strategy.equivocating_sender
    ):
        # The canonical broadcast equivocation attack: the sender (party
        # 0) is the corrupt party.
        explicit = spec.corrupt if spec.corrupt is not None else (0,)
        plan = targeted_corruption(
            config.n, explicit, budget=max(1, (config.n - 1) // 3)
        )
    else:
        plan = strategy.resolve_plan(
            config.n, params, rng.fork("plan"), explicit=spec.corrupt
        )

    fault_plan = _build_fault_plan(
        spec, schedule, plan, rng.fork("faults")
    )
    resolved = spec.with_corrupt(tuple(sorted(plan.corrupted)))
    if fault_plan is not None and fault_plan.crashes:
        resolved = resolved.with_crashes(fault_plan.crashes)
    outcome = RunOutcome(spec=resolved, expected_failure=expected)

    # lint: allow[DET002] reason=wall_time is observability-only; no protocol decision reads it
    start = time.perf_counter()
    try:
        if config.kind == KIND_PI_BA:
            _run_pi_ba(
                outcome, config, strategy, schedule, plan, params, rng
            )
        elif config.kind == KIND_PHASE_KING:
            _run_phase_king(outcome, config, strategy, plan, fault_plan)
        elif config.kind == KIND_GRADECAST:
            _run_gradecast(outcome, config, strategy, plan, fault_plan)
        elif config.kind == KIND_DOLEV_STRONG:
            _run_dolev_strong(outcome, config, strategy, plan, rng)
        elif config.kind == KIND_ABA:
            _run_aba(
                outcome, config, strategy, schedule, plan, fault_plan, rng
            )
        elif config.kind == KIND_SRDS_ROBUST:
            _run_srds(outcome, config, strategy, plan, params, rng, forge=False)
        elif config.kind == KIND_SRDS_FORGE:
            _run_srds(outcome, config, strategy, plan, params, rng, forge=True)
        else:
            raise ConfigurationError(f"unknown config kind {config.kind!r}")
    except ReproError as exc:
        # A *loud* failure: the protocol refused to produce an answer.
        outcome.error = str(exc)
        outcome.error_type = type(exc).__name__
    # lint: allow[DET002] reason=wall_time is observability-only; no protocol decision reads it
    outcome.wall_time = time.perf_counter() - start
    return outcome


# -- per-kind execution ------------------------------------------------------


def _run_pi_ba(
    outcome: RunOutcome,
    config: ProtocolConfig,
    strategy: Strategy,
    schedule: Schedule,
    plan: CorruptionPlan,
    params: ProtocolParameters,
    rng: Randomness,
) -> None:
    from repro.protocols.balanced_ba import run_balanced_ba
    from repro.protocols.cost_model import pi_ba_per_party_budget

    scheme = _scheme_for(config)
    inputs = _inputs_for(config)
    adversary = None
    if strategy.make_adversary is not None:
        adversary = strategy.make_adversary(
            plan, config.n, rng.fork("adversary")
        )
    if config.backend == "cluster":
        result = _run_pi_ba_cluster_backend(
            config, schedule, inputs, plan, scheme, params, rng, adversary
        )
    else:
        delivery_rng = (
            rng.fork("delivery") if schedule.name == "reorder" else None
        )
        result = run_balanced_ba(
            inputs,
            plan,
            scheme,
            params,
            rng.fork("protocol"),
            adversary,
            delivery_rng=delivery_rng,
        )
    outcome.measured_bits = result.metrics.max_bits_per_party
    outcome.budget_bits = pi_ba_per_party_budget(
        config.n,
        params,
        max(result.certificate_bytes, 1),
        _base_signature_bytes(config),
    )
    outcome.violations = check_ba_invariants(
        inputs,
        result.outputs,
        plan.honest,
        measured_bits=outcome.measured_bits,
        budget_bits=outcome.budget_bits,
    )


def _run_pi_ba_cluster_backend(
    config: ProtocolConfig,
    schedule: Schedule,
    inputs: Dict[int, int],
    plan: CorruptionPlan,
    scheme,
    params: ProtocolParameters,
    rng: Randomness,
    adversary,
):
    """π_ba over the multi-process cluster substrate.

    The ``kill-worker`` schedule arms the supervisor's SIGKILL plan
    (worker 1 dies after the round-3 dispatch); recovery must replay
    from the durable checkpoint and still satisfy every BA invariant
    and the bits budget — silent divergence here would surface as an
    unexpected campaign failure.
    """
    from repro.cluster.drivers import run_balanced_ba_cluster
    from repro.cluster.supervisor import ClusterConfig

    kill_plan = {3: 1} if schedule.name == "kill-worker" else {}
    cluster_config = ClusterConfig(num_workers=2, kill_plan=kill_plan)
    result, _ = run_balanced_ba_cluster(
        inputs,
        plan,
        scheme,
        params,
        rng.fork("protocol"),
        adversary,
        num_workers=2,
        checkpoint_interval=2,
        config=cluster_config,
    )
    return result


def _run_aba(
    outcome: RunOutcome,
    config: ProtocolConfig,
    strategy: Strategy,
    schedule: Schedule,
    plan: CorruptionPlan,
    fault_plan: Optional[FaultPlan],
    rng: Randomness,
) -> None:
    """MMR14 ABA over the asynchronous scheduler.

    The schedule selects the delivery model: ``adversarial-order``
    switches the scheduler to its worst-case delivery-order policy (a
    by-name seam, like ``kill-worker``); the ``latency-*`` schedules
    carry their :class:`~repro.net.latency.LatencyModel` inside the
    fault plan built above; the churn schedules carry joins/crashes.
    Churn spends the same ``f`` tolerance as corruption, so an adaptive
    strategy's budget is whatever the static plan and the churn set
    left over — the combined adversary never exceeds the model.
    """
    from repro.asynchrony.driver import run_aba
    from repro.protocols.cost_model import aba_per_party_budget

    inputs = _inputs_for(config)
    crashes = dict(fault_plan.crashes) if fault_plan is not None else {}
    joins = dict(fault_plan.joins) if fault_plan is not None else {}
    f = max(0, (config.n - 1) // 3)
    churned = (set(crashes) | set(joins)) - plan.corrupted
    result = run_aba(
        config.n,
        seed=rng.fork("aba-seed").random_int(2**63),
        inputs=inputs,
        policy=(
            "adversarial" if schedule.name == "adversarial-order"
            else "latency"
        ),
        latency=fault_plan.latency if fault_plan is not None else None,
        fault_plan=fault_plan,
        corrupted=set(plan.corrupted),
        byzantine=(
            "equivocate" if strategy.equivocating_sender else "silent"
        ),
        adaptive=strategy.adaptive,
        adaptive_budget=max(0, f - len(plan.corrupted) - len(churned)),
    )
    honest = [p for p in range(config.n) if p not in result.corrupted]
    outcome.measured_bits = result.metrics.max_bits_per_party
    outcome.budget_bits = aba_per_party_budget(config.n, result.rounds)
    outcome.violations = check_aba_invariants(
        result.inputs,
        result.outputs,
        honest,
        departed=[p for p in honest if p in crashes],
        joined_late=[p for p in honest if p in joins],
        measured_bits=outcome.measured_bits,
        budget_bits=outcome.budget_bits,
    )


def _run_phase_king(
    outcome: RunOutcome,
    config: ProtocolConfig,
    strategy: Strategy,
    plan: CorruptionPlan,
    fault_plan: Optional[FaultPlan],
) -> None:
    from repro.runtime.drivers import run_phase_king_runtime

    inputs = _inputs_for(config)
    outputs, metrics = run_phase_king_runtime(
        inputs,
        sorted(plan.corrupted),
        fault_plan=fault_plan,
        enforce_budget=not strategy.expect_violation,
    )
    outcome.measured_bits = metrics.max_bits_per_party
    outcome.violations = check_ba_invariants(inputs, outputs, plan.honest)


def _run_gradecast(
    outcome: RunOutcome,
    config: ProtocolConfig,
    strategy: Strategy,
    plan: CorruptionPlan,
    fault_plan: Optional[FaultPlan],
) -> None:
    from repro.runtime.drivers import run_gradecast_runtime

    sender = 0
    value = 1
    equivocating = strategy.equivocating_sender and plan.is_corrupt(sender)
    byzantine = sorted(plan.corrupted - {sender} if equivocating
                       else plan.corrupted)
    outputs, metrics = run_gradecast_runtime(
        list(range(config.n)),
        sender,
        value,
        byzantine,
        equivocating_sender=equivocating,
        fault_plan=fault_plan,
    )
    outcome.measured_bits = metrics.max_bits_per_party
    sender_honest = not plan.is_corrupt(sender)
    outcome.violations = check_gradecast_invariants(
        outputs, sender_honest, value
    )


def _run_dolev_strong(
    outcome: RunOutcome,
    config: ProtocolConfig,
    strategy: Strategy,
    plan: CorruptionPlan,
    rng: Randomness,
) -> None:
    from repro.protocols.dolev_strong import run_dolev_strong

    sender = 0
    value = 1
    equivocating = strategy.equivocating_sender and plan.is_corrupt(sender)
    byzantine = sorted(plan.corrupted - {sender})
    outputs, metrics = run_dolev_strong(
        list(range(config.n)),
        sender,
        value,
        rng.fork("protocol"),
        equivocating_sender=equivocating,
        byzantine=byzantine,
    )
    outcome.measured_bits = metrics.max_bits_per_party
    sender_honest = not plan.is_corrupt(sender)
    outcome.violations = check_broadcast_invariants(
        outputs, sender_honest, value
    )


def _run_srds(
    outcome: RunOutcome,
    config: ProtocolConfig,
    strategy: Strategy,
    plan: CorruptionPlan,
    params: ProtocolParameters,
    rng: Randomness,
    forge: bool,
) -> None:
    from repro.srds.experiments import (
        run_forgery_experiment,
        run_robustness_experiment,
    )

    scheme = _scheme_for(config)
    if strategy.srds_adversary is None:
        raise ConfigurationError(
            f"strategy {strategy.name!r} has no SRDS adversary"
        )
    adversary = strategy.srds_adversary()
    t = max(1, params.max_corruptions(config.n))
    context = f"{strategy.name} on {config.name}"
    if forge:
        verdict = run_forgery_experiment(
            scheme,
            config.n,
            t,
            PKIMode.TRUSTED,
            adversary,
            params=params,
            rng=rng.fork("experiment"),
            plan=plan,
        )
        outcome.violations = check_srds_unforgeability(verdict, context)
    else:
        verdict = run_robustness_experiment(
            scheme,
            config.n,
            t,
            PKIMode.TRUSTED,
            adversary,
            params=params,
            rng=rng.fork("experiment"),
            plan=plan,
        )
        outcome.violations = check_srds_robustness(verdict, context)


# -- the sweep ---------------------------------------------------------------


@dataclass
class CampaignSummary:
    """One sweep's aggregate result."""

    outcomes: List[RunOutcome]
    seed: int
    budget: int
    bench_path: Optional[str] = None

    @property
    def passed(self) -> int:
        return sum(1 for o in self.outcomes if not o.failed)

    @property
    def expected_failures(self) -> int:
        return sum(
            1 for o in self.outcomes if o.failed and o.expected_failure
        )

    @property
    def unexpected_failures(self) -> List[RunOutcome]:
        return [o for o in self.outcomes if o.unexpected]

    @property
    def ok(self) -> bool:
        return not self.unexpected_failures


def run_campaign(
    budget: int,
    seed: int,
    *,
    include_planted: bool = False,
    results_dir: Optional[str] = None,
    catalog: Optional[StrategyCatalog] = None,
    matrix=None,
    emit=None,
    only: Optional[Sequence[str]] = None,
) -> CampaignSummary:
    """Sweep the first ``budget`` cells of the matrix.

    ``only`` restricts the sweep to the named protocol configs (each
    name validated against the matrix, so a typo is loud rather than an
    empty sweep).  Writes ``BENCH_campaign.json`` under ``results_dir``
    when given.  ``emit`` is an optional line sink (the CLI passes
    ``print``).
    """
    if budget < 1:
        raise ConfigurationError("campaign budget must be >= 1")
    catalog = catalog if catalog is not None else default_catalog()
    cells = enumerate_cells(
        seed, matrix=matrix, catalog=catalog, include_planted=include_planted
    )
    if only is not None:
        for name in only:
            config_by_name(name, matrix)  # loud on unknown names
        wanted = set(only)
        cells = [cell for cell in cells if cell.config.name in wanted]
    cells = cells[:budget]
    say = emit if emit is not None else (lambda line: None)
    outcomes: List[RunOutcome] = []
    for index, cell in enumerate(cells):
        outcome = execute_spec(cell.spec, catalog=catalog, matrix=matrix)
        outcomes.append(outcome)
        status = "ok"
        if outcome.failed:
            status = (
                "EXPECTED-FAIL" if outcome.expected_failure else "FAIL"
            )
        say(
            f"[{index + 1:3d}/{len(cells)}] {status:13s} "
            f"{format_spec(outcome.spec)}  ({outcome.wall_time:.2f}s)"
        )
        if outcome.failed:
            for violation in outcome.violations:
                say(f"      violation {violation.name}: {violation.detail}")
            if outcome.error is not None:
                say(f"      loud {outcome.error_type}: {outcome.error}")
            say(f"      repro: {format_spec(outcome.spec)}")
    summary = CampaignSummary(outcomes=outcomes, seed=seed, budget=budget)
    if results_dir is not None:
        summary.bench_path = str(_write_bench(summary, results_dir))
    return summary


def _write_bench(summary: CampaignSummary, results_dir: str):
    from repro.obs.bench import bench_payload, write_bench_json

    extra = {
        "seed": summary.seed,
        "budget": summary.budget,
        "cells": len(summary.outcomes),
        "passed": summary.passed,
        "expected_failures": summary.expected_failures,
        "unexpected_failures": len(summary.unexpected_failures),
        "specs": [format_spec(o.spec) for o in summary.outcomes],
        "failing_specs": [
            format_spec(o.spec) for o in summary.outcomes if o.failed
        ],
        "signatures": {
            format_spec(o.spec): list(o.signature)
            for o in summary.outcomes
            if o.failed
        },
    }
    wall_times = {
        format_spec(o.spec): o.wall_time for o in summary.outcomes
    }
    payload = bench_payload(
        "campaign", extra=extra, wall_times=wall_times
    )
    return write_bench_json(results_dir, payload)
