"""Bits-accounting rules: ACC001 (raw sends) and OBS001 (unspanned charges).

The paper's Thm 3.1 ceiling — Õ(1) bits per party, concretely
``cost_model.pi_ba_per_party_budget`` — is *measured*, not assumed.
The measurement is only as good as its coverage: every wire transfer
must be charged to :class:`~repro.net.metrics.CommunicationMetrics`
(ACC001), and in instrumented protocols every charge must land inside
a ``repro.obs`` phase span so the §3.1 per-phase cost envelopes stay
attributable (OBS001).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.model import ModuleUnit, Rule, RuleMeta, Severity, Violation

#: Attribute names that move bytes without touching the metrics ledger.
_RAW_SEND_ATTRS: Set[str] = {
    "sendall", "sendto", "send_bytes", "put_nowait", "write_eof",
}

#: Receiver names whose ``.send(...)`` / ``.put(...)`` / ``.write(...)``
#: indicate a transport-layer object leaking into protocol code.  The
#: sanctioned seam is ``Party.send`` (an Envelope the simulator charges)
#: or an explicit ``metrics.record_message`` / ``charge_functionality``.
_TRANSPORT_RECEIVERS: Set[str] = {
    "sock", "socket", "writer", "stream", "queue", "conn", "connection",
    "transport", "channel", "pipe",
}

_TRANSPORT_VERBS: Set[str] = {"send", "put", "write", "send_nowait"}

#: Constructors that open an uncharged byte path.
_RAW_CONSTRUCTORS: Set[str] = {
    "socket.socket", "asyncio.Queue", "asyncio.open_connection",
    "asyncio.start_server", "multiprocessing.Queue", "queue.Queue",
    "os.pipe",
}

#: The two methods that constitute the charge seam.
_CHARGE_METHODS: Set[str] = {"record_message", "charge_functionality"}


def _receiver_name(node: ast.expr) -> str:
    """Best-effort name of the object a method is called on."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):  # self.transport -> "transport"
        return node.attr
    return ""


class RawSendRule(Rule):
    """ACC001 — protocol code must not bypass the charge seam."""

    meta = RuleMeta(
        rule_id="ACC001",
        name="uncharged-byte-path",
        severity=Severity.ERROR,
        summary=(
            "raw transport/socket/queue send in protocol code, bypassing "
            "the CommunicationMetrics charge seam"
        ),
        rationale=(
            "max_bits_per_party is the paper's headline metric; the "
            "campaign invariants compare it against the polylog budget "
            "from cost_model.pi_ba_per_party_budget.  A byte that leaves "
            "a party without a record_message/charge_functionality "
            "charge is invisible to the ledger, so the Õ(1)-bits claim "
            "would silently stop being checked.  Protocol code sends via "
            "Party.send (the simulator charges the Envelope) or charges "
            "the hybrid-model cost explicitly."
        ),
        fix_hint=(
            "route through Party.send / the runtime transport adapter, or "
            "charge metrics.record_message(...) alongside the transfer"
        ),
    )

    def check(
        self, module: ModuleUnit, config: LintConfig
    ) -> Iterator[Violation]:
        if not config.in_scope(module.rel, config.acc001_scopes):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.resolve(node.func)
            if dotted in _RAW_CONSTRUCTORS:
                yield self.violation(
                    module, node,
                    f"`{dotted}` opens a byte path outside the metrics "
                    "ledger",
                )
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            attr = node.func.attr
            if attr in _RAW_SEND_ATTRS:
                yield self.violation(
                    module, node,
                    f"raw `.{attr}(...)` bypasses the CommunicationMetrics "
                    "charge seam",
                )
            elif (
                attr in _TRANSPORT_VERBS
                and _receiver_name(node.func.value).lower()
                in _TRANSPORT_RECEIVERS
            ):
                receiver = _receiver_name(node.func.value)
                yield self.violation(
                    module, node,
                    f"`{receiver}.{attr}(...)` looks like an uncharged "
                    "transport-layer send in protocol code",
                )


class UnspannedChargeRule(Rule):
    """OBS001 — charges in instrumented protocols need a phase span.

    A charge is compliant when it is lexically inside a
    ``with span(...)`` block, or when its enclosing function is
    *span-covered*: every in-module call site of that function sits at a
    compliant position (computed as an increasing fixpoint, so private
    helpers invoked from spanned blocks are covered transitively).
    """

    meta = RuleMeta(
        rule_id="OBS001",
        name="unspanned-metrics-charge",
        severity=Severity.ERROR,
        summary=(
            "record_message/charge_functionality outside any obs phase "
            "span in an instrumented protocol"
        ),
        rationale=(
            "PR 2 attributes every ledger charge to the innermost active "
            "span, recovering the paper's §3.1 phase-by-phase cost "
            "envelopes (kssv-ae, committee BA/coin, srds-aggregate, "
            "prf-boost).  A charge outside all spans lands in "
            "`(unattributed)`, eroding the per-phase golden tests and "
            "the phase-breakdown reports."
        ),
        fix_hint=(
            "wrap the charging step in `with span(\"<phase>\")`, or call "
            "the helper only from spanned contexts"
        ),
    )

    def check(
        self, module: ModuleUnit, config: LintConfig
    ) -> Iterator[Violation]:
        if not config.in_scope(module.rel, config.obs001_instrumented):
            return
        analysis = _SpanAnalysis(module)
        for call, function in analysis.charge_sites:
            if analysis.in_span(call):
                continue
            if function is not None and function in analysis.covered:
                continue
            method = (
                call.func.attr
                if isinstance(call.func, ast.Attribute) else "charge"
            )
            yield self.violation(
                module, call,
                f"`{method}` charge outside any `with span(...)` phase",
            )


class _SpanAnalysis:
    """Per-module lexical span coverage with a call-graph fixpoint."""

    def __init__(self, module: ModuleUnit) -> None:
        self.module = module
        #: (start, end) line ranges of `with span(...)` bodies.
        self.span_ranges: List[Tuple[int, int]] = []
        #: charge call -> enclosing function name (or None at module level).
        self.charge_sites: List[Tuple[ast.Call, "str | None"]] = []
        #: function name -> list of (call site node, enclosing function).
        self.call_sites: Dict[str, List[Tuple[ast.Call, "str | None"]]] = {}
        self.functions: Set[str] = set()
        self._collect()
        self.covered = self._fixpoint()

    @staticmethod
    def _is_span_call(node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Name):
            return func.id == "span"
        if isinstance(func, ast.Attribute):
            return func.attr == "span"
        return False

    @staticmethod
    def _called_name(node: ast.Call) -> "str | None":
        if isinstance(node.func, ast.Name):
            return node.func.id
        if isinstance(node.func, ast.Attribute):
            return node.func.attr
        return None

    def _collect(self) -> None:
        module = self.module

        def visit(node: ast.AST, function: "str | None") -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    self.functions.add(child.name)
                    visit(child, child.name)
                    continue
                if isinstance(child, (ast.With, ast.AsyncWith)) and any(
                    self._is_span_call(item.context_expr)
                    for item in child.items
                ):
                    end = getattr(child, "end_lineno", child.lineno)
                    self.span_ranges.append(
                        (child.lineno, end or child.lineno)
                    )
                if isinstance(child, ast.Call):
                    name = self._called_name(child)
                    if name is not None:
                        if isinstance(child.func, ast.Attribute) and (
                            child.func.attr in _CHARGE_METHODS
                        ):
                            self.charge_sites.append((child, function))
                        self.call_sites.setdefault(name, []).append(
                            (child, function)
                        )
                visit(child, function)

        visit(module.tree, None)

    def in_span(self, node: ast.AST) -> bool:
        line = getattr(node, "lineno", 0)
        return any(start <= line <= end for start, end in self.span_ranges)

    def _fixpoint(self) -> Set[str]:
        covered: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for name in self.functions:
                if name in covered:
                    continue
                sites = self.call_sites.get(name, [])
                if not sites:
                    continue  # never called in-module: not coverable
                if all(
                    self.in_span(call)
                    or (caller is not None and caller in covered)
                    for call, caller in sites
                ):
                    covered.add(name)
                    changed = True
        return covered
