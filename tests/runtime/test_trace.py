"""Trace recorder: schema, JSONL round-tripping, determinism knobs."""

import json

import pytest

from repro.runtime.trace import (
    RESERVED_KEYS,
    JsonlTraceWriter,
    TraceRecorder,
    load_jsonl,
    summarize,
    wall_clock_recorder,
)


class TestRecording:
    def test_event_shape(self):
        trace = TraceRecorder()
        trace.record(0, "send", 3, peer=1, bits=16)
        (event,) = trace.events_of(0)
        assert event == {
            "party": 0, "kind": "send", "round": 3, "seq": 0,
            "peer": 1, "bits": 16,
        }

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder().record(0, "teleport", 0)

    def test_per_party_sequence_numbers(self):
        trace = TraceRecorder()
        trace.record(0, "send", 0)
        trace.record(1, "send", 0)
        trace.record(0, "halt", 1)
        assert [e["seq"] for e in trace.events_of(0)] == [0, 1]
        assert [e["seq"] for e in trace.events_of(1)] == [0]

    def test_counts_and_queue_depth(self):
        trace = TraceRecorder()
        trace.record(0, "round-barrier", 0, queue_depth=4)
        trace.record(0, "round-barrier", 1, queue_depth=9)
        trace.record(0, "recv", 1, peer=2, bits=8)
        assert trace.count() == 3
        assert trace.count("round-barrier") == 2
        assert trace.max_queue_depth() == 9


class TestSerialization:
    def test_jsonl_round_trip(self, tmp_path):
        trace = TraceRecorder()
        trace.record(5, "send", 0, peer=6, bits=24)
        trace.record(5, "halt", 1, output="3")
        paths = trace.dump_dir(tmp_path)
        assert [p.name for p in paths] == ["party-5.jsonl"]
        events = load_jsonl(paths[0])
        assert events == trace.events_of(5)

    def test_jsonl_lines_are_valid_json(self):
        trace = TraceRecorder()
        trace.record(0, "send", 0, peer=1, bits=8)
        for line in trace.dumps(0).splitlines():
            json.loads(line)

    def test_summarize(self):
        trace = TraceRecorder()
        trace.record(0, "send", 0)
        trace.record(0, "send", 1)
        trace.record(0, "halt", 2)
        assert summarize(trace.events_of(0)) == {"send": 2, "halt": 1}


class TestDeterminism:
    def test_default_recorder_has_no_wall_times(self):
        trace = TraceRecorder()
        trace.record(0, "send", 0)
        assert "wall" not in trace.events_of(0)[0]

    def test_wall_clock_recorder_stamps_wall(self):
        trace = wall_clock_recorder()
        trace.record(0, "send", 0)
        assert isinstance(trace.events_of(0)[0]["wall"], float)

    def test_fingerprint_distinguishes_traces(self):
        a, b = TraceRecorder(), TraceRecorder()
        a.record(0, "send", 0, peer=1)
        b.record(0, "send", 0, peer=2)
        assert a.fingerprint() != b.fingerprint()

    def test_fingerprint_equal_for_equal_traces(self):
        a, b = TraceRecorder(), TraceRecorder()
        for trace in (a, b):
            trace.record(1, "recv", 4, peer=0, bits=8)
        assert a.fingerprint() == b.fingerprint()


class TestReservedKeys:
    def test_reserved_field_collision_raises(self):
        # Regression: fields used to be merged with event.update(fields),
        # so a caller passing seq=/round=/party=/kind=/wall= silently
        # clobbered the recorder's own coordinates.
        trace = TraceRecorder()
        for key in ("party", "wall", "seq"):
            with pytest.raises(ValueError, match="reserved"):
                trace.record(0, "send", 0, **{key: 1})
        # "kind"/"round" can't even reach record() as keywords (Python
        # rejects the duplicate parameter), but they stay in the reserved
        # set so subclasses and dict-driven callers are covered.
        assert "round" in RESERVED_KEYS and "kind" in RESERVED_KEYS
        # A collision buried among legitimate fields is still caught.
        with pytest.raises(ValueError, match="reserved"):
            trace.record(0, "send", 0, peer=1, wall=0.0)
        # Nothing was recorded by the failed attempts.
        assert trace.count() == 0

    def test_reserved_keys_exported(self):
        assert RESERVED_KEYS == {"party", "kind", "round", "seq", "wall"}

    def test_non_reserved_fields_still_pass_through(self):
        trace = TraceRecorder()
        trace.record(0, "send", 0, peer=1, bits=8, queue_depth=3)
        (event,) = trace.events_of(0)
        assert event["peer"] == 1 and event["queue_depth"] == 3


class TestJsonlTraceWriter:
    def _record_sample(self, trace):
        trace.record(0, "round-barrier", 0, queue_depth=2)
        trace.record(0, "send", 0, peer=1, bits=16)
        trace.record(1, "recv", 1, peer=0, bits=16)
        trace.record(1, "halt", 1, output="1")

    def test_byte_identical_to_in_memory_recorder(self, tmp_path):
        memory = TraceRecorder()
        self._record_sample(memory)
        with JsonlTraceWriter(tmp_path / "stream") as stream:
            self._record_sample(stream)
            assert stream.party_ids == memory.party_ids
            for party in memory.party_ids:
                assert stream.dumps(party) == memory.dumps(party)
            assert stream.fingerprint() == memory.fingerprint()
        # On-disk files equal the in-memory recorder's dump_dir output.
        memory_paths = memory.dump_dir(tmp_path / "memory")
        for memory_path in memory_paths:
            stream_path = tmp_path / "stream" / memory_path.name
            assert stream_path.read_bytes() == memory_path.read_bytes()

    def test_streaming_counters(self, tmp_path):
        with JsonlTraceWriter(tmp_path) as stream:
            self._record_sample(stream)
            assert stream.count() == 4
            assert stream.count("send") == 1
            assert stream.max_queue_depth() == 2

    def test_events_written_through_immediately(self, tmp_path):
        stream = JsonlTraceWriter(tmp_path)
        stream.record(0, "send", 0, peer=1, bits=8)
        stream.flush()
        # Readable from disk before close.
        assert load_jsonl(tmp_path / "party-0.jsonl")[0]["kind"] == "send"
        stream.close()

    def test_read_back_after_close(self, tmp_path):
        stream = JsonlTraceWriter(tmp_path)
        self._record_sample(stream)
        stream.close()
        assert stream.events_of(1)[-1]["kind"] == "halt"
        assert stream.fingerprint()

    def test_record_after_close_raises(self, tmp_path):
        stream = JsonlTraceWriter(tmp_path)
        stream.close()
        with pytest.raises(ValueError):
            stream.record(0, "send", 0)

    def test_reserved_keys_enforced_by_subclass_too(self, tmp_path):
        with JsonlTraceWriter(tmp_path) as stream:
            with pytest.raises(ValueError, match="reserved"):
                stream.record(0, "send", 0, seq=7)

    def test_dump_dir_copies_elsewhere(self, tmp_path):
        with JsonlTraceWriter(tmp_path / "a") as stream:
            self._record_sample(stream)
            paths = stream.dump_dir(tmp_path / "b")
        assert [p.parent.name for p in paths] == ["b", "b"]
        assert (tmp_path / "b" / "party-0.jsonl").read_bytes() == (
            tmp_path / "a" / "party-0.jsonl"
        ).read_bytes()

    def test_same_seed_runtime_streams_identically(self, tmp_path):
        # The write-through path must not change what an execution records.
        from repro.protocols.phase_king import PhaseKingParty

        from repro.runtime.synchronizer import run_parties

        def parties():
            members = list(range(4))
            return [
                PhaseKingParty(i, members, 1, {0: 1, 1: 0, 2: 1, 3: 1}[i])
                for i in members
            ]

        memory = TraceRecorder()
        run_parties(parties(), trace=memory)
        with JsonlTraceWriter(tmp_path) as stream:
            run_parties(parties(), trace=stream)
            assert stream.fingerprint() == memory.fingerprint()
