"""Durable checkpoints for sharded party execution.

A checkpoint freezes one shard of a run at a round barrier so a
restarted worker (or a resumed supervisor) can continue *exactly* where
the crashed process stopped.  Per party it records:

* the **next round** the shard will execute (state is "post round
  ``next_round - 1``");
* the **party state snapshot** — the :class:`~repro.net.party.Party`
  object, pickled and framed with :mod:`repro.utils.serialization`
  (length-prefixed, versioned, magic-tagged);
* the party's **send sequence counter** (frames carry per-sender ``seq``
  numbers; resumed sends must continue the numbering for canonical
  inbox order to survive a restart);
* the party's **trace offset** — the per-party
  :class:`~repro.runtime.trace.TraceRecorder` sequence counter, so
  regenerated events after a resume carry the same ``seq`` stamps and
  the merged trace stays byte-identical to an uninterrupted run;
* the party's **metrics tally** (bits/messages/peers), so a local
  resume recharges nothing and a status probe can display progress.

The container additionally stores the shard's **staged frames** (sent
but not yet due for delivery) — used by the in-process runner and the
supervisor's own durable state; worker checkpoints store an empty list
because frame staging is supervisor-owned.

Durability: :func:`save_checkpoint` writes to a temp file, fsyncs, and
atomically replaces the target, so a crash mid-write never leaves a
torn checkpoint behind — the previous one survives intact.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import ClusterError, SerializationError
from repro.net.metrics import PartyTally
from repro.net.party import Party
from repro.runtime.transport import Frame, _LENGTH
from repro.utils.serialization import (
    decode_bytes,
    decode_sequence,
    decode_uint,
    encode_bytes,
    encode_sequence,
    encode_uint,
)

#: Format magic + version.  Bump the trailing digit on layout changes.
MAGIC = b"RPCK1"


@dataclass
class PartyCheckpoint:
    """One party's frozen state inside a :class:`ClusterCheckpoint`."""

    party_id: int
    party_blob: bytes
    send_seq: int = 0
    trace_seq: int = 0
    tally: PartyTally = field(default_factory=PartyTally)

    @classmethod
    def of(
        cls,
        party: Party,
        send_seq: int = 0,
        trace_seq: int = 0,
        tally: Optional[PartyTally] = None,
    ) -> "PartyCheckpoint":
        """Snapshot one live party object."""
        return cls(
            party_id=party.party_id,
            party_blob=pickle.dumps(party, protocol=pickle.HIGHEST_PROTOCOL),
            send_seq=send_seq,
            trace_seq=trace_seq,
            tally=tally if tally is not None else PartyTally(),
        )

    def restore_party(self) -> Party:
        """Rebuild the party object from its snapshot."""
        try:
            party = pickle.loads(self.party_blob)
        except Exception as exc:  # pickle raises a zoo of types
            raise ClusterError(
                f"checkpoint party blob for {self.party_id} is corrupt: {exc}"
            ) from exc
        if not isinstance(party, Party):
            raise ClusterError(
                f"checkpoint blob for {self.party_id} decoded to "
                f"{type(party).__name__}, not a Party"
            )
        if party.party_id != self.party_id:
            raise ClusterError(
                f"checkpoint id mismatch: record says {self.party_id}, "
                f"blob says {party.party_id}"
            )
        return party


@dataclass
class ClusterCheckpoint:
    """One shard (or the whole run) frozen at a round barrier."""

    next_round: int
    parties: List[PartyCheckpoint]
    staged: List[Frame] = field(default_factory=list)

    def by_party(self) -> Dict[int, PartyCheckpoint]:
        return {record.party_id: record for record in self.parties}


def _encode_tally(tally: PartyTally) -> bytes:
    parts = [
        encode_uint(tally.bits_sent),
        encode_uint(tally.bits_received),
        encode_uint(tally.messages_sent),
        encode_uint(tally.messages_received),
        encode_uint(len(tally.peers_sent_to)),
    ]
    parts.extend(encode_uint(p) for p in sorted(tally.peers_sent_to))
    parts.append(encode_uint(len(tally.peers_received_from)))
    parts.extend(encode_uint(p) for p in sorted(tally.peers_received_from))
    return b"".join(parts)


def _decode_tally(data: bytes, offset: int) -> "tuple[PartyTally, int]":
    bits_sent, offset = decode_uint(data, offset)
    bits_received, offset = decode_uint(data, offset)
    messages_sent, offset = decode_uint(data, offset)
    messages_received, offset = decode_uint(data, offset)
    count, offset = decode_uint(data, offset)
    sent_to = set()
    for _ in range(count):
        peer, offset = decode_uint(data, offset)
        sent_to.add(peer)
    count, offset = decode_uint(data, offset)
    received_from = set()
    for _ in range(count):
        peer, offset = decode_uint(data, offset)
        received_from.add(peer)
    return (
        PartyTally(
            bits_sent=bits_sent,
            bits_received=bits_received,
            messages_sent=messages_sent,
            messages_received=messages_received,
            peers_sent_to=sent_to,
            peers_received_from=received_from,
        ),
        offset,
    )


def encode_checkpoint(checkpoint: ClusterCheckpoint) -> bytes:
    """Canonical byte encoding of one checkpoint."""
    parts = [MAGIC, encode_uint(checkpoint.next_round)]
    parts.append(encode_uint(len(checkpoint.parties)))
    for record in sorted(checkpoint.parties, key=lambda r: r.party_id):
        parts.append(encode_uint(record.party_id))
        parts.append(encode_uint(record.send_seq))
        parts.append(encode_uint(record.trace_seq))
        parts.append(_encode_tally(record.tally))
        parts.append(encode_bytes(record.party_blob))
    parts.append(
        encode_sequence([frame.encode() for frame in checkpoint.staged])
    )
    return b"".join(parts)


def decode_checkpoint(data: bytes) -> ClusterCheckpoint:
    """Inverse of :func:`encode_checkpoint`."""
    if not data.startswith(MAGIC):
        raise ClusterError(
            f"not a cluster checkpoint (magic {data[:5]!r}, want {MAGIC!r})"
        )
    try:
        offset = len(MAGIC)
        next_round, offset = decode_uint(data, offset)
        count, offset = decode_uint(data, offset)
        parties: List[PartyCheckpoint] = []
        for _ in range(count):
            party_id, offset = decode_uint(data, offset)
            send_seq, offset = decode_uint(data, offset)
            trace_seq, offset = decode_uint(data, offset)
            tally, offset = _decode_tally(data, offset)
            blob, offset = decode_bytes(data, offset)
            parties.append(
                PartyCheckpoint(
                    party_id=party_id,
                    party_blob=blob,
                    send_seq=send_seq,
                    trace_seq=trace_seq,
                    tally=tally,
                )
            )
        frame_blobs, offset = decode_sequence(data, offset)
    except SerializationError as exc:
        raise ClusterError(f"truncated cluster checkpoint: {exc}") from exc
    if offset != len(data):
        raise ClusterError(
            f"{len(data) - offset} trailing bytes after cluster checkpoint"
        )
    staged = [
        Frame.decode(blob[_LENGTH.size:]) for blob in frame_blobs
    ]
    return ClusterCheckpoint(
        next_round=next_round, parties=parties, staged=staged
    )


def checkpoint_path(directory: Union[str, Path], name: str) -> Path:
    """Canonical on-disk location: ``<dir>/<name>.ckpt``."""
    return Path(directory) / f"{name}.ckpt"


def save_checkpoint(
    directory: Union[str, Path], name: str, checkpoint: ClusterCheckpoint
) -> Path:
    """Durably persist a checkpoint (write-temp, fsync, atomic rename)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    target = checkpoint_path(directory, name)
    temp = target.with_suffix(".ckpt.tmp")
    payload = encode_checkpoint(checkpoint)
    with temp.open("wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, target)
    return target


def load_checkpoint(
    directory: Union[str, Path], name: str
) -> Optional[ClusterCheckpoint]:
    """Load a checkpoint if one exists (``None`` when absent)."""
    target = checkpoint_path(directory, name)
    if not target.exists():
        return None
    return decode_checkpoint(target.read_bytes())
