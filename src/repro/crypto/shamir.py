"""Shamir secret sharing over a prime field.

Dealing evaluates a random degree-``threshold`` polynomial whose constant
term is the secret at the points ``1..n``; any ``threshold + 1`` shares
reconstruct via Lagrange interpolation at zero, and any ``threshold``
shares are information-theoretically independent of the secret.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import SecretSharingError
from repro.fields.polynomial import Polynomial, lagrange_interpolate_at_zero
from repro.fields.prime_field import FieldElement, PrimeField


@dataclass(frozen=True)
class Share:
    """One Shamir share: the evaluation point x and value y."""

    x: FieldElement
    y: FieldElement


def deal(
    field: PrimeField,
    secret: int,
    num_shares: int,
    threshold: int,
    rng,
) -> List[Share]:
    """Split ``secret`` into ``num_shares`` shares with the given threshold.

    ``threshold`` is the maximum number of shares that reveal nothing;
    ``threshold + 1`` shares reconstruct.
    """
    if not 0 <= threshold < num_shares:
        raise SecretSharingError(
            f"threshold {threshold} must lie in [0, num_shares={num_shares})"
        )
    polynomial = Polynomial.random(field, threshold, rng, constant_term=secret)
    return [
        Share(x=point, y=polynomial.evaluate(point))
        for point in field.elements_range(num_shares)
    ]


def reconstruct(field: PrimeField, shares: Sequence[Share]) -> FieldElement:
    """Reconstruct the secret from a set of shares (distinct x values)."""
    if not shares:
        raise SecretSharingError("cannot reconstruct from an empty share set")
    return lagrange_interpolate_at_zero(
        field, [(share.x, share.y) for share in shares]
    )


def deal_with_polynomial(
    field: PrimeField,
    secret: int,
    num_shares: int,
    threshold: int,
    rng,
) -> "tuple[List[Share], Polynomial]":
    """Like :func:`deal` but also returns the dealing polynomial.

    Feldman VSS needs the polynomial to build coefficient commitments.
    """
    if not 0 <= threshold < num_shares:
        raise SecretSharingError(
            f"threshold {threshold} must lie in [0, num_shares={num_shares})"
        )
    polynomial = Polynomial.random(field, threshold, rng, constant_term=secret)
    shares = [
        Share(x=point, y=polynomial.evaluate(point))
        for point in field.elements_range(num_shares)
    ]
    return shares, polynomial
