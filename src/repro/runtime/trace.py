"""Structured per-party execution traces (JSONL).

Every runtime execution can carry a :class:`TraceRecorder`: the
synchronizer and party loops emit one event per observable action —
``send``, ``recv``, ``round-barrier``, ``halt``, ``crash``, ``drop`` —
tagged with the party, round, logical sequence number, and (optionally)
wall-clock time and queue depth.  Events are kept *per party* so that a
concurrent execution still yields a deterministic file per party: within
one party's stream the order is fixed by that party's own program order,
which the round barriers make schedule-independent.

Determinism contract: with ``clock=None`` (the default used by the
differential tests) two executions with the same seed produce
byte-identical JSONL.  Pass ``clock=time.perf_counter`` (or use
:func:`wall_clock_recorder`) to include wall times for profiling; wall
times are obviously not reproducible and are stored under a separate
``wall`` key so consumers can ignore them.

The output is consumable by :mod:`repro.analysis` or any JSONL tool:
one JSON object per line, keys sorted, no whitespace dependence.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional

# Event kinds emitted by the runtime.
SEND = "send"
RECV = "recv"
ROUND_BARRIER = "round-barrier"
HALT = "halt"
CRASH = "crash"
DROP = "drop"

KINDS = (SEND, RECV, ROUND_BARRIER, HALT, CRASH, DROP)


class TraceRecorder:
    """Collects per-party event streams and serializes them as JSONL."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock
        self._events: Dict[int, List[Dict[str, Any]]] = {}
        self._counters: Dict[int, int] = {}

    # -- recording -----------------------------------------------------------

    def record(
        self, party_id: int, kind: str, round_index: int, **fields: Any
    ) -> None:
        """Append one event to a party's stream.

        Extra ``fields`` (peer, bits, queue_depth, ...) are stored
        verbatim; values must be JSON-serializable.
        """
        if kind not in KINDS:
            raise ValueError(f"unknown trace event kind {kind!r}")
        seq = self._counters.get(party_id, 0)
        self._counters[party_id] = seq + 1
        event: Dict[str, Any] = {
            "party": party_id,
            "kind": kind,
            "round": round_index,
            "seq": seq,
        }
        if self._clock is not None:
            event["wall"] = self._clock()
        event.update(fields)
        self._events.setdefault(party_id, []).append(event)

    # -- queries ---------------------------------------------------------------

    @property
    def party_ids(self) -> List[int]:
        """Parties with at least one recorded event."""
        return sorted(self._events)

    def events_of(self, party_id: int) -> List[Dict[str, Any]]:
        """One party's events, in program order."""
        return list(self._events.get(party_id, []))

    def count(self, kind: Optional[str] = None) -> int:
        """Total events (optionally of one kind) across all parties."""
        return sum(
            1
            for events in self._events.values()
            for event in events
            if kind is None or event["kind"] == kind
        )

    def max_queue_depth(self) -> int:
        """Largest observed inbox depth at any round barrier."""
        depths = [
            event.get("queue_depth", 0)
            for events in self._events.values()
            for event in events
            if event["kind"] == ROUND_BARRIER
        ]
        return max(depths, default=0)

    # -- serialization --------------------------------------------------------

    def dumps(self, party_id: int) -> str:
        """One party's stream as a JSONL string (stable key order)."""
        return "".join(
            json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
            for event in self._events.get(party_id, [])
        )

    def dump_dir(self, directory: Path) -> List[Path]:
        """Write ``party-<id>.jsonl`` per party; returns the paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for party_id in self.party_ids:
            path = directory / f"party-{party_id}.jsonl"
            path.write_text(self.dumps(party_id), encoding="utf-8")
            paths.append(path)
        return paths

    def fingerprint(self) -> str:
        """A digest of the full trace — equal iff the traces are equal.

        Used by determinism tests: two runs with the same seed (and
        ``clock=None``) must produce equal fingerprints.
        """
        import hashlib

        digest = hashlib.sha256()
        for party_id in self.party_ids:
            digest.update(self.dumps(party_id).encode("utf-8"))
        return digest.hexdigest()


def wall_clock_recorder() -> TraceRecorder:
    """A recorder stamping monotonic wall times (non-reproducible)."""
    return TraceRecorder(clock=time.perf_counter)


def load_jsonl(path: Path) -> List[Dict[str, Any]]:
    """Parse one party's JSONL trace file back into event dicts."""
    events = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if line.strip():
            events.append(json.loads(line))
    return events


def summarize(events: Iterable[Dict[str, Any]]) -> Dict[str, int]:
    """Count events by kind (small helper for reports and the CLI)."""
    counts: Dict[str, int] = {}
    for event in events:
        counts[event["kind"]] = counts.get(event["kind"], 0) + 1
    return counts
