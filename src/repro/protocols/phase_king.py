"""Phase-King Byzantine agreement for committees (realizes f_ba).

The paper instantiates the committee-level BA functionality f_ba with the
deterministic Garay–Moses protocol (t+1 rounds, poly communication); any
deterministic t < n/3 BA fits the functionality's interface and cost
envelope, and we implement the classic *King algorithm* of Berman, Garay
and Perry — three rounds per phase, f+1 phases, resilience f < n/3 —
which is simpler and has the same polylog(n) cost when run by a
polylog(n)-size committee.

Per phase (king = a fixed, round-robin party):

1. every party sends its current value to all;
2. a party that saw some value ``w`` at least ``n - f`` times sends
   ``propose(w)`` to all; a party that received more than ``f`` proposals
   for ``w`` adopts ``w``;
3. the king sends its value; a party whose own value gathered fewer than
   ``n - f`` proposals adopts the king's.

This module implements the protocol as real message-passing
:class:`~repro.net.party.Party` state machines (used standalone and in
tests), plus a functional evaluator matching f_ba's ideal behaviour for
the hybrid-model executions of the big protocol.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError, SerializationError
from repro.net.party import Envelope, Party
from repro.obs.spans import span
from repro.utils.serialization import encode_uint

_VALUE_TAG = 0
_PROPOSE_TAG = 1
_KING_TAG = 2


def _encode(tag: int, value: int) -> bytes:
    return encode_uint(tag) + encode_uint(value)


def _decode(payload: bytes) -> Optional[tuple]:
    from repro.utils.serialization import decode_uint

    try:
        tag, pos = decode_uint(payload, 0)
        value, pos = decode_uint(payload, pos)
    except SerializationError:
        return None
    if pos != len(payload):
        return None
    return tag, value


class PhaseKingParty(Party):
    """An honest phase-king participant.

    ``members`` is the ordered committee (party ids); the king of phase k
    is ``members[k - 1]``.  Values are small non-negative ints (bits in
    the BA use-case).
    """

    def __init__(
        self,
        party_id: int,
        members: Sequence[int],
        max_faults: int,
        input_value: int,
    ) -> None:
        super().__init__(party_id)
        if max_faults * 3 >= len(members):
            raise ConfigurationError(
                f"phase king needs f < n/3; got f={max_faults}, n={len(members)}"
            )
        self.members = list(members)
        self.f = max_faults
        self.value = input_value
        self._proposal_support = 0

    # Round layout: phase k (0-based) occupies rounds 3k, 3k+1, 3k+2.

    def step(self, round_index: int, inbox: Sequence[Envelope]) -> List[Envelope]:
        phase, subround = divmod(round_index, 3)
        if phase > self.f:
            return self.halt(self.value)
        if subround == 0:
            return self._send_all(_VALUE_TAG, self.value)
        if subround == 1:
            counts = self._tally(inbox, _VALUE_TAG)
            outgoing: List[Envelope] = []
            for candidate, count in counts.items():
                if count >= len(self.members) - self.f:
                    outgoing = self._send_all(_PROPOSE_TAG, candidate)
                    break
            return outgoing
        # subround == 2: process proposals, king speaks.
        proposals = self._tally(inbox, _PROPOSE_TAG)
        adopted = None
        for candidate, count in proposals.items():
            if count > self.f:
                adopted = candidate
                break
        if adopted is not None:
            self.value = adopted
        self._proposal_support = proposals.get(self.value, 0)
        king = self.members[phase % len(self.members)]
        if self.party_id == king:
            return self._send_all(_KING_TAG, self.value)
        return []

    def _post_king(self, inbox: Sequence[Envelope], phase: int) -> None:
        king = self.members[phase % len(self.members)]
        king_value = None
        for envelope in inbox:
            decoded = _decode(envelope.payload)
            if decoded and decoded[0] == _KING_TAG and envelope.sender == king:
                king_value = decoded[1]
        if king_value is not None and self._proposal_support < (
            len(self.members) - self.f
        ):
            self.value = king_value

    def _send_all(self, tag: int, value: int) -> List[Envelope]:
        payload = _encode(tag, value)
        return [self.send(peer, payload) for peer in self.members]

    def _tally(self, inbox: Sequence[Envelope], wanted_tag: int) -> Counter:
        counts: Counter = Counter()
        seen_senders = set()
        for envelope in inbox:
            if envelope.sender in seen_senders:
                continue
            decoded = _decode(envelope.payload)
            if decoded is None:
                continue
            tag, value = decoded
            if tag != wanted_tag:
                continue
            seen_senders.add(envelope.sender)
            counts[value] += 1
        return counts


class _PhaseKingPartyWrapped(PhaseKingParty):
    """Phase-king party that folds the king round in correctly.

    The king's message of phase k is delivered at round 3k+3 (= round 0
    of the next phase), so honest parties must consume it *before*
    sending their next value.
    """

    def step(self, round_index: int, inbox: Sequence[Envelope]) -> List[Envelope]:
        phase, subround = divmod(round_index, 3)
        if subround == 0 and phase > 0:
            self._post_king(inbox, phase - 1)
        return super().step(round_index, inbox)


def make_honest_party(
    party_id: int,
    members: Sequence[int],
    max_faults: int,
    input_value: int,
) -> PhaseKingParty:
    """Factory for an honest phase-king participant."""
    return _PhaseKingPartyWrapped(party_id, members, max_faults, input_value)


class ByzantinePhaseKingParty(Party):
    """A simple malicious participant: equivocates values per recipient
    and proposes both values every phase (a standard stress adversary for
    phase-king implementations)."""

    def __init__(self, party_id: int, members: Sequence[int]) -> None:
        super().__init__(party_id)
        self.members = list(members)

    def step(self, round_index: int, inbox: Sequence[Envelope]) -> List[Envelope]:
        phase, subround = divmod(round_index, 3)
        outgoing: List[Envelope] = []
        if subround == 0:
            for position, peer in enumerate(self.members):
                outgoing.append(
                    self.send(peer, _encode(_VALUE_TAG, position % 2))
                )
        elif subround == 1:
            for position, peer in enumerate(self.members):
                outgoing.append(
                    self.send(peer, _encode(_PROPOSE_TAG, position % 2))
                )
        else:
            king = self.members[phase % len(self.members)]
            if self.party_id == king:
                for position, peer in enumerate(self.members):
                    outgoing.append(
                        self.send(peer, _encode(_KING_TAG, position % 2))
                    )
        return outgoing


def run_phase_king(
    inputs: Dict[int, int],
    byzantine: Sequence[int] = (),
    metrics=None,
):
    """Convenience driver: run phase-king among ``inputs.keys()``.

    Returns ``(outputs, metrics)`` where ``outputs`` maps honest party id
    to its decision.
    """
    from repro.net.metrics import CommunicationMetrics
    from repro.net.simulator import SynchronousNetwork

    members = sorted(inputs)
    byzantine_set = set(byzantine)
    f = max(1, (len(members) - 1) // 3)
    if len(byzantine_set) > f:
        raise ConfigurationError(
            f"{len(byzantine_set)} byzantine parties exceeds f={f}"
        )
    parties: List[Party] = []
    for member in members:
        if member in byzantine_set:
            parties.append(ByzantinePhaseKingParty(member, members))
        else:
            parties.append(
                make_honest_party(member, members, f, inputs[member])
            )
    metrics = metrics if metrics is not None else CommunicationMetrics()
    network = SynchronousNetwork(parties, metrics=metrics)
    honest_ids = [m for m in members if m not in byzantine_set]
    with span("phase-king", n=len(members), f=f):
        network.run_until(honest_ids, max_rounds=3 * (f + 2) + 3)
    outputs = {
        member: network.parties[member].output for member in honest_ids
    }
    return outputs, metrics


def ideal_f_ba(inputs: Dict[int, int], num_corrupt: int,
               adversary_choice: int = 0) -> int:
    """The ideal functionality f_ba (§3.1).

    If at least ``n - t`` inputs agree on a value — in particular,
    whenever all honest parties hold the same input — that value is the
    output; otherwise the adversary chooses.  (``>=`` rather than the
    paper's literal "more than": the paper quantifies over the corruption
    *bound* t, while callers pass the actual corrupt count, and honest
    unanimity yields exactly ``n - num_corrupt`` matching inputs.)
    """
    counts = Counter(inputs.values())
    n = len(inputs)
    for value, count in counts.items():
        if count >= n - num_corrupt:
            return value
    return adversary_choice
