"""Tests for pi_ba (Fig. 3) — agreement, validity, adversaries, accounting."""

import pytest

from repro.errors import ProtocolError
from repro.net.adversary import random_corruption, targeted_corruption
from repro.params import ProtocolParameters
from repro.protocols.balanced_ba import (
    AdversaryBehavior,
    BalancedBA,
    encode_pair,
    run_balanced_ba,
)
from repro.srds.base_sigs import HashRegistryBase
from repro.srds.owf import OwfSRDS
from repro.srds.snark_based import SnarkSRDS
from repro.utils.randomness import Randomness

N = 64


def _snark_scheme():
    return SnarkSRDS(base_scheme=HashRegistryBase())


def _run(inputs=None, byzantine_count=None, scheme=None, seed=7,
         adversary=None, params=None):
    params = params if params is not None else ProtocolParameters()
    rng = Randomness(seed)
    t = (
        byzantine_count
        if byzantine_count is not None
        else params.max_corruptions(N)
    )
    plan = random_corruption(N, t, rng.fork("corrupt"))
    inputs = inputs if inputs is not None else {i: 1 for i in range(N)}
    scheme = scheme if scheme is not None else _snark_scheme()
    return run_balanced_ba(inputs, plan, scheme, params, rng.fork("run"),
                           adversary=adversary), plan


class TestHonestExecution:
    def test_unanimous_one(self):
        result, _ = _run({i: 1 for i in range(N)})
        assert result.agreement and result.validity
        assert result.agreed_value == 1

    def test_unanimous_zero(self):
        result, _ = _run({i: 0 for i in range(N)})
        assert result.agreement and result.validity
        assert result.agreed_value == 0

    def test_split_inputs_agree(self):
        result, _ = _run({i: i % 2 for i in range(N)})
        assert result.agreement
        assert result.agreed_value in (0, 1)

    def test_no_corruption(self):
        result, _ = _run(byzantine_count=0)
        assert result.agreement and result.validity

    def test_owf_scheme(self):
        result, _ = _run(scheme=OwfSRDS(message_bits=32))
        assert result.agreement and result.validity

    def test_certificate_succinct_for_snark(self):
        result, _ = _run()
        assert 0 < result.certificate_bytes < 1024

    def test_all_honest_parties_output(self):
        result, plan = _run()
        for party in plan.honest:
            assert result.outputs[party] is not None


class TestAdversarialExecution:
    def test_equivocating_signers(self):
        adversary = AdversaryBehavior(
            sign_message=lambda party, virtual, honest: b"wrong-message"
        )
        result, _ = _run(adversary=adversary)
        assert result.agreement and result.validity

    def test_corrupt_sign_honest_message_is_harmless(self):
        adversary = AdversaryBehavior(
            sign_message=lambda party, virtual, honest: honest
        )
        result, _ = _run(adversary=adversary)
        assert result.agreement and result.validity

    def test_boost_injection_rejected(self):
        injected = []

        def boost_messages():
            # Corrupt parties shower party 3 with uncertified claims of
            # the flipped value.
            rng = Randomness(1)
            return [
                (0, 3, 0, rng.random_bytes(32), None)
                for _ in range(20)
            ]

        adversary = AdversaryBehavior(boost_messages=boost_messages)
        result, _ = _run({i: 1 for i in range(N)}, adversary=adversary)
        assert result.agreement and result.agreed_value == 1

    def test_ba_choice_on_split_inputs(self):
        adversary = AdversaryBehavior(ba_choice=1)
        result, _ = _run({i: i % 2 for i in range(N)}, adversary=adversary,
                         seed=9)
        assert result.agreement


class TestModelValidation:
    def test_oversized_corruption_rejected(self):
        params = ProtocolParameters()
        rng = Randomness(1)
        plan = targeted_corruption(N, list(range(N // 3 + 1)))
        with pytest.raises(ProtocolError):
            BalancedBA(
                {i: 1 for i in range(N)}, plan, _snark_scheme(), params, rng
            )

    def test_plan_size_mismatch_rejected(self):
        params = ProtocolParameters()
        plan = targeted_corruption(N + 1, [0])
        with pytest.raises(ProtocolError):
            BalancedBA(
                {i: 1 for i in range(N)}, plan, _snark_scheme(), params,
                Randomness(1),
            )


class TestCommunicationAccounting:
    def test_balanced_imbalance(self):
        result, _ = _run()
        assert result.metrics.imbalance < 5.0

    def test_rounds_polylog(self):
        result, _ = _run()
        assert result.metrics.rounds > 0

    def test_metrics_cover_all_parties(self):
        result, _ = _run()
        assert result.metrics.num_parties >= N

    def test_supreme_committee_recorded(self):
        result, _ = _run()
        assert result.supreme_committee_size > 0

    def test_num_virtual_consistent(self):
        result, _ = _run()
        assert result.num_virtual % N == 0


class TestEncodePair:
    def test_injective(self):
        assert encode_pair(0, b"seed") != encode_pair(1, b"seed")
        assert encode_pair(0, b"a") != encode_pair(0, b"b")
