"""F1 — Figure 1: the SRDS robustness experiment, executed.

Runs Expt^robust for both constructions against every implemented
robustness adversary over multiple seeded trials, and reports the
challenger's win rate.  The paper's claim (Def. 2.4): a robust scheme
wins except with negligible probability — empirically, 100% of trials.
"""

import pytest

from benchmarks.conftest import write_result
from repro.params import ProtocolParameters
from repro.pki.registry import PKIMode
from repro.srds import adversaries as adv
from repro.srds.base_sigs import HashRegistryBase
from repro.srds.experiments import run_robustness_experiment
from repro.srds.owf import OwfSRDS
from repro.srds.snark_based import SnarkSRDS
from repro.utils.randomness import Randomness

N, T, TRIALS = 64, 10, 5

SCHEMES = [
    ("owf/trusted-pki", lambda: OwfSRDS(message_bits=32), PKIMode.TRUSTED),
    ("snark/bare-pki", lambda: SnarkSRDS(base_scheme=HashRegistryBase()),
     PKIMode.BARE),
]

ADVERSARIES = [
    ("dropping", adv.DroppingRobustnessAdversary),
    ("decoy", adv.DecoyRobustnessAdversary),
    ("garbage", adv.GarbageRobustnessAdversary),
    ("replay", adv.ReplayRobustnessAdversary),
]


def _run_grid():
    params = ProtocolParameters()
    results = {}
    for scheme_name, factory, mode in SCHEMES:
        for adv_name, adversary_cls in ADVERSARIES:
            wins = 0
            for trial in range(TRIALS):
                if run_robustness_experiment(
                    factory(), N, T, mode, adversary_cls(), params,
                    Randomness(1000 + trial),
                ):
                    wins += 1
            results[(scheme_name, adv_name)] = wins / TRIALS
    return results


@pytest.mark.benchmark(group="fig1")
def test_fig1_robustness_experiment(benchmark, results_dir):
    results = benchmark.pedantic(_run_grid, rounds=1, iterations=1)

    lines = [
        f"Expt^robust (Fig. 1): n={N}, t={T}, {TRIALS} trials per cell",
        f"{'scheme':<18} {'adversary':<12} {'challenger win rate':>20}",
    ]
    for (scheme_name, adv_name), rate in sorted(results.items()):
        lines.append(f"{scheme_name:<18} {adv_name:<12} {rate:>19.0%}")
    write_result(results_dir, "fig1_robustness", "\n".join(lines))

    # Def. 2.4: adversary wins only negligibly — here, never.
    for cell, rate in results.items():
        assert rate == 1.0, f"robustness lost in cell {cell}"
