"""Live gateway runs: real sockets, concurrent clients, SIGTERM drain.

Marked ``gateway`` (excluded from tier-1): these boot actual servers —
in-process for the TCP end-to-end tests, a real subprocess for the
signal-handling test — and drive them over loopback TCP.
"""

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.serve.client import GatewayClient, run_session
from repro.serve.server import GatewayConfig, GatewayServer
from repro.serve.sessions import SessionSpec, one_shot_reference

pytestmark = pytest.mark.gateway

SMALL = dict(n=6, scheme="snark-hash", seed=11)


def _http_get(port: int, target: str) -> tuple:
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall(
            f"GET {target} HTTP/1.1\r\nHost: x\r\n\r\n".encode("ascii")
        )
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    head, _, body = b"".join(chunks).partition(b"\r\n\r\n")
    status = int(head.split()[1])
    return status, body.decode("utf-8")


class TestGatewayOverTcp:
    def test_concurrent_clients_share_setup_and_match_reference(self):
        async def scenario():
            server = GatewayServer(GatewayConfig(port=0, max_sessions=2))
            port = await server.start()
            fields = {**SMALL, "repeat": 2}
            responses = await asyncio.gather(*[
                asyncio.to_thread(
                    run_session, "127.0.0.1", port, **fields
                )
                for _ in range(3)  # 3 clients > 2 lanes: one must retry
            ])
            status, scrape = await asyncio.to_thread(
                _http_get, port, "/metrics"
            )
            cache = server.manager.cache.stats()
            await server.aclose()
            return responses, status, scrape, cache

        responses, status, scrape, cache = asyncio.run(scenario())
        assert all(r["ok"] for r in responses), responses
        reference = one_shot_reference(SessionSpec(**SMALL))
        for response in responses:
            result = response["result"]
            assert result["value"] == reference["value"]
            assert result["per_party_bits"] == reference["per_party_bits"]
            assert result["within_budget"]
        # One keygen total across all three sessions.
        assert cache["misses"] == 1
        assert cache["hits"] == 5  # 3 sessions x 2 decisions - 1 miss
        # The HTTP half of the port speaks Prometheus.
        assert status == 200
        assert "repro_gateway_sessions_admitted_total 3" in scrape
        assert "repro_gateway_setup_cache_hits_total 5" in scrape

    def test_backpressure_is_observable_then_drains(self):
        async def scenario():
            server = GatewayServer(
                GatewayConfig(port=0, max_sessions=1, retry_after=0.05)
            )
            port = await server.start()

            def slow_then_retry():
                with GatewayClient("127.0.0.1", port) as client:
                    first = client.submit(**SMALL, repeat=3)
                    assert first["ok"]
                    # The lane is held: an immediate second submit must
                    # be rejected with the structured backpressure reply.
                    rejected = client.submit(**SMALL)
                    assert not rejected["ok"]
                    assert rejected["code"] == "busy"
                    assert rejected["retry_after"] > 0
                    # Honoring retry_after eventually succeeds.
                    retried = client.submit_with_retry(
                        max_attempts=100, **SMALL
                    )
                    assert retried["ok"], retried
                    done = client.await_result(str(retried["session"]))
                    assert done["ok"]
                    return client.await_result(str(first["session"]))

            first_done = await asyncio.to_thread(slow_then_retry)
            scrape = server.registry.render()
            await server.aclose()
            return first_done, scrape

        first_done, scrape = asyncio.run(scenario())
        assert first_done["ok"] and first_done["state"] == "done"
        assert 'repro_gateway_sessions_rejected_total{code="busy"}' in scrape

    def test_malformed_lines_get_structured_rejects(self):
        async def scenario():
            server = GatewayServer(GatewayConfig(port=0))
            port = await server.start()

            def probe():
                with socket.create_connection(
                    ("127.0.0.1", port), timeout=10
                ) as sock:
                    reader = sock.makefile("rb")
                    replies = []
                    for line in (b"{not json}\n", b'{"op": "rm -rf"}\n',
                                 b'{"op": "ping"}\n'):
                        sock.sendall(line)
                        replies.append(json.loads(reader.readline()))
                    return replies

            replies = await asyncio.to_thread(probe)
            await server.aclose()
            return replies

        bad_json, bad_op, ping = asyncio.run(scenario())
        assert bad_json["code"] == "bad-request"
        assert bad_op["code"] == "bad-request"
        assert ping["ok"] and ping["protocol"] == "repro-gateway/1"

    def test_shutdown_op_stops_admission_then_exits(self):
        async def scenario():
            server = GatewayServer(GatewayConfig(port=0))
            port = await server.start()

            def drive():
                with GatewayClient("127.0.0.1", port) as client:
                    assert client.shutdown()["state"] == "draining"
            await asyncio.to_thread(drive)
            status = await asyncio.wait_for(
                server.serve_until_stopped(), timeout=30
            )
            return status

        assert asyncio.run(scenario()) == 0


class TestSigtermDrain:
    def test_sigterm_drains_flushes_metrics_and_exits_zero(self, tmp_path):
        port_file = tmp_path / "port"
        metrics_out = tmp_path / "metrics.prom"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "run",
             "--port-file", str(port_file),
             "--metrics-out", str(metrics_out),
             "--max-sessions", "2", "--drain-deadline", "20"],
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=Path(__file__).resolve().parents[2],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            deadline = time.time() + 30
            while time.time() < deadline and not (
                port_file.exists() and port_file.read_text().strip()
            ):
                assert process.poll() is None, process.stdout.read()
                time.sleep(0.1)
            port = int(port_file.read_text())

            with GatewayClient("127.0.0.1", port) as client:
                submitted = client.submit(**SMALL, repeat=50)
                assert submitted["ok"], submitted
                # SIGTERM lands while the session is mid-pipeline: the
                # gateway must drain it (finish or cooperatively cancel)
                # rather than dropping it on the floor.
                process.send_signal(signal.SIGTERM)
                # The already-open connection keeps working during drain.
                final = client.await_result(
                    str(submitted["session"]), timeout=60
                )
                assert final["ok"], final
                assert final["state"] in ("done", "cancelled")
                assert final["decisions_completed"] >= 1

            out, _ = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()

        assert process.returncode == 0, out
        assert "drained and stopped" in out
        flushed = metrics_out.read_text()
        assert "repro_gateway_sessions_admitted_total 1" in flushed
        assert "repro_gateway_decisions_total" in flushed
