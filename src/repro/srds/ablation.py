"""Deliberately weakened SRDS variants for the ablation experiments.

DESIGN.md (§5) calls out two load-bearing design choices and this module
removes each so the ablation benchmarks can demonstrate the attacks they
prevent actually working:

* :class:`NoRangeCheckSnarkSRDS` — the anti-double-counting discipline
  (index dedup, disjoint ranges, planar min/max checks of §2.2/Fig. 3)
  stripped from the SNARK construction (E7);
* :class:`RevealingOwfSRDS` — *oblivious key generation* stripped from
  the sortition construction: verification keys carry a visible signer
  flag, so a setup-adaptive adversary (the paper's corruption model!)
  simply corrupts the signers and starves the threshold (E12).

**These schemes are insecure by construction.  Never use them outside
the ablation experiments.**
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.crypto.hashing import hash_chain, hash_domain
from repro.crypto.snark import SnarkSystem
from repro.errors import MALFORMED_INPUT_ERRORS
from repro.srds.base import PublicParameters, SRDSSignature
from repro.srds.snark_based import (
    CertifiedBaseSignature,
    SnarkAggregateSignature,
    SnarkSRDS,
    _CHAIN_DOMAIN,
    _INTERNAL_RELATION,
    _LEAF_RELATION,
    _cached_vk_tree,
    _prove_leaf,
)
from repro.utils.serialization import canonical_tuple, encode_sequence


class NoRangeCheckSnarkSRDS(SnarkSRDS):
    """The SNARK-based SRDS with the disjoint-range discipline removed.

    ``aggregate1`` keeps *all* valid child aggregates (no greedy
    disjoint-range filter, no containment dropping), and ``aggregate2``
    combines them with an internal relation that does not check range
    disjointness.  The replay-forgery adversary then double-counts its
    coalition at every aggregation level and sails past the majority
    threshold — E7 measures exactly that.
    """

    name = "srds-snark-pcd (ranges DISABLED — ablation only)"

    def setup(self, num_parties: int, rng) -> PublicParameters:
        pp = super().setup(num_parties, rng)
        snark_system: SnarkSystem = pp.extra["snark"]

        def lax_internal(statement: bytes, witness: bytes) -> bool:
            return _check_internal_no_ranges(statement, witness, snark_system)

        snark_system.register_relation(_LAX_INTERNAL, lax_internal)
        return pp

    def aggregate1(
        self,
        pp: PublicParameters,
        verification_keys: Dict[int, bytes],
        message: bytes,
        signatures: Sequence[SRDSSignature],
    ) -> List[object]:
        """Filter validity only; keep overlapping aggregates (the bug)."""
        snark_system: SnarkSystem = pp.extra["snark"]
        tree = _cached_vk_tree(pp, verification_keys)
        message_tag = hash_domain("srds/message-tag", message)
        certified: Dict[int, CertifiedBaseSignature] = {}
        aggregates: List[SnarkAggregateSignature] = []
        for signature in signatures:
            if isinstance(signature, SnarkAggregateSignature):
                if signature.vk_root != tree.root:
                    continue
                if signature.message_tag != message_tag:
                    continue
                statement = signature.statement(message)
                if (
                    snark_system.verify(_LEAF_RELATION, statement, signature.proof)
                    or snark_system.verify(_INTERNAL_RELATION, statement,
                                           signature.proof)
                    or snark_system.verify(_LAX_INTERNAL, statement,
                                           signature.proof)
                ):
                    aggregates.append(signature)
            else:
                # Base signatures still go through the honest path.
                for item in super().aggregate1(
                    pp, verification_keys, message, [signature]
                ):
                    if isinstance(item, CertifiedBaseSignature):
                        certified.setdefault(item.base.index, item)
        return [certified[i] for i in sorted(certified)] + aggregates

    def aggregate2(
        self,
        pp: PublicParameters,
        message: bytes,
        filtered: Sequence[object],
    ) -> Optional[SnarkAggregateSignature]:
        snark_system: SnarkSystem = pp.extra["snark"]
        message_tag = hash_domain("srds/message-tag", message)
        bases = [f for f in filtered if isinstance(f, CertifiedBaseSignature)]
        aggregates = [
            f for f in filtered if isinstance(f, SnarkAggregateSignature)
        ]
        parts: List[SnarkAggregateSignature] = list(aggregates)
        if bases:
            parts.append(_prove_leaf(snark_system, message, message_tag, bases))
        if not parts:
            return None
        if len(parts) == 1:
            return parts[0]
        # Combine WITHOUT sorting-by-disjoint-range requirements.
        digest = hash_chain(_CHAIN_DOMAIN, (part.digest for part in parts))
        count = sum(part.count for part in parts)  # double-counting allowed!
        lo = min(part.lo for part in parts)
        hi = max(part.hi for part in parts)
        from repro.srds.snark_based import _statement

        statement = _statement(message, count, lo, hi, digest, parts[0].vk_root)
        witness = encode_sequence(
            [canonical_tuple(part.encode(), message) for part in parts]
        )
        proof = snark_system.prove(_LAX_INTERNAL, statement, witness)
        return SnarkAggregateSignature(
            count=count,
            lo=lo,
            hi=hi,
            digest=digest,
            vk_root=parts[0].vk_root,
            message_tag=message_tag,
            proof=proof,
        )

    def verify(
        self,
        pp: PublicParameters,
        verification_keys: Dict[int, bytes],
        message: bytes,
        signature: SRDSSignature,
    ) -> bool:
        if not isinstance(signature, SnarkAggregateSignature):
            return False
        snark_system: SnarkSystem = pp.extra["snark"]
        tree = _cached_vk_tree(pp, verification_keys)
        if signature.vk_root != tree.root:
            return False
        if signature.message_tag != hash_domain("srds/message-tag", message):
            return False
        statement = signature.statement(message)
        proof_ok = (
            snark_system.verify(_LEAF_RELATION, statement, signature.proof)
            or snark_system.verify(_INTERNAL_RELATION, statement, signature.proof)
            or snark_system.verify(_LAX_INTERNAL, statement, signature.proof)
        )
        return proof_ok and signature.count >= pp.acceptance_threshold


_LAX_INTERNAL = "srds/internal-sum-NO-RANGES"


def _check_internal_no_ranges(
    statement: bytes, witness: bytes, snark_system: SnarkSystem
) -> bool:
    """The internal relation minus the disjointness check (the ablation)."""
    from repro.srds.snark_based import _decode_statement, decode_aggregate
    from repro.utils.serialization import decode_sequence

    try:
        message, count, lo, hi, digest, vk_root = _decode_statement(statement)
        encoded_children, _ = decode_sequence(witness, 0)
    except MALFORMED_INPUT_ERRORS:
        return False
    if not encoded_children:
        return False
    children = []
    for blob in encoded_children:
        try:
            fields, _ = decode_sequence(blob, 0)
            child_blob, child_message = fields
            child = decode_aggregate(child_blob)
        except MALFORMED_INPUT_ERRORS:
            return False
        if child_message != message or child.vk_root != vk_root:
            return False
        child_statement = child.statement(message)
        if not (
            snark_system.verify(_LEAF_RELATION, child_statement, child.proof)
            or snark_system.verify(_INTERNAL_RELATION, child_statement,
                                   child.proof)
            or snark_system.verify(_LAX_INTERNAL, child_statement, child.proof)
        ):
            return False
        children.append(child)
    # NOTE: no pairwise-disjointness check — the whole point.
    if sum(child.count for child in children) != count:
        return False
    return hash_chain(_CHAIN_DOMAIN, (c.digest for c in children)) == digest


class RevealingOwfSRDS:
    """The sortition SRDS with oblivious keygen removed (E12 ablation).

    Identical to :class:`repro.srds.owf.OwfSRDS` except that every
    published verification key is prefixed with a flag byte announcing
    whether a signing key exists behind it.  Everything still *works*
    when corruption is random — but the paper's model lets the adversary
    corrupt **after seeing the bulletin board**, and against that
    adversary the scheme collapses: corrupting the flagged signers (well
    within the beta*n budget, since there are only polylog of them)
    removes every honest signature and robustness dies.

    Implemented by delegation rather than inheritance so the flag byte
    handling stays in one visible place.
    """

    name = "srds-owf-sortition (signer flag LEAKED — ablation only)"

    def __init__(self, **owf_kwargs) -> None:
        from repro.srds.owf import OwfSRDS

        self._inner = OwfSRDS(**owf_kwargs)
        self.pki_mode = self._inner.pki_mode
        self.assumptions = self._inner.assumptions
        self.needs_crs = self._inner.needs_crs

    def setup(self, num_parties, rng):
        return self._inner.setup(num_parties, rng)

    def keygen(self, pp, rng):
        vk, sk = self._inner.keygen(pp, rng)
        flag = b"\x01" if sk is not None else b"\x00"
        return flag + vk, sk

    @staticmethod
    def is_flagged_signer(verification_key: bytes) -> bool:
        """What the setup-adaptive adversary reads off the board."""
        return bool(verification_key) and verification_key[0] == 1

    def _strip(self, verification_keys):
        return {
            index: key[1:] for index, key in verification_keys.items()
        }

    def sign(self, pp, index, signing_key, message):
        return self._inner.sign(pp, index, signing_key, message)

    def aggregate1(self, pp, verification_keys, message, signatures):
        return self._inner.aggregate1(
            pp, self._strip(verification_keys), message, signatures
        )

    def aggregate2(self, pp, message, filtered):
        return self._inner.aggregate2(pp, message, filtered)

    def aggregate(self, pp, verification_keys, message, signatures):
        return self._inner.aggregate(
            pp, self._strip(verification_keys), message, signatures
        )

    def verify(self, pp, verification_keys, message, signature):
        return self._inner.verify(
            pp, self._strip(verification_keys), message, signature
        )

    def describe(self):
        return {
            "scheme": self.name,
            "setup": self.pki_mode.value,
            "assumptions": self.assumptions,
        }
