"""Tests for the VSS-based committee coin toss (realizing f_ct)."""

import pytest

from repro.errors import ConfigurationError
from repro.protocols.coin_toss import ideal_f_ct, run_coin_toss
from repro.utils.randomness import Randomness


class TestAgreement:
    def test_all_honest_agree(self, rng):
        outputs, _ = run_coin_toss(range(7), rng)
        assert len(set(outputs.values())) == 1

    def test_agreement_with_silent_byzantine(self, rng):
        outputs, _ = run_coin_toss(range(7), rng, byzantine=[2, 5])
        assert len(set(outputs.values())) == 1

    def test_output_width(self, rng):
        outputs, _ = run_coin_toss(range(4), rng)
        coin = next(iter(outputs.values()))
        assert isinstance(coin, bytes) and len(coin) == 32

    def test_different_seeds_different_coins(self):
        a, _ = run_coin_toss(range(4), Randomness(1))
        b, _ = run_coin_toss(range(4), Randomness(2))
        assert next(iter(a.values())) != next(iter(b.values()))

    def test_deterministic_given_seed(self):
        a, _ = run_coin_toss(range(4), Randomness(3))
        b, _ = run_coin_toss(range(4), Randomness(3))
        assert a == b


class TestRobustness:
    def test_byzantine_dealer_does_not_block(self, rng):
        # Silent byzantine members contribute nothing but cannot stop the
        # honest dealers' secrets from reconstructing.
        outputs, _ = run_coin_toss(range(10), rng, byzantine=[0, 3, 9])
        assert all(coin is not None for coin in outputs.values())

    def test_too_many_byzantine_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            run_coin_toss(range(6), rng, byzantine=[0, 1, 2])


class TestCosts:
    def test_rounds_constant(self, rng):
        _, metrics = run_coin_toss(range(7), rng)
        assert metrics.rounds_completed <= 6

    def test_bits_grow_with_committee(self, rng):
        _, small = run_coin_toss(range(4), rng.fork("s"))
        _, large = run_coin_toss(range(8), rng.fork("l"))
        assert large.max_bits_per_party > small.max_bits_per_party


def test_ideal_f_ct(rng):
    coin = ideal_f_ct(rng)
    assert isinstance(coin, bytes) and len(coin) == 32
