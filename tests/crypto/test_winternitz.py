"""Tests for Winternitz one-time signatures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import winternitz
from repro.errors import ConfigurationError, KeyError_, SignatureError

BITS = 32
W = 4


@pytest.fixture
def keys():
    return winternitz.keygen_from_seed(b"wots-seed" * 2, BITS, W)


class TestSignVerify:
    def test_valid(self, keys):
        vk, sk = keys
        assert winternitz.verify(vk, b"m", winternitz.sign(sk, b"m"))

    def test_wrong_message_rejected(self, keys):
        vk, sk = keys
        assert not winternitz.verify(vk, b"other", winternitz.sign(sk, b"m"))

    def test_wrong_key_rejected(self, keys):
        vk, sk = keys
        vk2, _ = winternitz.keygen_from_seed(b"other-seed", BITS, W)
        assert not winternitz.verify(vk2, b"m", winternitz.sign(sk, b"m"))

    def test_chain_extension_forgery_blocked(self, keys):
        """Extending revealed chains forges the message chunks but breaks
        the checksum chunks — the W-OTS checksum at work."""
        vk, sk = keys
        signature = winternitz.sign(sk, b"m")
        extended = winternitz.WotsSignature(
            values=tuple(
                winternitz._chain(value, 1, index)
                for index, value in enumerate(signature.values)
            )
        )
        assert not winternitz.verify(vk, b"m", extended)

    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=1, max_size=64))
    def test_arbitrary_messages(self, message):
        vk, sk = winternitz.keygen_from_seed(b"prop-seed", BITS, W)
        assert winternitz.verify(vk, message, winternitz.sign(sk, message))

    def test_tampered_value_rejected(self, keys):
        vk, sk = keys
        signature = winternitz.sign(sk, b"m")
        tampered = winternitz.WotsSignature(
            values=(bytes(32),) + signature.values[1:]
        )
        assert not winternitz.verify(vk, b"m", tampered)


class TestObliviousKeygen:
    def test_no_signing_capability(self):
        vk = winternitz.oblivious_keygen(b"obliv", BITS, W)
        _, _, total = winternitz._parameters(BITS, W)
        fake = winternitz.WotsSignature(
            values=tuple(bytes(32) for _ in range(total))
        )
        assert not winternitz.verify(vk, b"m", fake)

    def test_shape_matches_real_key(self):
        real, _ = winternitz.keygen_from_seed(b"a", BITS, W)
        oblivious = winternitz.oblivious_keygen(b"b", BITS, W)
        assert len(real.encode()) == len(oblivious.encode())


class TestParameters:
    def test_invalid_w_rejected(self):
        with pytest.raises(ConfigurationError):
            winternitz.keygen_from_seed(b"s", BITS, 0)
        with pytest.raises(ConfigurationError):
            winternitz.keygen_from_seed(b"s", BITS, 9)

    def test_indivisible_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            winternitz.keygen_from_seed(b"s", 30, 4)

    def test_checksum_chunk_count(self):
        message_chunks, checksum_chunks, total = winternitz._parameters(128, 4)
        assert message_chunks == 32
        # max checksum = 32 * 15 = 480 < 16^3; needs 3 chunks.
        assert checksum_chunks == 3
        assert total == 35

    def test_signature_smaller_than_lamport(self):
        from repro.crypto import lamport

        vk, sk = winternitz.keygen_from_seed(b"s", 128, 4)
        wots_size = winternitz.sign(sk, b"m").size_bytes()
        _, lamport_sk = lamport.keygen_from_seed(b"s" * 8, 128)
        lamport_size = lamport.sign(lamport_sk, b"m").size_bytes()
        assert wots_size * 3 < lamport_size  # 35*32 vs 128*32


class TestEncoding:
    def test_signature_roundtrip(self, keys):
        _, sk = keys
        signature = winternitz.sign(sk, b"m")
        decoded = winternitz.decode_signature(signature.encode(), BITS, W)
        assert decoded == signature

    def test_key_roundtrip(self, keys):
        vk, _ = keys
        decoded = winternitz.decode_verification_key(vk.encode(), BITS, W)
        assert decoded == vk

    def test_malformed_rejected(self):
        with pytest.raises(SignatureError):
            winternitz.decode_signature(b"short", BITS, W)
        with pytest.raises(KeyError_):
            winternitz.decode_verification_key(b"short", BITS, W)
