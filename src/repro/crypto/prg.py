"""A hash-chain pseudorandom generator.

Used to expand short seeds into long key material (Lamport key
generation) deterministically, so an oblivious verification key can be
re-derived from the public seed alone.
"""

from __future__ import annotations

from repro.crypto.hashing import hash_domain
from repro.utils.serialization import encode_uint


class PRG:
    """Counter-mode expansion of a seed into pseudorandom blocks."""

    def __init__(self, seed: bytes, domain: str = "prg") -> None:
        self._seed = seed
        self._domain = domain

    def block(self, index: int) -> bytes:
        """The 32-byte block at position ``index`` (random access)."""
        return hash_domain(self._domain, self._seed, encode_uint(index))

    def expand(self, num_bytes: int) -> bytes:
        """The first ``num_bytes`` of the output stream."""
        blocks = []
        produced = 0
        index = 0
        while produced < num_bytes:
            block = self.block(index)
            blocks.append(block)
            produced += len(block)
            index += 1
        return b"".join(blocks)[:num_bytes]
