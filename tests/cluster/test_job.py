"""Job descriptions, builder resolution, and shard partitioning."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.job import (
    ClusterJob,
    phase_king_job,
    resolve_builder,
    split_shards,
)
from repro.errors import ClusterError


class TestSplitShards:
    @given(
        st.integers(min_value=1, max_value=256),
        st.integers(min_value=1, max_value=32),
    )
    def test_partition_properties(self, n, k):
        if k > n:
            with pytest.raises(ClusterError):
                split_shards(n, k)
            return
        shards = split_shards(n, k)
        assert len(shards) == k
        flat = [p for shard in shards for p in shard]
        assert flat == list(range(n))  # contiguous, disjoint, complete
        sizes = [len(shard) for shard in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_zero_workers_rejected(self):
        with pytest.raises(ClusterError):
            split_shards(8, 0)


class TestClusterJob:
    def test_builder_reference_validated(self):
        with pytest.raises(ClusterError, match="module:function"):
            ClusterJob(name="x", n=4, builder="not-a-reference")

    def test_unknown_builder_module(self):
        with pytest.raises(ClusterError, match="cannot import"):
            resolve_builder("repro.no_such_module:build")

    def test_builder_must_be_callable(self):
        with pytest.raises(ClusterError, match="callable"):
            resolve_builder("repro.cluster.job:MAGIC_DOES_NOT_EXIST")

    def test_build_parties_validates_ids(self):
        job = ClusterJob(
            name="bad", n=5,
            builder="repro.cluster.job:phase_king_parties",
            args={"inputs": {i: 0 for i in range(4)}},
        )
        with pytest.raises(ClusterError):
            job.build_parties()

    def test_phase_king_job_round_trips_through_pickle(self):
        import pickle

        inputs = {i: i % 2 for i in range(8)}
        job = phase_king_job(inputs, byzantine=(1,))
        clone = pickle.loads(pickle.dumps(job))
        assert clone == job
        parties = clone.build_parties()
        assert sorted(p.party_id for p in parties) == list(range(8))
        assert job.target_ids() == [i for i in range(8) if i != 1]
