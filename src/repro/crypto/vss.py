"""Feldman verifiable secret sharing over secp256k1.

The paper's coin-toss functionality f_ct is realized (Chor et al. style)
by having each committee member VSS a random value and XOR the
reconstructed values.  Feldman VSS augments Shamir with public
commitments ``C_j = a_j * G`` to the dealing polynomial's coefficients;
share ``(i, y_i)`` is publicly checkable against
``y_i * G == sum_j i^j * C_j``, so a corrupt dealer cannot hand out
inconsistent shares undetected.

Feldman commitments leak ``secret * G``; for coin tossing this is fine
(the secret is a one-shot random value revealed moments later), which is
why we do not pay for Pedersen's extra blinding here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.crypto import ec
from repro.crypto.shamir import Share, deal_with_polynomial, reconstruct
from repro.errors import SecretSharingError
from repro.fields.prime_field import FieldElement, PrimeField, default_field


@dataclass(frozen=True)
class VSSCommitment:
    """Public commitments to a dealing polynomial's coefficients."""

    coefficient_points: Tuple[ec.Point, ...]

    @property
    def threshold(self) -> int:
        """The privacy threshold of the dealt sharing."""
        return len(self.coefficient_points) - 1

    def size_bytes(self) -> int:
        """Wire size (33 bytes per compressed point)."""
        return sum(len(p.encode()) for p in self.coefficient_points)


@dataclass(frozen=True)
class VSSDealing:
    """Everything a Feldman dealer produces: shares + public commitment."""

    shares: Tuple[Share, ...]
    commitment: VSSCommitment


def deal_verifiable(
    secret: int,
    num_shares: int,
    threshold: int,
    rng,
    field: PrimeField = None,
) -> VSSDealing:
    """Deal a verifiable sharing of ``secret``."""
    field = field or default_field()
    shares, polynomial = deal_with_polynomial(
        field, secret, num_shares, threshold, rng
    )
    commitment = VSSCommitment(
        coefficient_points=tuple(
            ec.commit(coefficient.value)
            for coefficient in polynomial.coefficients
        )
    )
    return VSSDealing(shares=tuple(shares), commitment=commitment)


def verify_share(share: Share, commitment: VSSCommitment) -> bool:
    """Check one share against the dealer's public commitment."""
    expected = ec.IDENTITY
    x_power = 1
    x = share.x.value
    modulus = share.x.field.modulus
    for point in commitment.coefficient_points:
        expected = ec.point_add(expected, ec.scalar_mult(x_power, point))
        x_power = x_power * x % modulus
    return ec.commit(share.y.value) == expected


def reconstruct_verified(
    shares: Sequence[Share],
    commitment: VSSCommitment,
    field: PrimeField = None,
) -> FieldElement:
    """Reconstruct, using only shares consistent with the commitment.

    Raises :class:`SecretSharingError` if fewer than ``threshold + 1``
    shares survive verification — in the honest-majority settings where
    this is used, that indicates a modeling bug rather than an adversary
    capability, so it is loud.
    """
    field = field or default_field()
    valid = [share for share in shares if verify_share(share, commitment)]
    if len(valid) < commitment.threshold + 1:
        raise SecretSharingError(
            "not enough commitment-consistent shares to reconstruct"
        )
    return reconstruct(field, valid[: commitment.threshold + 1])


def commitment_to_secret_point(commitment: VSSCommitment) -> ec.Point:
    """The public point ``secret * G`` (Feldman's leak, used in tests)."""
    return commitment.coefficient_points[0]
