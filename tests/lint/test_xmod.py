"""The interprocedural layer: project rules, call graph, facts cache.

Fixture pairs mirror ``test_rules.py`` (one good/bad tree per rule
family); the graph and cache tests run over the deliberate import cycle
in ``fixtures/xmod_graph``.
"""

import json
import shutil

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.config import LintConfig
from repro.lint.engine import iter_source_files, load_module, run_lint
from repro.lint.model import ModuleUnit
from repro.lint.rules.schema import struct_field_count
from repro.lint.xmod.cache import build_project
from repro.lint.xmod.callgraph import CALLGRAPH_SCHEMA, CallGraph
from tests.lint.conftest import FIXTURES, lint_fixture, rule_ids_of


# -- TRU001: trust-boundary taint --------------------------------------------

def test_tru001_flags_unguarded_field_and_tainted_sinks():
    result = lint_fixture("xmod_tru_bad", rules=("TRU001",))
    ids = rule_ids_of(result)
    assert ids.count("TRU001") == 3
    messages = " | ".join(v.message for v in result.violations)
    # (a) the decoder lets one field escape unguarded...
    assert "charge_bits" in messages and "escape" in messages
    # (b) ...and wire-derived data reaches both sink kinds.
    assert "record_message" in messages
    assert "advance_round" in messages
    assert "wire data ingested at line" in messages


def test_tru001_decoder_field_violation_anchors_at_the_escape_line():
    result = lint_fixture("xmod_tru_bad", rules=("TRU001",))
    field_violations = [
        v for v in result.violations if "escape" in v.message
    ]
    assert len(field_violations) == 1
    # The finding lands on the constructor kwarg line (pragma-able per
    # field), not on the shared unpack line.
    assert "charge_bits=charge_bits" in field_violations[0].snippet


def test_tru001_accepts_guarded_construction_and_sanitizers():
    result = lint_fixture("xmod_tru_ok", rules=("TRU001",))
    assert rule_ids_of(result) == []


# -- SCH001: wire-schema drift -----------------------------------------------

def test_sch001_flags_all_four_drift_kinds():
    result = lint_fixture("xmod_sch_bad", rules=("SCH001",))
    ids = rule_ids_of(result)
    assert ids.count("SCH001") == 5
    messages = " | ".join(v.message for v in result.violations)
    assert "field order drift" in messages          # pack order (x2)
    assert "packs 2 value(s)" in messages           # arity
    assert "never read by Ticket.encode" in messages  # coverage
    assert "'stamp'" in messages                    # constructor kwarg
    order = [v for v in result.violations if "order drift" in v.message]
    assert len(order) == 2


def test_sch001_constructor_drift_is_cross_module():
    result = lint_fixture("xmod_sch_bad", rules=("SCH001",))
    kwarg = [v for v in result.violations if "'stamp'" in v.message]
    assert [v.path for v in kwarg] == ["xmod_sch_bad/builder.py"]


def test_sch001_accepts_matching_codecs_and_affix_pairs():
    result = lint_fixture("xmod_sch_ok", rules=("SCH001",))
    assert rule_ids_of(result) == []


def test_struct_field_count_parses_repeat_string_and_pad_codes():
    assert struct_field_count(">BIIIII") == 6
    assert struct_field_count(">IIIIqIHI") == 8
    assert struct_field_count("<4s2xI") == 2   # 4s = one value, x = none
    assert struct_field_count("3i") == 3
    assert struct_field_count("!Hp") == 2


# -- ASY002: shared-state lock discipline ------------------------------------

def test_asy002_flags_lock_affine_and_cross_context_mutations():
    result = lint_fixture("xmod_asy_bad", rules=("ASY002",))
    ids = rule_ids_of(result)
    assert ids.count("ASY002") == 3
    messages = " | ".join(v.message for v in result.violations)
    assert "'_inbox'" in messages and "without holding" in messages
    assert "'_journal'" in messages
    assert "both thread and event-loop contexts" in messages


def test_asy002_accepts_locked_mutations_and_single_writers():
    result = lint_fixture("xmod_asy_ok", rules=("ASY002",))
    assert rule_ids_of(result) == []


def test_asy002_is_scoped_to_concurrency_surfaces():
    # The same class outside runtime/cluster/serve is out of scope.
    src = FIXTURES / "xmod_asy_bad" / "runtime" / "state.py"
    elsewhere = FIXTURES / "anywhere" / "_asy002_copy.py"
    elsewhere.write_text(src.read_text(encoding="utf-8"), encoding="utf-8")
    try:
        result = lint_fixture(
            "anywhere/_asy002_copy.py", rules=("ASY002",)
        )
        assert rule_ids_of(result) == []
    finally:
        elsewhere.unlink()


# -- call-graph export --------------------------------------------------------

def _graph_project(root, cache_path=None):
    config = LintConfig(root=root, paths=("xmod_graph",))
    modules = [
        loaded
        for path in iter_source_files(config)
        if isinstance(loaded := load_module(path, config), ModuleUnit)
    ]
    return build_project(modules, cache_path)


def test_callgraph_golden_document():
    project = _graph_project(FIXTURES)
    doc = CallGraph(project).to_json()
    assert doc["schema"] == CALLGRAPH_SCHEMA
    assert [m["name"] for m in doc["modules"]] == [
        "xmod_graph.pkg", "xmod_graph.pkg.a",
        "xmod_graph.pkg.b", "xmod_graph.pkg.c",
    ]
    by_name = {m["name"]: m for m in doc["modules"]}
    assert by_name["xmod_graph.pkg.a"]["imports"] == ["xmod_graph.pkg.b"]
    assert by_name["xmod_graph.pkg.b"]["imports"] == ["xmod_graph.pkg.a"]
    assert all(len(m["sha256"]) == 64 for m in doc["modules"])
    assert {f["id"] for f in doc["functions"]} == {
        "xmod_graph.pkg.a.alpha", "xmod_graph.pkg.a.orphan",
        "xmod_graph.pkg.b.beta", "xmod_graph.pkg.b.helper",
        "xmod_graph.pkg.c.gamma",
    }
    assert {
        (e["caller"], e["callee"]) for e in doc["edges"]
    } == {
        ("xmod_graph.pkg.a.alpha", "xmod_graph.pkg.b.helper"),
        ("xmod_graph.pkg.b.beta", "xmod_graph.pkg.a.alpha"),
    }
    assert doc["sccs"] == [["xmod_graph.pkg.a", "xmod_graph.pkg.b"]]


def test_callgraph_export_is_json_round_trippable():
    doc = CallGraph(_graph_project(FIXTURES)).to_json()
    assert json.loads(json.dumps(doc, sort_keys=True)) == doc


# -- facts cache ---------------------------------------------------------------

def test_cache_reanalyzes_only_the_edited_import_scc(tmp_path):
    shutil.copytree(FIXTURES / "xmod_graph", tmp_path / "xmod_graph")
    cache = tmp_path / ".lint-cache.json"

    cold = _graph_project(tmp_path, cache)
    assert set(cold.reanalyzed) == {
        "xmod_graph.pkg", "xmod_graph.pkg.a",
        "xmod_graph.pkg.b", "xmod_graph.pkg.c",
    }
    assert cache.exists()

    warm = _graph_project(tmp_path, cache)
    assert warm.reanalyzed == []
    assert warm.functions.keys() == cold.functions.keys()

    # Touch one member of the a<->b import cycle: its whole SCC
    # re-extracts, the island module `c` stays cached.
    edited = tmp_path / "xmod_graph" / "pkg" / "a.py"
    edited.write_text(
        edited.read_text(encoding="utf-8") + "\n\ndef extra():\n"
        "    return 1\n",
        encoding="utf-8",
    )
    ripple = _graph_project(tmp_path, cache)
    assert set(ripple.reanalyzed) == {
        "xmod_graph.pkg.a", "xmod_graph.pkg.b",
    }
    assert "xmod_graph.pkg.a.extra" in ripple.functions


def test_corrupt_cache_degrades_to_full_extraction(tmp_path):
    shutil.copytree(FIXTURES / "xmod_graph", tmp_path / "xmod_graph")
    cache = tmp_path / ".lint-cache.json"
    cache.write_text("{not json", encoding="utf-8")
    project = _graph_project(tmp_path, cache)
    assert len(project.reanalyzed) == 4  # everything, not an error


def test_cached_and_uncached_runs_agree_on_violations(tmp_path):
    shutil.copytree(FIXTURES / "xmod_tru_bad", tmp_path / "xmod_tru_bad")
    config = LintConfig(
        root=tmp_path, paths=("xmod_tru_bad",), rules=("TRU001",),
    )
    cache = tmp_path / ".lint-cache.json"
    cold = run_lint(config, cache_path=cache)
    warm = run_lint(config, cache_path=cache)
    plain = run_lint(config)
    key = lambda v: (v.path, v.line, v.message)  # noqa: E731
    assert sorted(map(key, cold.violations)) \
        == sorted(map(key, warm.violations)) \
        == sorted(map(key, plain.violations))
    assert len(cold.violations) == 3


# -- baseline pruning ---------------------------------------------------------

def test_baseline_prune_drops_stale_and_clamps_counts():
    result = lint_fixture("xmod_sch_bad", rules=("SCH001",))
    baseline = Baseline.from_violations(result.violations)
    baseline.entries.append(BaselineEntry(
        rule="SCH001", path="xmod_sch_bad/gone.py",
        symbol="vanished", snippet="x = 1",
    ))
    # Inflate one real entry's count: pruning must clamp it back.
    baseline.entries[0] = BaselineEntry(
        rule=baseline.entries[0].rule,
        path=baseline.entries[0].path,
        symbol=baseline.entries[0].symbol,
        snippet=baseline.entries[0].snippet,
        count=baseline.entries[0].count + 7,
    )
    pruned = baseline.pruned(result.violations)
    assert [e.key for e in pruned.entries] \
        == [e.key for e in baseline.entries[:-1]]
    assert sum(e.count for e in pruned.entries) == len(result.violations)
    # Pruning is idempotent and only ever tightens.
    again = pruned.pruned(result.violations)
    assert [
        (e.key, e.count) for e in again.entries
    ] == [
        (e.key, e.count) for e in pruned.entries
    ]
    outcome = pruned.apply(result.violations)
    assert outcome.new == [] and outcome.stale == []


def test_baseline_prune_never_adds_entries():
    result = lint_fixture("xmod_sch_bad", rules=("SCH001",))
    empty = Baseline([])
    assert empty.pruned(result.violations).entries == []
