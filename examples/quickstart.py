#!/usr/bin/env python3
"""Quickstart: run the paper's balanced Byzantine agreement end to end.

Runs pi_ba (Fig. 3) at n = 64 with both SRDS constructions, a sixth of
the parties Byzantine, and prints the headline numbers: agreement,
validity, certificate size, and — the point of the paper — max and mean
communication per party and their ratio (imbalance).

Usage::

    python examples/quickstart.py [n]
"""

import sys

from repro import ProtocolParameters, run_balanced_ba
from repro.analysis.tables import format_bits
from repro.net.adversary import random_corruption
from repro.srds.base_sigs import HashRegistryBase
from repro.srds.owf import OwfSRDS
from repro.srds.snark_based import SnarkSRDS
from repro.utils.randomness import Randomness


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    params = ProtocolParameters()
    rng = Randomness(2021)  # the paper's year, why not

    t = params.max_corruptions(n)
    plan = random_corruption(n, t, rng.fork("corruption"))
    inputs = {i: i % 2 for i in range(n)}  # split inputs: hardest case

    print(f"pi_ba with n={n}, t={t} Byzantine parties, split inputs\n")

    schemes = [
        ("SNARK-based SRDS (bare PKI + CRS)",
         SnarkSRDS(base_scheme=HashRegistryBase())),
        ("OWF-based SRDS (trusted PKI)",
         OwfSRDS(message_bits=64)),
    ]
    for label, scheme in schemes:
        result = run_balanced_ba(
            inputs, plan, scheme, params, rng.fork(label)
        )
        metrics = result.metrics
        print(f"--- {label} ---")
        print(f"  agreement reached:      {result.agreement}")
        print(f"  validity (vacuous here):{result.validity}")
        print(f"  agreed value:           {result.agreed_value}")
        print(f"  certificate size:       {result.certificate_bytes:,} bytes")
        print(f"  virtual identities:     {result.num_virtual:,}")
        print(f"  supreme committee:      {result.supreme_committee_size}")
        print(f"  isolated before boost:  {result.isolated_before_boost}")
        print(f"  max bits per party:     {format_bits(metrics.max_bits_per_party)}")
        print(f"  mean bits per party:    {format_bits(metrics.mean_bits_per_party)}")
        print(f"  imbalance (max/mean):   {metrics.imbalance:.2f}")
        print(f"  max locality (peers):   {metrics.max_locality}")
        print()

    print("Both runs agree on the same bit with balanced per-party cost;")
    print("compare examples/srds_certificates.py for the certificate-size")
    print("story and benchmarks/ for the full Table-1 scaling sweep.")


if __name__ == "__main__":
    main()
