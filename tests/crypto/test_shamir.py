"""Tests for Shamir secret sharing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import shamir
from repro.errors import SecretSharingError
from repro.fields.prime_field import PrimeField
from repro.utils.randomness import Randomness

PRIME = 10007


@pytest.fixture
def field():
    return PrimeField(PRIME)


class TestDealReconstruct:
    def test_exact_threshold_reconstructs(self, field, rng):
        shares = shamir.deal(field, 42, 7, 3, rng)
        assert shamir.reconstruct(field, shares[:4]) == field.element(42)

    def test_any_subset_reconstructs(self, field, rng):
        shares = shamir.deal(field, 42, 7, 2, rng)
        assert shamir.reconstruct(field, [shares[1], shares[4], shares[6]]) == 42

    def test_all_shares_reconstruct(self, field, rng):
        shares = shamir.deal(field, 999, 5, 2, rng)
        assert shamir.reconstruct(field, shares) == field.element(999)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=PRIME - 1),
           st.integers(min_value=2, max_value=10),
           st.data())
    def test_roundtrip_property(self, secret, num_shares, data):
        threshold = data.draw(st.integers(min_value=0, max_value=num_shares - 1))
        field = PrimeField(PRIME)
        rng = Randomness(7)
        shares = shamir.deal(field, secret, num_shares, threshold, rng)
        subset = shares[: threshold + 1]
        assert shamir.reconstruct(field, subset) == field.element(secret)

    def test_threshold_many_shares_insufficient(self, field, rng):
        # With only `threshold` shares, every candidate secret remains
        # equally consistent: interpolation just yields *a* value, which
        # should (almost surely) not be the secret for random polys.
        mismatches = 0
        for trial in range(20):
            shares = shamir.deal(field, 77, 6, 3, rng.fork(f"t{trial}"))
            guess = shamir.reconstruct(field, shares[:3])
            if guess != field.element(77):
                mismatches += 1
        assert mismatches >= 18

    def test_zero_threshold_constant_sharing(self, field, rng):
        shares = shamir.deal(field, 5, 4, 0, rng)
        assert all(share.y == field.element(5) for share in shares)


class TestValidation:
    def test_bad_threshold_rejected(self, field, rng):
        with pytest.raises(SecretSharingError):
            shamir.deal(field, 1, 5, 5, rng)
        with pytest.raises(SecretSharingError):
            shamir.deal(field, 1, 5, -1, rng)

    def test_empty_reconstruction_rejected(self, field):
        with pytest.raises(SecretSharingError):
            shamir.reconstruct(field, [])

    def test_deal_with_polynomial_consistency(self, field, rng):
        shares, polynomial = shamir.deal_with_polynomial(field, 13, 5, 2, rng)
        for share in shares:
            assert polynomial.evaluate(share.x) == share.y
        assert polynomial.evaluate(0) == field.element(13)
