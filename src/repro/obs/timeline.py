"""Chrome trace-event export: runtime traces + phase spans → Perfetto.

Converts :class:`~repro.runtime.trace.TraceRecorder` streams (or trace
directories of ``party-<id>.jsonl`` files) plus
:class:`~repro.obs.spans.SpanLog` intervals into the Chrome trace-event
JSON format (the ``{"traceEvents": [...]}`` object form), which loads
directly in https://ui.perfetto.dev and ``chrome://tracing``.

Track layout:

* one process per party (``pid = party id + 1``, named ``party-<id>``)
  with a single thread carrying that party's events: each round barrier
  becomes a complete ``"X"`` slice spanning the round (args: queue
  depth), and ``send``/``recv``/``drop``/``crash``/``halt`` become
  instant ``"i"`` events nested inside it;
* one ``protocol-phases`` process (``pid = 0``) whose thread holds the
  phase spans as nested ``"X"`` slices (depth from the span stack), so
  the §3.1 phase decomposition is visible at a glance.

Determinism contract (mirrors ``trace.py``'s ``clock=None``): when the
source events carry no ``wall`` stamps — or ``deterministic=True`` is
forced — timestamps are derived purely from logical coordinates
(``round``/``seq`` for events, log ticks for spans), so two runs with
the same seed export byte-identical JSON.  With wall stamps present and
``deterministic=False``, real microsecond timestamps are used instead.

This module deliberately imports nothing from the rest of the repo: it
consumes plain event dicts (anything with the trace schema) and
duck-typed recorders (``party_ids`` + ``events_of``).
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

#: Logical microseconds allotted to one round (deterministic mode).
ROUND_TICKS = 1_000
#: Logical microseconds allotted to one span tick (deterministic mode).
SPAN_TICKS = 1_000

_PARTY_FILE = re.compile(r"^party-(\d+)\.jsonl$")

#: Phases-track process id; parties are ``pid = party + 1``.
PHASES_PID = 0

EventMap = Mapping[int, Sequence[Dict[str, Any]]]


def _events_by_party(source: Union[EventMap, Any]) -> Dict[int, List[Dict[str, Any]]]:
    """Normalize a TraceRecorder-like object or mapping to a plain dict."""
    if hasattr(source, "party_ids") and hasattr(source, "events_of"):
        return {
            party: list(source.events_of(party)) for party in source.party_ids
        }
    return {int(party): list(events) for party, events in dict(source).items()}


def load_trace_dir(directory: Union[str, Path]) -> Dict[int, List[Dict[str, Any]]]:
    """Read every ``party-<id>.jsonl`` file in a trace directory."""
    directory = Path(directory)
    parties: Dict[int, List[Dict[str, Any]]] = {}
    for path in sorted(directory.iterdir()):
        match = _PARTY_FILE.match(path.name)
        if not match:
            continue
        events = []
        for line in path.read_text(encoding="utf-8").splitlines():
            if line.strip():
                events.append(json.loads(line))
        parties[int(match.group(1))] = events
    return parties


def _use_wall(events_by_party: Dict[int, List[Dict[str, Any]]],
              deterministic: Optional[bool]) -> bool:
    if deterministic is True:
        return False
    has_wall = any(
        "wall" in event
        for events in events_by_party.values()
        for event in events
    )
    if deterministic is False and not has_wall:
        raise ValueError(
            "deterministic=False requires wall-stamped events "
            "(record with a clock)"
        )
    return has_wall and deterministic is False


def _logical_ts(event: Dict[str, Any]) -> int:
    return int(event.get("round", 0)) * ROUND_TICKS + int(event.get("seq", 0))


def timeline_events(
    trace: Union[EventMap, Any, None] = None,
    spans: Optional[Any] = None,
    *,
    deterministic: Optional[bool] = None,
) -> List[Dict[str, Any]]:
    """Build the ``traceEvents`` list for a trace and/or a span log.

    ``trace`` is a :class:`TraceRecorder`-like object or a mapping of
    party id → event dicts; ``spans`` is a
    :class:`~repro.obs.spans.SpanLog`.  ``deterministic=None`` (default)
    auto-detects: wall-stamped inputs get wall timestamps only when
    ``deterministic=False`` is passed explicitly, so the default output
    is always reproducible.
    """
    events_by_party = _events_by_party(trace) if trace is not None else {}
    use_wall = _use_wall(events_by_party, deterministic)
    wall_zero = None
    if use_wall:
        walls = [
            event["wall"]
            for events in events_by_party.values()
            for event in events
            if "wall" in event
        ]
        wall_zero = min(walls) if walls else 0.0

    out: List[Dict[str, Any]] = []

    # -- metadata: name the tracks -------------------------------------------
    if spans is not None and getattr(spans, "records", None):
        out.append(_meta(PHASES_PID, "process_name", "protocol-phases"))
        out.append(_meta(PHASES_PID, "process_sort_index", 0))
    for party in sorted(events_by_party):
        out.append(_meta(party + 1, "process_name", f"party-{party}"))
        out.append(_meta(party + 1, "process_sort_index", party + 1))

    # -- per-party tracks ----------------------------------------------------
    for party in sorted(events_by_party):
        out.extend(
            _party_track(
                party, events_by_party[party], use_wall, wall_zero
            )
        )

    # -- the phases track ----------------------------------------------------
    if spans is not None:
        out.extend(_span_track(spans, use_wall))
    return out


def _meta(pid: int, name: str, value: Any) -> Dict[str, Any]:
    key = "sort_index" if name.endswith("sort_index") else "name"
    return {
        "ph": "M", "pid": pid, "tid": 0, "name": name,
        "args": {key: value},
    }


def _ts_of(event: Dict[str, Any], use_wall: bool,
           wall_zero: Optional[float]) -> int:
    if use_wall and "wall" in event:
        return int(round((event["wall"] - (wall_zero or 0.0)) * 1_000_000))
    return _logical_ts(event)


def _party_track(
    party: int,
    events: Sequence[Dict[str, Any]],
    use_wall: bool,
    wall_zero: Optional[float],
) -> List[Dict[str, Any]]:
    pid = party + 1
    out: List[Dict[str, Any]] = []
    barriers = [e for e in events if e.get("kind") == "round-barrier"]
    barrier_ts = [_ts_of(e, use_wall, wall_zero) for e in barriers]
    for index, event in enumerate(barriers):
        start = barrier_ts[index]
        end = (
            barrier_ts[index + 1]
            if index + 1 < len(barrier_ts)
            else start + ROUND_TICKS
        )
        out.append({
            "ph": "X",
            "pid": pid,
            "tid": 0,
            "name": f"round-{event.get('round', index)}",
            "cat": "round",
            "ts": start,
            "dur": max(end - start, 1),
            "args": {"queue_depth": event.get("queue_depth", 0)},
        })
    for event in events:
        kind = event.get("kind")
        if kind == "round-barrier":
            continue
        args = {
            key: value
            for key, value in event.items()
            if key not in ("party", "kind", "wall")
        }
        out.append({
            "ph": "i",
            "pid": pid,
            "tid": 0,
            "name": str(kind),
            "cat": "event",
            "ts": _ts_of(event, use_wall, wall_zero),
            "s": "t",
            "args": args,
        })
    return out


def _span_track(spans: Any, use_wall: bool) -> List[Dict[str, Any]]:
    out: List[Dict[str, Any]] = []
    for record in spans.records:
        if record.end_tick is None:
            continue  # still open: nothing to draw
        if use_wall and record.start_wall is not None and (
            record.end_wall is not None
        ):
            ts = int(round(record.start_wall * 1_000_000))
            dur = max(
                int(round((record.end_wall - record.start_wall) * 1_000_000)),
                1,
            )
        else:
            ts = record.start_tick * SPAN_TICKS
            dur = max((record.end_tick - record.start_tick) * SPAN_TICKS, 1)
        args: Dict[str, Any] = {"path": record.path, "depth": record.depth}
        args.update(record.attrs)
        out.append({
            "ph": "X",
            "pid": PHASES_PID,
            "tid": 0,
            "name": record.name,
            "cat": "phase",
            "ts": ts,
            "dur": dur,
            "args": args,
        })
    return out


def export_chrome_trace(
    path: Union[str, Path],
    trace: Union[EventMap, Any, None] = None,
    spans: Optional[Any] = None,
    *,
    deterministic: Optional[bool] = None,
) -> Path:
    """Write a Perfetto-loadable Chrome trace JSON file; returns the path."""
    events = timeline_events(trace, spans, deterministic=deterministic)
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs.timeline"},
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n",
        encoding="utf-8",
    )
    return path


_VALID_PHASES = {"X", "i", "M", "B", "E", "C"}


def validate_trace_events(events: Sequence[Dict[str, Any]]) -> None:
    """Check the minimal trace-event schema; raises ``ValueError``.

    Perfetto's JSON importer requires ``ph`` and ``pid`` on every event,
    ``ts`` (a number) on non-metadata events, and ``dur >= 0`` on
    complete events.  This is the subset of the spec our exporter uses.
    """
    for index, event in enumerate(events):
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            raise ValueError(f"event {index}: bad ph {phase!r}")
        if not isinstance(event.get("pid"), int):
            raise ValueError(f"event {index}: missing integer pid")
        if phase == "M":
            if "name" not in event:
                raise ValueError(f"event {index}: metadata without name")
            continue
        if not isinstance(event.get("ts"), (int, float)):
            raise ValueError(f"event {index}: missing numeric ts")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                raise ValueError(f"event {index}: X event needs dur >= 0")
        if phase == "i" and event.get("s") not in ("t", "p", "g"):
            raise ValueError(f"event {index}: instant event needs scope")
