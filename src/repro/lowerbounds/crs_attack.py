"""Empirical companion to Theorem 1.3: no single-shot boost in the CRS model.

The theorem: there is no single-round protocol boosting almost-everywhere
agreement to full agreement in the common-random-string model where every
party sends o(n) messages — even with dynamic message filtering.

This module makes the *attack* from the proof sketch executable against a
concrete family of candidate protocols.  The candidate
(:func:`run_candidate_boost`) is the natural one: every certified party
sends ``(value, certificate)`` to a random polylog subset, where — lacking
private setup — the certificate can only be computed from the CRS and the
protocol transcript, both of which the adversary also knows.  The attack
(:class:`SimulationAttack`) exploits exactly that: the adversary's t
parties simulate an alternate execution with the flipped value, producing
messages that are *distributionally identical* to honest ones from the
isolated victim's point of view.  Whatever (dynamic!) filter the victim
applies treats both message populations alike, so its decision cannot be
correct in both worlds — we measure its error over many trials.

Contrast: with a PKI (pi_ba steps 7-8), honest messages carry SRDS
certificates the adversary cannot simulate, and the same experiment shows
the victim deciding correctly — the separation the paper's Table 1 rows
encode (crs row: lower bound; pki rows: protocols).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.crypto.hashing import hash_domain
from repro.crypto.prf import prf
from repro.utils.randomness import Randomness
from repro.utils.serialization import encode_uint


@dataclass(frozen=True)
class BoostMessage:
    """One message of the candidate single-round boost protocol."""

    claimed_sender: int
    value: int
    certificate: bytes


@dataclass(frozen=True)
class AttackOutcome:
    """Result of one attack trial."""

    victim_decided: Optional[int]
    true_value: int
    victim_correct: bool
    honest_messages_received: int
    adversarial_messages_received: int


def crs_certificate(crs: bytes, sender: int, value: int) -> bytes:
    """The best a CRS-model protocol can attach: a public-coin tag.

    Any function of (CRS, sender id, value) is computable by the
    adversary too — that is the crux of Thm 1.3.
    """
    return hash_domain("crs-boost/cert", crs, encode_uint(sender),
                       encode_uint(value))


def pki_certificate(secret_key: bytes, sender: int, value: int) -> bytes:
    """With private setup, the tag binds to a secret the adversary lacks."""
    return prf(secret_key, "pki-boost/cert", encode_uint(sender),
               encode_uint(value))


def run_crs_attack_trial(
    n: int,
    t: int,
    messages_per_party: int,
    rng: Randomness,
) -> AttackOutcome:
    """One trial of the simulation attack in the CRS model.

    The victim is an isolated honest party.  Honest senders whose random
    recipient sets include the victim deliver correctly certified
    messages for the true value y; the adversary's t parties target the
    victim directly with *perfectly simulated* messages for 1 - y,
    impersonating honest-looking senders (identities are free without a
    PKI: the adversary claims plausible sender ids, and an isolated party
    has no basis to distrust them).  The victim applies the natural
    dynamic filter — verify the CRS certificate — and decides by
    majority of surviving messages.  With the adversary sending at least
    as many valid messages as honest chance delivers, the victim errs
    with constant probability.
    """
    crs = rng.random_bytes(32)
    true_value = rng.random_bit()
    victim = n - 1

    inbox: List[BoostMessage] = []
    honest_count = 0
    # Honest senders: each certified party sends to `messages_per_party`
    # random recipients; only those hitting the victim matter.
    num_honest = n - t - 1
    for sender in range(num_honest):
        recipients = rng.sample(range(n), min(n, messages_per_party))
        if victim in recipients:
            inbox.append(
                BoostMessage(
                    claimed_sender=sender,
                    value=true_value,
                    certificate=crs_certificate(crs, sender, true_value),
                )
            )
            honest_count += 1

    # Adversary: each corrupt party spends its whole o(n) budget on the
    # victim, simulating honest senders of the flipped value.  It fakes
    # sender identities the victim has not heard from.
    flipped = 1 - true_value
    adversarial_count = 0
    fake_sender = 0
    for _ in range(t * messages_per_party):
        if adversarial_count >= honest_count + messages_per_party:
            break  # No need to overshoot: parity already guarantees a coin flip.
        inbox.append(
            BoostMessage(
                claimed_sender=fake_sender,
                value=flipped,
                certificate=crs_certificate(crs, fake_sender, flipped),
            )
        )
        fake_sender = (fake_sender + 1) % max(1, num_honest)
        adversarial_count += 1

    decided = _victim_decide(inbox, crs)
    return AttackOutcome(
        victim_decided=decided,
        true_value=true_value,
        victim_correct=decided == true_value,
        honest_messages_received=honest_count,
        adversarial_messages_received=adversarial_count,
    )


def _victim_decide(inbox: List[BoostMessage], crs: bytes) -> Optional[int]:
    """The victim's dynamic filter + majority decision."""
    votes = {0: 0, 1: 0}
    seen_senders = set()
    for message in inbox:
        if (message.claimed_sender, message.value) in seen_senders:
            continue
        expected = crs_certificate(crs, message.claimed_sender, message.value)
        if message.certificate != expected:
            continue  # Dynamic filtering: drop invalid certificates.
        seen_senders.add((message.claimed_sender, message.value))
        votes[message.value] += 1
    if votes[0] == votes[1] == 0:
        return None
    if votes[0] == votes[1]:
        return 0  # Deterministic tie-break; either way errs half the time.
    return 0 if votes[0] > votes[1] else 1


def run_pki_control_trial(
    n: int,
    t: int,
    messages_per_party: int,
    rng: Randomness,
) -> AttackOutcome:
    """The control experiment: same attack against the SRDS-style boost.

    With private-coin setup, honest messages carry an unforgeable
    majority certificate for the true value (in pi_ba: the SRDS root
    aggregate, here modeled by a PRF tag under a key the adversary does
    not hold — the honest majority's joint signing power).  The victim's
    dynamic filter accepts *any single* message with a valid certificate
    (step 8 of Fig. 3), so the adversary's flood of flipped-value
    messages is discarded wholesale and one honest delivery suffices.
    """
    true_value = rng.random_bit()
    victim = n - 1
    # The honest majority's certification capability: a secret no
    # t < n/3 coalition can reconstruct.
    certification_key = rng.random_bytes(32)

    inbox: List[BoostMessage] = []
    honest_count = 0
    num_honest = n - t - 1
    for sender in range(num_honest):
        recipients = rng.sample(range(n), min(n, messages_per_party))
        if victim in recipients:
            inbox.append(
                BoostMessage(
                    claimed_sender=sender,
                    value=true_value,
                    certificate=pki_certificate(
                        certification_key, sender, true_value
                    ),
                )
            )
            honest_count += 1

    flipped = 1 - true_value
    adversarial_count = 0
    for index in range(t * messages_per_party):
        # Without the certification key the best the adversary can do is
        # guess tags (or replay true-value certificates, which carry the
        # wrong value and only help the victim).
        inbox.append(
            BoostMessage(
                claimed_sender=index % n,
                value=flipped,
                certificate=rng.random_bytes(32),
            )
        )
        adversarial_count += 1
        if adversarial_count >= 3 * max(1, messages_per_party):
            break

    decided: Optional[int] = None
    for message in inbox:
        expected = pki_certificate(
            certification_key, message.claimed_sender, message.value
        )
        if message.certificate == expected:
            decided = message.value
            break
    return AttackOutcome(
        victim_decided=decided,
        true_value=true_value,
        victim_correct=decided == true_value,
        honest_messages_received=honest_count,
        adversarial_messages_received=adversarial_count,
    )


def attack_success_rate(
    n: int,
    t: int,
    messages_per_party: int,
    trials: int,
    rng: Randomness,
    with_pki: bool = False,
) -> float:
    """Fraction of trials in which the isolated victim errs (or hangs)."""
    runner = run_pki_control_trial if with_pki else run_crs_attack_trial
    failures = 0
    for trial in range(trials):
        outcome = runner(n, t, messages_per_party, rng.fork(f"trial-{trial}"))
        if not outcome.victim_correct:
            failures += 1
    return failures / trials
