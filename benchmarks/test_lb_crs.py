"""E2 — Thm 1.3: no single-round o(n)-message boost in the CRS model.

Sweeps the per-party message budget and measures the isolated victim's
error rate under the simulation attack, in the CRS model and in the
PKI/SRDS control.  The theorem's shape: error stays bounded away from 0
for every o(n) budget without private setup, and collapses to ~0 with
it.
"""

import pytest

from benchmarks.conftest import write_result
from repro.lowerbounds.crs_attack import attack_success_rate
from repro.utils.randomness import Randomness

N, T, TRIALS = 200, 30, 40
BUDGETS = [2, 4, 8, 16, 32, 64]


def _sweep():
    rng = Randomness(17)
    crs = [
        attack_success_rate(N, T, budget, TRIALS, rng.fork(f"c{budget}"))
        for budget in BUDGETS
    ]
    pki = [
        attack_success_rate(N, T, budget, TRIALS, rng.fork(f"p{budget}"),
                            with_pki=True)
        for budget in BUDGETS
    ]
    return crs, pki


@pytest.mark.benchmark(group="lowerbounds")
def test_crs_lower_bound(benchmark, results_dir):
    crs, pki = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    lines = [
        f"E2 — single-round boost attack, n={N}, t={T}, {TRIALS} trials:",
        f"{'msgs/party':>11} {'CRS victim error':>17} {'PKI victim error':>17}",
    ]
    for budget, crs_rate, pki_rate in zip(BUDGETS, crs, pki):
        lines.append(f"{budget:>11} {crs_rate:>16.0%} {pki_rate:>16.0%}")
    write_result(results_dir, "lb_crs", "\n".join(lines))

    # Thm 1.3 shape: CRS-model error is large at every o(n) budget...
    for budget, rate in zip(BUDGETS, crs):
        assert rate >= 0.4, f"CRS attack too weak at budget {budget}"
    # ...while private setup collapses it (one honest certified message
    # suffices; only the tiniest budgets may fail to deliver any).
    for budget, rate in zip(BUDGETS[1:], pki[1:]):
        assert rate <= 0.15, f"PKI control failed at budget {budget}"
