"""Executable §1.2 "Connections to succinct arguments".

* :mod:`repro.snarg_connection.subset_problems` — the NP-complete group
  subset family (generalizing Subset-Sum / Subset-Product), with
  average-case planted instance sampling and an exact small-instance
  solver.
* :mod:`repro.snarg_connection.multisig_link` — the two-way link: the
  natural multisig-plus-count-proof SRDS candidate consumes a subset
  SNARG, and any succinct count-certifier yields an average-case subset
  SNARG back (the paper's barrier, as code).
"""

from repro.snarg_connection.multisig_link import (
    CountCertificate,
    CountCertifiedMultisig,
    SubsetSnarg,
    register_subset_relation,
    snarg_for_subset_from_certifier,
)
from repro.snarg_connection.subset_problems import (
    AdditiveGroup,
    MultiplicativeGroup,
    SubsetInstance,
    XorGroup,
    sample_planted_instance,
    solve_brute_force,
)

__all__ = [
    "AdditiveGroup",
    "CountCertificate",
    "CountCertifiedMultisig",
    "MultiplicativeGroup",
    "SubsetInstance",
    "SubsetSnarg",
    "XorGroup",
    "register_subset_relation",
    "sample_planted_instance",
    "snarg_for_subset_from_certifier",
    "solve_brute_force",
]
