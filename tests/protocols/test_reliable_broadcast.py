"""Tests for Bracha reliable broadcast."""

import pytest

from repro.errors import ConfigurationError
from repro.protocols.reliable_broadcast import run_bracha


class TestHonestSender:
    def test_all_deliver_sender_value(self):
        outputs, _ = run_bracha(range(7), sender=2, value=1)
        assert set(outputs.values()) == {1}

    def test_with_silent_byzantine(self):
        outputs, _ = run_bracha(range(10), sender=0, value=1,
                                byzantine=[3, 6, 9])
        assert set(outputs.values()) == {1}

    def test_silent_sender_times_out(self):
        outputs, _ = run_bracha(range(7), sender=2, value=1,
                                byzantine=[2])
        assert set(outputs.values()) == {None}

    def test_sender_must_be_member(self):
        with pytest.raises(ConfigurationError):
            run_bracha(range(5), sender=8, value=1)

    def test_too_many_byzantine_rejected(self):
        with pytest.raises(ConfigurationError):
            run_bracha(range(6), sender=0, value=1, byzantine=[1, 2, 3])


class TestEquivocatingSender:
    def test_agreement_despite_equivocation(self):
        outputs, _ = run_bracha(
            range(7), sender=3, value=1, equivocating_sender=True
        )
        delivered = set(outputs.values())
        # Totality + agreement: all honest deliver the same thing
        # (possibly None if no echo quorum formed for either value).
        assert len(delivered) == 1


class TestCosts:
    def test_quadratic_total(self):
        _, small = run_bracha(range(6), sender=0, value=1)
        _, large = run_bracha(range(12), sender=0, value=1)
        assert large.total_bits > 3 * small.total_bits

    def test_constant_rounds(self):
        _, metrics = run_bracha(range(9), sender=0, value=1)
        assert metrics.rounds_completed <= 8
