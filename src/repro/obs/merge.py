"""Cross-process timeline merging — one Perfetto view per run.

A cluster run produces span intervals in three places: the supervisor's
own round spans, each worker's per-round span digests (shipped home in
``done`` blobs and rebuilt with
:func:`~repro.obs.spans.span_from_wire`), and — when a gateway is in
the picture — the sessions track of its
:class:`~repro.serve.sessions.SessionManager`.  This module merges any
number of such *tracks* into a single Chrome trace-event document:

* each track becomes one process (``pid`` assigned in sorted track-name
  order, so the layout is deterministic), named after the track and
  labeled with the run's trace id — every track of one run shares that
  one id;
* every closed span interval becomes a complete ``"X"`` slice; under
  the ``clock=None`` contract the slices are positioned purely from
  logical ticks, so two seeded runs export **byte-identical** JSON.

The on-disk interchange is a *span directory*: ``merge-meta.json``
(schema + trace id + track list) next to one ``spans-<track>.jsonl``
file per track, each line a :func:`~repro.obs.spans.span_to_wire` row.
``python -m repro obs merge`` consumes such a directory (the cluster
CLI's ``--spans-dir`` writes one) and emits the merged timeline.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.obs.spans import SpanRecord, span_from_wire, span_to_wire
from repro.obs.timeline import SPAN_TICKS

#: Schema tag of ``merge-meta.json`` in a span directory.
SPAN_DIR_SCHEMA = "repro-span-dir/1"

#: Metadata file name inside a span directory.
META_FILE = "merge-meta.json"

_TRACK_FILE = re.compile(r"^spans-(?P<track>[A-Za-z0-9_.-]+)\.jsonl$")

#: Track name → ordered span records.
TrackMap = Dict[str, List[SpanRecord]]


def dump_span_dir(
    directory: Union[str, Path], trace_id: str, tracks: TrackMap
) -> Path:
    """Write one span directory (meta + one JSONL per track)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    names = sorted(tracks)
    for name in names:
        if not _TRACK_FILE.match(f"spans-{name}.jsonl"):
            raise ConfigurationError(
                f"track name {name!r} is not filesystem-safe"
            )
        lines = [
            json.dumps(
                span_to_wire(record), sort_keys=True, separators=(",", ":")
            )
            for record in tracks[name]
        ]
        (directory / f"spans-{name}.jsonl").write_text(
            "".join(line + "\n" for line in lines), encoding="utf-8"
        )
    meta = {
        "schema": SPAN_DIR_SCHEMA,
        "trace_id": trace_id,
        "tracks": names,
    }
    (directory / META_FILE).write_text(
        json.dumps(meta, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    return directory


def load_span_dir(
    directory: Union[str, Path]
) -> Tuple[str, TrackMap]:
    """Read a span directory back; returns ``(trace_id, tracks)``.

    Tolerates a missing meta file (trace id defaults to ``""`` and the
    track list is discovered from the ``spans-*.jsonl`` files), so a
    hand-assembled directory still merges.
    """
    directory = Path(directory)
    trace_id = ""
    meta_path = directory / META_FILE
    if meta_path.exists():
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        if meta.get("schema") != SPAN_DIR_SCHEMA:
            raise ConfigurationError(
                f"{meta_path} is not a {SPAN_DIR_SCHEMA} span directory"
            )
        trace_id = str(meta.get("trace_id", ""))
    tracks: TrackMap = {}
    for path in sorted(directory.iterdir()):
        match = _TRACK_FILE.match(path.name)
        if not match:
            continue
        records: List[SpanRecord] = []
        for line in path.read_text(encoding="utf-8").splitlines():
            if line.strip():
                records.append(span_from_wire(json.loads(line)))
        tracks[match.group("track")] = records
    if not tracks:
        raise ConfigurationError(
            f"{directory} holds no spans-<track>.jsonl files"
        )
    return trace_id, tracks


def merged_timeline_events(
    tracks: TrackMap,
    trace_id: str = "",
    *,
    deterministic: Optional[bool] = None,
) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list for a merged multi-track timeline.

    ``deterministic=None`` (default) positions every slice from logical
    ticks — byte-identical across seeded runs.  ``deterministic=False``
    uses wall stamps where a record carries both ends (mixed tracks
    fall back to ticks per record).
    """
    use_wall = deterministic is False
    out: List[Dict[str, Any]] = []
    names = sorted(tracks)
    for pid, name in enumerate(names):
        out.append({
            "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
            "args": {"name": name},
        })
        out.append({
            "ph": "M", "pid": pid, "tid": 0, "name": "process_sort_index",
            "args": {"sort_index": pid},
        })
        if trace_id:
            out.append({
                "ph": "M", "pid": pid, "tid": 0, "name": "process_labels",
                "args": {"labels": trace_id},
            })
    for pid, name in enumerate(names):
        for record in tracks[name]:
            if record.end_tick is None:
                continue  # still open: nothing to draw
            if use_wall and record.start_wall is not None and (
                record.end_wall is not None
            ):
                ts = int(round(record.start_wall * 1_000_000))
                dur = max(int(round(
                    (record.end_wall - record.start_wall) * 1_000_000
                )), 1)
            else:
                ts = record.start_tick * SPAN_TICKS
                dur = max(
                    (record.end_tick - record.start_tick) * SPAN_TICKS, 1
                )
            args: Dict[str, Any] = {
                "path": record.path, "depth": record.depth,
            }
            if trace_id:
                args["trace_id"] = trace_id
            args.update(record.attrs)
            out.append({
                "ph": "X",
                "pid": pid,
                "tid": 0,
                "name": record.name,
                "cat": "span",
                "ts": ts,
                "dur": dur,
                "args": args,
            })
    return out


def export_merged_trace(
    path: Union[str, Path],
    tracks: TrackMap,
    trace_id: str = "",
    *,
    deterministic: Optional[bool] = None,
) -> Path:
    """Write the merged Perfetto-loadable JSON; returns the path."""
    events = merged_timeline_events(
        tracks, trace_id, deterministic=deterministic
    )
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs.merge",
            "trace_id": trace_id,
        },
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n",
        encoding="utf-8",
    )
    return path


def cluster_tracks(result: Any) -> TrackMap:
    """The track map of one :class:`ClusterResult` (duck-typed).

    ``supervisor`` carries the supervisor's round spans; each worker's
    shipped digests appear as ``worker-<id>``.
    """
    tracks: TrackMap = {"supervisor": list(result.supervisor_spans)}
    for worker_id, records in sorted(result.worker_spans.items()):
        tracks[f"worker-{worker_id}"] = list(records)
    return tracks
