#!/usr/bin/env python3
"""Domain scenario: a private salary survey via scalable MPC.

Corollary 1.2(2): with the pi_ba communication graph plus threshold FHE,
n parties compute any function of their inputs with total communication
n * polylog(n) * poly(kappa) * (l_in + l_out) — no party ever sees
another's input in the clear.

This example runs an anonymous compensation survey over n employees:
each submits a salary band (one byte); the computed outputs are the
band histogram and the median band.  Corrupt parties may submit junk —
the protocol still terminates with every honest party holding the same
(correctly computed) result.

Usage::

    python examples/private_survey.py [n]
"""

import sys

from repro.analysis.tables import format_bits
from repro.net.adversary import random_corruption
from repro.params import ProtocolParameters
from repro.mpc.scalable_mpc import run_scalable_mpc
from repro.utils.randomness import Randomness

BANDS = 8


def survey_function(plaintexts):
    """Histogram over salary bands plus the median band."""
    histogram = [0] * BANDS
    for submission in plaintexts:
        band = submission[0] if submission else 0
        histogram[min(band, BANDS - 1)] += 1
    total = sum(histogram)
    running, median = 0, 0
    for band, count in enumerate(histogram):
        running += count
        if 2 * running >= total:
            median = band
            break
    return bytes(histogram[b] % 256 for b in range(BANDS)) + bytes([median])


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    params = ProtocolParameters()
    rng = Randomness(13)
    t = params.max_corruptions(n)
    plan = random_corruption(n, t, rng.fork("corruption"))

    # Honest employees report a band clustered around 3-5; corrupt
    # parties will try to poison with band 7.
    inputs = {
        i: bytes([3 + (i % 3)])
        for i in range(n)
    }
    print(f"Private salary survey: n={n} employees, {t} corrupt\n")

    result = run_scalable_mpc(
        inputs,
        survey_function,
        output_size=BANDS + 1,
        plan=plan,
        params=params,
        rng=rng.fork("run"),
        corrupt_input=lambda party, value: bytes([7]),  # poisoning attempt
    )

    histogram = list(result.expected_output[:BANDS])
    median = result.expected_output[BANDS]
    print("band  count")
    for band, count in enumerate(histogram):
        bar = "#" * count
        print(f"  {band}   {count:>4}  {bar}")
    print(f"\nmedian band: {median}")
    print(f"all honest parties agree on the result: "
          f"{result.all_honest_correct}")
    print(f"committee size: {result.committee_size}")
    print(f"total communication: {format_bits(result.metrics.total_bits)} "
          f"(~{format_bits(result.metrics.total_bits / n)}/party)")
    print("\nNo employee's band ever left their machine unencrypted; the")
    print("corrupt parties' poisoned inputs shift only their own survey")
    print("entries (input substitution is inherent to any MPC).")


if __name__ == "__main__":
    main()
