"""Comparison baselines for the Table-1 reproduction."""

from repro.protocols.baselines.boosts import (
    BoostResult,
    all_to_all_ba,
    central_party_boost,
    ks09_boost,
    sqrt_boost,
)
from repro.protocols.baselines.multisig import MultisigScheme, MultisigSignature

__all__ = [
    "BoostResult",
    "MultisigScheme",
    "MultisigSignature",
    "all_to_all_ba",
    "central_party_boost",
    "ks09_boost",
    "sqrt_boost",
]
