"""ASY001 negative fixture: retained tasks, awaited coroutines."""

import asyncio


async def pump() -> None:
    await asyncio.sleep(0)


class Endpoint:
    def __init__(self) -> None:
        self.pump_task = None

    async def start(self) -> None:
        self.pump_task = asyncio.create_task(pump())  # retained handle

    async def stop(self) -> None:
        if self.pump_task is not None:
            self.pump_task.cancel()
        await pump()  # awaited


async def gather_all() -> None:
    tasks = [asyncio.create_task(pump()) for _ in range(3)]  # retained
    await asyncio.gather(*tasks)
