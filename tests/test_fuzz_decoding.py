"""Fuzz tests: every wire decoder survives arbitrary bytes.

Adversaries control message payloads, so every decode path must either
return a well-typed object or raise a *library* exception — never an
unhandled crash — and every verifier must return ``False`` (not raise)
on garbage inputs.
"""

import pytest
from hypothesis import given, settings

from repro.errors import ReproError
from repro.utils.randomness import Randomness
from tests.strategies import garbage

LIBRARY_ERRORS = (ReproError, ValueError)

# Example counts and deadlines come from the active Hypothesis profile
# (``ci`` by default; see tests/conftest.py).
_fuzz = settings()


class TestSerializationDecoders:
    @_fuzz
    @given(data=garbage)
    def test_decode_uint(self, data):
        from repro.utils.serialization import decode_uint

        try:
            value, pos = decode_uint(data)
            assert value >= 0 and pos <= len(data)
        except LIBRARY_ERRORS:
            pass

    @_fuzz
    @given(data=garbage)
    def test_decode_bytes(self, data):
        from repro.utils.serialization import decode_bytes

        try:
            blob, pos = decode_bytes(data)
            assert pos <= len(data)
        except LIBRARY_ERRORS:
            pass

    @_fuzz
    @given(data=garbage)
    def test_decode_sequence(self, data):
        from repro.utils.serialization import decode_sequence

        try:
            items, pos = decode_sequence(data)
            assert pos <= len(data)
        except LIBRARY_ERRORS:
            pass


class TestClusterDecoders:
    @_fuzz
    @given(data=garbage)
    def test_mesh_chunk(self, data):
        from repro.cluster.meshwire import decode_chunk

        try:
            chunk = decode_chunk(data)
            assert chunk.num_chunks >= 1
            assert chunk.chunk_index < chunk.num_chunks
        except LIBRARY_ERRORS:
            pass

    @_fuzz
    @given(data=garbage)
    def test_mesh_train_body(self, data):
        from repro.cluster.meshwire import decode_train_body

        try:
            frames = decode_train_body(data)
            assert all(frame.bits() >= 0 for frame in frames)
        except LIBRARY_ERRORS:
            pass

    @_fuzz
    @given(data=garbage)
    def test_control_message(self, data):
        from repro.cluster.wire import Message

        try:
            message = Message.decode(data)
            assert message.kind
        except LIBRARY_ERRORS:
            pass


class TestCryptoDecoders:
    @_fuzz
    @given(data=garbage)
    def test_ec_point(self, data):
        from repro.crypto import ec

        try:
            point = ec.decode_point(data)
            assert ec.is_on_curve(point)
        except LIBRARY_ERRORS:
            pass

    @_fuzz
    @given(data=garbage)
    def test_schnorr_signature(self, data):
        from repro.crypto import schnorr

        try:
            schnorr.SchnorrSignature.decode(data)
        except LIBRARY_ERRORS:
            pass

    @_fuzz
    @given(data=garbage)
    def test_lamport_decoders(self, data):
        from repro.crypto import lamport

        try:
            lamport.decode_signature(data, 16)
        except LIBRARY_ERRORS:
            pass
        try:
            lamport.decode_verification_key(data, 16)
        except LIBRARY_ERRORS:
            pass

    @_fuzz
    @given(data=garbage)
    def test_winternitz_decoders(self, data):
        from repro.crypto import winternitz

        try:
            winternitz.decode_signature(data, 32, 4)
        except LIBRARY_ERRORS:
            pass

    @_fuzz
    @given(data=garbage)
    def test_merkle_signature(self, data):
        from repro.crypto import merkle_sig

        try:
            merkle_sig.MerkleSignature.decode(data)
        except LIBRARY_ERRORS:
            pass


class TestSrdsDecoders:
    @_fuzz
    @given(data=garbage)
    def test_owf_signature(self, data):
        from repro.srds.owf import decode_signature

        try:
            decoded = decode_signature(data)
            assert decoded.encode()  # decodable implies re-encodable
        except LIBRARY_ERRORS:
            pass

    @_fuzz
    @given(data=garbage)
    def test_snark_aggregate(self, data):
        from repro.srds.snark_based import decode_aggregate

        try:
            decode_aggregate(data)
        except LIBRARY_ERRORS:
            pass

    @_fuzz
    @given(data=garbage)
    def test_dolev_strong_chain(self, data):
        from repro.protocols.dolev_strong import SignatureChain

        try:
            SignatureChain.decode(data)
        except LIBRARY_ERRORS:
            pass


@pytest.fixture(scope="module")
def snark_deployment():
    from repro.srds.base_sigs import HashRegistryBase
    from repro.srds.snark_based import SnarkSRDS

    rng = Randomness(202)
    scheme = SnarkSRDS(base_scheme=HashRegistryBase())
    pp = scheme.setup(30, rng.fork("s"))
    vks = {}
    for i in range(30):
        vks[i], _ = scheme.keygen(pp, rng.fork(f"k{i}"))
    return scheme, pp, vks


class TestVerifiersNeverRaise:
    @_fuzz
    @given(data=garbage)
    def test_snark_verify_garbage_aggregate(self, snark_deployment, data):
        from repro.srds.snark_based import decode_aggregate

        scheme, pp, vks = snark_deployment
        try:
            aggregate = decode_aggregate(data)
        except LIBRARY_ERRORS:
            return
        assert scheme.verify(pp, vks, b"msg", aggregate) in (True, False)

    @_fuzz
    @given(data=garbage)
    def test_base_scheme_verify_garbage(self, data):
        from repro.srds.base_sigs import SchnorrBase

        scheme = SchnorrBase()
        assert scheme.verify(data, b"msg", data) is False

    @_fuzz
    @given(data=garbage)
    def test_owf_aggregate1_garbage_base(self, data):
        """Garbage OTS bytes inside a base signature are filtered, not
        fatal."""
        from repro.srds.owf import OwfBaseSignature, OwfSRDS

        scheme = OwfSRDS(message_bits=16, sortition_factor=1)
        pp = scheme.setup(16, Randomness(1))
        vks = {}
        for i in range(16):
            vks[i], _ = scheme.keygen(pp, Randomness(i + 2))
        bogus = OwfBaseSignature(index=3, ots_signature=data)
        assert scheme.aggregate1(pp, vks, b"m", [bogus]) == []
