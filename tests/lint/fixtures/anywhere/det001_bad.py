"""DET001 positive fixture: every line here draws unseeded randomness."""

import os
import random
import secrets
import uuid
from random import Random


def roll() -> int:
    return random.randint(0, 6)  # module-level global-state PRG


def entropy() -> bytes:
    return os.urandom(16)  # OS entropy: unreplayable


def token() -> str:
    return secrets.token_hex(8)


def ident() -> str:
    return str(uuid.uuid4())


def make_rng() -> Random:
    return Random()  # no seed argument


def sys_rng() -> random.SystemRandom:
    return random.SystemRandom()
