"""Public-key infrastructure models.

The paper distinguishes three PKI flavors (§1.2, §2.1):

* **trusted PKI** — keys are honestly generated (by the parties or a
  dealer); corrupted parties *cannot* replace their verification keys.
  The OWF-based SRDS lives here.
* **bare PKI** — every party locally generates its keys and publishes the
  verification key on a bulletin board; the adversary may corrupt parties
  *as a function of all public setup* and replace their keys arbitrarily.
  The SNARK-based SRDS lives here.
* **registered PKI** — like bare PKI, but publishing requires proving
  knowledge of the secret key (footnote 13).  Provided for completeness
  and for the SNARG-connection discussion.

The registry is the bulletin board: an append-only map from (virtual)
party id to verification-key bytes, with mutation rules enforced per
model.  The robustness/forgery experiments (Figs. 1–2) drive corruption
through :meth:`PKIRegistry.replace_key`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Set, Tuple

from repro.errors import PKIError


class PKIMode(enum.Enum):
    """Which trust model the registry enforces."""

    TRUSTED = "trusted-pki"
    BARE = "bare-pki"
    REGISTERED = "registered-pki"


@dataclass(frozen=True)
class CRS:
    """A common random string (public-coin setup).

    Both SRDS constructions may consume a CRS: the SNARK-based one uses it
    to seed the argument system; lower-bound experiments study the
    CRS-only model (Thm 1.3).
    """

    seed: bytes

    def size_bytes(self) -> int:
        """Wire size of the CRS."""
        return len(self.seed)


# A knowledge check for registered PKI: (verification_key, pop) -> bool,
# where pop is a proof-of-possession byte string.
KnowledgeCheck = Callable[[bytes, bytes], bool]


class PKIRegistry:
    """The bulletin board of verification keys for one protocol instance."""

    def __init__(
        self,
        mode: PKIMode,
        knowledge_check: Optional[KnowledgeCheck] = None,
    ) -> None:
        if mode is PKIMode.REGISTERED and knowledge_check is None:
            raise PKIError("registered PKI requires a knowledge check")
        self.mode = mode
        self._keys: Dict[int, bytes] = {}
        self._replaced: Set[int] = set()
        self._knowledge_check = knowledge_check

    # -- registration --------------------------------------------------------

    def register(self, party_id: int, verification_key: bytes,
                 proof_of_possession: bytes = b"") -> None:
        """Publish a party's verification key (setup phase).

        In registered mode the proof of possession is checked; duplicate
        registration is always an error (the board is append-only during
        setup).
        """
        if party_id in self._keys:
            raise PKIError(f"party {party_id} already registered a key")
        self._check_knowledge(verification_key, proof_of_possession)
        self._keys[party_id] = verification_key

    def replace_key(self, party_id: int, verification_key: bytes,
                    proof_of_possession: bytes = b"") -> None:
        """Adversarial key replacement for a corrupted party.

        Allowed only in bare and registered modes — in a trusted PKI the
        whole point is that corrupted parties cannot alter their keys
        (step A.4(b) of Fig. 1 applies only when ``mode = b-pki``).
        """
        if self.mode is PKIMode.TRUSTED:
            raise PKIError("trusted PKI forbids key replacement")
        if party_id not in self._keys:
            raise PKIError(f"party {party_id} has no registered key to replace")
        self._check_knowledge(verification_key, proof_of_possession)
        self._keys[party_id] = verification_key
        self._replaced.add(party_id)

    def _check_knowledge(self, verification_key: bytes, pop: bytes) -> None:
        if self.mode is PKIMode.REGISTERED:
            assert self._knowledge_check is not None
            if not self._knowledge_check(verification_key, pop):
                raise PKIError("proof of possession failed")

    # -- queries ---------------------------------------------------------------

    def key_of(self, party_id: int) -> bytes:
        """The currently published key of a party."""
        try:
            return self._keys[party_id]
        except KeyError as exc:
            raise PKIError(f"party {party_id} is not registered") from exc

    def has_key(self, party_id: int) -> bool:
        """Whether a party has published a key."""
        return party_id in self._keys

    def was_replaced(self, party_id: int) -> bool:
        """Whether a party's key was adversarially replaced."""
        return party_id in self._replaced

    def all_keys(self) -> Dict[int, bytes]:
        """A snapshot of the full bulletin board."""
        return dict(self._keys)

    def party_ids(self) -> Iterator[int]:
        """All registered (virtual) party ids, ascending."""
        return iter(sorted(self._keys))

    def __len__(self) -> int:
        return len(self._keys)

    def total_size_bytes(self) -> int:
        """Total size of all published keys (setup cost, not charged to
        per-party protocol communication — the paper's model makes the
        bulletin board part of setup)."""
        return sum(len(key) for key in self._keys.values())
