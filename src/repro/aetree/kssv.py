"""Election-driven tree construction (KSSV'06, simulated faithfully).

The default :func:`repro.aetree.tree.build_tree` samples committees with
external randomness — a clean functionality-level simulation.  This
module goes one level deeper and builds the tree the way King et al.'s
protocol actually does: *committees are elected*, bottom-up, with
Feige-style lightest-bin elections run among the (already-elected)
child committees' members, so the adversary's fraction provably cannot
grow much level over level.

The election at each node draws its electorate from the node's subtree
(its children's committee union), mirrorring KSSV's recursive structure:
honest majorities are preserved upward because each election's output
fraction tracks its electorate's fraction (the lightest-bin guarantee,
tested in :mod:`tests.protocols.test_election`).

The output is a standard :class:`~repro.aetree.tree.CommTree`, checked
by the same validators; a test compares its goodness statistics with the
sampled builder's.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.aetree.tree import CommTree, TreeNode, build_tree
from repro.errors import TreeError
from repro.net.adversary import CorruptionPlan
from repro.obs.spans import span
from repro.params import ProtocolParameters
from repro.protocols.election import run_lightest_bin
from repro.utils.randomness import Randomness


def build_tree_via_elections(
    n: int,
    params: ProtocolParameters,
    plan: CorruptionPlan,
    rng: Randomness,
    max_root_retries: int = 50,
) -> CommTree:
    """Build an (n, I)-tree with elected (not sampled) committees.

    The leaf layer and virtual-id ownership are constructed exactly as in
    :func:`build_tree` (they are data placement, not committee election);
    every internal committee is then the output of a lightest-bin
    election whose electorate is the union of the node's children's
    committees (for level 2: the leaf parties below it), against the
    *stacking* rushing adversary — the strongest standard strategy.

    The root election is retried (fresh election randomness, as KSSV's
    protocol effectively does by iterating) until 2/3-honest or
    ``max_root_retries`` is exhausted, mirroring the whp guarantee.
    """
    with span("kssv-tree-elections", n=n):
        skeleton = build_tree(n, params, rng.fork("skeleton"))
        committee_size = min(n, params.committee_size(n))

        for node in _nodes_bottom_up(skeleton):
            if node.is_leaf:
                continue
            electorate = _electorate_of(skeleton, node)
            node.committee = _elect_committee(
                electorate, plan, committee_size,
                rng.fork(f"elect-{node.node_id}"),
            )

        root = skeleton.nodes[skeleton.root_id]
        for attempt in range(max_root_retries):
            corrupt = sum(
                1 for member in root.committee if plan.is_corrupt(member)
            )
            if 3 * corrupt < len(root.committee):
                return skeleton
            electorate = _electorate_of(skeleton, root)
            root.committee = _elect_committee(
                electorate, plan, committee_size,
                rng.fork(f"root-retry-{attempt}"),
            )
    raise TreeError(
        "elections never produced a 2/3-honest root committee; the "
        "corruption budget violates the model"
    )


def _nodes_bottom_up(tree: CommTree) -> List[TreeNode]:
    return sorted(tree.nodes.values(), key=lambda node: node.level)


def _electorate_of(tree: CommTree, node: TreeNode) -> List[int]:
    members: List[int] = []
    seen = set()
    for child_id in node.children:
        for member in tree.nodes[child_id].committee:
            if member not in seen:
                seen.add(member)
                members.append(member)
    return members


def _elect_committee(
    electorate: Sequence[int],
    plan: CorruptionPlan,
    committee_size: int,
    rng: Randomness,
) -> tuple:
    """Run lightest-bin over the electorate; top up from re-runs if the
    winning bin is smaller than the target size."""
    if not electorate:
        raise TreeError("empty electorate for committee election")
    # Restrict the corruption plan to the electorate by relabeling.
    relabel = {party: index for index, party in enumerate(electorate)}
    local_plan = CorruptionPlan(
        corrupted=frozenset(
            relabel[party] for party in electorate if plan.is_corrupt(party)
        ),
        n=len(electorate),
    )
    chosen: List[int] = []
    chosen_set = set()
    attempt = 0
    while len(chosen) < min(committee_size, len(electorate)):
        result = run_lightest_bin(
            local_plan,
            min(committee_size, len(electorate)),
            rng.fork(f"bin-{attempt}"),
            adversary_strategy="stack",
        )
        attempt += 1
        for local_index in result.committee:
            party = electorate[local_index]
            if party not in chosen_set:
                chosen_set.add(party)
                chosen.append(party)
            if len(chosen) >= min(committee_size, len(electorate)):
                break
        if attempt > 20:
            # Tiny electorates can stall below the target; take everyone.
            for party in electorate:
                if party not in chosen_set:
                    chosen_set.add(party)
                    chosen.append(party)
            break
    return tuple(sorted(chosen))
