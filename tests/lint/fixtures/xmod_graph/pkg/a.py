"""Graph fixture: one half of a deliberate import cycle."""

from xmod_graph.pkg.b import helper


def alpha(x):
    return helper(x) + 1


def orphan():
    return 0
