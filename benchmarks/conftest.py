"""Shared fixtures and helpers for the benchmark harness.

Each benchmark module regenerates one table/figure/claim from the paper
(see the experiment index in DESIGN.md), asserts its *shape* (who wins,
by roughly what factor, where crossovers fall), and appends a
human-readable record to ``benchmarks/results/`` for EXPERIMENTS.md.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    """Directory where benchmark modules drop their measurement records."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist one experiment's record (and echo it to stdout)."""
    path = results_dir / f"{name}.txt"
    path.write_text(text, encoding="utf-8")
    print(f"\n[{name}]\n{text}")
