"""Fault schedules and the protocol matrix: composition invariants."""

import pytest

from repro.campaign.catalog import default_catalog
from repro.campaign.matrix import (
    config_by_name,
    default_matrix,
    enumerate_cells,
)
from repro.campaign.schedules import default_schedules, schedule_by_name
from repro.errors import ConfigurationError
from repro.net.adversary import random_corruption
from repro.params import ProtocolParameters
from repro.utils.randomness import Randomness


def _plan(n=16, t=2, seed=1):
    return random_corruption(n, t, Randomness(seed).fork("plan"))


class TestSchedules:
    def test_names_unique_and_lookup(self):
        schedules = default_schedules()
        names = [s.name for s in schedules]
        assert len(names) == len(set(names))
        for name in names:
            assert schedule_by_name(name).name == name

    def test_unknown_schedule_raises(self):
        with pytest.raises(ConfigurationError):
            schedule_by_name("gremlins")

    def test_baseline_builds_no_fault_plan(self):
        schedule = schedule_by_name("none")
        assert schedule.build(16, _plan(), Randomness(0)) is None

    def test_crash_corrupted_degenerates_without_corruption(self):
        schedule = schedule_by_name("crash-corrupted")
        empty = random_corruption(16, 0, Randomness(0))
        assert schedule.build(16, empty, Randomness(0)) is None

    def test_crash_corrupted_targets_only_corrupted(self):
        schedule = schedule_by_name("crash-corrupted")
        plan = _plan(t=3)
        fault_plan = schedule.build(16, plan, Randomness(2).fork("s"))
        assert fault_plan is not None
        assert set(fault_plan.crashes) <= plan.corrupted
        assert all(r <= 6 for r in fault_plan.crashes.values())

    def test_crash_everyone_is_total(self):
        schedule = schedule_by_name("crash-everyone")
        fault_plan = schedule.build(16, _plan(), Randomness(0))
        assert set(fault_plan.crashes) == set(range(16))
        assert set(fault_plan.crashes.values()) == {1}
        assert schedule.model_breaking

    def test_model_breaking_flags(self):
        flags = {
            s.name: s.model_breaking for s in default_schedules()
        }
        assert flags["random-delay"], (
            "late delivery exceeds the synchronous model"
        )
        assert flags["partition-early"]
        assert flags["crash-everyone"]
        assert not flags["none"]
        assert not flags["reorder"]
        assert not flags["crash-corrupted"]


class TestMatrix:
    def test_config_names_unique_and_lookup(self):
        matrix = default_matrix()
        names = [c.name for c in matrix]
        assert len(names) == len(set(names))
        for name in names:
            assert config_by_name(name).name == name

    def test_unknown_config_raises(self):
        with pytest.raises(ConfigurationError):
            config_by_name("pi_ba-quantum")

    def test_schedules_exist(self):
        for config in default_matrix():
            for schedule_name in config.schedules:
                schedule_by_name(schedule_name)  # must not raise

    def test_cells_are_consistent(self):
        catalog = default_catalog()
        for cell in enumerate_cells(0):
            strategy = catalog.get(cell.strategy_name)
            assert strategy.applies_to(cell.config.kind)
            assert cell.config.allows_schedule(cell.schedule_name)
            assert not strategy.expect_violation  # not without the flag

    def test_enumeration_deterministic(self):
        a = [c.spec for c in enumerate_cells(0)]
        b = [c.spec for c in enumerate_cells(0)]
        assert a == b

    def test_round_robin_prefix_touches_every_config(self):
        matrix = default_matrix()
        prefix = enumerate_cells(0)[: len(matrix)]
        assert {c.config.name for c in prefix} == {c.name for c in matrix}

    def test_include_planted_adds_cells(self):
        base = enumerate_cells(0)
        planted = enumerate_cells(0, include_planted=True)
        assert len(planted) > len(base)
        extra = {
            c.strategy_name for c in planted
        } - {c.strategy_name for c in base}
        assert extra == {"over-threshold"}

    def test_seed_propagates_to_specs(self):
        assert all(c.spec.seed == 42 for c in enumerate_cells(42))


class TestScheduleBuildersCompose:
    """Every (config, schedule) pair in the matrix can build its fault
    plan against a plausible corruption plan without raising."""

    def test_all_cells_build(self):
        params = ProtocolParameters()
        for cell in enumerate_cells(0, include_planted=True):
            schedule = schedule_by_name(cell.schedule_name)
            n = cell.config.n
            t = max(1, params.max_corruptions(n))
            plan = random_corruption(n, t, Randomness(5).fork(cell.spec.config))
            schedule.build(n, plan, Randomness(5).fork("sched"))
