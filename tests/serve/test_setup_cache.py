"""SetupCache: hit/miss accounting, LRU, and byte-identical material."""

import pytest

from repro.errors import GatewayError
from repro.obs.registry import MetricsRegistry
from repro.protocols.balanced_ba import compute_srds_setup
from repro.serve.setup_cache import SCHEME_LABELS, SetupCache, scheme_for
from repro.utils.randomness import Randomness


class TestSchemeFactory:
    @pytest.mark.parametrize("label", SCHEME_LABELS)
    def test_known_labels_construct(self, label):
        scheme = scheme_for(label)
        assert scheme is not scheme_for(label)  # fresh instance each call

    def test_unknown_label_rejected(self):
        with pytest.raises(GatewayError, match="unknown scheme label"):
            scheme_for("rsa")


class TestLeaseProvider:
    def test_first_use_misses_then_hits(self):
        cache = SetupCache()
        lease = cache.lease("snark-hash", 6, 11)
        rng = Randomness(11).fork("session").fork("srds")
        first = lease.provider(lease.scheme, 24, rng)
        second = lease.provider(lease.scheme, 24, rng)
        assert first is second
        assert (lease.misses, lease.hits) == (1, 1)
        assert (cache.misses, cache.hits) == (1, 1)

    def test_cached_material_matches_inline_computation(self):
        # The amortization's correctness claim: cache-served material is
        # byte-identical to what the session would have computed itself.
        cache = SetupCache()
        lease = cache.lease("snark-hash", 6, 11)
        rng_seed = Randomness(11).fork("x")
        cached = lease.provider(lease.scheme, 24, rng_seed)
        inline = compute_srds_setup(scheme_for("snark-hash"), 24,
                                    Randomness(11).fork("x"))
        assert cached.rng_seed == inline.rng_seed
        assert cached.verification_keys == inline.verification_keys

    def test_mismatched_run_parameters_recompute(self):
        cache = SetupCache()
        lease = cache.lease("snark-hash", 6, 11)
        rng = Randomness(11).fork("x")
        lease.provider(lease.scheme, 24, rng)
        lease.provider(lease.scheme, 48, rng)  # different num_virtual
        assert lease.misses == 2 and lease.hits == 0

    def test_leases_on_same_key_share_material(self):
        # The cross-session amortization: session 2 pays nothing.
        cache = SetupCache()
        rng = Randomness(3).fork("x")
        first = cache.lease("snark-hash", 6, 3)
        second = cache.lease("snark-hash", 6, 3)
        assert first.scheme is second.scheme
        material = first.provider(first.scheme, 24, rng)
        assert second.provider(second.scheme, 24, rng) is material
        assert (second.misses, second.hits) == (0, 1)

    def test_distinct_keys_do_not_share(self):
        cache = SetupCache()
        a = cache.lease("snark-hash", 6, 3)
        b = cache.lease("snark-hash", 6, 4)
        assert a.scheme is not b.scheme


class TestCachePolicy:
    def test_lru_eviction_costs_a_miss_not_correctness(self):
        cache = SetupCache(max_entries=1)
        rng = Randomness(3).fork("x")
        first = cache.lease("snark-hash", 6, 3)
        first.provider(first.scheme, 24, rng)
        cache.lease("snark-hash", 6, 4)  # evicts the (6, 3) domain
        again = cache.lease("snark-hash", 6, 3)
        material = again.provider(again.scheme, 24, rng)
        assert again.misses == 1
        assert material.verification_keys  # fully recomputed, still valid
        assert cache.stats()["entries"] == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(GatewayError, match="at least one"):
            SetupCache(max_entries=0)

    def test_stats_shape(self):
        stats = SetupCache(max_entries=4).stats()
        assert stats == {
            "hits": 0, "misses": 0, "entries": 0, "max_entries": 4,
        }


class TestRegistryCounters:
    def test_hit_miss_series_rendered(self):
        registry = MetricsRegistry()
        cache = SetupCache(registry=registry)
        lease = cache.lease("snark-hash", 6, 11)
        rng = Randomness(11).fork("x")
        lease.provider(lease.scheme, 24, rng)
        lease.provider(lease.scheme, 24, rng)
        text = registry.render()
        assert "repro_gateway_setup_cache_hits_total 1" in text
        assert "repro_gateway_setup_cache_misses_total 1" in text
