"""Tests for polynomials and Lagrange interpolation."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SecretSharingError
from repro.fields.polynomial import (
    Polynomial,
    lagrange_coefficients_at_zero,
    lagrange_interpolate_at_zero,
)
from repro.fields.prime_field import PrimeField
from repro.utils.randomness import Randomness

PRIME = 10007


@pytest.fixture
def field():
    return PrimeField(PRIME)


class TestPolynomialBasics:
    def test_trailing_zeros_trimmed(self, field):
        p = Polynomial(field, [1, 2, 0, 0])
        assert p.degree == 1

    def test_zero_polynomial_degree(self, field):
        assert Polynomial(field, [0]).degree == 0

    def test_evaluation_horner(self, field):
        p = Polynomial(field, [3, 2, 1])  # 3 + 2x + x^2
        assert p.evaluate(2) == field.element(3 + 4 + 4)

    def test_random_constant_term(self, field, rng):
        p = Polynomial.random(field, 4, rng, constant_term=99)
        assert p.evaluate(0) == field.element(99)

    def test_negative_degree_rejected(self, field, rng):
        with pytest.raises(SecretSharingError):
            Polynomial.random(field, -1, rng)

    def test_addition(self, field):
        p = Polynomial(field, [1, 2])
        q = Polynomial(field, [3, 4, 5])
        assert (p + q).coefficients == Polynomial(field, [4, 6, 5]).coefficients

    def test_multiplication(self, field):
        p = Polynomial(field, [1, 1])      # 1 + x
        q = Polynomial(field, [1, -1])     # 1 - x
        assert p * q == Polynomial(field, [1, 0, -1])

    def test_cross_field_operations_rejected(self, field):
        other = PrimeField(10009)
        with pytest.raises(SecretSharingError):
            Polynomial(field, [1]) + Polynomial(other, [1])


class TestInterpolation:
    @given(st.lists(st.integers(min_value=0, max_value=PRIME - 1),
                    min_size=1, max_size=6))
    def test_interpolation_recovers_constant_term(self, coefficients):
        field = PrimeField(PRIME)
        polynomial = Polynomial(field, coefficients)
        degree = polynomial.degree
        points = [
            (field.element(x), polynomial.evaluate(x))
            for x in range(1, degree + 2)
        ]
        recovered = lagrange_interpolate_at_zero(field, points)
        assert recovered == polynomial.evaluate(0)

    def test_duplicate_x_rejected(self, field):
        points = [(field.element(1), field.element(2))] * 2
        with pytest.raises(SecretSharingError):
            lagrange_interpolate_at_zero(field, points)

    def test_empty_rejected(self, field):
        with pytest.raises(SecretSharingError):
            lagrange_interpolate_at_zero(field, [])

    def test_coefficients_match_interpolation(self, field, rng):
        polynomial = Polynomial.random(field, 3, rng, constant_term=7)
        xs = [field.element(x) for x in (2, 5, 8, 11)]
        coefficients = lagrange_coefficients_at_zero(field, xs)
        dot = field.zero()
        for coefficient, x in zip(coefficients, xs):
            dot = dot + coefficient * polynomial.evaluate(x)
        assert dot == field.element(7)

    def test_coefficients_duplicate_x_rejected(self, field):
        with pytest.raises(SecretSharingError):
            lagrange_coefficients_at_zero(
                field, [field.element(1), field.element(1)]
            )


class TestEqualityHash:
    def test_equal_polynomials(self, field):
        assert Polynomial(field, [1, 2]) == Polynomial(field, [1, 2, 0])

    def test_hash_consistent(self, field):
        assert hash(Polynomial(field, [1, 2])) == hash(Polynomial(field, [1, 2, 0]))
