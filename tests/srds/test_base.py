"""Tests for the SRDS interface helpers."""

import pytest

from repro.errors import SignatureError
from repro.srds.base import check_index_range, ensure_same_message_space
from repro.srds.owf import OwfBaseSignature


def _base_signature(index):
    return OwfBaseSignature(index=index, ots_signature=b"opaque-ots-sig")


class TestCheckIndexRange:
    def test_inside(self):
        assert check_index_range(_base_signature(5), 0, 10)

    def test_boundary_low_inclusive(self):
        assert check_index_range(_base_signature(0), 0, 10)

    def test_boundary_high_exclusive(self):
        assert not check_index_range(_base_signature(10), 0, 10)

    def test_outside(self):
        assert not check_index_range(_base_signature(11), 0, 10)


class TestMessageSpace:
    def test_bytes_pass(self):
        assert ensure_same_message_space(b"ok") == b"ok"

    def test_bytearray_coerced(self):
        assert ensure_same_message_space(bytearray(b"ok")) == b"ok"

    def test_str_rejected(self):
        with pytest.raises(SignatureError):
            ensure_same_message_space("not bytes")

    def test_none_rejected(self):
        with pytest.raises(SignatureError):
            ensure_same_message_space(None)


class TestBaseMarker:
    def test_base_signature_is_base(self):
        assert _base_signature(3).is_base

    def test_size_bytes_matches_encoding(self):
        signature = _base_signature(3)
        assert signature.size_bytes() == len(signature.encode())
