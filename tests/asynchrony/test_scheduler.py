"""AsyncScheduler: determinism/replay, churn, loud stalls, config errors.

The determinism contract is the subsystem's foundation: a run is a pure
function of ``(parties, seed, policy, latency model, fault plan)``, and
the recorded delivery trace is the replay witness.  Everything else —
the campaign's repro lines, the BENCH gate, the Hypothesis properties —
leans on it.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, NetworkError
from repro.net.latency import LATENCY_MODEL_NAMES
from repro.protocols.aba import ABAParty, CommonCoin
from repro.asynchrony.driver import run_aba
from repro.asynchrony.scheduler import AsyncScheduler, run_async_parties
from repro.runtime.faults import FaultPlan, churn_schedule, crash_everyone
from repro.utils.randomness import Randomness


def _parties(n: int, seed: int = 1):
    coin = CommonCoin(Randomness(seed))
    return [ABAParty(p, range(n), p % 2, coin) for p in range(n)]


# -- determinism and replay --------------------------------------------------


class TestDeterminism:
    def test_same_seed_replays_exactly(self):
        a = run_aba(16, seed=5, policy="adversarial")
        b = run_aba(16, seed=5, policy="adversarial")
        assert a.trace == b.trace
        assert a.outputs == b.outputs
        assert a.rounds == b.rounds
        assert a.deliveries == b.deliveries
        assert (
            a.metrics.max_bits_per_party == b.metrics.max_bits_per_party
        )

    def test_different_seed_changes_the_schedule(self):
        a = run_aba(16, seed=1, policy="adversarial")
        b = run_aba(16, seed=2, policy="adversarial")
        assert a.trace != b.trace

    @pytest.mark.parametrize("name", LATENCY_MODEL_NAMES)
    def test_every_latency_model_is_replayable(self, name):
        a = run_aba(16, seed=9, latency=name)
        b = run_aba(16, seed=9, latency=name)
        assert a.trace == b.trace
        assert a.outputs == b.outputs
        assert a.agreed_value in (0, 1)

    def test_trace_is_the_replay_witness(self):
        result = run_aba(16, seed=5, policy="adversarial")
        # One row per delivery, counter strictly increasing from 1.
        assert len(result.trace) == result.deliveries
        counters = [row[0] for row in result.trace]
        assert counters == list(range(1, result.deliveries + 1))


# -- the completion contract -------------------------------------------------


class TestCompletion:
    def test_all_honest_parties_decide(self):
        result = run_aba(16, seed=3)
        assert set(result.outputs) == set(range(16))
        assert result.agreed_value in (0, 1)
        assert result.virtual_time > 0

    def test_stall_is_loud_and_names_the_undecided(self):
        # n=4 with two silenced parties: the 2f+1 = 3 BVAL quorum is
        # unreachable, traffic dries up, and the scheduler must raise —
        # naming exactly the honest parties left hanging.
        with pytest.raises(NetworkError, match=r"undecided.*\[0, 3\]"):
            run_aba(4, seed=1, corrupted={1, 2})

    def test_delivery_cap_is_loud(self):
        with pytest.raises(NetworkError, match="cap"):
            run_aba(16, seed=1, max_deliveries=10)

    def test_corrupted_outputs_are_suppressed(self):
        result = run_aba(16, seed=4, corrupted={3, 5}, byzantine="silent")
        assert result.corrupted == [3, 5]
        assert 3 not in result.outputs and 5 not in result.outputs
        assert set(result.outputs) == set(range(16)) - {3, 5}

    def test_equivocators_are_excused_not_silenced(self):
        # An equivocator keeps talking (its sends are charged) but never
        # decides; the run must still complete without it.
        result = run_aba(16, seed=4, corrupted={3}, byzantine="equivocate")
        assert 3 not in result.outputs
        assert set(result.outputs) == set(range(16)) - {3}
        assert result.metrics.tally_of(3).bits_sent > 0


# -- churn -------------------------------------------------------------------


class TestChurn:
    def test_late_joiners_are_excused_from_liveness(self):
        plan = churn_schedule({0: 2, 1: 2})
        result = run_aba(16, seed=6, fault_plan=plan)
        # Everyone the model owes a decision decided, on one bit.
        assert set(range(2, 16)) <= set(result.outputs)
        assert result.agreed_value in (0, 1)

    def test_leavers_degrade_gracefully(self):
        plan = churn_schedule({}, {0: 3, 1: 3})
        result = run_aba(16, seed=6, fault_plan=plan)
        assert set(range(2, 16)) <= set(result.outputs)
        assert result.agreed_value in (0, 1)

    def test_collapse_below_quorum_stalls_loudly(self):
        plan = crash_everyone(range(8), round_index=1)
        with pytest.raises(NetworkError):
            run_aba(16, seed=6, fault_plan=plan)

    def test_join_before_leave_enforced(self):
        with pytest.raises(ConfigurationError):
            churn_schedule({0: 3}, {0: 2})


# -- configuration errors ----------------------------------------------------


class TestConfiguration:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            AsyncScheduler(_parties(4), policy="clairvoyant")

    def test_adversarial_policy_requires_rng(self):
        with pytest.raises(ConfigurationError):
            AsyncScheduler(_parties(4), policy="adversarial")

    def test_duplicate_party_ids_rejected(self):
        parties = _parties(4)
        with pytest.raises(ConfigurationError):
            AsyncScheduler(parties + [parties[0]])

    def test_empty_party_set_rejected(self):
        with pytest.raises(ConfigurationError):
            AsyncScheduler([])

    def test_corrupt_and_excuse_validate_ids(self):
        scheduler = AsyncScheduler(_parties(4))
        with pytest.raises(ConfigurationError):
            scheduler.corrupt(9)
        with pytest.raises(ConfigurationError):
            scheduler.excuse(9)

    def test_facade_runs_to_agreement(self):
        result = run_async_parties(_parties(4), rng=Randomness(2))
        assert set(result.outputs) == {0, 1, 2, 3}
        assert len(set(result.outputs.values())) == 1
