"""Named fault schedules composing with the runtime's FaultPlan.

A :class:`Schedule` turns (n, corruption plan, rng) into a
:class:`~repro.runtime.faults.FaultPlan` — or ``None`` for the
fault-free baseline.  ``model_breaking`` schedules deliberately exceed
the paper's synchronous model (a mid-protocol partition, crashing every
party): a protocol driven under them may fail its invariants or time
out, but it must do so *loudly* — the campaign records such outcomes as
expected failures and flags any silent wrong answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import ConfigurationError
from repro.net.adversary import CorruptionPlan
from repro.net.latency import (
    LogNormalLatency,
    RandomDelayLatency,
    UniformLatency,
)
from repro.runtime.faults import (
    FaultPlan,
    adversarial_schedule,
    churn_schedule,
    crash_corrupted,
    crash_everyone,
    partition_halves,
)
from repro.utils.randomness import Randomness


@dataclass(frozen=True)
class Schedule:
    """One named network-fault schedule.

    Attributes:
        name: stable identifier (appears in repro specs).
        description: one-line summary.
        build: ``(n, plan, rng) -> Optional[FaultPlan]``.
        needs_runtime: whether the schedule only makes sense over the
            async runtime (crash/delay/partition need a transport; pure
            reordering also works in-process through the
            ``delivery_rng`` seam of π_ba).
        model_breaking: exceeds the paper's model — invariant
            violations / loud failures are expected, silence is not.
    """

    name: str
    description: str
    build: Callable[[int, CorruptionPlan, Randomness], Optional[FaultPlan]]
    needs_runtime: bool = False
    model_breaking: bool = False


def _none(n: int, plan: CorruptionPlan, rng: Randomness) -> Optional[FaultPlan]:
    return None


def _kill_worker(
    n: int, plan: CorruptionPlan, rng: Randomness
) -> Optional[FaultPlan]:
    """No network-level faults: the SIGKILL is a *process* fault.

    The cluster runner reads this schedule's name and arms the
    supervisor's kill plan (SIGKILL one worker after a mid-protocol
    round barrier); the wire-level fault plan stays empty because the
    parties themselves never misbehave — the substrate does.
    """
    return None


def _reorder(n: int, plan: CorruptionPlan, rng: Randomness) -> FaultPlan:
    return adversarial_schedule(
        rng.fork("sched"), reorder=True, duplicate_probability=0.0
    )


def _duplicate(n: int, plan: CorruptionPlan, rng: Randomness) -> FaultPlan:
    return adversarial_schedule(
        rng.fork("sched"), reorder=False, duplicate_probability=0.1
    )


def _reorder_dup(n: int, plan: CorruptionPlan, rng: Randomness) -> FaultPlan:
    return adversarial_schedule(
        rng.fork("sched"), reorder=True, duplicate_probability=0.1
    )


def _random_delay(n: int, plan: CorruptionPlan, rng: Randomness) -> FaultPlan:
    """The historical ``random_delay_*`` knobs as a first-class
    :class:`~repro.net.latency.RandomDelayLatency` model.

    :class:`RandomDelayLatency` reproduces the legacy draw exactly
    (same fork labels, same bernoulli-then-range sequence), so this
    schedule's delivery pattern is pinned byte-identical to the knob
    form — ``tests/net/test_latency.py`` asserts the equality.
    """
    return FaultPlan(
        reorder=True,
        latency=RandomDelayLatency(probability=0.15, max_rounds=2),
        rng=rng.fork("sched"),
    )


def _latency_uniform(
    n: int, plan: CorruptionPlan, rng: Randomness
) -> FaultPlan:
    return FaultPlan(
        latency=UniformLatency(low=0, high=2), rng=rng.fork("sched")
    )


def _latency_lognormal(
    n: int, plan: CorruptionPlan, rng: Randomness
) -> FaultPlan:
    return FaultPlan(latency=LogNormalLatency(), rng=rng.fork("sched"))


def _adversarial_order(
    n: int, plan: CorruptionPlan, rng: Randomness
) -> Optional[FaultPlan]:
    """No wire-level faults: the *scheduler* is the adversary.

    The asynchronous runner reads this schedule's name and switches the
    :class:`~repro.asynchrony.scheduler.AsyncScheduler` to its
    worst-case "adversary picks the next delivery" policy (same
    by-name seam as ``kill-worker``); the fault plan stays empty.
    """
    return None


def _churn_parties(
    n: int, plan: CorruptionPlan, rng: Randomness, label: str
) -> List[int]:
    """A seeded honest subset sized to the *remaining* fault budget.

    Churn spends the same ``f = (n-1)//3`` tolerance the Byzantine
    corruptions draw from: a leaver is a crash fault, a late joiner is
    absent for the early rounds, and either way the protocol only owes
    graceful degradation while the combined count stays within ``f``.
    """
    f = max(0, (n - 1) // 3)
    budget = f - len(plan.corrupted)
    if budget <= 0:
        return []
    honest = [p for p in range(n) if p not in plan.corrupted]
    return sorted(rng.fork(label).sample(honest, min(budget, len(honest))))


def _churn_join(
    n: int, plan: CorruptionPlan, rng: Randomness
) -> Optional[FaultPlan]:
    parties = _churn_parties(n, plan, rng, "join")
    if not parties:
        return None  # budget exhausted; degenerates to the baseline
    return churn_schedule({p: 2 for p in parties})


def _churn_leave(
    n: int, plan: CorruptionPlan, rng: Randomness
) -> Optional[FaultPlan]:
    parties = _churn_parties(n, plan, rng, "leave")
    if not parties:
        return None  # budget exhausted; degenerates to the baseline
    return churn_schedule({}, {p: 3 for p in parties})


def _churn_collapse(
    n: int, plan: CorruptionPlan, rng: Randomness
) -> FaultPlan:
    # Half the parties leave at round 1 — the survivors cannot reach
    # the 2f+1 quorum, so the run must stall loudly.
    return crash_everyone(range((n + 1) // 2), round_index=1)


def _crash_corrupted(
    n: int, plan: CorruptionPlan, rng: Randomness
) -> Optional[FaultPlan]:
    if not plan.corrupted:
        return None  # nothing to crash; degenerates to the baseline
    return crash_corrupted(plan, rng.fork("sched"), max_round=6)


def _partition_early(
    n: int, plan: CorruptionPlan, rng: Randomness
) -> FaultPlan:
    return partition_halves(range(n), first_round=1, last_round=2)


def _crash_everyone(
    n: int, plan: CorruptionPlan, rng: Randomness
) -> FaultPlan:
    return crash_everyone(range(n), round_index=1)


_DEFAULT: List[Schedule] = [
    Schedule("none", "fault-free synchronous baseline", _none),
    Schedule(
        "reorder",
        "randomized within-round delivery order",
        _reorder,
    ),
    Schedule(
        "duplicate",
        "10% of deliveries seen twice",
        _duplicate,
        needs_runtime=True,
    ),
    Schedule(
        "reorder-dup",
        "reordering plus 10% duplication",
        _reorder_dup,
        needs_runtime=True,
    ),
    Schedule(
        "random-delay",
        "MODEL-BREAKING: 15% of messages arrive 1-2 rounds late — "
        "delivery beyond the promised round exceeds the synchronous model",
        _random_delay,
        needs_runtime=True,
        model_breaking=True,
    ),
    Schedule(
        "crash-corrupted",
        "crash every corrupted party at a random round <= 6",
        _crash_corrupted,
        needs_runtime=True,
    ),
    Schedule(
        "partition-early",
        "MODEL-BREAKING: sever the two halves during rounds 1-2",
        _partition_early,
        needs_runtime=True,
        model_breaking=True,
    ),
    Schedule(
        "crash-everyone",
        "MODEL-BREAKING: crash every party at round 1",
        _crash_everyone,
        needs_runtime=True,
        model_breaking=True,
    ),
    Schedule(
        "kill-worker",
        "SIGKILL one cluster worker mid-round; the supervisor must "
        "restart it from its durable checkpoint (cluster backend only)",
        _kill_worker,
    ),
    Schedule(
        "latency-uniform",
        "asynchronous delivery with uniform per-message latency",
        _latency_uniform,
        needs_runtime=True,
    ),
    Schedule(
        "latency-lognormal",
        "asynchronous delivery with heavy-tailed (lognormal) latency",
        _latency_lognormal,
        needs_runtime=True,
    ),
    Schedule(
        "adversarial-order",
        "the scheduler itself is the adversary: a seeded draw picks "
        "each next delivery from the oldest-pending window "
        "(asynchronous configs only)",
        _adversarial_order,
        needs_runtime=True,
    ),
    Schedule(
        "churn-join",
        "budget-bounded churn: up to f - |corrupted| honest parties "
        "join late (absent before round 2)",
        _churn_join,
        needs_runtime=True,
    ),
    Schedule(
        "churn-leave",
        "budget-bounded churn: up to f - |corrupted| honest parties "
        "leave (crash) at round 3",
        _churn_leave,
        needs_runtime=True,
    ),
    Schedule(
        "churn-collapse",
        "MODEL-BREAKING: half the parties leave at round 1 — below "
        "the 2f+1 quorum, the stall must be loud",
        _churn_collapse,
        needs_runtime=True,
        model_breaking=True,
    ),
]


def default_schedules() -> List[Schedule]:
    """The built-in schedules, in deterministic order."""
    return list(_DEFAULT)


def schedule_by_name(name: str) -> Schedule:
    for schedule in _DEFAULT:
        if schedule.name == name:
            return schedule
    raise ConfigurationError(f"unknown schedule {name!r}")
