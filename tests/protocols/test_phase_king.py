"""Tests for the phase-king committee BA (realizing f_ba)."""

import pytest

from repro.errors import ConfigurationError
from repro.protocols.phase_king import (
    ideal_f_ba,
    make_honest_party,
    run_phase_king,
)


class TestAgreementValidity:
    def test_unanimous_no_faults(self):
        outputs, _ = run_phase_king({i: 1 for i in range(7)})
        assert set(outputs.values()) == {1}

    def test_unanimous_with_byzantine(self):
        outputs, _ = run_phase_king({i: 0 for i in range(10)}, byzantine=[1, 4, 8])
        assert set(outputs.values()) == {0}

    def test_agreement_on_split_inputs(self):
        outputs, _ = run_phase_king(
            {i: i % 2 for i in range(10)}, byzantine=[0, 5]
        )
        assert len(set(outputs.values())) == 1

    @pytest.mark.parametrize("seed_offset", range(5))
    def test_agreement_various_input_patterns(self, seed_offset):
        inputs = {i: (i + seed_offset) % 2 for i in range(13)}
        outputs, _ = run_phase_king(inputs, byzantine=[seed_offset, 7 + seed_offset % 3])
        assert len(set(outputs.values())) == 1

    def test_all_honest_minority_value_agreement(self):
        inputs = {i: 1 if i < 3 else 0 for i in range(10)}
        outputs, _ = run_phase_king(inputs)
        assert set(outputs.values()) == {0}  # clear honest majority


class TestResilience:
    def test_too_many_byzantine_rejected(self):
        with pytest.raises(ConfigurationError):
            run_phase_king({i: 1 for i in range(6)}, byzantine=[0, 1, 2])

    def test_f_bound_enforced_in_party(self):
        with pytest.raises(ConfigurationError):
            make_honest_party(0, list(range(9)), 3, 1)


class TestCommunication:
    def test_quadratic_in_committee(self):
        _, small = run_phase_king({i: 1 for i in range(7)})
        _, large = run_phase_king({i: 1 for i in range(14)})
        # 2x committee => ~4x+ total bits (n^2 per round and more phases).
        assert large.total_bits > 3 * small.total_bits

    def test_rounds_linear_in_faults(self):
        _, metrics = run_phase_king({i: 1 for i in range(10)})
        f = (10 - 1) // 3
        assert metrics.rounds_completed <= 3 * (f + 2) + 3


class TestIdealFba:
    def test_supermajority_wins(self):
        inputs = {i: 1 for i in range(9)}
        inputs[0] = 0
        assert ideal_f_ba(inputs, num_corrupt=2) == 1

    def test_split_lets_adversary_choose(self):
        inputs = {i: i % 2 for i in range(10)}
        assert ideal_f_ba(inputs, num_corrupt=3, adversary_choice=1) == 1
        assert ideal_f_ba(inputs, num_corrupt=3, adversary_choice=0) == 0

    def test_unanimous(self):
        assert ideal_f_ba({i: 0 for i in range(5)}, num_corrupt=1) == 0
