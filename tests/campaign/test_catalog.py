"""Strategy catalog: registration, applicability, plan resolution."""

import pytest

from repro.campaign.catalog import (
    KIND_DOLEV_STRONG,
    KIND_GRADECAST,
    KIND_PHASE_KING,
    KIND_PI_BA,
    KIND_SRDS_FORGE,
    KIND_SRDS_ROBUST,
    Strategy,
    default_catalog,
)
from repro.errors import ConfigurationError
from repro.params import ProtocolParameters
from repro.utils.randomness import Randomness

ALL_KINDS = (
    KIND_PI_BA,
    KIND_PHASE_KING,
    KIND_GRADECAST,
    KIND_DOLEV_STRONG,
    KIND_SRDS_ROBUST,
    KIND_SRDS_FORGE,
)


class TestCatalog:
    def test_names_unique(self):
        names = default_catalog().names()
        assert len(names) == len(set(names))

    def test_every_kind_covered(self):
        catalog = default_catalog()
        for kind in ALL_KINDS:
            assert catalog.for_kind(kind), f"no strategy applies to {kind}"

    def test_srds_kinds_have_adversaries(self):
        catalog = default_catalog()
        for kind in (KIND_SRDS_ROBUST, KIND_SRDS_FORGE):
            for strategy in catalog.for_kind(kind):
                assert strategy.srds_adversary is not None
                # The lazy factory must actually resolve.
                assert strategy.srds_adversary() is not None

    def test_get_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            default_catalog().get("no-such-strategy")

    def test_register_duplicate_raises(self):
        catalog = default_catalog()
        with pytest.raises(ConfigurationError):
            catalog.register(
                Strategy(name="honest", description="dup", kinds=(KIND_PI_BA,))
            )

    def test_register_extends(self):
        catalog = default_catalog()
        catalog.register(
            Strategy(
                name="custom", description="extension", kinds=(KIND_PI_BA,)
            )
        )
        assert catalog.get("custom").applies_to(KIND_PI_BA)
        # The default catalog factory stays pristine.
        assert "custom" not in default_catalog().names()

    def test_planted_strategies_marked(self):
        planted = [
            s for s in default_catalog().strategies if s.expect_violation
        ]
        assert planted, "the catalog must carry a planted strategy"
        assert all(s.plan_kind == "over-threshold" for s in planted)


class TestResolvePlan:
    def setup_method(self):
        self.params = ProtocolParameters()
        self.rng = Randomness(11).fork("test")
        self.catalog = default_catalog()

    def test_honest_plan_is_empty(self):
        plan = self.catalog.get("honest").resolve_plan(
            16, self.params, self.rng
        )
        assert plan.corrupted == frozenset()

    def test_random_plan_within_concrete_tolerance(self):
        plan = self.catalog.get("random-silent").resolve_plan(
            16, self.params, self.rng
        )
        t = max(1, self.params.max_corruptions(16))
        assert 0 < plan.t <= t
        assert plan.budget == t

    def test_prefix_plan_clusters(self):
        plan = self.catalog.get("subtree-drop").resolve_plan(
            16, self.params, self.rng
        )
        assert plan.corrupted == frozenset(range(plan.t))

    def test_committee_plan_targets_probe_committee(self):
        from repro.aetree.tree import build_tree

        plan = self.catalog.get("committee-targeted").resolve_plan(
            16, self.params, self.rng
        )
        probe = build_tree(
            16, self.params, self.rng.fork("committee-probe")
        )
        t = max(1, self.params.max_corruptions(16))
        expected = set(list(probe.supreme_committee)[:t])
        assert expected <= plan.corrupted or plan.t == t

    def test_over_threshold_plan_is_half(self):
        plan = self.catalog.get("over-threshold").resolve_plan(
            16, self.params, self.rng
        )
        assert plan.t == 8
        assert plan.budget is None  # deliberately unchecked

    def test_explicit_override_wins(self):
        plan = self.catalog.get("random-silent").resolve_plan(
            16, self.params, self.rng, explicit=(4,)
        )
        assert plan.corrupted == frozenset({4})

    def test_explicit_override_still_budget_checked(self):
        t = max(1, self.params.max_corruptions(16))
        with pytest.raises(ConfigurationError):
            self.catalog.get("random-silent").resolve_plan(
                16, self.params, self.rng, explicit=tuple(range(t + 1))
            )

    def test_determinism(self):
        a = self.catalog.get("random-silent").resolve_plan(
            16, self.params, Randomness(3).fork("x")
        )
        b = self.catalog.get("random-silent").resolve_plan(
            16, self.params, Randomness(3).fork("x")
        )
        assert a.corrupted == b.corrupted

    def test_unknown_plan_kind_raises(self):
        bogus = Strategy(
            name="bogus", description="", kinds=(KIND_PI_BA,),
            plan_kind="teleport",
        )
        with pytest.raises(ConfigurationError):
            bogus.resolve_plan(16, self.params, self.rng)
