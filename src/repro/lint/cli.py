"""``python -m repro lint`` — the operator interface of the linter.

Subcommands::

    lint check [paths...] [--format text|json] [--output FILE]
               [--baseline FILE] [--no-baseline] [--rules IDS]
               [--root DIR]
        Run every rule over src/ (or the given paths).  Exit 0 when no
        *new* violations exist (baselined legacy debt and pragma
        suppressions pass; stale baseline entries warn); exit 1 on new
        violations or annotation errors; exit 2 on usage errors.

    lint baseline [paths...] [--baseline FILE] [--root DIR] [--prune]
        Re-snapshot the current violations as the legacy set.  This is
        the only way debt enters the baseline — review the diff.  With
        ``--prune``, only *remove* stale entries (burned-down debt);
        nothing is added, so pruning can only tighten the ratchet.

    lint graph [--output FILE] [--root DIR] [--no-cache]
        Export the cross-module call graph (every module under src/,
        resolved call edges, import SCCs) as schema-versioned JSON.

    lint explain RULE001
        Print a rule's rationale (why the invariant matters to the
        paper's claims) and its generic fix.

    lint rules
        List every registered rule with severity and summary.

The interprocedural rules (TRU001, SCH001, ASY002) share a per-file
facts cache at ``<root>/.lint-cache.json`` keyed on content hashes;
``--no-cache`` forces a cold extraction.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.lint.baseline import Baseline, RatchetOutcome
from repro.lint.config import LintConfig, default_config
from repro.lint.engine import run_lint
from repro.lint.model import Severity
from repro.lint.report import render_json, render_text
from repro.lint.rules import ALL_RULES, get_rule, rule_ids
from repro.lint.xmod.cache import CACHE_FILENAME


def _build_config(args: argparse.Namespace) -> LintConfig:
    base = default_config(
        Path(args.root).resolve() if args.root else None
    )
    paths = tuple(args.paths) if args.paths else base.paths
    rules = tuple(
        token.strip()
        for token in (args.rules or "").split(",")
        if token.strip()
    )
    unknown = [r for r in rules if get_rule(r) is None]
    if unknown:
        raise ConfigurationError(
            f"unknown rule id(s): {', '.join(unknown)} "
            f"(known: {', '.join(rule_ids())})"
        )
    baseline_path: Optional[Path] = None
    if getattr(args, "baseline", None):
        baseline_path = Path(args.baseline)
    return LintConfig(
        root=base.root,
        paths=paths,
        rules=rules,
        baseline_path=baseline_path,
    )


def _cache_path(config: LintConfig,
                args: argparse.Namespace) -> Optional[Path]:
    if getattr(args, "no_cache", False):
        return None
    return config.root / CACHE_FILENAME


def _cmd_check(args: argparse.Namespace) -> int:
    config = _build_config(args)
    result = run_lint(config, cache_path=_cache_path(config, args))
    if args.no_baseline:
        baseline = Baseline([])
    else:
        baseline = Baseline.load(config.resolved_baseline_path())
    ratchet = baseline.apply(result.violations)
    meta_errors = [
        v for v in result.meta_violations if v.severity is Severity.ERROR
    ]
    exit_code = 1 if (ratchet.new or meta_errors) else 0
    if args.format == "json":
        rendered = render_json(result, ratchet, exit_code)
    else:
        rendered = render_text(result, ratchet)
    if args.output:
        Path(args.output).write_text(rendered, encoding="utf-8")
        print(f"lint report -> {args.output} (exit {exit_code})")
    else:
        print(rendered, end="")
    return exit_code


def _cmd_baseline(args: argparse.Namespace) -> int:
    config = _build_config(args)
    result = run_lint(config, cache_path=_cache_path(config, args))
    path = config.resolved_baseline_path()
    if args.prune:
        before = Baseline.load(path)
        baseline = before.pruned(result.violations)
        baseline.save(path)
        print(
            f"baseline -> {path}: pruned "
            f"{len(before) - len(baseline)} stale entr"
            f"{'y' if len(before) - len(baseline) == 1 else 'ies'}, "
            f"{len(baseline)} kept"
        )
        return 0
    baseline = Baseline.from_violations(result.violations)
    baseline.save(path)
    print(
        f"baseline -> {path}: {len(baseline)} entr"
        f"{'y' if len(baseline) == 1 else 'ies'} covering "
        f"{len(result.violations)} violation(s)"
    )
    if result.violations:
        print(
            "note: the baseline tracks this debt for burn-down; new "
            "violations still fail `lint check`."
        )
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    config = _build_config(args)
    from repro.lint.engine import iter_source_files, load_module
    from repro.lint.model import ModuleUnit
    from repro.lint.xmod.cache import build_project
    from repro.lint.xmod.callgraph import CallGraph

    modules = [
        loaded
        for path in iter_source_files(config)
        if isinstance(loaded := load_module(path, config), ModuleUnit)
    ]
    project = build_project(modules, _cache_path(config, args))
    graph = CallGraph(project)
    rendered = json.dumps(graph.to_json(), indent=2, sort_keys=True) + "\n"
    if args.output:
        Path(args.output).write_text(rendered, encoding="utf-8")
        print(
            f"call graph -> {args.output}: "
            f"{len(project.facts)} modules, "
            f"{len(project.functions)} functions, "
            f"{sum(len(edges) for edges in graph.edges.values())} edges"
        )
    else:
        print(rendered, end="")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    rule = get_rule(args.rule_id)
    if rule is None:
        print(f"unknown rule {args.rule_id!r}; known rules: "
              f"{', '.join(rule_ids())}")
        return 2
    meta = rule.meta
    print(f"{meta.rule_id} ({meta.name}) — severity {meta.severity}")
    print(f"\n  {meta.summary}\n")
    print("why it matters here:")
    print(f"  {meta.rationale}\n")
    print("how to fix:")
    print(f"  {meta.fix_hint}")
    print(
        "\nsuppress one site:  # lint: allow["
        f"{meta.rule_id}] reason=<why this deviation is correct>"
    )
    return 0


def _cmd_rules() -> int:
    for rule in ALL_RULES:
        meta = rule.meta
        print(f"{meta.rule_id}  {str(meta.severity):<7} "
              f"{meta.name:<28} {meta.summary}")
    print("\nLNT000  error   malformed-pragma             "
          "lint pragma without a reason= or with bad rule ids")
    print("LNT001  warning unused-pragma                "
          "pragma that suppressed nothing this run")
    print("LNT002  error   parse-error                  "
          "file could not be parsed; nothing was checked")
    return 0


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="protocol-aware static analysis for the repro tree",
    )
    sub = parser.add_subparsers(dest="subcommand")

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("paths", nargs="*",
                       help="files/directories relative to the root "
                            "(default: src)")
        p.add_argument("--root", default=None,
                       help="repo root (default: auto-detect via "
                            "pyproject.toml)")
        p.add_argument("--rules", default="",
                       help="comma-separated rule ids (default: all)")
        p.add_argument("--baseline", default=None,
                       help="baseline file (default: "
                            "<root>/lint-baseline.json)")

    check = sub.add_parser("check", help="run the rules; ratchet exit code")
    add_common(check)
    check.add_argument("--format", choices=("text", "json"), default="text")
    check.add_argument("--output", default=None,
                       help="write the report here instead of stdout")
    check.add_argument("--no-baseline", action="store_true",
                       help="ignore the baseline (report all violations "
                            "as new)")
    check.add_argument("--no-cache", action="store_true",
                       help="skip the cross-module facts cache")

    baseline = sub.add_parser(
        "baseline", help="snapshot current violations as the legacy set"
    )
    add_common(baseline)
    baseline.add_argument("--prune", action="store_true",
                          help="only drop stale entries; add nothing")
    baseline.add_argument("--no-cache", action="store_true",
                          help="skip the cross-module facts cache")

    graph = sub.add_parser(
        "graph", help="export the cross-module call graph as JSON"
    )
    add_common(graph)
    graph.add_argument("--output", default=None,
                       help="write the JSON document here instead of stdout")
    graph.add_argument("--no-cache", action="store_true",
                       help="skip the cross-module facts cache")

    explain = sub.add_parser("explain", help="document one rule")
    explain.add_argument("rule_id")

    sub.add_parser("rules", help="list registered rules")
    return parser


def cmd_lint(argv: List[str]) -> int:
    """Entry point used by ``python -m repro lint ...``."""
    parser = _parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:  # argparse exits 2 on usage errors
        return int(exc.code or 0)
    if args.subcommand is None:
        parser.print_help()
        return 2
    try:
        if args.subcommand == "check":
            return _cmd_check(args)
        if args.subcommand == "baseline":
            return _cmd_baseline(args)
        if args.subcommand == "graph":
            return _cmd_graph(args)
        if args.subcommand == "explain":
            return _cmd_explain(args)
        if args.subcommand == "rules":
            return _cmd_rules()
    except ConfigurationError as exc:
        print(f"lint: {exc}")
        return 2
    parser.print_help()
    return 2
