"""Empirical companion to Theorem 1.4: OWF is necessary in the PKI model.

The theorem's intuition (§1.2): "if one-way functions do not exist, an
adversary can invert the PKI algorithm with noticeable probability to
find a preimage for each public key.  In this case, the adversary can
carry out the attack for the CRS model."

We make that executable with a key-generation function of *tunable
hardness*: secret keys are ``secret_bits``-bit strings and the public key
is a hash of the secret.  An inversion adversary with a work budget of
``2^effort_bits`` hash evaluations recovers secrets iff
``effort_bits >= secret_bits`` — i.e. iff the keygen function fails to be
one-way against that adversary.  Once the adversary holds honest parties'
signing secrets, the simulation attack of Thm 1.3 goes through verbatim
in the PKI model: it manufactures certified flipped-value messages that
pass the victim's dynamic filter.

The experiment sweeps ``secret_bits`` and shows the phase transition:
victim error is ~1/2 when keys are invertible and ~0 when they are not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.crypto.hashing import hash_domain
from repro.utils.randomness import Randomness
from repro.utils.serialization import encode_uint, int_to_fixed_bytes


@dataclass(frozen=True)
class WeakKeyPair:
    """A key pair from the tunable-hardness keygen."""

    secret: int
    public: bytes
    secret_bits: int


def weak_keygen(secret_bits: int, rng: Randomness) -> WeakKeyPair:
    """Key generation whose one-wayness is governed by ``secret_bits``."""
    secret = rng.random_int(1 << secret_bits)
    public = hash_domain(
        "weak-owf/pk",
        encode_uint(secret_bits),
        int_to_fixed_bytes(secret, 8),
    )
    return WeakKeyPair(secret=secret, public=public, secret_bits=secret_bits)


def sign_with_secret(secret: int, secret_bits: int, value: int) -> bytes:
    """The toy signature tied to the weak keys."""
    return hash_domain(
        "weak-owf/sig",
        encode_uint(secret_bits),
        int_to_fixed_bytes(secret, 8),
        encode_uint(value),
    )


def invert_public_key(
    public: bytes, secret_bits: int, effort_bits: int
) -> Optional[int]:
    """Brute-force inversion with a 2^effort_bits work budget."""
    budget = 1 << min(effort_bits, 26)  # hard cap keeps trials bounded
    space = 1 << secret_bits
    for candidate in range(min(space, budget)):
        probe = hash_domain(
            "weak-owf/pk",
            encode_uint(secret_bits),
            int_to_fixed_bytes(candidate, 8),
        )
        if probe == public:
            return candidate
    return None


@dataclass(frozen=True)
class OwfAttackOutcome:
    """Result of one inversion-attack trial."""

    victim_correct: bool
    keys_inverted: int
    true_value: int
    victim_decided: Optional[int]


def run_owf_attack_trial(
    n: int,
    t: int,
    messages_per_party: int,
    secret_bits: int,
    effort_bits: int,
    rng: Randomness,
) -> OwfAttackOutcome:
    """One trial of the PKI-inversion attack.

    Setup: every party publishes a weak public key.  Honest senders whose
    recipient sets include the isolated victim deliver signed true-value
    messages; the adversary tries to invert a few honest public keys and,
    on success, signs flipped-value messages *as those honest parties* —
    indistinguishable from genuine traffic, reviving the CRS-model
    attack.  The victim verifies signatures against the bulletin board
    and decides by majority of distinct authenticated senders.
    """
    true_value = rng.random_bit()
    victim = n - 1
    keypairs: Dict[int, WeakKeyPair] = {
        party: weak_keygen(secret_bits, rng.fork(f"kg-{party}"))
        for party in range(n)
    }

    # Honest deliveries.
    votes: Dict[int, int] = {}
    honest_senders = list(range(n - t - 1))
    for sender in honest_senders:
        recipients = rng.sample(range(n), min(n, messages_per_party))
        if victim in recipients:
            votes[sender] = true_value

    # Adversary: invert as many honest keys as the budget allows, then
    # overwrite those senders' votes with flipped-value forgeries.  (It
    # targets senders who have NOT reached the victim first — their
    # forged messages arrive as fresh authenticated traffic.)
    flipped = 1 - true_value
    inverted = 0
    inversion_targets = [
        sender for sender in honest_senders if sender not in votes
    ]
    # Each corrupt party can afford a bounded number of inversions.
    max_inversions = t * max(1, messages_per_party)
    for sender in inversion_targets:
        if inverted >= max_inversions:
            break
        if len([s for s, v in votes.items() if v == flipped]) > len(
            [s for s, v in votes.items() if v == true_value]
        ):
            break  # Majority already flipped; stop spending work.
        secret = invert_public_key(
            keypairs[sender].public, secret_bits, effort_bits
        )
        if secret is None:
            break  # Inversion infeasible: OWF holds, the attack dies here.
        inverted += 1
        # The forged signature verifies because it is exactly the honest
        # tag for (sender, flipped): possession of the secret makes the
        # adversary's message literally identical to an honest one.
        votes[sender] = flipped

    tally = {0: 0, 1: 0}
    for value in votes.values():
        tally[value] += 1
    if tally[0] == tally[1] == 0:
        decided: Optional[int] = None
    elif tally[0] == tally[1]:
        decided = 0
    else:
        decided = 0 if tally[0] > tally[1] else 1
    return OwfAttackOutcome(
        victim_correct=decided == true_value,
        keys_inverted=inverted,
        true_value=true_value,
        victim_decided=decided,
    )


def attack_success_rate(
    n: int,
    t: int,
    messages_per_party: int,
    secret_bits: int,
    effort_bits: int,
    trials: int,
    rng: Randomness,
) -> float:
    """Fraction of trials where the victim errs, for one hardness point."""
    failures = 0
    for trial in range(trials):
        outcome = run_owf_attack_trial(
            n, t, messages_per_party, secret_bits, effort_bits,
            rng.fork(f"trial-{trial}"),
        )
        if not outcome.victim_correct:
            failures += 1
    return failures / trials
