"""E8 — ablation: the sortition rate of the OWF-based SRDS.

Sweeps the sortition factor (expected signers = factor * log^2 n) and
measures (a) aggregate signature size — the cost of more signers — and
(b) the security margin: the gap between the honest signer count and the
acceptance threshold, and between the threshold and the adversarial
ceiling.  Too small a factor and concentration fails (robustness margin
evaporates); larger factors buy margin linearly while the signature
grows linearly in the factor — the polylog knob the construction rides.
"""

import pytest

from benchmarks.conftest import write_result
from repro.net.adversary import random_corruption
from repro.params import ProtocolParameters
from repro.srds.owf import OwfSRDS
from repro.utils.randomness import Randomness

N = 1024
FACTORS = [1, 2, 3, 4, 6]
PARAMS = ProtocolParameters()


def _sweep():
    rng = Randomness(44)
    t = PARAMS.max_corruptions(N)
    plan = random_corruption(N, t, rng.fork("plan"))
    rows = []
    for factor in FACTORS:
        scheme = OwfSRDS(message_bits=32, sortition_factor=factor)
        pp = scheme.setup(N, rng.fork(f"s{factor}"))
        vks, sks = {}, {}
        for i in range(N):
            vks[i], sks[i] = scheme.keygen(pp, rng.fork(f"k{factor}.{i}"))
        message = b"sortition-sweep"
        honest_signatures = [
            s for s in (
                scheme.sign(pp, i, sks[i], message)
                for i in range(N)
                if not plan.is_corrupt(i)
            )
            if s is not None
        ]
        corrupt_signers = sum(
            1 for i in range(N)
            if plan.is_corrupt(i) and sks[i] is not None
        )
        aggregate = scheme.aggregate(pp, vks, message, honest_signatures)
        rows.append({
            "factor": factor,
            "threshold": pp.acceptance_threshold,
            "honest_signers": len(honest_signatures),
            "corrupt_signers": corrupt_signers,
            "aggregate_bytes": aggregate.size_bytes(),
            "verifies": scheme.verify(pp, vks, message, aggregate),
        })
    return rows


@pytest.mark.benchmark(group="ablation")
def test_sortition_sweep(benchmark, results_dir):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    lines = [
        f"E8 — sortition-factor sweep, n={N}, beta={PARAMS.corruption_ratio:.3f}:",
        f"{'factor':>7} {'threshold':>10} {'honest':>7} {'corrupt':>8} "
        f"{'agg bytes':>10} {'robust?':>8} {'margin':>7}",
    ]
    for row in rows:
        margin = row["honest_signers"] - row["threshold"]
        lines.append(
            f"{row['factor']:>7} {row['threshold']:>10} "
            f"{row['honest_signers']:>7} {row['corrupt_signers']:>8} "
            f"{row['aggregate_bytes']:>10,} {row['verifies']!s:>8} "
            f"{margin:>7}"
        )
    write_result(results_dir, "ablation_sortition", "\n".join(lines))

    for row in rows:
        # Robustness: honest signers clear the threshold at every factor
        # (beta = 1/6 leaves slack even at factor 1)...
        assert row["verifies"]
        # ...and unforgeability margin: corrupt signers stay below it.
        assert row["corrupt_signers"] < row["threshold"]
    # Cost: aggregate size grows ~linearly with the factor.
    assert rows[-1]["aggregate_bytes"] > 3 * rows[0]["aggregate_bytes"]
    # Margin grows with the factor (the knob buys robustness slack).
    margins = [row["honest_signers"] - row["threshold"] for row in rows]
    assert margins[-1] > margins[0]
