"""Runner semantics on cheap cells, plus marked full-sweep checks.

The unmarked tests stay in tier-1 by using the fast runtime-driver
configs (phase_king, gradecast); everything that executes π_ba or SRDS
cells or sweeps the matrix is ``@pytest.mark.campaign`` (run in CI's
dedicated campaign job via ``pytest -m campaign``).
"""

import pytest

from repro.campaign.runner import execute_spec, run_campaign
from repro.campaign.spec import CampaignSpec, format_spec, parse_spec
from repro.errors import ConfigurationError


def _spec(**overrides):
    fields = dict(
        config="phase_king", strategy="honest", schedule="none", n=16, seed=0
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


class TestExecuteSpec:
    def test_honest_baseline_passes(self):
        outcome = execute_spec(_spec())
        assert not outcome.failed
        assert not outcome.expected_failure
        assert outcome.signature == ()
        assert outcome.spec.resolved  # corrupted set pinned

    def test_deterministic(self):
        a = execute_spec(_spec(strategy="random-silent"))
        b = execute_spec(_spec(strategy="random-silent"))
        assert a.spec == b.spec
        assert a.signature == b.signature
        assert a.failed == b.failed

    def test_replay_from_formatted_line(self):
        first = execute_spec(_spec(strategy="random-silent"))
        replayed = execute_spec(parse_spec(format_spec(first.spec)))
        assert replayed.spec == first.spec
        assert replayed.signature == first.signature

    def test_planted_over_threshold_fails_loudly(self):
        outcome = execute_spec(_spec(strategy="over-threshold"))
        assert outcome.failed
        assert outcome.expected_failure
        assert not outcome.unexpected
        # The failure is *visible* — an agreement split or raised error,
        # never a silent pass.
        assert outcome.violations or outcome.error is not None

    def test_crash_everyone_is_loud(self):
        outcome = execute_spec(_spec(schedule="crash-everyone"))
        assert outcome.failed
        assert outcome.expected_failure  # model-breaking schedule
        assert outcome.error_type is not None
        assert outcome.signature[0].startswith("error:")

    def test_crashes_pinned_in_resolved_spec(self):
        outcome = execute_spec(
            _spec(strategy="random-silent", schedule="crash-corrupted")
        )
        assert outcome.spec.crashes is not None
        assert set(outcome.spec.crashes) <= set(outcome.spec.corrupt)

    def test_pinned_crashes_override_schedule(self):
        outcome = execute_spec(
            _spec(
                strategy="random-silent",
                schedule="crash-corrupted",
                corrupt=(2, 5),
                crashes={2: 1},
            )
        )
        assert outcome.spec.crashes == {2: 1}

    def test_gradecast_cell(self):
        outcome = execute_spec(
            _spec(config="gradecast", strategy="random-silent")
        )
        assert not outcome.failed

    def test_inapplicable_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            execute_spec(_spec(config="gradecast", strategy="boost-flood"))

    def test_inapplicable_schedule_rejected(self):
        with pytest.raises(ConfigurationError):
            execute_spec(
                _spec(config="dolev_strong", n=8, schedule="crash-everyone")
            )

    def test_unknown_names_rejected(self):
        with pytest.raises(ConfigurationError):
            execute_spec(_spec(config="nope"))
        with pytest.raises(ConfigurationError):
            execute_spec(_spec(strategy="nope"))
        with pytest.raises(ConfigurationError):
            execute_spec(_spec(schedule="nope"))


class TestRunCampaignCheap:
    """Sweep mechanics exercised on a restricted fast matrix."""

    def _matrix(self):
        from repro.campaign.matrix import ProtocolConfig

        return [
            ProtocolConfig(
                name="phase_king",
                kind="phase_king",
                n=16,
                schedules=("none", "crash-corrupted", "crash-everyone"),
            ),
            ProtocolConfig(
                name="gradecast",
                kind="gradecast",
                n=16,
                schedules=("none",),
            ),
        ]

    def test_summary_counts(self, tmp_path):
        lines = []
        summary = run_campaign(
            12,
            0,
            matrix=self._matrix(),
            results_dir=str(tmp_path),
            emit=lines.append,
        )
        assert len(summary.outcomes) == 12
        assert summary.passed + summary.expected_failures + len(
            summary.unexpected_failures
        ) == 12
        assert summary.ok, [
            format_spec(o.spec) for o in summary.unexpected_failures
        ]
        # crash-everyone cells fail loudly, as expected failures.
        assert summary.expected_failures > 0
        assert any("EXPECTED-FAIL" in line for line in lines)
        assert summary.bench_path is not None

    def test_bench_json_shape(self, tmp_path):
        import json

        summary = run_campaign(
            6, 0, matrix=self._matrix(), results_dir=str(tmp_path)
        )
        payload = json.loads(
            (tmp_path / "BENCH_campaign.json").read_text()
        )
        extra = payload["extra"] if "extra" in payload else payload
        assert extra["cells"] == 6
        assert len(extra["specs"]) == 6
        for line in extra["failing_specs"]:
            parse_spec(line)  # every recorded spec replays syntactically

    def test_sweep_deterministic(self):
        a = run_campaign(8, 3, matrix=self._matrix())
        b = run_campaign(8, 3, matrix=self._matrix())
        assert [format_spec(o.spec) for o in a.outcomes] == [
            format_spec(o.spec) for o in b.outcomes
        ]
        assert [o.signature for o in a.outcomes] == [
            o.signature for o in b.outcomes
        ]

    def test_zero_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            run_campaign(0, 0, matrix=self._matrix())


@pytest.mark.campaign
class TestFullMatrixSmoke:
    """The acceptance sweep: the first 25 cells of the real matrix are
    deterministic and free of unexpected failures."""

    def test_budget_25_seed_0(self, tmp_path):
        summary = run_campaign(25, 0, results_dir=str(tmp_path))
        assert summary.ok, [
            format_spec(o.spec) for o in summary.unexpected_failures
        ]
        assert len(summary.outcomes) == 25

    def test_planted_cells_fail_and_replay(self):
        from repro.campaign.matrix import enumerate_cells

        planted = [
            c for c in enumerate_cells(0, include_planted=True)
            if c.strategy_name == "over-threshold"
        ]
        assert planted, "the full matrix must contain planted cells"
        # One per config suffices: every plant must fail loudly and
        # its emitted spec must replay to the identical failure.
        seen_configs = set()
        for cell in planted:
            if cell.config.name in seen_configs:
                continue
            seen_configs.add(cell.config.name)
            outcome = execute_spec(cell.spec)
            assert outcome.failed and outcome.expected_failure
            replayed = execute_spec(parse_spec(format_spec(outcome.spec)))
            assert replayed.signature == outcome.signature
            assert replayed.spec == outcome.spec

    def test_pi_ba_cells_pass_with_bits_budget(self):
        outcome = execute_spec(
            CampaignSpec(
                config="pi_ba-snark",
                strategy="honest",
                schedule="none",
                n=16,
                seed=0,
            )
        )
        assert not outcome.failed
        assert outcome.measured_bits is not None
        assert outcome.budget_bits is not None
        assert outcome.measured_bits <= outcome.budget_bits
