"""Tests for Schnorr signatures."""

import pytest

from repro.crypto import ec, schnorr
from repro.errors import KeyError_
from repro.utils.randomness import Randomness


@pytest.fixture
def keypair(rng):
    return schnorr.keygen(rng)


class TestSignVerify:
    def test_valid_signature(self, keypair):
        signature = schnorr.sign(keypair, b"message")
        assert schnorr.verify(keypair.public, b"message", signature)

    def test_wrong_message_rejected(self, keypair):
        signature = schnorr.sign(keypair, b"message")
        assert not schnorr.verify(keypair.public, b"other", signature)

    def test_wrong_key_rejected(self, keypair, rng):
        other = schnorr.keygen(rng.fork("other"))
        signature = schnorr.sign(keypair, b"message")
        assert not schnorr.verify(other.public, b"message", signature)

    def test_deterministic_signing(self, keypair):
        assert schnorr.sign(keypair, b"m").encode() == schnorr.sign(
            keypair, b"m"
        ).encode()

    def test_distinct_messages_distinct_nonces(self, keypair):
        sig_a = schnorr.sign(keypair, b"a")
        sig_b = schnorr.sign(keypair, b"b")
        assert sig_a.nonce_point != sig_b.nonce_point

    def test_identity_public_key_rejected(self, keypair):
        signature = schnorr.sign(keypair, b"m")
        assert not schnorr.verify(ec.IDENTITY, b"m", signature)

    def test_out_of_range_response_rejected(self, keypair):
        signature = schnorr.sign(keypair, b"m")
        bad = schnorr.SchnorrSignature(
            nonce_point=signature.nonce_point, response=ec.N
        )
        assert not schnorr.verify(keypair.public, b"m", bad)

    def test_tampered_signature_rejected(self, keypair):
        signature = schnorr.sign(keypair, b"m")
        tampered = schnorr.SchnorrSignature(
            nonce_point=signature.nonce_point,
            response=(signature.response + 1) % ec.N,
        )
        assert not schnorr.verify(keypair.public, b"m", tampered)


class TestEncoding:
    def test_roundtrip(self, keypair):
        signature = schnorr.sign(keypair, b"m")
        decoded = schnorr.SchnorrSignature.decode(signature.encode())
        assert decoded == signature

    def test_wire_size(self, keypair):
        assert len(schnorr.sign(keypair, b"m").encode()) == 65

    def test_malformed_rejected(self):
        with pytest.raises(KeyError_):
            schnorr.SchnorrSignature.decode(b"short")

    def test_public_key_bytes(self, keypair):
        assert len(keypair.public_bytes) == 33


class TestKeygen:
    def test_distinct_keys(self, rng):
        a = schnorr.keygen(rng.fork("a"))
        b = schnorr.keygen(rng.fork("b"))
        assert a.public != b.public

    def test_public_matches_secret(self, keypair):
        assert keypair.public == ec.commit(keypair.secret)
