"""Tests for the amortized broadcast service (Corollary 1.2(1))."""

import pytest

from repro.errors import ProtocolError
from repro.net.adversary import random_corruption
from repro.params import ProtocolParameters
from repro.protocols.broadcast import BroadcastService
from repro.srds.base_sigs import HashRegistryBase
from repro.srds.snark_based import SnarkSRDS
from repro.utils.randomness import Randomness

N = 64


@pytest.fixture(scope="module")
def service():
    params = ProtocolParameters()
    rng = Randomness(31)
    plan = random_corruption(N, params.max_corruptions(N), rng.fork("c"))
    svc = BroadcastService(
        N, plan, SnarkSRDS(base_scheme=HashRegistryBase()), params,
        rng.fork("svc"),
    )
    svc.setup()
    return svc, plan


class TestBroadcast:
    def test_honest_sender_consistent(self, service):
        svc, plan = service
        sender = plan.honest[0]
        outcome = svc.broadcast(sender, 1)
        assert outcome.agreement
        assert outcome.consistent_with_sender
        for party in plan.honest:
            assert outcome.outputs[party] == 1

    def test_zero_bit(self, service):
        svc, plan = service
        outcome = svc.broadcast(plan.honest[1], 0)
        assert outcome.agreement and outcome.consistent_with_sender

    def test_corrupt_sender_still_agrees(self, service):
        svc, plan = service
        corrupt = next(iter(plan.corrupted))
        outcome = svc.broadcast(corrupt, 1)
        assert outcome.agreement  # consistency may bind to any value

    def test_multiple_executions_amortize(self, service):
        svc, plan = service
        before = svc.snapshot().max_bits_per_party
        svc.broadcast(plan.honest[2], 1)
        after_one = svc.snapshot().max_bits_per_party
        svc.broadcast(plan.honest[3], 0)
        after_two = svc.snapshot().max_bits_per_party
        per_execution = after_two - after_one
        setup_and_first = after_one
        # Marginal cost per broadcast is well below setup + first run.
        assert 0 < per_execution < setup_and_first

    def test_requires_setup(self):
        params = ProtocolParameters()
        rng = Randomness(1)
        plan = random_corruption(N, params.max_corruptions(N), rng.fork("c"))
        svc = BroadcastService(
            N, plan, SnarkSRDS(base_scheme=HashRegistryBase()), params, rng
        )
        with pytest.raises(ProtocolError):
            svc.broadcast(0, 1)

    def test_execution_counter(self, service):
        svc, _ = service
        start = svc.executions
        svc.broadcast(0 if not svc.plan.is_corrupt(0) else 1, 1)
        assert svc.executions == start + 1
