"""Static-corruption machinery.

The paper's model (§1.1 "One remark regarding the corruption model"): the
adversary corrupts parties *adaptively during the setup phase* — as a
function of all public setup information (CRS, bulletin board) — and is
static once the online phase starts.  :class:`CorruptionPlan` captures
exactly that: a strategy object inspects the public setup and commits to
a corrupted set of at most ``t`` parties before any protocol message
flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.utils.randomness import Randomness


@dataclass(frozen=True)
class CorruptionPlan:
    """An immutable static corruption set."""

    corrupted: FrozenSet[int]
    n: int

    def __post_init__(self) -> None:
        if any(not 0 <= i < self.n for i in self.corrupted):
            raise ConfigurationError("corrupted id out of range")

    def is_corrupt(self, party_id: int) -> bool:
        """Whether a party is under adversarial control."""
        return party_id in self.corrupted

    @property
    def honest(self) -> List[int]:
        """Sorted list of honest party ids."""
        return [i for i in range(self.n) if i not in self.corrupted]

    @property
    def t(self) -> int:
        """Number of corrupted parties."""
        return len(self.corrupted)


def random_corruption(n: int, t: int, rng: Randomness) -> CorruptionPlan:
    """Corrupt a uniformly random t-subset (the baseline adversary)."""
    if not 0 <= t < n:
        raise ConfigurationError(f"cannot corrupt {t} of {n} parties")
    return CorruptionPlan(corrupted=frozenset(rng.sample(range(n), t)), n=n)


def prefix_corruption(n: int, t: int) -> CorruptionPlan:
    """Corrupt parties 0..t-1 (a worst-case clustered adversary for
    structures keyed by party index)."""
    if not 0 <= t < n:
        raise ConfigurationError(f"cannot corrupt {t} of {n} parties")
    return CorruptionPlan(corrupted=frozenset(range(t)), n=n)


def targeted_corruption(n: int, targets: Sequence[int]) -> CorruptionPlan:
    """Corrupt an explicit set (setup-dependent adversaries use this after
    inspecting the bulletin board)."""
    return CorruptionPlan(corrupted=frozenset(targets), n=n)


# A setup-adaptive corruption strategy: receives the public setup
# transcript (opaque bytes chosen by the experiment) and the randomness
# source, returns the corrupted set.
SetupAdaptiveStrategy = Callable[[bytes, int, int, Randomness], CorruptionPlan]


def corrupt_after_setup(
    public_setup: bytes,
    n: int,
    t: int,
    rng: Randomness,
    strategy: Optional[SetupAdaptiveStrategy] = None,
) -> CorruptionPlan:
    """Run the setup-adaptive corruption step of the paper's model.

    With no strategy the corruption is uniformly random; experiments pass
    strategies that, e.g., target parties whose published keys have some
    property (the bare-PKI adversary's power).
    """
    if strategy is None:
        return random_corruption(n, t, rng)
    plan = strategy(public_setup, n, t, rng)
    if plan.t > t:
        raise ConfigurationError(
            f"strategy corrupted {plan.t} parties, budget is {t}"
        )
    return plan
