"""Phase-attributed communication of pi_ba (§3.1 cost decomposition).

Two pins:

* a **golden file** (``golden/phase_breakdown_n16.json``) freezing the
  exact per-phase breakdown of a seeded n=16 execution for both SRDS
  constructions — any change to protocol message flow, encodings, or
  span placement shows up as a diff here and must be re-golded
  consciously;
* the **attribution invariant**: for every party, the per-phase bits sum
  to exactly the party's ``bits_total``, and the max over parties equals
  ``max_bits_per_party`` — phases are a partition of the ledger, never
  an estimate.
"""

import dataclasses
import json
import pathlib

import pytest

from repro.net.adversary import random_corruption
from repro.net.metrics import CommunicationMetrics
from repro.obs.spans import UNATTRIBUTED, recording
from repro.params import ProtocolParameters
from repro.protocols.balanced_ba import run_balanced_ba
from repro.srds.base_sigs import HashRegistryBase
from repro.srds.owf import OwfSRDS
from repro.srds.snark_based import SnarkSRDS
from repro.utils.randomness import Randomness

N = 16
SEED = 2021
GOLDEN = pathlib.Path(__file__).parent / "golden" / "phase_breakdown_n16.json"

SCHEMES = {
    "snark-srds": lambda: SnarkSRDS(base_scheme=HashRegistryBase()),
    "owf-srds": lambda: OwfSRDS(message_bits=64),
}


@pytest.fixture(scope="module")
def executions():
    """One seeded n=16 run per SRDS construction, phase-instrumented."""
    runs = {}
    for label, make_scheme in SCHEMES.items():
        params = ProtocolParameters()
        rng = Randomness(SEED)
        plan = random_corruption(N, params.max_corruptions(N), rng.fork("c"))
        inputs = {i: i % 2 for i in range(N)}
        metrics = CommunicationMetrics()
        with recording():
            result = run_balanced_ba(
                inputs, plan, make_scheme(), params, rng.fork(label),
                metrics=metrics,
            )
        runs[label] = (result, metrics)
    return runs


class TestGoldenBreakdown:
    @pytest.mark.parametrize("label", sorted(SCHEMES))
    def test_breakdown_matches_golden(self, executions, label):
        golden = json.loads(GOLDEN.read_text(encoding="utf-8"))
        _, metrics = executions[label]
        measured = {
            phase: dataclasses.asdict(stats)
            for phase, stats in metrics.phase_breakdown().items()
        }
        assert measured == golden[label], (
            "phase breakdown drifted from the golden file; if the change "
            "is intentional, regenerate tests/protocols/golden/"
            "phase_breakdown_n16.json"
        )

    def test_both_schemes_agree(self, executions):
        for label, (result, _) in executions.items():
            assert result.agreement, label

    def test_srds_aggregation_dominates(self, executions):
        # §3.1: the tree aggregation phase carries the bulk of the cost.
        for label, (_, metrics) in executions.items():
            breakdown = metrics.phase_breakdown()
            heaviest = max(
                breakdown.values(), key=lambda stats: stats.total_bits
            )
            assert heaviest.phase == "srds-aggregate", label


class TestAttributionInvariant:
    @pytest.mark.parametrize("label", sorted(SCHEMES))
    def test_phase_sums_equal_bits_total_per_party(self, executions, label):
        _, metrics = executions[label]
        sums = {}
        for party_id in metrics.party_ids:
            phase_sum = sum(metrics.bits_by_phase(party_id).values())
            assert phase_sum == metrics.tally_of(party_id).bits_total
            sums[party_id] = phase_sum
        assert max(sums.values()) == metrics.max_bits_per_party

    @pytest.mark.parametrize("label", sorted(SCHEMES))
    def test_everything_attributed(self, executions, label):
        # The whole protocol runs inside spans: no unattributed charges.
        _, metrics = executions[label]
        assert UNATTRIBUTED not in metrics.phases

    @pytest.mark.parametrize("label", sorted(SCHEMES))
    def test_breakdown_totals_cross_check(self, executions, label):
        _, metrics = executions[label]
        breakdown = metrics.phase_breakdown()
        per_phase_from_parties = {}
        for party_id in metrics.party_ids:
            for phase, bits in metrics.bits_by_phase(party_id).items():
                per_phase_from_parties[phase] = (
                    per_phase_from_parties.get(phase, 0) + bits
                )
        assert per_phase_from_parties == {
            phase: stats.total_bits for phase, stats in breakdown.items()
        }
