"""The NDJSON wire protocol: framing, validation, response shapes."""

import json

import pytest

from repro.errors import GatewayError
from repro.serve import wire


class TestFraming:
    def test_encode_line_is_sorted_compact_json_with_newline(self):
        line = wire.encode_line({"b": 1, "a": {"z": 0, "y": 1}})
        assert line.endswith(b"\n")
        assert line == b'{"a": {"y": 1, "z": 0}, "b": 1}\n'

    def test_round_trip(self):
        payload = {"op": "submit", "n": 16, "scheme": "owf", "seed": 7}
        assert wire.decode_line(wire.encode_line(payload).rstrip()) == payload

    def test_oversized_line_rejected(self):
        blob = b'{"op": "ping", "pad": "' + b"x" * wire.MAX_LINE_BYTES + b'"}'
        with pytest.raises(GatewayError, match="exceeds"):
            wire.decode_line(blob)

    def test_malformed_json_rejected(self):
        with pytest.raises(GatewayError, match="malformed"):
            wire.decode_line(b"{not json")

    def test_non_object_rejected(self):
        with pytest.raises(GatewayError, match="JSON object"):
            wire.decode_line(b"[1, 2, 3]")


class TestRequestValidation:
    def test_all_declared_ops_accepted(self):
        for op in wire.OPS:
            payload = {"op": op}
            if op in ("await", "cancel"):
                payload["session"] = "s-1"
            assert wire.decode_request(wire.encode_line(payload).rstrip())

    def test_unknown_op_rejected(self):
        with pytest.raises(GatewayError, match="unknown op"):
            wire.decode_request(b'{"op": "steal-keys"}')

    def test_missing_op_rejected(self):
        with pytest.raises(GatewayError, match="unknown op"):
            wire.decode_request(b'{"n": 16}')

    @pytest.mark.parametrize("op", ["await", "cancel"])
    def test_session_required(self, op):
        with pytest.raises(GatewayError, match="requires a 'session'"):
            wire.decode_request(json.dumps({"op": op}).encode())

    def test_non_string_session_rejected(self):
        with pytest.raises(GatewayError, match="'session'"):
            wire.decode_request(b'{"op": "await", "session": 7}')

    @pytest.mark.parametrize("timeout", [-1, "soon", True])
    def test_bad_timeout_rejected(self, timeout):
        line = json.dumps(
            {"op": "await", "session": "s-1", "timeout": timeout}
        ).encode()
        with pytest.raises(GatewayError, match="'timeout'"):
            wire.decode_request(line)


class TestResponses:
    def test_ok_shape(self):
        assert wire.ok(session="s-1") == {"ok": True, "session": "s-1"}

    def test_reject_shape_and_retry_after_rounding(self):
        response = wire.reject("busy", "lanes full", retry_after=0.123456)
        assert response == {
            "ok": False, "code": "busy", "error": "lanes full",
            "retry_after": 0.123,
        }

    def test_reject_without_retry_after_omits_field(self):
        assert "retry_after" not in wire.reject("failed", "boom")

    def test_unknown_reject_code_is_a_bug(self):
        with pytest.raises(GatewayError, match="unknown reject code"):
            wire.reject("nope", "x")

    def test_every_declared_code_usable(self):
        for code in wire.REJECT_CODES:
            assert wire.reject(code, "msg")["code"] == code
