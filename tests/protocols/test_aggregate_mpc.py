"""Tests for the f_aggr-sig committee functionality."""

import pytest

from repro.net.metrics import CommunicationMetrics
from repro.protocols.aggregate_mpc import run_aggregate_sig
from repro.srds.base_sigs import HashRegistryBase
from repro.srds.snark_based import SnarkSRDS
from repro.utils.randomness import Randomness

N = 40


@pytest.fixture(scope="module")
def deployment():
    rng = Randomness(4)
    scheme = SnarkSRDS(base_scheme=HashRegistryBase())
    pp = scheme.setup(N, rng.fork("s"))
    vks, sks = {}, {}
    for i in range(N):
        vks[i], sks[i] = scheme.keygen(pp, rng.fork(f"k{i}"))
    return scheme, pp, vks, sks


def _filtered(deployment, message, indices):
    scheme, pp, vks, sks = deployment
    signatures = [scheme.sign(pp, i, sks[i], message) for i in indices]
    return scheme.aggregate1(pp, vks, message, signatures)


class TestMajorityFilter:
    def test_unanimous_committee(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"m"
        filtered = _filtered(deployment, message, range(20))
        members = list(range(5))
        submissions = {m: (message, filtered) for m in members}
        metrics = CommunicationMetrics()
        result = run_aggregate_sig(scheme, pp, members, submissions, metrics)
        assert result is not None and result.count == 20

    def test_minority_submission_dropped(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"m"
        common = _filtered(deployment, message, range(10))
        extra = _filtered(deployment, message, range(10, 12))
        members = list(range(5))
        submissions = {m: (message, common) for m in members[:4]}
        # One member sneaks in two extra contributions nobody else saw.
        submissions[members[4]] = (message, common + extra)
        metrics = CommunicationMetrics()
        result = run_aggregate_sig(scheme, pp, members, submissions, metrics)
        assert result.count == 10

    def test_majority_message_selected(self, deployment):
        scheme, pp, vks, _ = deployment
        good, bad = b"good", b"bad"
        filtered_good = _filtered(deployment, good, range(15))
        filtered_bad = _filtered(deployment, bad, range(15, 18))
        members = list(range(5))
        submissions = {m: (good, filtered_good) for m in members[:3]}
        submissions[members[3]] = (bad, filtered_bad)
        submissions[members[4]] = (bad, filtered_bad)
        metrics = CommunicationMetrics()
        result = run_aggregate_sig(scheme, pp, members, submissions, metrics)
        assert result.count == 15  # 'good' was the majority message

    def test_empty_submissions(self, deployment):
        scheme, pp, _, _ = deployment
        metrics = CommunicationMetrics()
        assert run_aggregate_sig(scheme, pp, [0, 1, 2], {}, metrics) is None

    def test_silent_members_tolerated(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"m"
        filtered = _filtered(deployment, message, range(20))
        members = list(range(7))
        submissions = {m: (message, filtered) for m in members[:4]}
        metrics = CommunicationMetrics()
        result = run_aggregate_sig(scheme, pp, members, submissions, metrics)
        assert result is not None and result.count == 20

    def test_below_majority_yields_none(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"m"
        filtered = _filtered(deployment, message, range(5))
        members = list(range(7))
        submissions = {members[0]: (message, filtered)}
        metrics = CommunicationMetrics()
        assert run_aggregate_sig(
            scheme, pp, members, submissions, metrics
        ) is None


class TestCharging:
    def test_members_charged(self, deployment):
        scheme, pp, vks, _ = deployment
        message = b"m"
        filtered = _filtered(deployment, message, range(10))
        members = list(range(5))
        submissions = {m: (message, filtered) for m in members}
        metrics = CommunicationMetrics()
        run_aggregate_sig(scheme, pp, members, submissions, metrics)
        for member in members:
            assert metrics.tally_of(member).bits_total > 0
