"""Seed-stability regression: pinned trace fingerprints for π_ba.

The runtime promises bit-level determinism: one seed, one trace.  The
differential tests check *within-process* stability (same seed twice in
one run); this module pins the actual fingerprints, so an accidental
change to message encoding, delivery order, randomness forking, or
transport framing — anything that silently alters the wire behavior —
fails loudly here even though outputs still agree.

If a deliberate protocol change lands, re-pin by running::

    PYTHONPATH=src python -c "
    from tests.runtime.test_seed_stability import compute_fingerprint
    for s in ('snark', 'owf'):
        for t in ('local', 'tcp'):
            print(s, t, compute_fingerprint(s, t))"
"""

import pytest

from repro.net.adversary import random_corruption
from repro.params import ProtocolParameters
from repro.runtime import TraceRecorder, run_balanced_ba_runtime
from repro.srds.base_sigs import HashRegistryBase
from repro.srds.owf import OwfSRDS
from repro.srds.snark_based import SnarkSRDS
from repro.utils.randomness import Randomness

N = 16
SEED = 7

# One fingerprint per SRDS scheme: the trace is transport-independent
# (local asyncio queues and TCP must produce identical round/delivery
# schedules), which the test asserts explicitly.
PINNED = {
    "snark": "64f9143f0a362671e9b6557dd7468bea99910bce793cc24e29f2361dc7b2d753",
    "owf": "3292ba08626b5e167ec27d569f96f3fcd14645e4cc074a26fa8802bf9bca7778",
}


def compute_fingerprint(scheme_name: str, transport: str) -> str:
    params = ProtocolParameters()
    rng = Randomness(SEED)
    plan = random_corruption(
        N, params.max_corruptions(N), rng.fork("corrupt")
    )
    inputs = {i: i % 2 for i in range(N)}
    scheme = (
        SnarkSRDS(base_scheme=HashRegistryBase())
        if scheme_name == "snark"
        else OwfSRDS(message_bits=64)
    )
    trace = TraceRecorder()
    run_balanced_ba_runtime(
        inputs,
        plan,
        scheme,
        params,
        rng.fork("run"),
        transport=transport,
        trace=trace,
    )
    return trace.fingerprint()


class TestSeedStability:
    @pytest.mark.parametrize("transport", ["local", "tcp"])
    @pytest.mark.parametrize("scheme_name", sorted(PINNED))
    def test_fingerprint_matches_pin(self, scheme_name, transport):
        assert compute_fingerprint(scheme_name, transport) == PINNED[
            scheme_name
        ], (
            "trace fingerprint drifted — if the protocol change is "
            "deliberate, re-pin per the module docstring"
        )

    def test_transports_agree(self):
        # Redundant with the pins while both hold, but localizes the
        # diagnosis when one drifts: scheme change vs transport change.
        assert compute_fingerprint("snark", "local") == compute_fingerprint(
            "snark", "tcp"
        )
