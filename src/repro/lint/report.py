"""Reporters: human text and machine JSON (``repro-lint-report/1``).

The JSON document is the CI artifact — it carries the full decomposition
(new / baselined / suppressed / meta) so a dashboard can plot the
burn-down without re-running the linter.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from repro.lint.baseline import BaselineEntry, RatchetOutcome
from repro.lint.engine import LintResult
from repro.lint.model import Severity, Violation
from repro.lint.pragmas import Pragma

REPORT_SCHEMA = "repro-lint-report/1"


def _violation_payload(violation: Violation) -> Dict[str, Any]:
    return {
        "rule": violation.rule_id,
        "severity": str(violation.severity),
        "path": violation.path,
        "line": violation.line,
        "col": violation.col,
        "symbol": violation.symbol,
        "message": violation.message,
        "fix_hint": violation.fix_hint,
        "snippet": violation.snippet,
    }


def render_json(
    result: LintResult,
    ratchet: RatchetOutcome,
    exit_code: int,
) -> str:
    """The machine report (stable key order, newline-terminated)."""
    payload: Dict[str, Any] = {
        "schema": REPORT_SCHEMA,
        "exit_code": exit_code,
        "files_checked": result.files_checked,
        "counts": {
            "new": len(ratchet.new),
            "baselined": len(ratchet.baselined),
            "suppressed": len(result.suppressed),
            "stale_baseline_entries": len(ratchet.stale),
            "meta": len(result.meta_violations),
        },
        "new": [_violation_payload(v) for v in ratchet.new],
        "baselined": [_violation_payload(v) for v in ratchet.baselined],
        "suppressed": [
            {
                **_violation_payload(violation),
                "pragma_line": pragma.line,
                "pragma_reason": pragma.reason,
            }
            for violation, pragma in result.suppressed
        ],
        "stale_baseline_entries": [
            {
                "rule": entry.rule,
                "path": entry.path,
                "symbol": entry.symbol,
                "snippet": entry.snippet,
                "count": entry.count,
            }
            for entry in ratchet.stale
        ],
        "meta": [_violation_payload(v) for v in result.meta_violations],
    }
    return json.dumps(payload, indent=2) + "\n"


def render_text(
    result: LintResult,
    ratchet: RatchetOutcome,
) -> str:
    """The human report: findings first, then the one-line summary."""
    sections: List[str] = []

    def emit(title: str, violations: List[Violation]) -> None:
        if not violations:
            return
        lines = [f"-- {title} " + "-" * max(0, 60 - len(title))]
        lines.extend(v.format() for v in violations)
        sections.append("\n".join(lines))

    emit("new violations (fail)", ratchet.new)
    meta_errors = [
        v for v in result.meta_violations if v.severity is Severity.ERROR
    ]
    meta_warnings = [
        v for v in result.meta_violations if v.severity is Severity.WARNING
    ]
    emit("annotation problems (fail)", meta_errors)
    emit("baselined legacy violations (tracked, passing)", ratchet.baselined)
    emit("advisories", meta_warnings)

    if ratchet.stale:
        lines = ["-- stale baseline entries (debt already paid) " + "-" * 14]
        for entry in ratchet.stale:
            lines.append(
                f"{entry.path}: {entry.rule} x{entry.count} in "
                f"{entry.symbol} — no longer occurs; run "
                "`lint baseline` to shrink the baseline"
            )
        sections.append("\n".join(lines))

    if result.suppressed:
        lines = [f"pragma-suppressed: {len(result.suppressed)} "
                 "(see --format json for the audit trail)"]
        sections.append("\n".join(lines))

    summary = (
        f"checked {result.files_checked} files: "
        f"{len(ratchet.new)} new, {len(ratchet.baselined)} baselined, "
        f"{len(result.suppressed)} suppressed, "
        f"{len(ratchet.stale)} stale baseline entries, "
        f"{len(meta_errors)} annotation errors"
    )
    sections.append(summary)
    return "\n\n".join(sections) + "\n"


def summarize_by_rule(
    violations: List[Violation],
) -> List[Tuple[str, int]]:
    """(rule id, count) pairs, most frequent first (for burndown views)."""
    counts: Dict[str, int] = {}
    for violation in violations:
        counts[violation.rule_id] = counts.get(violation.rule_id, 0) + 1
    return sorted(counts.items(), key=lambda item: (-item[1], item[0]))


def stale_entries_payload(stale: List[BaselineEntry]) -> List[Dict[str, Any]]:
    """JSON-shaped stale entries (shared by reporters and tests)."""
    return [
        {
            "rule": entry.rule,
            "path": entry.path,
            "symbol": entry.symbol,
            "snippet": entry.snippet,
            "count": entry.count,
        }
        for entry in stale
    ]


def suppressions_payload(
    suppressed: List[Tuple[Violation, Pragma]],
) -> List[Dict[str, Any]]:
    """JSON-shaped pragma suppressions (audit trail helper)."""
    return [
        {
            **_violation_payload(violation),
            "pragma_line": pragma.line,
            "pragma_reason": pragma.reason,
        }
        for violation, pragma in suppressed
    ]
