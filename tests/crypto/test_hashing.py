"""Tests for the CRH substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto import hashing


class TestHashDomain:
    def test_deterministic(self):
        assert hashing.hash_domain("d", b"x") == hashing.hash_domain("d", b"x")

    def test_domain_separation(self):
        assert hashing.hash_domain("a", b"x") != hashing.hash_domain("b", b"x")

    def test_digest_width(self):
        assert len(hashing.hash_domain("d", b"x")) == hashing.DIGEST_BYTES

    @given(st.lists(st.binary(max_size=32), min_size=1, max_size=4),
           st.lists(st.binary(max_size=32), min_size=1, max_size=4))
    def test_tuple_injective(self, a, b):
        if a != b:
            assert hashing.hash_domain("d", *a) != hashing.hash_domain("d", *b)

    def test_field_boundary_shift_distinct(self):
        assert hashing.hash_domain("d", b"ab", b"c") != hashing.hash_domain(
            "d", b"a", b"bc"
        )


class TestHashToInt:
    def test_range(self):
        value = hashing.hash_to_int("d", b"x")
        assert 0 <= value < 1 << 256

    def test_matches_bytes(self):
        assert hashing.hash_to_int("d", b"x") == int.from_bytes(
            hashing.hash_domain("d", b"x"), "big"
        )


class TestHashChain:
    def test_empty_chain_defined(self):
        assert len(hashing.hash_chain("d", [])) == 32

    def test_order_sensitive(self):
        assert hashing.hash_chain("d", [b"a", b"b"]) != hashing.hash_chain(
            "d", [b"b", b"a"]
        )

    def test_extension_changes_digest(self):
        short = hashing.hash_chain("d", [b"a"])
        long = hashing.hash_chain("d", [b"a", b"b"])
        assert short != long

    def test_incremental_equals_batch(self):
        batch = hashing.hash_chain("d", [b"a", b"b", b"c"])
        running = hashing.hash_domain("d", b"chain-init")
        for item in (b"a", b"b", b"c"):
            running = hashing.hash_domain("d", running, item)
        assert running == batch


class TestTruncatedHash:
    def test_full_width_passthrough(self):
        assert hashing.truncated_hash("d", 32, b"x") == hashing.hash_domain("d", b"x")

    def test_truncation(self):
        assert len(hashing.truncated_hash("d", 16, b"x")) == 16

    def test_below_128_bits_refused(self):
        with pytest.raises(ValueError):
            hashing.truncated_hash("d", 8, b"x")
