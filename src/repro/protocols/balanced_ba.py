"""pi_ba — Byzantine agreement with balanced polylog communication (Fig. 3).

The headline protocol of the paper: boost almost-everywhere agreement to
full agreement using an SRDS scheme, with every party communicating
polylog(n) * poly(kappa) bits.

Execution model.  The protocol is stated in the (f_ae-comm, f_ba, f_ct,
f_aggr-sig)-hybrid model; this implementation follows that statement
literally.  All *protocol* messages — base-signature sends (step 4),
within-committee set broadcasts (step 5b), child-to-parent aggregate
sends (step 5d), and the final one-round boost (steps 7-8) — are charged
at their exact encoded sizes, party by party, to the shared metrics
ledger.  The four functionalities are evaluated functionally with their
realization costs charged per :mod:`repro.protocols.cost_model`; their
concrete message-passing realizations (phase-king, VSS coin toss) live in
sibling modules and a consistency test pins the analytic charges above
the measured concrete costs.

Adversary.  Corruption is static (fixed by a :class:`CorruptionPlan`
chosen after the public setup, per the paper's model).  Corrupt behaviour
is injected through :class:`AdversaryBehavior` hooks at every point where
the paper gives the adversary a move: choice of corrupt signing messages,
outputs of bad tree nodes, and extra messages in the final boost round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.aetree.analysis import is_good_node
from repro.aetree.tree import CommTree, TreeNode
from repro.crypto.prf import SubsetPRF
from repro.errors import ProtocolError
from repro.functionalities.ae_comm import AlmostEverywhereComm
from repro.net.adversary import CorruptionPlan
from repro.net.metrics import CommunicationMetrics, MetricsSnapshot
from repro.obs.spans import span
from repro.params import ProtocolParameters
from repro.protocols import cost_model
from repro.protocols.aggregate_mpc import run_aggregate_sig
from repro.protocols.coin_toss import ideal_f_ct
from repro.protocols.phase_king import ideal_f_ba
from repro.srds.base import SRDSScheme, SRDSSignature
from repro.utils.randomness import Randomness
from repro.utils.serialization import canonical_tuple, encode_uint


@dataclass
class AdversaryBehavior:
    """Hooks for corrupt-party behaviour inside pi_ba.

    Every hook has a conservative default (do nothing / drop), which is
    the worst case for *robustness*; attack-specific tests override them.

    Attributes:
        sign_message: given (party_id, virtual_id, honest_pair_message),
            return the message the corrupt party signs, or ``None`` to
            stay silent.
        bad_node_output: given (node, message, adversary_view_signatures),
            return the aggregate the adversary emits for a bad node, or
            ``None`` to drop the subtree.
        boost_messages: extra ``(sender, recipient, y, seed, signature)``
            tuples injected in the final round.
        ba_choice: the value f_ba lets the adversary pick when honest
            inputs are split.
    """

    sign_message: Optional[Callable[[int, int, bytes], Optional[bytes]]] = None
    bad_node_output: Optional[
        Callable[[TreeNode, bytes, List[SRDSSignature]], Optional[SRDSSignature]]
    ] = None
    boost_messages: Optional[
        Callable[[], List[Tuple[int, int, int, bytes, Optional[SRDSSignature]]]]
    ] = None
    ba_choice: int = 0


@dataclass(frozen=True)
class BAResult:
    """Outcome of one pi_ba execution."""

    outputs: Dict[int, Optional[int]]
    agreed_value: Optional[int]
    agreement: bool
    validity: bool
    metrics: MetricsSnapshot
    certificate_bytes: int
    num_virtual: int
    isolated_before_boost: int
    supreme_committee_size: int


def encode_pair(y: int, seed: bytes) -> bytes:
    """The signed message (y, s) of Fig. 3, canonically encoded."""
    return canonical_tuple(encode_uint(y), seed)


@dataclass(frozen=True)
class SRDSSetupMaterial:
    """The pre-protocol SRDS setup of one pi_ba execution.

    Everything Fig. 3's setup phase produces before the first protocol
    message: the scheme's public parameters and the per-virtual-identity
    key pairs.  Producing this material charges *nothing* to the
    communication ledger (setup is the trusted/amortized phase the paper
    excludes from the per-party budget), so a cached copy can replace a
    fresh computation without perturbing any bit tally — which is
    exactly how the :mod:`repro.serve` gateway amortizes keygen across
    repeated invocations per Corollary 1.2.

    ``rng_seed`` records the seed of the :class:`Randomness` the
    material was derived from; consumers use it to refuse material that
    would diverge from a fresh computation.
    """

    rng_seed: int
    num_virtual: int
    public_parameters: object
    verification_keys: Dict[int, bytes]
    signing_keys: Dict[int, object]


#: Signature of the pluggable setup source consumed by
#: :class:`BalancedBA`: ``(scheme, num_virtual, rng) -> material``.
SetupProvider = Callable[[SRDSScheme, int, Randomness], SRDSSetupMaterial]


def compute_srds_setup(
    scheme: SRDSScheme, num_virtual: int, rng: Randomness
) -> SRDSSetupMaterial:
    """Run SRDS ``Setup`` + per-virtual-id ``KeyGen`` (the default provider).

    Forks are label-derived (stateless), so the material is a pure
    function of ``(scheme, num_virtual, rng.seed)``: precomputing it —
    or caching it across executions — yields byte-identical keys to the
    in-line computation :class:`BalancedBA` historically performed.
    """
    pp = scheme.setup(num_virtual, rng.fork("srds-setup"))
    verification_keys: Dict[int, bytes] = {}
    signing_keys: Dict[int, object] = {}
    for virtual_id in range(num_virtual):
        vk, sk = scheme.keygen(pp, rng.fork(f"kg-{virtual_id}"))
        verification_keys[virtual_id] = vk
        signing_keys[virtual_id] = sk
    return SRDSSetupMaterial(
        rng_seed=rng.seed,
        num_virtual=num_virtual,
        public_parameters=pp,
        verification_keys=verification_keys,
        signing_keys=signing_keys,
    )


class BalancedBA:
    """One pi_ba execution for a fixed scheme, corruption, and inputs."""

    def __init__(
        self,
        inputs: Dict[int, int],
        plan: CorruptionPlan,
        scheme: SRDSScheme,
        params: ProtocolParameters,
        rng: Randomness,
        adversary: Optional[AdversaryBehavior] = None,
        metrics: Optional[CommunicationMetrics] = None,
        delivery_rng: Optional[Randomness] = None,
        setup_provider: Optional[SetupProvider] = None,
    ) -> None:
        self.n = len(inputs)
        if plan.n != self.n:
            raise ProtocolError("corruption plan size mismatch")
        if plan.t * 3 >= self.n:
            raise ProtocolError("corruption budget must be below n/3")
        self.inputs = dict(inputs)
        self.plan = plan
        self.scheme = scheme
        self.params = params
        self.rng = rng
        self.adversary = adversary if adversary is not None else AdversaryBehavior()
        self.metrics = metrics if metrics is not None else CommunicationMetrics()
        # The delivery-order seam: the synchronous model promises that
        # messages sent in round r arrive by round r + 1, but promises
        # *no order within the round*.  When a seeded source is supplied
        # (the runtime's FaultPlan reordering injector forks one), every
        # inbox the protocol consumes is presented in a permuted order;
        # honest outputs must be invariant (tests/runtime pins this).
        self.delivery_rng = delivery_rng
        # The setup seam: a provider may serve cached SRDS material (the
        # gateway's amortization path); `None` computes it in line.  The
        # default provider forks the same labels either way, so outputs
        # and tallies are independent of the choice.
        self.setup_provider = (
            setup_provider if setup_provider is not None
            else compute_srds_setup
        )

    def _delivered_order(self, items: List, label: str) -> List:
        """Within-round delivery order of one inbox (identity unless a
        delivery_rng is installed)."""
        if self.delivery_rng is None or len(items) < 2:
            return list(items)
        permuted = list(items)
        self.delivery_rng.fork(label).shuffle(permuted)
        return permuted

    # -- the protocol ----------------------------------------------------------

    def run(self) -> BAResult:
        """Execute Fig. 3 end to end and evaluate agreement/validity."""
        with span("pi-ba", n=self.n, t=self.plan.t):
            return self._run_spanned()

    def _run_spanned(self) -> BAResult:
        # Setup (pre-protocol): SRDS public parameters and per-virtual-id
        # keys.  Each party owns z virtual identities; in the bare-PKI
        # model the adversary could replace corrupt keys here — hooks for
        # that live in the SRDS experiments; for BA runs corrupt parties
        # keep honestly formed keys (key replacement only weakens them).
        with span("kssv-ae-establish"):
            ae = AlmostEverywhereComm(
                self.n, self.params, self.plan, self.metrics, self.rng
            )
        tree = ae.tree
        self.tree = tree
        with span("srds-setup"):
            material = self.setup_provider(
                self.scheme, tree.num_virtual, self.rng
            )
            if (
                material.num_virtual != tree.num_virtual
                or material.rng_seed != self.rng.seed
            ):
                raise ProtocolError(
                    "setup material mismatch: provider returned keys for "
                    f"(num_virtual={material.num_virtual}, "
                    f"seed={material.rng_seed}), run needs "
                    f"(num_virtual={tree.num_virtual}, seed={self.rng.seed})"
                )
            pp = material.public_parameters
            verification_keys = material.verification_keys
            signing_keys = material.signing_keys

        # Step 2: the supreme committee runs f_ba on its inputs and f_ct.
        committee = list(tree.supreme_committee)
        with span("committee-ba", committee_size=len(committee)):
            committee_inputs = {i: self.inputs[i] for i in committee}
            corrupt_in_committee = sum(
                1 for i in committee if self.plan.is_corrupt(i)
            )
            y = ideal_f_ba(
                committee_inputs,
                corrupt_in_committee,
                adversary_choice=self.adversary.ba_choice,
            )
            charge = cost_model.committee_ba(len(committee))
            self.metrics.charge_functionality(
                committee, charge.bits_per_party, charge.peers_per_party,
                charge.rounds,
            )
        with span("committee-coin-toss", committee_size=len(committee)):
            seed = ideal_f_ct(self.rng.fork("coin"))
            charge = cost_model.committee_coin_toss(len(committee))
            self.metrics.charge_functionality(
                committee, charge.bits_per_party, charge.peers_per_party,
                charge.rounds,
            )

        # Steps 3-8: certified propagation and the one-round boost.
        outputs, certificate_bytes = self.certified_propagation(
            ae, pp, verification_keys, signing_keys, y, seed
        )

        return self._evaluate(
            outputs, y, certificate_bytes, tree, ae, committee
        )

    def certified_propagation(
        self,
        ae: AlmostEverywhereComm,
        pp,
        verification_keys: Dict[int, bytes],
        signing_keys: Dict[int, object],
        y: int,
        seed: bytes,
    ) -> Tuple[Dict[int, Optional[int]], int]:
        """Steps 3-8 of Fig. 3 for an already-agreed (y, seed).

        Factored out so the broadcast corollary (Corollary 1.2(1)) can
        reuse the propagation over a long-lived tree and key set.
        Returns ``(per-party outputs, certificate size in bytes)``.
        """
        tree = ae.tree
        self.tree = tree

        # Step 3: propagate (y, s) via f_ae-comm.
        pair_message = encode_pair(y, seed)
        with span("ae-send-down"):
            deliveries = ae.send_down(8 * len(pair_message), (y, seed))

        # Step 4: every party signs for each virtual identity and sends
        # the signature to its leaf committee.
        leaf_inboxes: Dict[int, Dict[int, List[SRDSSignature]]] = {
            leaf.node_id: {member: [] for member in leaf.committee}
            for leaf in tree.leaves
        }
        with span("base-sign"):
            for party in range(self.n):
                messages = self._signing_messages(
                    party, deliveries, pair_message
                )
                if messages is None:
                    continue
                for virtual_id, message in messages:
                    signature = self.scheme.sign(
                        pp, virtual_id, signing_keys[virtual_id], message
                    )
                    if signature is None:
                        continue
                    leaf = tree.leaf_of_virtual(virtual_id)
                    encoded_bits = 8 * len(signature.encode())
                    for recipient in leaf.committee:
                        self.metrics.record_message(
                            party, recipient, encoded_bits
                        )
                        leaf_inboxes[leaf.node_id][recipient].append(
                            signature
                        )

        # Step 5: recursive aggregation up the tree.
        node_outputs: Dict[int, Optional[SRDSSignature]] = {}
        for level in range(1, tree.height + 1):
            with span("srds-aggregate", level=level):
                for node in tree.level_nodes(level):
                    inbox = self._node_inbox(
                        tree, node, leaf_inboxes, node_outputs
                    )
                    node_outputs[node.node_id] = self._aggregate_node(
                        tree, node, inbox, pp, verification_keys,
                        pair_message,
                    )
        certificate = node_outputs.get(tree.root_id)

        # Step 6: supreme committee sends (y, s, sigma_root) down.
        certificate_bytes = (
            len(certificate.encode()) if certificate is not None else 0
        )
        payload_bits = 8 * (len(pair_message) + certificate_bytes)
        with span("certified-send-down"):
            certified = ae.send_down(payload_bits, (y, seed, certificate))

        # Steps 7-8: the one-round boost.
        with span("prf-boost"):
            outputs = self._boost_round(
                tree, pp, verification_keys, certified, pair_message
            )
        return outputs, certificate_bytes

    # -- step helpers -----------------------------------------------------------

    def _signing_messages(
        self,
        party: int,
        deliveries: Dict[int, Tuple[int, bytes]],
        pair_message: bytes,
    ) -> Optional[List[Tuple[int, bytes]]]:
        """What (virtual_id, message) pairs a party signs in step 4."""
        tree_virtuals = self.tree.virtuals_of_party(party)
        if self.plan.is_corrupt(party):
            if self.adversary.sign_message is None:
                return None
            chosen: List[Tuple[int, bytes]] = []
            for virtual_id in tree_virtuals:
                message = self.adversary.sign_message(
                    party, virtual_id, pair_message
                )
                if message is not None:
                    chosen.append((virtual_id, message))
            return chosen
        if party not in deliveries:
            # Isolated honest party: never received (y, s), signs nothing.
            return None
        return [(virtual_id, pair_message) for virtual_id in tree_virtuals]

    def _node_inbox(
        self,
        tree: CommTree,
        node: TreeNode,
        leaf_inboxes: Dict[int, Dict[int, List[SRDSSignature]]],
        node_outputs: Dict[int, Optional[SRDSSignature]],
    ) -> Dict[int, List[SRDSSignature]]:
        """S_sig^{i,l,1}: per-member received signatures for this node."""
        if node.is_leaf:
            return {
                member: self._delivered_order(
                    signatures, f"leaf/{node.node_id}/{member}"
                )
                for member, signatures in leaf_inboxes[node.node_id].items()
            }
        inbox: Dict[int, List[SRDSSignature]] = {
            member: [] for member in node.committee
        }
        for child_id in node.children:
            child = tree.nodes[child_id]
            child_output = node_outputs.get(child_id)
            if child_output is None:
                continue
            encoded_bits = 8 * len(child_output.encode())
            # Step 5d: every member of the child sends sigma_v to every
            # member of the parent.
            for sender in child.committee:
                for recipient in node.committee:
                    self.metrics.record_message(
                        sender, recipient, encoded_bits
                    )
                    inbox[recipient].append(child_output)
        return {
            member: self._delivered_order(
                received, f"node/{node.node_id}/{member}"
            )
            for member, received in inbox.items()
        }

    def _aggregate_node(
        self,
        tree: CommTree,
        node: TreeNode,
        inbox: Dict[int, List[SRDSSignature]],
        pp,
        verification_keys: Dict[int, bytes],
        pair_message: bytes,
    ) -> Optional[SRDSSignature]:
        """Steps 5a-5c + f_aggr-sig for one node."""
        members = list(node.committee)
        good = is_good_node(node, self.plan.corrupted)
        honest_members = [m for m in members if not self.plan.is_corrupt(m)]

        # Step 5b: within-committee broadcast of received sets (charged
        # at actual encoded sizes); honest members end with the union.
        # S_sig^{i,l,1} is a *set*: duplicates received from multiple
        # senders are collapsed before re-broadcasting.
        union: Dict[bytes, SRDSSignature] = {}
        for member in members:
            received = inbox.get(member, [])
            unique: Dict[bytes, SRDSSignature] = {}
            for signature in received:
                unique.setdefault(signature.encode(), signature)
            set_bits = 8 * sum(len(encoding) for encoding in unique)
            for peer in members:
                if peer != member:
                    self.metrics.record_message(member, peer, set_bits)
            if not self.plan.is_corrupt(member):
                union.update(unique)

        if not good:
            # Bad node: the adversary controls the output.
            view = list(union.values())
            if self.adversary.bad_node_output is None:
                return None
            return self.adversary.bad_node_output(node, pair_message, view)

        # Step 5c: Aggregate1 + Fig. 3 range checks (identical for every
        # honest member since the union is common; computed once).
        filtered = self.scheme.aggregate1(
            pp, verification_keys, pair_message, list(union.values())
        )
        filtered = [
            item
            for item in filtered
            if self._range_check_passes(tree, node, item)
        ]
        submissions = {
            member: (pair_message, filtered) for member in honest_members
        }
        return run_aggregate_sig(
            self.scheme, pp, members, submissions, self.metrics
        )

    def _range_check_passes(self, tree: CommTree, node: TreeNode,
                            item: object) -> bool:
        """The step-5c index-range check (can be disabled for ablation E7
        by subclassing)."""
        lo_bound, hi_bound = node.virtual_range
        signature = getattr(item, "base", item)  # CertifiedBaseSignature
        if node.is_leaf:
            return (
                signature.min_index == signature.max_index
                and lo_bound <= signature.min_index < hi_bound
            )
        for child_id in node.children:
            child = tree.nodes[child_id]
            child_lo, child_hi = child.virtual_range
            if (
                child_lo <= signature.min_index
                and signature.max_index < child_hi
            ):
                return True
        return False

    def _boost_round(
        self,
        tree: CommTree,
        pp,
        verification_keys: Dict[int, bytes],
        certified: Dict[int, Tuple[int, bytes, Optional[SRDSSignature]]],
        pair_message: bytes,
    ) -> Dict[int, Optional[int]]:
        """Steps 7-8: PRF-fanout send, verify, decide."""
        fanout = self.params.fanout(self.n)
        received: Dict[int, List[Tuple[int, int, bytes, SRDSSignature]]] = {
            party: [] for party in range(self.n)
        }
        # Step 7: every certified party sends to F_s(i).
        for party, triple in certified.items():
            if self.plan.is_corrupt(party):
                continue  # Corrupt sends are injected via the hook below.
            y, seed, certificate = triple
            if certificate is None:
                continue
            prf = SubsetPRF(seed, self.n, fanout)
            payload_bits = 8 * (
                len(encode_pair(y, seed)) + len(certificate.encode())
            )
            for recipient in prf.subset(party):
                self.metrics.record_message(party, recipient, payload_bits)
                received[recipient].append((party, y, seed, certificate))
        if self.adversary.boost_messages is not None:
            for sender, recipient, y, seed, signature in (
                self.adversary.boost_messages()
            ):
                bits = 8 * (
                    len(encode_pair(y, seed))
                    + (len(signature.encode()) if signature else 0)
                )
                self.metrics.record_message(sender, recipient, bits)
                if signature is not None:
                    received[recipient].append((sender, y, seed, signature))

        # Step 8: verify PRF membership and the SRDS certificate.
        outputs: Dict[int, Optional[int]] = {}
        for party in range(self.n):
            outputs[party] = self._decide(
                party,
                self._delivered_order(received[party], f"boost/{party}"),
                pp,
                verification_keys,
            )
        return outputs

    def _decide(
        self,
        party: int,
        messages: List[Tuple],
        pp,
        verification_keys: Dict[int, bytes],
    ) -> Optional[int]:
        for entry in messages:
            sender, y, seed, certificate = entry
            prf = SubsetPRF(seed, self.n, self.params.fanout(self.n))
            if not prf.contains(sender, party):
                continue
            message = encode_pair(y, seed)
            if self.scheme.verify(pp, verification_keys, message, certificate):
                return y
        return None

    # -- bookkeeping -------------------------------------------------------------

    def _evaluate(
        self,
        outputs: Dict[int, Optional[int]],
        y: int,
        certificate_bytes: int,
        tree: CommTree,
        ae: AlmostEverywhereComm,
        committee: List[int],
    ) -> BAResult:
        honest_outputs = [
            outputs[party]
            for party in range(self.n)
            if not self.plan.is_corrupt(party)
        ]
        decided = [value for value in honest_outputs if value is not None]
        agreement = (
            len(decided) == len(honest_outputs)
            and len(set(decided)) == 1
        )
        honest_inputs = {
            self.inputs[party]
            for party in range(self.n)
            if not self.plan.is_corrupt(party)
        }
        validity = True
        if len(honest_inputs) == 1:
            (unanimous,) = honest_inputs
            validity = bool(
                agreement and decided and decided[0] == unanimous
            )
        return BAResult(
            outputs=outputs,
            agreed_value=decided[0] if decided else None,
            agreement=bool(agreement),
            validity=bool(validity),
            metrics=self.metrics.snapshot(),
            certificate_bytes=certificate_bytes,
            num_virtual=tree.num_virtual,
            isolated_before_boost=len(ae.isolated),
            supreme_committee_size=len(committee),
        )


def run_balanced_ba(
    inputs: Dict[int, int],
    plan: CorruptionPlan,
    scheme: SRDSScheme,
    params: ProtocolParameters,
    rng: Randomness,
    adversary: Optional[AdversaryBehavior] = None,
    delivery_rng: Optional[Randomness] = None,
    metrics: Optional[CommunicationMetrics] = None,
    setup_provider: Optional[SetupProvider] = None,
) -> BAResult:
    """Convenience wrapper: construct and run one pi_ba execution.

    Pass a live ``metrics`` ledger to read the phase-labeled breakdown
    (``metrics.phase_breakdown()``) after the run; the returned
    ``BAResult.metrics`` only carries the aggregate snapshot.
    ``setup_provider`` substitutes a cached/amortized SRDS setup source
    (see :class:`SRDSSetupMaterial`).
    """
    protocol = BalancedBA(
        inputs, plan, scheme, params, rng, adversary,
        metrics=metrics,
        delivery_rng=delivery_rng,
        setup_provider=setup_provider,
    )
    return protocol.run()
