"""Acceptance criteria: differential parity between the reference
synchronous executions and the asyncio runtime.

For n in {16, 64} with random corruption at t = floor((n-1)/3), the
``AsyncLocalTransport`` + ``RoundSynchronizer`` combination must produce
byte-identical honest outputs and identical communication snapshots to
the reference for ``balanced_ba`` (both SRDS constructions); TCP passes
the same output-parity check at n = 16; and the same seed twice yields
identical JSONL traces.
"""

import pytest

from repro.net.adversary import random_corruption
from repro.net.metrics import CommunicationMetrics
from repro.params import ProtocolParameters
from repro.protocols.balanced_ba import BalancedBA, run_balanced_ba
from repro.runtime import (
    FaultPlan,
    TraceRecorder,
    replay_over_simulator,
    run_balanced_ba_runtime,
    run_phase_king_runtime,
    tallies_equal,
)
from repro.runtime.replay import RecordingLedger
from repro.srds.base_sigs import HashRegistryBase
from repro.srds.owf import OwfSRDS
from repro.srds.snark_based import SnarkSRDS
from repro.utils.randomness import Randomness

SCHEMES = {
    "snark": lambda: SnarkSRDS(base_scheme=HashRegistryBase()),
    "owf": lambda: OwfSRDS(message_bits=64),
}


def _setting(n, seed=7, corruptions=None):
    params = ProtocolParameters()
    rng = Randomness(seed)
    t = (n - 1) // 3 if corruptions is None else corruptions
    plan = random_corruption(n, t, rng.fork("corrupt"))
    inputs = {i: i % 2 for i in range(n)}
    return inputs, plan, params, rng


def _reference(n, scheme_name, seed=7, corruptions=None):
    inputs, plan, params, rng = _setting(n, seed, corruptions)
    scheme = SCHEMES[scheme_name]()
    result = run_balanced_ba(inputs, plan, scheme, params, rng.fork("run"))
    return result, (inputs, plan, params)


def _runtime(n, scheme_name, seed=7, corruptions=None, **kwargs):
    inputs, plan, params, rng = _setting(n, seed, corruptions)
    scheme = SCHEMES[scheme_name]()
    return run_balanced_ba_runtime(
        inputs, plan, scheme, params, rng.fork("run"), **kwargs
    )


@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
@pytest.mark.parametrize("n", [16, 64])
def test_balanced_ba_local_parity(n, scheme_name):
    reference, _ = _reference(n, scheme_name)
    result, runtime = _runtime(n, scheme_name)

    # Byte-identical honest outputs.
    assert result.outputs == reference.outputs
    assert result.agreement == reference.agreement
    assert result.validity == reference.validity
    assert result.agreed_value == reference.agreed_value

    # Identical per-party communication accounting.
    assert result.metrics.max_bits_per_party == \
        reference.metrics.max_bits_per_party
    assert result.metrics.total_bits == reference.metrics.total_bits
    assert result.metrics.mean_bits_per_party == \
        reference.metrics.mean_bits_per_party
    assert result.metrics.max_locality == reference.metrics.max_locality
    assert runtime.outputs  # the replay machines all halted


@pytest.mark.parametrize("n", [16, 64])
def test_balanced_ba_parity_in_agreeing_regime(n):
    """Same parity check, but with t at the parameters' own budget
    (beta*n) so the reference actually reaches agreement — pins that
    the runtime reproduces real agreed values, not just null outputs."""
    params = ProtocolParameters()
    t = params.max_corruptions(n)
    reference, _ = _reference(n, "snark", corruptions=t)
    assert reference.agreement and reference.agreed_value is not None
    result, _ = _runtime(n, "snark", corruptions=t)
    assert result.outputs == reference.outputs
    assert result.agreed_value == reference.agreed_value
    assert result.metrics.max_bits_per_party == \
        reference.metrics.max_bits_per_party


@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
def test_balanced_ba_tcp_parity(scheme_name):
    n = 16
    reference, _ = _reference(n, scheme_name)
    result, _ = _runtime(n, scheme_name, transport="tcp")
    assert result.outputs == reference.outputs
    assert result.metrics.max_bits_per_party == \
        reference.metrics.max_bits_per_party
    assert result.metrics.total_bits == reference.metrics.total_bits


def test_replay_matches_simulator_tallies():
    """The recorded wire traffic replayed over SynchronousNetwork charges
    each party exactly what the runtime replay charges it."""
    n = 16
    inputs, plan, params, rng = _setting(n)
    scheme = SCHEMES["snark"]()
    ledger = RecordingLedger()
    BalancedBA(
        inputs, plan, scheme, params, rng.fork("run"), metrics=ledger
    ).run()
    script = ledger.script()
    sim_metrics = CommunicationMetrics()
    replay_over_simulator(script, n, metrics=sim_metrics)

    _, runtime = _runtime(n, "snark")
    assert tallies_equal(sim_metrics, runtime.metrics, range(n))


@pytest.mark.parametrize("transport", ["local", "tcp"])
def test_same_seed_identical_traces(transport):
    n = 16
    fingerprints = []
    for _ in range(2):
        trace = TraceRecorder()
        _runtime(n, "snark", transport=transport, trace=trace)
        fingerprints.append(trace.fingerprint())
    assert fingerprints[0] == fingerprints[1]


def test_trace_jsonl_dump_identical_across_runs(tmp_path):
    n = 16
    dumps = []
    for run_index in range(2):
        trace = TraceRecorder()
        _runtime(n, "snark", trace=trace)
        directory = tmp_path / f"run-{run_index}"
        directory.mkdir()
        paths = trace.dump_dir(directory)
        dumps.append({p.name: p.read_bytes() for p in paths})
    assert dumps[0] == dumps[1]
    assert len(dumps[0]) == n


class TestReorderRobustness:
    """Satellite: honest outputs are invariant under within-round
    delivery-order permutations (the scheduling adversary of §1)."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_balanced_ba_outputs_unchanged(self, seed):
        n = 16
        t = ProtocolParameters().max_corruptions(n)
        reference, _ = _reference(n, "snark", corruptions=t)
        assert reference.agreement  # meaningful baseline
        faults = FaultPlan(reorder=True, rng=Randomness(seed))
        result, _ = _runtime(n, "snark", corruptions=t, fault_plan=faults)
        assert result.outputs == reference.outputs
        assert result.agreement and result.agreed_value == \
            reference.agreed_value

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("n", [7, 10])
    def test_phase_king_outputs_unchanged(self, n, seed):
        inputs = {i: (i * 5) % 2 for i in range(n)}
        byzantine = list(range(0, (n - 1) // 3))
        canonical, _ = run_phase_king_runtime(inputs, byzantine)
        faults = FaultPlan(reorder=True, rng=Randomness(seed))
        shuffled, _ = run_phase_king_runtime(
            inputs, byzantine, fault_plan=faults
        )
        assert shuffled == canonical
