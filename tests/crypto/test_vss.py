"""Tests for Feldman verifiable secret sharing."""

import pytest

from repro.crypto import ec, vss
from repro.crypto.shamir import Share
from repro.errors import SecretSharingError
from repro.fields.prime_field import default_field


@pytest.fixture
def dealing(rng):
    return vss.deal_verifiable(424242, 6, 2, rng)


class TestDealing:
    def test_all_shares_verify(self, dealing):
        assert all(
            vss.verify_share(share, dealing.commitment)
            for share in dealing.shares
        )

    def test_commitment_size(self, dealing):
        assert len(dealing.commitment.coefficient_points) == 3  # threshold+1
        assert dealing.commitment.threshold == 2

    def test_secret_point_leak(self, dealing):
        assert vss.commitment_to_secret_point(dealing.commitment) == ec.commit(
            424242
        )

    def test_commitment_wire_size(self, dealing):
        assert dealing.commitment.size_bytes() == 3 * 33


class TestVerification:
    def test_tampered_share_rejected(self, dealing):
        field = default_field()
        share = dealing.shares[0]
        tampered = Share(x=share.x, y=share.y + field.one())
        assert not vss.verify_share(tampered, dealing.commitment)

    def test_foreign_share_rejected(self, dealing, rng):
        other = vss.deal_verifiable(1, 6, 2, rng.fork("other"))
        assert not vss.verify_share(other.shares[0], dealing.commitment)

    def test_swapped_x_rejected(self, dealing):
        a, b = dealing.shares[0], dealing.shares[1]
        swapped = Share(x=a.x, y=b.y)
        assert not vss.verify_share(swapped, dealing.commitment)


class TestReconstruction:
    def test_reconstruct_verified(self, dealing):
        secret = vss.reconstruct_verified(
            dealing.shares[:3], dealing.commitment
        )
        assert secret.value == 424242

    def test_reconstruct_filters_bad_shares(self, dealing):
        field = default_field()
        bad = Share(x=dealing.shares[0].x, y=field.element(1))
        mixed = [bad] + list(dealing.shares[1:4])
        secret = vss.reconstruct_verified(mixed, dealing.commitment)
        assert secret.value == 424242

    def test_insufficient_valid_shares_rejected(self, dealing):
        field = default_field()
        bad = [
            Share(x=share.x, y=field.element(i))
            for i, share in enumerate(dealing.shares[:2])
        ]
        with pytest.raises(SecretSharingError):
            vss.reconstruct_verified(
                bad + [dealing.shares[2]], dealing.commitment
            )
