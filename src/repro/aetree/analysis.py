"""Goodness and good-path analysis of communication trees.

Implements the predicates of Definition 2.3:

* a node is *good* if fewer than a third of its assigned parties are
  corrupt (property 3);
* a leaf has a *good path* if every node on its path to the root is good
  (property 4 requires all but a 3/log n fraction of leaves to have one);
* a party is *well-connected* (Def. 3.4 / the observation of [13]) if a
  majority of the leaves it is assigned to have good paths.

These functions power both the runtime checks inside the BA protocol's
functionality layer and the E6 benchmark (good-path fraction vs n).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Set

from repro.aetree.tree import CommTree, TreeNode
from repro.errors import TreeError
from repro.net.adversary import CorruptionPlan
from repro.params import ProtocolParameters, ceil_log2


def is_good_node(node: TreeNode, corrupted: FrozenSet[int]) -> bool:
    """Property 3 of Def. 2.3: strictly less than 1/3 of the committee
    (for leaves: of the assigned party set) is corrupt."""
    if not node.committee:
        raise TreeError(f"node {node.node_id} has an empty committee")
    corrupt_count = sum(1 for party in node.committee if party in corrupted)
    return 3 * corrupt_count < len(node.committee)


def good_nodes(tree: CommTree, plan: CorruptionPlan) -> Set[int]:
    """Ids of all good nodes under a corruption plan."""
    return {
        node.node_id
        for node in tree.nodes.values()
        if is_good_node(node, plan.corrupted)
    }


def leaf_has_good_path(tree: CommTree, leaf: TreeNode,
                       good: Set[int]) -> bool:
    """Whether every node from this leaf to the root is good."""
    return all(node.node_id in good for node in tree.path_to_root(leaf.node_id))


def good_path_leaves(tree: CommTree, plan: CorruptionPlan) -> List[TreeNode]:
    """Leaves whose entire path to the root is good."""
    good = good_nodes(tree, plan)
    return [
        leaf for leaf in tree.leaves if leaf_has_good_path(tree, leaf, good)
    ]


def good_path_fraction(tree: CommTree, plan: CorruptionPlan) -> float:
    """Fraction of leaves with a good path (property 4 of Def. 2.3)."""
    leaves = tree.leaves
    return len(good_path_leaves(tree, plan)) / len(leaves)


def well_connected_parties(tree: CommTree, plan: CorruptionPlan) -> Set[int]:
    """Parties for whom a *majority* of assigned leaves have good paths.

    By the observation from [13] quoted in §3.1, a 1 - o(1) fraction of
    parties are well-connected whenever property 4 holds.  These are the
    parties guaranteed to receive the supreme committee's messages through
    f_ae-comm; the complement is the isolated set D.
    """
    good = good_nodes(tree, plan)
    connected: Set[int] = set()
    for party in range(tree.n):
        leaves = tree.leaves_of_party(party)
        if not leaves:
            continue
        good_count = sum(
            1 for leaf in leaves if leaf_has_good_path(tree, leaf, good)
        )
        if 2 * good_count > len(leaves):
            connected.add(party)
    return connected


def isolated_parties(tree: CommTree, plan: CorruptionPlan) -> Set[int]:
    """The set D of parties f_ae-comm cannot reach."""
    return set(range(tree.n)) - well_connected_parties(tree, plan)


@dataclass(frozen=True)
class TreeReport:
    """Structural summary of one tree under one corruption plan."""

    n: int
    num_virtual: int
    num_leaves: int
    height: int
    max_arity: int
    committee_size_root: int
    good_node_fraction: float
    good_path_leaf_fraction: float
    well_connected_fraction: float
    root_is_good: bool


def analyze(tree: CommTree, plan: CorruptionPlan) -> TreeReport:
    """Compute the full structural report used by tests and E6."""
    good = good_nodes(tree, plan)
    leaves = tree.leaves
    good_leaves = [
        leaf for leaf in leaves if leaf_has_good_path(tree, leaf, good)
    ]
    connected = well_connected_parties(tree, plan)
    max_arity = max(
        (len(node.children) for node in tree.nodes.values() if node.children),
        default=0,
    )
    return TreeReport(
        n=tree.n,
        num_virtual=tree.num_virtual,
        num_leaves=len(leaves),
        height=tree.height,
        max_arity=max_arity,
        committee_size_root=len(tree.supreme_committee),
        good_node_fraction=len(good) / len(tree.nodes),
        good_path_leaf_fraction=len(good_leaves) / len(leaves),
        well_connected_fraction=len(connected) / tree.n,
        root_is_good=tree.root_id in good,
    )


def validate_structure(tree: CommTree, params: ProtocolParameters) -> None:
    """Check the structural properties of Def. 2.3 / Def. 3.4.

    Raises :class:`TreeError` on the first violation.  Used both on
    freshly built trees and on adversary-supplied trees in the robustness
    experiment (Fig. 1, step B.1).
    """
    log_n = ceil_log2(tree.n)
    # Property 1 (scaled): height O(log n / log log n) — we bound by the
    # loose but safe 2 + log(#leaves)/log(arity).
    arity = params.tree_arity(tree.n)
    num_leaves = len(tree.leaves)
    import math

    height_bound = 2 + math.ceil(math.log(max(2, num_leaves), arity)) + 1
    if tree.height > height_bound:
        raise TreeError(
            f"height {tree.height} exceeds bound {height_bound}"
        )
    # Arity: each internal node above level 2 has at most `arity` children.
    for node in tree.nodes.values():
        if node.children and len(node.children) > arity:
            raise TreeError(
                f"node {node.node_id} has arity {len(node.children)} > {arity}"
            )
    # Properties 5-7 (scaled): leaf ranges tile [0, n*z) without overlap.
    covered = 0
    for leaf in tree.leaves:
        lo, hi = leaf.virtual_range
        if lo != covered:
            raise TreeError("leaf virtual ranges are not contiguous/ordered")
        if hi <= lo:
            raise TreeError("empty leaf virtual range")
        covered = hi
    if covered != tree.num_virtual:
        raise TreeError("leaf ranges do not cover all virtual ids")
    # Def. 3.4 property 2 (scaled): every party owns the same number z of
    # virtual ids.
    for party in range(tree.n):
        if len(tree.virtuals_of_party(party)) != tree.z:
            raise TreeError(f"party {party} does not own exactly z virtual ids")
    # Internal committees are non-empty and within the party universe.
    for node in tree.nodes.values():
        if not node.committee:
            raise TreeError(f"node {node.node_id} has an empty committee")
        if any(not 0 <= p < tree.n for p in node.committee):
            raise TreeError(f"node {node.node_id} committee out of range")
    # Parent/child links are consistent.
    for node in tree.nodes.values():
        for child_id in node.children:
            if tree.nodes[child_id].parent_id != node.node_id:
                raise TreeError("inconsistent parent/child link")
    # Child ranges are contiguous within the parent (planarity).
    for node in tree.nodes.values():
        if not node.children:
            continue
        expected = node.virtual_range[0]
        for child_id in node.children:
            lo, hi = tree.nodes[child_id].virtual_range
            if lo != expected:
                raise TreeError("child ranges are not planar-contiguous")
            expected = hi
        if expected != node.virtual_range[1]:
            raise TreeError("parent range does not equal union of children")


def validate_against_plan(
    tree: CommTree, params: ProtocolParameters, plan: CorruptionPlan
) -> TreeReport:
    """Full validation: structure plus the goodness properties 3-4.

    Property 4's fraction bound is the scaled ``3 / log n``; at small n
    this is loose enough that honestly built trees pass comfortably.
    """
    validate_structure(tree, params)
    report = analyze(tree, plan)
    if not report.root_is_good:
        raise TreeError("root committee is not 2/3-honest")
    allowed_bad_fraction = min(1.0, 3 / ceil_log2(tree.n))
    if 1 - report.good_path_leaf_fraction > allowed_bad_fraction:
        raise TreeError(
            f"bad-path leaf fraction {1 - report.good_path_leaf_fraction:.3f} "
            f"exceeds 3/log n = {allowed_bad_fraction:.3f}"
        )
    return report
