"""Protocol layer: committee sub-protocols, cost models, and pi_ba."""
