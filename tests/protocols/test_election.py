"""Tests for Feige lightest-bin committee election."""

import pytest

from repro.errors import ConfigurationError
from repro.net.adversary import random_corruption
from repro.protocols.election import (
    expected_honest_floor,
    repeated_election_statistics,
    run_lightest_bin,
)
from repro.utils.randomness import Randomness

N = 600
T = 100  # beta = 1/6


@pytest.fixture
def plan(rng):
    return random_corruption(N, T, rng.fork("plan"))


class TestSingleElection:
    def test_committee_size_bounded(self, plan, rng):
        result = run_lightest_bin(plan, 30, rng)
        # The lightest bin cannot exceed the mean load.
        assert 0 < len(result.committee) <= 2 * 30

    def test_committee_members_valid(self, plan, rng):
        result = run_lightest_bin(plan, 30, rng)
        assert all(0 <= member < N for member in result.committee)
        assert len(set(result.committee)) == len(result.committee)

    def test_honest_floor(self, plan, rng):
        result = run_lightest_bin(plan, 30, rng)
        floor = expected_honest_floor(N, T, 30)
        assert result.honest_in_committee >= floor

    def test_invalid_size_rejected(self, plan, rng):
        with pytest.raises(ConfigurationError):
            run_lightest_bin(plan, 0, rng)
        with pytest.raises(ConfigurationError):
            run_lightest_bin(plan, N + 1, rng)

    def test_unknown_strategy_rejected(self, plan, rng):
        with pytest.raises(ConfigurationError):
            run_lightest_bin(plan, 30, rng, adversary_strategy="???")


class TestAdversaryStrategies:
    @pytest.mark.parametrize("strategy", ["stack", "spread", "silent"])
    def test_corrupt_fraction_bounded(self, plan, rng, strategy):
        stats = repeated_election_statistics(
            plan, 30, trials=20, rng=rng, adversary_strategy=strategy
        )
        # beta = 1/6; the lightest-bin guarantee keeps the fraction well
        # below 1/2 for every strategy, and usually below 1/3.
        assert stats["worst_corrupt_fraction"] < 0.5
        assert stats["fraction_below_third"] >= 0.8

    def test_stacking_no_better_than_passive_on_average(self, plan, rng):
        stack = repeated_election_statistics(
            plan, 30, trials=25, rng=rng.fork("a"),
            adversary_strategy="stack",
        )
        silent = repeated_election_statistics(
            plan, 30, trials=25, rng=rng.fork("b"),
            adversary_strategy="silent",
        )
        # Stacking the lightest bin usually makes it lose; the adversary
        # gains little over staying silent.
        assert stack["mean_corrupt_fraction"] <= (
            silent["mean_corrupt_fraction"] + 0.35
        )

    def test_silent_adversary_yields_honest_committee(self, plan, rng):
        result = run_lightest_bin(plan, 30, rng,
                                  adversary_strategy="silent")
        assert result.corrupt_fraction == 0.0


class TestDeterminism:
    def test_same_seed_same_committee(self, plan):
        a = run_lightest_bin(plan, 30, Randomness(5))
        b = run_lightest_bin(plan, 30, Randomness(5))
        assert a.committee == b.committee
