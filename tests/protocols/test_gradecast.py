"""Tests for gradecast (graded broadcast)."""

import pytest

from repro.errors import ConfigurationError
from repro.protocols.gradecast import (
    check_gradecast_guarantees,
    run_gradecast,
)


class TestHonestSender:
    def test_everyone_grade_two(self):
        outputs, _ = run_gradecast(range(7), sender=1, value=1)
        assert all(pair == (1, 2) for pair in outputs.values())

    def test_zero_value(self):
        outputs, _ = run_gradecast(range(7), sender=0, value=0)
        assert all(pair == (0, 2) for pair in outputs.values())

    def test_with_silent_byzantine(self):
        outputs, _ = run_gradecast(range(10), sender=0, value=1,
                                   byzantine=[4, 8])
        assert all(pair == (1, 2) for pair in outputs.values())
        assert check_gradecast_guarantees(outputs, True, 1)

    def test_silent_sender_grades_zero(self):
        outputs, _ = run_gradecast(range(7), sender=3, value=1,
                                   byzantine=[3])
        assert all(grade == 0 for _, grade in outputs.values())


class TestEquivocatingSender:
    @pytest.mark.parametrize("committee_size", [7, 10, 13])
    def test_guarantees_hold(self, committee_size):
        outputs, _ = run_gradecast(
            range(committee_size), sender=2, value=1,
            equivocating_sender=True,
        )
        assert check_gradecast_guarantees(outputs, False, 1)

    def test_no_two_values_graded(self):
        outputs, _ = run_gradecast(range(9), sender=0, value=1,
                                   equivocating_sender=True)
        graded = {value for value, grade in outputs.values() if grade >= 1}
        assert len(graded) <= 1


class TestValidation:
    def test_sender_must_be_member(self):
        with pytest.raises(ConfigurationError):
            run_gradecast(range(5), sender=7, value=1)

    def test_too_many_byzantine(self):
        with pytest.raises(ConfigurationError):
            run_gradecast(range(6), sender=0, value=1, byzantine=[1, 2, 3])

    def test_checker_rejects_grade_gap(self):
        assert not check_gradecast_guarantees(
            {0: (1, 2), 1: (1, 0)}, sender_honest=False, sender_value=1
        )

    def test_checker_rejects_split_values(self):
        assert not check_gradecast_guarantees(
            {0: (1, 1), 1: (0, 1)}, sender_honest=False, sender_value=1
        )


class TestCosts:
    def test_constant_rounds(self):
        _, metrics = run_gradecast(range(9), sender=0, value=1)
        assert metrics.rounds_completed <= 5

    def test_quadratic_total(self):
        _, small = run_gradecast(range(6), sender=0, value=1)
        _, large = run_gradecast(range(12), sender=0, value=1)
        assert large.total_bits > 3 * small.total_bits
