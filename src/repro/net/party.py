"""The party abstraction for the synchronous simulator.

A protocol is a set of :class:`Party` objects; the simulator repeatedly
collects each party's outgoing envelopes for the round and delivers them
at the start of the next round.  Honest protocol logic subclasses
:class:`Party`; Byzantine behaviors subclass it too and simply misbehave
(the simulator treats both identically — corruption is a property of the
object, not of the transport).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence


@dataclass(frozen=True)
class Envelope:
    """One point-to-point message on the simulated wire."""

    sender: int
    recipient: int
    payload: bytes

    def size_bits(self) -> int:
        """Size charged by the metrics ledger."""
        return 8 * len(self.payload)


@dataclass(frozen=True)
class PhasedEnvelope(Envelope):
    """An envelope stamped with the obs phase that produced it.

    The delivery layers (``RoundSynchronizer._ship``, the asynchronous
    scheduler) read ``phase`` via ``getattr`` and prefer it over the
    span active at ship time — event-driven protocols produce envelopes
    outside any round loop, so the phase must travel with the message.
    """

    phase: str = ""


class Party(abc.ABC):
    """A state machine driven by the synchronous network.

    Subclasses implement :meth:`step`, which is called once per round with
    the envelopes delivered this round and returns the envelopes to send.
    A party signals completion by setting :attr:`halted`; its
    :attr:`output` is then read by the driver.
    """

    def __init__(self, party_id: int) -> None:
        self.party_id = party_id
        self.halted = False
        self.output: Optional[Any] = None

    @abc.abstractmethod
    def step(self, round_index: int, inbox: Sequence[Envelope]) -> List[Envelope]:
        """Process this round's inbox and return outgoing envelopes."""

    def send(self, recipient: int, payload: bytes) -> Envelope:
        """Convenience constructor for an outgoing envelope."""
        return Envelope(sender=self.party_id, recipient=recipient, payload=payload)

    def halt(self, output: Any = None) -> List[Envelope]:
        """Mark this party finished with the given output; returns []."""
        self.halted = True
        self.output = output
        return []


class SilentParty(Party):
    """A party that never sends anything (models a crashed/isolated node)."""

    def step(self, round_index: int, inbox: Sequence[Envelope]) -> List[Envelope]:
        return []


class AsyncParty(abc.ABC):
    """A message-driven state machine for the asynchronous model.

    Where :class:`Party` is clocked (one :meth:`~Party.step` per round),
    an :class:`AsyncParty` is *reactive*: the scheduler calls
    :meth:`start` once, then :meth:`on_message` for every delivered
    envelope, in an order the network adversary controls.  There is no
    round barrier and no delivery promise — correctness may rely only on
    eventual delivery.

    Completion is signaled through :attr:`decided` / :attr:`output`
    (set via :meth:`decide`); unlike the synchronous :attr:`Party.halted`
    a decided party keeps processing messages, because asynchronous
    protocols typically need decided parties to keep relaying so that
    stragglers terminate too.
    """

    def __init__(self, party_id: int) -> None:
        self.party_id = party_id
        self.decided = False
        self.output: Optional[Any] = None

    @abc.abstractmethod
    def start(self) -> List[Envelope]:
        """Fire the protocol's initial messages."""

    @abc.abstractmethod
    def on_message(self, envelope: Envelope) -> List[Envelope]:
        """React to one delivered envelope; return outgoing envelopes."""

    def decide(self, output: Any) -> None:
        """Record this party's (irrevocable) decision."""
        if self.decided:
            return
        self.decided = True
        self.output = output

    def send(
        self, recipient: int, payload: bytes, phase: str = ""
    ) -> Envelope:
        """Convenience constructor for an outgoing (phase-tagged) envelope."""
        return PhasedEnvelope(
            sender=self.party_id,
            recipient=recipient,
            payload=payload,
            phase=phase,
        )
