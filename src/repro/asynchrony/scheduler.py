"""The asynchronous network model: an adversarially-scheduled event loop.

Everything else in the repo recovers the paper's §1 synchronous model
(the :class:`~repro.runtime.synchronizer.RoundSynchronizer` round
barrier).  :class:`AsyncScheduler` is the *other* model: there are no
rounds and no delivery promise — the only guarantee is eventual
delivery, and the **order** of deliveries belongs to the adversary.

Two scheduling policies:

* ``"latency"`` — every message is timestamped ``send_time +
  delivery_delay`` by a pluggable
  :class:`~repro.net.latency.LatencyModel` (fixed / uniform / lognormal
  / partition-heal — the same models :class:`~repro.runtime.faults.
  FaultPlan` consumes) and delivered in timestamp order.  This is the
  "benign but jittery network" family.
* ``"adversarial"`` — the scheduler *is* the adversary: at every step a
  seeded draw picks the next delivery from a window of the oldest
  pending messages.  A patience bound forces the oldest message out
  after it has been skipped long enough, which keeps the schedule
  formally asynchronous (eventual delivery) while letting the adversary
  starve any particular link for a long time.

Determinism contract, same as the fault plan's: every choice is drawn
from forks of one seeded :class:`~repro.utils.randomness.Randomness`
keyed by the delivery counter, and parties consume exactly one message
at a time (the scheduler awaits each queue between deliveries), so a
run is a pure function of ``(parties, seed, policy, latency model,
fault plan)`` and the recorded delivery trace replays exactly.

Parties run as real asyncio consumer tasks over per-party queues —
the :class:`~repro.net.party.AsyncParty` machines execute on the
asyncio runtime with no round synchronizer anywhere.  Wire traffic is
charged to :class:`~repro.net.metrics.CommunicationMetrics` at send
time under the envelope's phase span with ``kind="async"`` flow tags,
so ``max_bits_per_party`` and flow ledgers are directly comparable to
the synchronous backends' BENCH records.

Fault-plan integration maps virtual time ``t`` to round ``⌊t⌋``:
crashes silence a party's deliveries from the crash round on; churn
``joins`` defer a party's :meth:`~repro.net.party.AsyncParty.start`
until its join round (messages delivered *before* it joins are lost —
nobody is listening); partitions drop cross-cut sends; duplication
re-enqueues a second (uncharged) copy of a delivery.

The adaptive-adversary seam: :meth:`AsyncScheduler.corrupt` flips a
party to adversary-controlled *mid-run* (its future output is
suppressed — worst-case silence), and ``wire_observer`` lets a
strategy watch every send before choosing whom to corrupt.  Budgets
are enforced by :class:`repro.asynchrony.adaptive.AdaptiveCorruption`,
not here.
"""

from __future__ import annotations

import asyncio
import heapq
from dataclasses import dataclass, field
from itertools import islice
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError, NetworkError
from repro.net.latency import FixedLatency, LatencyModel
from repro.net.metrics import CommunicationMetrics
from repro.net.party import AsyncParty, Envelope
from repro.obs.flow import flow_tags
from repro.obs.spans import current_phase, span
from repro.runtime.faults import FaultPlan
from repro.utils.randomness import Randomness

#: Scheduling policies :class:`AsyncScheduler` accepts.
POLICIES = ("latency", "adversarial")

#: Phase charged for envelopes that carry no phase of their own.
DEFAULT_PHASE = "async-wire"

_STOP = object()


@dataclass(frozen=True)
class Delivery:
    """One in-flight message awaiting the scheduler's pleasure."""

    seq: int
    born: int  # delivery counter when enqueued (patience bookkeeping)
    send_time: float
    deliver_time: float
    envelope: Envelope


@dataclass
class AsyncResult:
    """Outcome of one asynchronous execution."""

    outputs: Dict[int, object]
    metrics: CommunicationMetrics
    deliveries: int
    virtual_time: float
    #: ``(delivery_counter, sender, recipient, seq)`` per delivery — the
    #: replay witness: two runs with equal traces delivered identically.
    trace: List[Tuple[int, int, int, int]] = field(default_factory=list)


class AsyncScheduler:
    """Drives :class:`AsyncParty` machines under adversarial scheduling."""

    def __init__(
        self,
        parties: Sequence[AsyncParty],
        *,
        policy: str = "latency",
        latency: Optional[LatencyModel] = None,
        rng: Optional[Randomness] = None,
        metrics: Optional[CommunicationMetrics] = None,
        fault_plan: Optional[FaultPlan] = None,
        wire_observer: Optional[Callable[[float, Envelope], None]] = None,
        max_deliveries: Optional[int] = None,
        patience: Optional[int] = None,
    ) -> None:
        self.parties: Dict[int, AsyncParty] = {}
        for party in parties:
            if party.party_id in self.parties:
                raise ConfigurationError(
                    f"duplicate party id {party.party_id}"
                )
            self.parties[party.party_id] = party
        n = len(self.parties)
        if n == 0:
            raise ConfigurationError("no parties to schedule")
        if policy not in POLICIES:
            raise ConfigurationError(
                f"unknown policy {policy!r}; expected one of {POLICIES}"
            )
        self.policy = policy
        self.latency = latency if latency is not None else FixedLatency(0)
        self.rng = rng
        if policy == "adversarial" and rng is None:
            raise ConfigurationError(
                "the adversarial policy draws its schedule; pass a seeded rng"
            )
        if self.latency.needs_rng and rng is None:
            raise ConfigurationError(
                f"latency model {self.latency.name!r} draws; pass a seeded rng"
            )
        self.metrics = metrics if metrics is not None else CommunicationMetrics()
        self.faults = fault_plan if fault_plan is not None else FaultPlan()
        self._wire_observer = wire_observer
        self._max_deliveries = (
            max_deliveries if max_deliveries is not None else 20_000 * n
        )
        self._patience = patience if patience is not None else 16 * n
        self._window = max(1, 3 * n)
        self._pending: Dict[int, Delivery] = {}  # seq → delivery, FIFO order
        self._heap: List[Tuple[float, int]] = []
        self._next_seq = 0
        self._now = 0.0
        self._rounds_closed = 0
        self.deliveries = 0
        self.trace: List[Tuple[int, int, int, int]] = []
        self._corrupted: Set[int] = set()
        self._excused: Set[int] = set()
        self._unstarted: Dict[int, int] = {
            pid: self.faults.joins.get(pid, 0) for pid in self.parties
        }
        self._error: Optional[BaseException] = None

    # -- adaptive seam -------------------------------------------------------

    def corrupt(self, party_id: int) -> None:
        """Hand a party to the adversary mid-run (worst case: silence).

        Budget enforcement lives in :class:`repro.asynchrony.adaptive.
        AdaptiveCorruption` — the scheduler just flips the switch.
        """
        if party_id not in self.parties:
            raise ConfigurationError(f"unknown party id {party_id}")
        self._corrupted.add(party_id)

    def excuse(self, party_id: int) -> None:
        """Exempt a party from the completion requirement *without*
        silencing it — for Byzantine behaviors that must keep talking
        (equivocators) yet will never decide."""
        if party_id not in self.parties:
            raise ConfigurationError(f"unknown party id {party_id}")
        self._excused.add(party_id)

    @property
    def corrupted(self) -> Set[int]:
        """Parties currently under adversary control (a copy)."""
        return set(self._corrupted)

    # -- send path -----------------------------------------------------------

    def _emit(self, sender: int, envelopes: Sequence[Envelope]) -> None:
        """Charge and enqueue one party's outgoing envelopes."""
        for envelope in envelopes:
            if sender in self._corrupted:
                return  # the adversary silenced this party mid-step
            if envelope.recipient not in self.parties:
                raise NetworkError(
                    f"party {sender} sent to unknown party "
                    f"{envelope.recipient}"
                )
            sent_round = int(self._now)
            if self.faults.drops(sent_round, sender, envelope.recipient):
                continue  # partition: the link is down; nothing charged
            phase = (
                getattr(envelope, "phase", "")
                or (current_phase() or "")
                or DEFAULT_PHASE
            )
            with span(phase), flow_tags(phase=phase, kind="async"):
                self.metrics.record_message(
                    sender, envelope.recipient, envelope.size_bits()
                )
            if self._wire_observer is not None:
                self._wire_observer(self._now, envelope)
            self._enqueue(sent_round, sender, envelope)
            if self.faults.duplicates(
                sent_round, sender, envelope.recipient, self._next_seq - 1
            ):
                # The duplicate is the network's artifact: a second
                # pending copy, never a second charge.
                self._enqueue(sent_round, sender, envelope)

    def _enqueue(
        self, sent_round: int, sender: int, envelope: Envelope
    ) -> None:
        seq = self._next_seq
        self._next_seq = seq + 1
        deliver_time = self._now + self.latency.delivery_delay(
            self.rng, sent_round, sender, envelope.recipient, seq
        )
        delivery = Delivery(
            seq=seq,
            born=self.deliveries,
            send_time=self._now,
            deliver_time=deliver_time,
            envelope=envelope,
        )
        self._pending[seq] = delivery
        heapq.heappush(self._heap, (deliver_time, seq))

    # -- schedule ------------------------------------------------------------

    def _pick_next(self) -> Delivery:
        """The adversary's move: choose which pending message lands next."""
        if self.policy == "latency":
            while True:
                _, seq = heapq.heappop(self._heap)
                delivery = self._pending.pop(seq, None)
                if delivery is not None:
                    return delivery
        assert self.rng is not None
        oldest = next(iter(self._pending.values()))
        if self.deliveries - oldest.born >= self._patience:
            # Eventual delivery: the oldest message has been starved
            # long enough; the model forces it through.
            chosen = oldest
        else:
            window = list(islice(self._pending.values(), self._window))
            pick = self.rng.fork(f"sched/pick/{self.deliveries}")
            chosen = window[pick.random_int(len(window))]
        del self._pending[chosen.seq]
        return chosen

    def _advance_time(self, delivery: Delivery) -> None:
        if self.policy == "latency":
            self._now = max(self._now, delivery.deliver_time)
        else:
            # Adversarial schedules have no timestamps; one "round" of
            # virtual time elapses per n deliveries, purely so that
            # fault-plan round coordinates (crash/join/partition) and
            # the metrics round ledger keep meaning.
            self._now += 1.0 / len(self.parties)
        while self._rounds_closed < int(self._now):
            self.metrics.end_round()
            self._rounds_closed += 1

    def _fire_due_starts(self) -> None:
        due = sorted(
            pid
            for pid, join_round in self._unstarted.items()
            if join_round <= self._now
        )
        for pid in due:
            del self._unstarted[pid]
            if pid in self._corrupted:
                continue
            self._emit(pid, self.parties[pid].start())

    def _all_required_decided(self) -> bool:
        """Every party the model still owes a decision has decided.

        Corrupted parties, parties that joined after time 0, and
        parties already crashed are excused (the invariant layer judges
        what they *did* output); everyone else must decide or the run
        fails loudly.
        """
        round_now = int(self._now)
        for pid, party in self.parties.items():
            if pid in self._corrupted or pid in self._excused:
                continue
            if self.faults.joins.get(pid, 0) > 0:
                continue
            if self.faults.is_crashed(pid, round_now):
                continue
            if not party.decided:
                return False
        return True

    # -- run -----------------------------------------------------------------

    async def _party_loop(
        self, party: AsyncParty, queue: "asyncio.Queue"
    ) -> None:
        while True:
            item = await queue.get()
            try:
                if item is _STOP:
                    return
                if self._error is None:
                    self._emit(party.party_id, party.on_message(item))
            except BaseException as exc:  # lint: allow[EXC001] reason=captured into _error and re-raised by the main delivery loop, never swallowed
                self._error = exc
                return
            finally:
                queue.task_done()

    async def run(self) -> AsyncResult:
        """Execute until every required party decided (or fail loudly)."""
        queues: Dict[int, asyncio.Queue] = {
            pid: asyncio.Queue() for pid in self.parties
        }
        # Consumer tasks are retained (and joined below): the scheduler
        # owns their lifecycle end to end.
        tasks = [
            asyncio.create_task(self._party_loop(party, queues[pid]))
            for pid, party in self.parties.items()
        ]
        try:
            self._fire_due_starts()
            while self._pending and not self._all_required_decided():
                if self.deliveries >= self._max_deliveries:
                    raise NetworkError(
                        f"no decision after {self.deliveries} deliveries "
                        f"(cap {self._max_deliveries})"
                    )
                delivery = self._pick_next()
                self._advance_time(delivery)
                self._fire_due_starts()
                envelope = delivery.envelope
                recipient = envelope.recipient
                round_now = int(self._now)
                if (
                    recipient in self._corrupted
                    or self.faults.is_crashed(recipient, round_now)
                    or self.faults.is_absent(recipient, round_now)
                ):
                    continue  # nobody (honest) is listening
                self.deliveries += 1
                self.trace.append(
                    (self.deliveries, envelope.sender, recipient,
                     delivery.seq)
                )
                queues[recipient].put_nowait(envelope)
                await queues[recipient].join()
                if self._error is not None:
                    raise self._error
            if not self._all_required_decided():
                undecided = sorted(
                    pid
                    for pid, party in self.parties.items()
                    if not party.decided
                    and pid not in self._corrupted
                    and pid not in self._excused
                )
                raise NetworkError(
                    "asynchronous execution stalled with no pending "
                    f"messages; undecided parties: {undecided}"
                )
        finally:
            for pid, queue in queues.items():
                queue.put_nowait(_STOP)
            await asyncio.gather(*tasks, return_exceptions=True)
        return AsyncResult(
            outputs={
                pid: party.output
                for pid, party in self.parties.items()
                if party.decided
            },
            metrics=self.metrics,
            deliveries=self.deliveries,
            virtual_time=self._now,
            trace=self.trace,
        )


def run_async_parties(
    parties: Sequence[AsyncParty], **kwargs
) -> AsyncResult:
    """Synchronous facade over :meth:`AsyncScheduler.run`."""
    return asyncio.run(AsyncScheduler(parties, **kwargs).run())
