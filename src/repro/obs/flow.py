"""Wire-level flow ledger — per-(round, phase, src, dst, kind) traffic.

:class:`~repro.net.metrics.CommunicationMetrics` answers *how much* each
party communicated; it cannot answer *where the bits went*.  The
ROADMAP's headline perf findings (``srds-aggregate`` alone moving 1.7 Gb
of 1.97 Gb at n=64, cluster DONE bodies past 256 MiB) were dug out of
one-off bench archaeology precisely because no layer kept a traffic
matrix.  :class:`FlowLedger` closes that gap: every charge that enters
the metrics ledger is *refined* into a cell keyed by

    ``(round, phase, src, dst, kind)``

where ``round`` is the open round index at charge time, ``phase`` is the
innermost obs span (or an explicit :func:`flow_tags` override, used by
replay backends that re-play traffic recorded under spans), ``src``/
``dst`` are party ids (pseudo-party :data:`FUNCTIONALITY` stands in for
hybrid-model charges), and ``kind`` names the wire that carried it
(``"wire"``, ``"frame"``, ``"hybrid"``, ``"ctl:<message-kind>"``, ...).

The ledger is a **refinement, not a second source of truth**: per-party
``sent``/``received`` side counters are kept exactly (O(n) memory,
never evicted) and :meth:`FlowLedger.verify_against` checks them
bit-for-bit against the metrics tallies.  Cells themselves are bounded:
when more than ``max_cells`` are live, the coldest (fewest-bits) cells
are evicted — appended to a spill JSONL if a path was given, and always
folded into the per-phase/per-kind aggregates — so n=64+ runs stay
cheap while the hot cells (the ones a flow report shows) stay exact.

Control-plane traffic (cluster supervisor<->worker control messages,
``kind="ctl:*"``) is metered in the same ledger but kept out of the
data-plane totals, coverage, and parity checks: those bytes never enter
``CommunicationMetrics`` and the paper's budget does not charge them.

Like the rest of :mod:`repro.obs`, this module imports only the standard
library plus :mod:`repro.errors` — :mod:`repro.net.metrics` imports
*us*, never the other way around.
"""

from __future__ import annotations

import contextvars
import json
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, TextIO, Tuple

from repro.errors import ConfigurationError
from repro.obs.spans import UNATTRIBUTED

#: Pseudo party id standing in for a hybrid-model functionality (the
#: "other side" of a ``charge_functionality`` — there is no real peer).
FUNCTIONALITY = -1

#: Pseudo party id standing in for an infrastructure endpoint (the
#: cluster supervisor / gateway process itself) on control-plane cells.
INFRA = -2

#: Schema tag of the JSON flow report (and each spill JSONL line).
FLOW_SCHEMA = "repro-flow/1"

#: ``(round, phase, src, dst, kind)``
FlowKey = Tuple[int, str, int, int, str]

#: ``(phase_override, kind_override)`` carried by :func:`flow_tags`.
_tags: "contextvars.ContextVar[Tuple[Optional[str], Optional[str]]]" = (
    contextvars.ContextVar("repro_obs_flow_tags", default=(None, None))
)


@contextmanager
def flow_tags(phase: Optional[str] = None,
              kind: Optional[str] = None) -> Iterator[None]:
    """Override flow attribution for charges made in this block.

    Transports use ``kind=`` to stamp the wire that carried a charge
    (``"frame"`` for runtime/cluster frames); replay backends use
    ``phase=`` to re-attach the phase recorded at record time, which the
    span stack cannot know during replay.  Overrides affect **only** the
    flow ledger — span attribution in ``CommunicationMetrics``
    (``bits_by_phase``/``phase_breakdown``) is untouched, so existing
    goldens cannot move.  ``None`` leaves the outer value in force.
    """
    outer_phase, outer_kind = _tags.get()
    token = _tags.set(
        (phase if phase is not None else outer_phase,
         kind if kind is not None else outer_kind)
    )
    try:
        yield
    finally:
        _tags.reset(token)


def current_flow_tags() -> Tuple[Optional[str], Optional[str]]:
    """The active ``(phase, kind)`` overrides (``None`` = no override)."""
    return _tags.get()


@dataclass(frozen=True)
class FlowCell:
    """One materialized traffic-matrix cell (a report row)."""

    round: int
    phase: str
    src: int
    dst: int
    kind: str
    bits: int
    frames: int

    def to_wire(self) -> Dict[str, Any]:
        return {
            "round": self.round, "phase": self.phase, "src": self.src,
            "dst": self.dst, "kind": self.kind, "bits": self.bits,
            "frames": self.frames,
        }


def _is_control(kind: str) -> bool:
    return kind.startswith("ctl:")


class FlowLedger:
    """Bounded traffic matrix with exact per-party side counters.

    ``charge()`` is the single write path; transports and
    :class:`~repro.net.metrics.CommunicationMetrics` (via
    ``attach_flow``) call it on every wire transfer.  Everything else is
    read-side: ``top()``, ``by_phase()``, ``report()``,
    ``verify_against()``.
    """

    def __init__(
        self,
        max_cells: int = 65536,
        spill_path: Optional[Path] = None,
        registry: Optional[Any] = None,
    ) -> None:
        if max_cells < 16:
            raise ConfigurationError("flow ledger needs max_cells >= 16")
        self.max_cells = max_cells
        self.spill_path = spill_path
        self._spill_file: Optional[TextIO] = None
        # cells[key] = [bits, frames]; aggregates below never evict.
        self._cells: Dict[FlowKey, List[int]] = {}
        self._by_phase: Dict[str, int] = {}
        self._by_kind: Dict[str, int] = {}
        self._party_sent: Dict[int, int] = {}
        self._party_received: Dict[int, int] = {}
        self._data_bits = 0
        self._data_frames = 0
        self._data_unattributed_bits = 0
        self._control_bits = 0
        self._control_frames = 0
        self.evicted_cells = 0
        self.evicted_bits = 0
        self._registry = registry
        self._flow_bytes = None
        self._frame_bits = None
        if registry is not None:
            self._flow_bytes = registry.counter(
                "repro_flow_bytes_total",
                "Bytes charged to the flow ledger by phase and wire kind",
                ("phase", "kind"),
            )
            self._frame_bits = registry.histogram(
                "repro_flow_frame_bits",
                "Per-charge frame sizes (bits) by wire kind",
                ("kind",),
                buckets=(64, 256, 1024, 4096, 16384, 65536, 262144,
                         1048576, 4194304, 16777216),
            )

    # -- write side ----------------------------------------------------------

    def charge(self, round_index: int, phase: str, src: int, dst: int,
               bits: int, kind: str = "wire", frames: int = 1) -> None:
        """Charge ``bits`` of traffic to one (round, phase, edge, kind) cell."""
        if bits < 0:
            raise ConfigurationError("flow charge cannot be negative")
        phase = phase or UNATTRIBUTED
        key = (round_index, phase, src, dst, kind)
        cell = self._cells.get(key)
        if cell is None:
            self._cells[key] = [bits, frames]
            if len(self._cells) > self.max_cells:
                self._evict()
        else:
            cell[0] += bits
            cell[1] += frames
        self._by_phase[phase] = self._by_phase.get(phase, 0) + bits
        self._by_kind[kind] = self._by_kind.get(kind, 0) + bits
        if _is_control(kind):
            self._control_bits += bits
            self._control_frames += frames
        else:
            self._data_bits += bits
            self._data_frames += frames
            if phase == UNATTRIBUTED:
                self._data_unattributed_bits += bits
            if src >= 0:
                self._party_sent[src] = self._party_sent.get(src, 0) + bits
            if dst >= 0:
                self._party_received[dst] = (
                    self._party_received.get(dst, 0) + bits
                )
        if self._flow_bytes is not None:
            self._flow_bytes.inc(bits / 8, phase=phase, kind=kind)
        if self._frame_bits is not None:
            self._frame_bits.observe(bits, kind=kind)

    def _evict(self) -> None:
        """Spill the coldest cells so the matrix stays under ``max_cells``.

        Evicts a batch (an eighth of capacity) so eviction is amortized;
        order is (bits, key) so two identical runs evict identically.
        Evicted cells are already folded into every aggregate — only the
        per-cell resolution moves to the spill JSONL (if configured).
        """
        target = self.max_cells - max(1, self.max_cells // 8)
        victims = sorted(
            self._cells.items(), key=lambda item: (item[1][0], item[0])
        )[: len(self._cells) - target]
        writer = self._spill_writer()
        for key, (bits, frames) in victims:
            del self._cells[key]
            self.evicted_cells += 1
            self.evicted_bits += bits
            if writer is not None:
                row = FlowCell(*key, bits=bits, frames=frames).to_wire()
                writer.write(
                    json.dumps(row, sort_keys=True, separators=(",", ":"))
                    + "\n"
                )
        if writer is not None:
            writer.flush()

    def _spill_writer(self) -> Optional[TextIO]:
        if self.spill_path is None:
            return None
        if self._spill_file is None:
            self.spill_path.parent.mkdir(parents=True, exist_ok=True)
            self._spill_file = self.spill_path.open("a", encoding="utf-8")
        return self._spill_file

    def close(self) -> None:
        """Flush and close the spill file (idempotent)."""
        if self._spill_file is not None:
            self._spill_file.close()
            self._spill_file = None

    # -- read side -----------------------------------------------------------

    def cells(self) -> List[FlowCell]:
        """All live cells, deterministically ordered (hottest first)."""
        return [
            FlowCell(*key, bits=bits, frames=frames)
            for key, (bits, frames) in sorted(
                self._cells.items(),
                key=lambda item: (-item[1][0], item[0]),
            )
        ]

    def top(self, k: int = 20) -> List[FlowCell]:
        """The ``k`` hottest live cells by bits."""
        return self.cells()[:k]

    def by_phase(self) -> Dict[str, int]:
        """Total bits per phase (includes evicted cells; never lossy)."""
        return dict(self._by_phase)

    def by_kind(self) -> Dict[str, int]:
        """Total bits per wire kind (includes evicted cells)."""
        return dict(self._by_kind)

    def party_bits(self) -> Dict[int, Dict[str, int]]:
        """Exact per-party data-plane side counters (never evicted)."""
        out: Dict[int, Dict[str, int]] = {}
        for pid in sorted(set(self._party_sent) | set(self._party_received)):
            sent = self._party_sent.get(pid, 0)
            received = self._party_received.get(pid, 0)
            out[pid] = {
                "sent": sent, "received": received, "total": sent + received
            }
        return out

    @property
    def data_bits(self) -> int:
        """Total data-plane bits charged (each charge counted once)."""
        return self._data_bits

    @property
    def control_bits(self) -> int:
        """Total control-plane (``ctl:*``) bits metered."""
        return self._control_bits

    def coverage(self) -> float:
        """Fraction of data-plane bits attributed to a real phase.

        ``1.0`` means every charged bit landed in a cell whose phase is
        not :data:`~repro.obs.spans.UNATTRIBUTED`; the acceptance gate
        for committed flow reports is ``>= 0.95``.
        """
        if self._data_bits == 0:
            return 1.0
        return (
            self._data_bits - self._data_unattributed_bits
        ) / self._data_bits

    def verify_against(self, metrics: Any) -> List[str]:
        """Bit-exact parity check against a ``CommunicationMetrics``.

        Returns human-readable mismatch descriptions (empty == parity):
        for every party in either ledger, flow ``sent``/``received``
        must equal the tally's ``bits_sent``/``bits_received`` exactly.
        """
        problems: List[str] = []
        party_ids = sorted(
            set(metrics.party_ids)
            | set(self._party_sent) | set(self._party_received)
        )
        for pid in party_ids:
            tally = metrics.tally_of(pid)
            sent = self._party_sent.get(pid, 0)
            received = self._party_received.get(pid, 0)
            if sent != tally.bits_sent:
                problems.append(
                    f"party {pid}: flow sent {sent} != tally {tally.bits_sent}"
                )
            if received != tally.bits_received:
                problems.append(
                    f"party {pid}: flow received {received} "
                    f"!= tally {tally.bits_received}"
                )
        return problems

    # -- reports -------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """The small flushable summary (appended to ``--metrics-out``)."""
        return {
            "data_bits": self._data_bits,
            "data_frames": self._data_frames,
            "control_bits": self._control_bits,
            "control_frames": self._control_frames,
            "coverage": round(self.coverage(), 6),
            "live_cells": len(self._cells),
            "evicted_cells": self.evicted_cells,
            "by_phase": dict(sorted(self._by_phase.items())),
            "by_kind": dict(sorted(self._by_kind.items())),
        }

    def report(
        self,
        name: str,
        top: int = 50,
        metrics: Optional[Any] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """The full committable flow report (``FLOW_<name>.json`` body)."""
        payload: Dict[str, Any] = {
            "schema": FLOW_SCHEMA,
            "name": name,
            "total_bits": self._data_bits,
            "total_frames": self._data_frames,
            "control_bits": self._control_bits,
            "control_frames": self._control_frames,
            "coverage": round(self.coverage(), 6),
            "by_phase": dict(sorted(self._by_phase.items())),
            "by_kind": dict(sorted(self._by_kind.items())),
            "per_party_bits": {
                str(pid): sides for pid, sides in self.party_bits().items()
            },
            "top_cells": [cell.to_wire() for cell in self.top(top)],
            "live_cells": len(self._cells),
            "evicted_cells": self.evicted_cells,
            "evicted_bits": self.evicted_bits,
            "spill_path": (
                str(self.spill_path) if self.spill_path is not None else None
            ),
        }
        if metrics is not None:
            problems = self.verify_against(metrics)
            payload["parity_with_metrics"] = not problems
            payload["parity_problems"] = problems
        if extra:
            payload.update(extra)
        return payload


def write_flow_json(results_dir: Path, payload: Dict[str, Any]) -> Path:
    """Write ``FLOW_<name>.json`` (sorted keys, trailing newline)."""
    if payload.get("schema") != FLOW_SCHEMA:
        raise ConfigurationError("flow payload missing repro-flow/1 schema")
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / f"FLOW_{payload['name']}.json"
    path.write_text(
        json.dumps(payload, sort_keys=True, indent=2) + "\n",
        encoding="utf-8",
    )
    return path


def load_flow_json(path: Path) -> Dict[str, Any]:
    """Load and schema-check one flow report."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("schema") != FLOW_SCHEMA:
        raise ConfigurationError(f"{path} is not a {FLOW_SCHEMA} report")
    return payload


def load_spill(path: Path) -> List[FlowCell]:
    """Read back evicted cells from a spill JSONL file."""
    cells: List[FlowCell] = []
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            cells.append(FlowCell(
                round=row["round"], phase=row["phase"], src=row["src"],
                dst=row["dst"], kind=row["kind"], bits=row["bits"],
                frames=row["frames"],
            ))
    return cells
