"""MMR14 ABA: codec robustness, agreement/validity/termination properties.

The Hypothesis properties quantify over *delivery orderings* — the
``delivery_orderings()`` strategy draws (seed, policy, latency model)
triples, each naming one complete adversarial schedule of the
asynchronous scheduler — so agreement and validity are exercised across
benign-jitter and worst-case-order executions alike, with Byzantine
corruption and network-level duplication layered on top.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SerializationError
from repro.net.party import Envelope
from repro.protocols.aba import (
    MSG_AUX,
    MSG_BVAL,
    MSG_CONF,
    ABAParty,
    CommonCoin,
    decode_aba_message,
    encode_aba_message,
)
from repro.asynchrony.driver import run_aba
from repro.utils.randomness import Randomness
from tests.strategies import corruption_sets, delivery_orderings, garbage

N = 8  # f = 2: large enough for non-trivial quorums, cheap enough for CI
F = (N - 1) // 3


# -- wire codec --------------------------------------------------------------


class TestCodec:
    @given(
        tag=st.sampled_from([MSG_BVAL, MSG_AUX, MSG_CONF]),
        round_index=st.integers(min_value=0, max_value=10_000),
        value=st.integers(min_value=0, max_value=3),
    )
    def test_roundtrip(self, tag, round_index, value):
        blob = encode_aba_message(tag, round_index, value)
        assert decode_aba_message(blob) == (tag, round_index, value)

    def test_trailing_bytes_rejected(self):
        blob = encode_aba_message(MSG_BVAL, 3, 1)
        with pytest.raises(SerializationError):
            decode_aba_message(blob + b"\x00")

    @given(blob=garbage)
    def test_garbage_never_hangs_or_misframes(self, blob):
        try:
            tag, round_index, value = decode_aba_message(blob)
        except SerializationError:
            return
        assert blob == encode_aba_message(tag, round_index, value)

    @given(blob=garbage)
    def test_honest_party_ignores_garbage(self, blob):
        party = ABAParty(0, range(4), 0, CommonCoin(Randomness(1)))
        party.start()
        out = party.on_message(
            Envelope(sender=1, recipient=0, payload=blob)
        )
        if decodes_cleanly(blob):
            return  # well-formed bytes may legitimately advance the party
        assert out == []


def decodes_cleanly(blob: bytes) -> bool:
    try:
        decode_aba_message(blob)
        return True
    except SerializationError:
        return False


# -- deliver-once ------------------------------------------------------------


class TestDeliverOnce:
    def test_duplicate_bval_never_double_counts(self):
        party = ABAParty(0, range(N), 0, CommonCoin(Randomness(1)))
        party.start()
        envelope = Envelope(
            sender=1,
            recipient=0,
            payload=encode_aba_message(MSG_BVAL, 0, 1),
        )
        party.on_message(envelope)
        assert party.on_message(envelope) == []  # idempotent redelivery
        assert party._bval_recv[(0, 1)] == {1}

    def test_duplicate_aux_and_conf_never_double_count(self):
        party = ABAParty(0, range(N), 0, CommonCoin(Randomness(1)))
        party.start()
        for tag, value in ((MSG_AUX, 1), (MSG_CONF, 2)):
            envelope = Envelope(
                sender=2,
                recipient=0,
                payload=encode_aba_message(tag, 0, value),
            )
            party.on_message(envelope)
            assert party.on_message(envelope) == []


# -- agreement / validity / termination across orderings ---------------------


class TestProperties:
    @given(cfg=delivery_orderings(), bit=st.integers(min_value=0, max_value=1))
    def test_unanimous_validity_across_orderings(self, cfg, bit):
        result = run_aba(
            N,
            seed=cfg["seed"],
            inputs={p: bit for p in range(N)},
            policy=cfg["policy"],
            latency=cfg["latency"],
        )
        assert result.agreed_value == bit
        assert set(result.outputs) == set(range(N))
        assert result.rounds <= 16  # termination, with slack over E[r]~2

    @given(
        cfg=delivery_orderings(),
        corrupted=corruption_sets(N, F),
        byzantine=st.sampled_from(["silent", "equivocate"]),
    )
    def test_agreement_under_corruption_across_orderings(
        self, cfg, corrupted, byzantine
    ):
        result = run_aba(
            N,
            seed=cfg["seed"],
            policy=cfg["policy"],
            latency=cfg["latency"],
            corrupted=set(corrupted),
            byzantine=byzantine,
        )
        honest = [p for p in range(N) if p not in corrupted]
        # Every honest party decided, on one common bit, and that bit
        # was some honest party's input (split inputs: both bits occur
        # unless the corrupted set swallowed one side entirely).
        assert set(result.outputs) == set(honest)
        assert result.agreed_value in {result.inputs[p] for p in honest}

    @given(
        cfg=delivery_orderings(),
        dup=st.sampled_from([0.1, 0.3, 0.5]),
    )
    def test_deliver_once_under_dup_and_reorder(self, cfg, dup):
        from repro.runtime.faults import FaultPlan

        result = run_aba(
            N,
            seed=cfg["seed"],
            policy=cfg["policy"],
            latency=cfg["latency"],
            fault_plan=FaultPlan(
                duplicate_probability=dup,
                rng=Randomness(cfg["seed"]).fork("dup"),
            ),
        )
        assert set(result.outputs) == set(range(N))
        assert result.agreed_value in (0, 1)


# -- input validation --------------------------------------------------------


class TestValidation:
    def test_non_bit_input_rejected(self):
        with pytest.raises(ConfigurationError):
            ABAParty(0, range(4), 2, CommonCoin(Randomness(1)))

    def test_party_must_be_member(self):
        with pytest.raises(ConfigurationError):
            ABAParty(9, range(4), 0, CommonCoin(Randomness(1)))

    def test_unknown_byzantine_behavior_rejected(self):
        with pytest.raises(ConfigurationError):
            run_aba(4, byzantine="gaslight")

    def test_out_of_range_corruption_rejected(self):
        with pytest.raises(ConfigurationError):
            run_aba(4, corrupted={7})
