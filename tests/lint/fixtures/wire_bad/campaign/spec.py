"""SER001 positive fixture: a wire dataclass with no codec."""

from dataclasses import dataclass


@dataclass(frozen=True)
class OrphanRecord:
    """Produced by sweeps, impossible to replay: no encoder/decoder."""

    name: str
    seed: int


@dataclass
class HalfRecord:
    """Has an encoder but no decoder."""

    value: int

    def encode(self) -> str:
        return str(self.value)
