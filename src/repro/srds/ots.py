"""One-time-signature adapters for the OWF-based SRDS.

Thm 2.7 needs any OWF-based signature scheme with *oblivious key
generation*; the paper instantiates it with Lamport.  This adapter layer
makes the choice pluggable so the W-OTS optimization (≈8x smaller
signatures at w=4) slots into the same construction, with the E8-style
size ablation comparing them.

The adapter speaks bytes at the boundary (keys and signatures are opaque
byte strings to the SRDS layer), keeping :mod:`repro.srds.owf` scheme
agnostic.
"""

from __future__ import annotations

import abc
from typing import Tuple

from repro.crypto import lamport, winternitz
from repro.errors import MALFORMED_INPUT_ERRORS


class OneTimeSignatureScheme(abc.ABC):
    """The surface the sortition SRDS needs from its OTS."""

    name: str = "abstract-ots"

    @abc.abstractmethod
    def keygen_from_seed(self, seed: bytes) -> Tuple[bytes, object]:
        """Deterministic key pair: (verification-key bytes, signing handle)."""

    @abc.abstractmethod
    def oblivious_keygen(self, seed: bytes) -> bytes:
        """A verification key with no corresponding signing key."""

    @abc.abstractmethod
    def sign(self, signing_key: object, message: bytes) -> bytes:
        """Sign; returns signature bytes."""

    @abc.abstractmethod
    def verify(self, verification_key: bytes, message: bytes,
               signature: bytes) -> bool:
        """Verify; False on any failure."""

    @abc.abstractmethod
    def signature_bytes(self) -> int:
        """Fixed wire size of one signature."""

    @abc.abstractmethod
    def verification_key_bytes(self) -> int:
        """Fixed wire size of one verification key."""


class LamportOts(OneTimeSignatureScheme):
    """The paper's instantiation: Lamport over SHA-256."""

    name = "lamport"

    def __init__(self, message_bits: int = lamport.DEFAULT_MESSAGE_BITS) -> None:
        self.message_bits = message_bits

    def keygen_from_seed(self, seed: bytes) -> Tuple[bytes, object]:
        vk, sk = lamport.keygen_from_seed(seed, self.message_bits)
        return vk.encode(), sk

    def oblivious_keygen(self, seed: bytes) -> bytes:
        return lamport.oblivious_keygen(seed, self.message_bits).encode()

    def sign(self, signing_key: object, message: bytes) -> bytes:
        return lamport.sign(signing_key, message).encode()

    def verify(self, verification_key: bytes, message: bytes,
               signature: bytes) -> bool:
        try:
            vk = lamport.decode_verification_key(
                verification_key, self.message_bits
            )
            sig = lamport.decode_signature(signature, self.message_bits)
        except MALFORMED_INPUT_ERRORS:
            return False
        return lamport.verify(vk, message, sig)

    def signature_bytes(self) -> int:
        return 32 * self.message_bits

    def verification_key_bytes(self) -> int:
        return 64 * self.message_bits


class WinternitzOts(OneTimeSignatureScheme):
    """W-OTS: ~w-fold smaller signatures, more hashing per operation."""

    name = "winternitz"

    def __init__(
        self,
        message_bits: int = winternitz.DEFAULT_MESSAGE_BITS,
        w: int = winternitz.DEFAULT_W,
    ) -> None:
        self.message_bits = message_bits
        self.w = w
        _, _, self._total_chunks = winternitz._parameters(message_bits, w)

    def keygen_from_seed(self, seed: bytes) -> Tuple[bytes, object]:
        vk, sk = winternitz.keygen_from_seed(seed, self.message_bits, self.w)
        return vk.encode(), sk

    def oblivious_keygen(self, seed: bytes) -> bytes:
        return winternitz.oblivious_keygen(
            seed, self.message_bits, self.w
        ).encode()

    def sign(self, signing_key: object, message: bytes) -> bytes:
        return winternitz.sign(signing_key, message).encode()

    def verify(self, verification_key: bytes, message: bytes,
               signature: bytes) -> bool:
        try:
            vk = winternitz.decode_verification_key(
                verification_key, self.message_bits, self.w
            )
            sig = winternitz.decode_signature(
                signature, self.message_bits, self.w
            )
        except MALFORMED_INPUT_ERRORS:
            return False
        return winternitz.verify(vk, message, sig)

    def signature_bytes(self) -> int:
        return 32 * self._total_chunks

    def verification_key_bytes(self) -> int:
        return 32 * self._total_chunks
