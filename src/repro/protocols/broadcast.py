"""Broadcast with amortized Õ(1) per-party communication (Corollary 1.2(1)).

The communication graph pi_ba establishes — a polylog-degree tree where
*every* party has an honest path to a 2/3-honest supreme committee — is
reusable: once the tree, the SRDS keys, and the PRF seed exist, each
broadcast costs only the certified-propagation phases of Fig. 3 (steps
3-8), i.e. polylog(n) * poly(kappa) bits per party per execution.  Over
ell executions (with arbitrary senders) the per-party cost is
ell * Õ(1), which is what Corollary 1.2(1) claims.

:class:`BroadcastService` packages that: ``setup`` runs the one-time
establishment, ``broadcast`` runs one sender's bit through the pipeline,
and the metrics ledger accumulates across executions so the amortization
benchmark (E4) can read bits-per-party as a function of ell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.crypto.prf import SubsetPRF
from repro.errors import ProtocolError
from repro.functionalities.ae_comm import AlmostEverywhereComm
from repro.net.adversary import CorruptionPlan
from repro.net.metrics import CommunicationMetrics, MetricsSnapshot
from repro.params import ProtocolParameters
from repro.protocols import cost_model
from repro.protocols.balanced_ba import BalancedBA, encode_pair
from repro.protocols.coin_toss import ideal_f_ct
from repro.protocols.phase_king import ideal_f_ba
from repro.srds.base import SRDSScheme
from repro.utils.randomness import Randomness


@dataclass(frozen=True)
class BroadcastOutcome:
    """Result of one broadcast execution."""

    sender: int
    value: int
    outputs: Dict[int, Optional[int]]
    agreement: bool
    consistent_with_sender: bool


class BroadcastService:
    """Reusable broadcast over one pi_ba-established communication graph."""

    def __init__(
        self,
        n: int,
        plan: CorruptionPlan,
        scheme: SRDSScheme,
        params: ProtocolParameters,
        rng: Randomness,
    ) -> None:
        self.n = n
        self.plan = plan
        self.scheme = scheme
        self.params = params
        self.rng = rng
        self.metrics = CommunicationMetrics()
        self.executions = 0
        self._setup_done = False

    def setup(self) -> None:
        """One-time establishment: tree, SRDS parameters, and keys.

        Reuses the pi_ba machinery; the cost lands in this service's
        ledger exactly once, however many broadcasts follow.
        """
        self._ae = AlmostEverywhereComm(
            self.n, self.params, self.plan, self.metrics, self.rng
        )
        tree = self._ae.tree
        self._pp = self.scheme.setup(
            tree.num_virtual, self.rng.fork("bc-srds-setup")
        )
        self._verification_keys: Dict[int, bytes] = {}
        self._signing_keys: Dict[int, object] = {}
        for virtual_id in range(tree.num_virtual):
            vk, sk = self.scheme.keygen(
                self._pp, self.rng.fork(f"bc-kg-{virtual_id}")
            )
            self._verification_keys[virtual_id] = vk
            self._signing_keys[virtual_id] = sk
        self._setup_done = True

    def broadcast(self, sender: int, value: int) -> BroadcastOutcome:
        """Run one broadcast of ``value`` from ``sender``.

        Pipeline: sender → supreme committee (direct polylog messages);
        committee agrees on the received value via f_ba; then the
        certified propagation of Fig. 3 steps 3-8 (reusing the pi_ba
        implementation's phases via a one-shot protocol object that
        shares this service's metrics ledger and tree).
        """
        if not self._setup_done:
            raise ProtocolError("call setup() before broadcast()")
        committee = list(self._ae.tree.supreme_committee)

        # Sender hands its bit to every committee member.
        value_bits = 8 * 33
        for member in committee:
            self.metrics.record_message(sender, member, value_bits)

        # Committee BA on the received value: honest members received the
        # same bit over the authenticated channel, so with an honest
        # sender the unanimity branch of f_ba fires; a corrupt sender can
        # equivocate, in which case the adversary choice models its power
        # (consistency still holds — all honest output the same y).
        corrupt_in_committee = sum(
            1 for member in committee if self.plan.is_corrupt(member)
        )
        if self.plan.is_corrupt(sender):
            committee_inputs = {
                member: member % 2 for member in committee
            }
        else:
            committee_inputs = {member: value for member in committee}
        y = ideal_f_ba(committee_inputs, corrupt_in_committee)
        charge = cost_model.committee_ba(len(committee))
        self.metrics.charge_functionality(
            committee, charge.bits_per_party, charge.peers_per_party,
            charge.rounds,
        )
        seed = ideal_f_ct(self.rng.fork(f"bc-coin-{self.executions}"))
        charge = cost_model.committee_coin_toss(len(committee))
        self.metrics.charge_functionality(
            committee, charge.bits_per_party, charge.peers_per_party,
            charge.rounds,
        )

        outputs = self._certified_propagation(y, seed)
        self.executions += 1

        honest_outputs = [outputs[p] for p in self.plan.honest]
        agreement = (
            all(o is not None for o in honest_outputs)
            and len(set(honest_outputs)) == 1
        )
        consistent = agreement and (
            self.plan.is_corrupt(sender)
            or (honest_outputs and honest_outputs[0] == value)
        )
        return BroadcastOutcome(
            sender=sender,
            value=value,
            outputs=outputs,
            agreement=agreement,
            consistent_with_sender=bool(consistent),
        )

    def _certified_propagation(
        self, y: int, seed: bytes
    ) -> Dict[int, Optional[int]]:
        """Steps 3-8 of Fig. 3 on this service's long-lived tree/keys."""
        protocol = BalancedBA(
            inputs={i: y for i in range(self.n)},
            plan=self.plan,
            scheme=self.scheme,
            params=self.params,
            rng=self.rng.fork(f"bc-run-{self.executions}"),
            metrics=self.metrics,
        )
        outputs, _ = protocol.certified_propagation(
            self._ae,
            self._pp,
            self._verification_keys,
            self._signing_keys,
            y,
            seed,
        )
        return outputs

    def snapshot(self) -> MetricsSnapshot:
        """Cumulative communication over setup + all executions so far."""
        return self.metrics.snapshot()
