"""FlowLedger: cells, tags, eviction/spill, parity with the metrics ledger."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.net.metrics import CommunicationMetrics, PartyTally
from repro.obs.flow import (
    FLOW_SCHEMA,
    FUNCTIONALITY,
    INFRA,
    FlowLedger,
    current_flow_tags,
    flow_tags,
    load_flow_json,
    load_spill,
    write_flow_json,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import UNATTRIBUTED, span


class TestCharge:
    def test_cells_accumulate_and_order_hottest_first(self):
        flow = FlowLedger()
        flow.charge(0, "setup", 1, 2, 100, kind="wire")
        flow.charge(0, "setup", 1, 2, 50, kind="wire")
        flow.charge(1, "boost", 3, 4, 700, kind="frame")
        cells = flow.cells()
        assert [(c.bits, c.frames) for c in cells] == [(700, 1), (150, 2)]
        assert cells[0].kind == "frame"
        assert flow.top(1)[0].phase == "boost"

    def test_aggregates(self):
        flow = FlowLedger()
        flow.charge(0, "a", 1, 2, 10)
        flow.charge(2, "b", 2, 1, 30)
        flow.charge(0, "", 1, 2, 5)
        assert flow.by_phase() == {"a": 10, "b": 30, UNATTRIBUTED: 5}
        assert flow.by_kind() == {"wire": 45}
        assert flow.party_bits()[1] == {
            "sent": 15, "received": 30, "total": 45,
        }
        assert flow.data_bits == 45
        assert flow.coverage() == pytest.approx(40 / 45)

    def test_control_kind_excluded_from_data_plane(self):
        flow = FlowLedger()
        flow.charge(0, "(control)", INFRA, -10, 999, kind="ctl:job")
        flow.charge(0, "p", 0, 1, 8)
        assert flow.data_bits == 8
        assert flow.control_bits == 999
        assert flow.coverage() == 1.0  # control bits never dilute coverage
        assert flow.party_bits() == {
            0: {"sent": 8, "received": 0, "total": 8},
            1: {"sent": 0, "received": 8, "total": 8},
        }

    def test_negative_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            FlowLedger().charge(0, "p", 0, 1, -1)

    def test_tiny_max_cells_rejected(self):
        with pytest.raises(ConfigurationError):
            FlowLedger(max_cells=8)


class TestFlowTags:
    def test_default_no_override(self):
        assert current_flow_tags() == (None, None)

    def test_nesting_inherits_outer_values(self):
        with flow_tags(phase="outer", kind="frame"):
            with flow_tags(kind="session"):
                assert current_flow_tags() == ("outer", "session")
            assert current_flow_tags() == ("outer", "frame")
        assert current_flow_tags() == (None, None)

    def test_override_beats_span_for_flow_but_not_span_attribution(self):
        metrics = CommunicationMetrics()
        flow = FlowLedger()
        metrics.attach_flow(flow)
        with span("real-phase"):
            with flow_tags(phase="replayed-phase", kind="frame"):
                metrics.record_message(0, 1, 64)
        # Span attribution (the existing goldens) sees the real span...
        assert metrics.bits_by_phase(0) == {"real-phase": 64}
        # ...while the flow cell carries the override.
        (cell,) = flow.cells()
        assert (cell.phase, cell.kind) == ("replayed-phase", "frame")


class TestEviction:
    def test_eviction_spills_coldest_and_keeps_aggregates_exact(self, tmp_path):
        spill = tmp_path / "spill.jsonl"
        flow = FlowLedger(max_cells=16, spill_path=spill)
        # 17 distinct cells with distinct sizes: inserting the 17th
        # evicts a batch of the coldest cells.
        for i in range(17):
            flow.charge(i, "p", 0, 1, (i + 1) * 8)
        assert len(flow.cells()) <= 16
        assert flow.evicted_cells > 0
        spilled = load_spill(spill)
        assert len(spilled) == flow.evicted_cells
        # The evicted cells are the coldest ones.
        live_min = min(c.bits for c in flow.cells())
        assert all(c.bits <= live_min for c in spilled)
        # Aggregates and side counters never lose evicted bits.
        total = sum((i + 1) * 8 for i in range(17))
        assert flow.by_phase() == {"p": total}
        assert flow.party_bits()[0]["sent"] == total
        assert flow.data_bits == total
        flow.close()

    def test_eviction_is_deterministic(self):
        def run():
            flow = FlowLedger(max_cells=16)
            for i in range(40):
                flow.charge(i % 5, f"phase-{i % 3}", i % 7, (i + 1) % 7,
                            (i * 37) % 256)
            return ([c.to_wire() for c in flow.cells()],
                    flow.evicted_cells, flow.evicted_bits)

        assert run() == run()


class TestMetricsParity:
    def test_record_message_parity(self):
        metrics = CommunicationMetrics()
        flow = FlowLedger()
        metrics.attach_flow(flow)
        metrics.record_message(0, 1, 100)
        metrics.record_message(1, 2, 36)
        metrics.end_round()
        metrics.record_message(2, 0, 7)
        assert flow.verify_against(metrics) == []
        # Round refinement: post-end_round charges land in round 1.
        assert {c.round for c in flow.cells()} == {0, 1}

    def test_charge_functionality_halves_keep_parity(self):
        metrics = CommunicationMetrics()
        flow = FlowLedger()
        metrics.attach_flow(flow)
        with span("srds-aggregate"):
            metrics.charge_functionality([0, 1, 2], 33, 2)
        assert flow.verify_against(metrics) == []
        kinds = {c.kind for c in flow.cells()}
        assert kinds == {"hybrid"}
        # Sent half 17 (p -> F), received half 16 (F -> p).
        sent = [c for c in flow.cells() if c.dst == FUNCTIONALITY]
        recv = [c for c in flow.cells() if c.src == FUNCTIONALITY]
        assert {c.bits for c in sent} == {17}
        assert {c.bits for c in recv} == {16}

    def test_absorb_tally_keeps_parity(self):
        metrics = CommunicationMetrics()
        flow = FlowLedger()
        metrics.attach_flow(flow)
        tally = PartyTally(bits_sent=120, bits_received=80,
                           messages_sent=3, messages_received=2)
        metrics.absorb_tally(5, tally)
        assert flow.verify_against(metrics) == []
        assert {c.kind for c in flow.cells()} == {"absorbed"}

    def test_verify_reports_mismatch(self):
        metrics = CommunicationMetrics()
        flow = FlowLedger()
        metrics.record_message(0, 1, 50)  # flow not attached: no mirror
        problems = flow.verify_against(metrics)
        assert len(problems) == 2
        assert any("party 0" in p and "sent" in p for p in problems)

    def test_pickled_metrics_drop_flow(self):
        import pickle

        metrics = CommunicationMetrics()
        flow = FlowLedger(registry=MetricsRegistry())
        metrics.attach_flow(flow)
        metrics.record_message(0, 1, 10)
        clone = pickle.loads(pickle.dumps(metrics))
        assert clone.flow is None
        assert clone.tally_of(0).bits_sent == 10


class TestRegistryInstruments:
    def test_flow_bytes_and_histogram_series(self):
        registry = MetricsRegistry()
        flow = FlowLedger(registry=registry)
        flow.charge(0, "boost", 0, 1, 800, kind="frame")
        text = registry.render()
        assert "repro_flow_bytes_total" in text
        assert 'phase="boost"' in text
        assert "repro_flow_frame_bits" in text


class TestReports:
    def test_report_round_trip(self, tmp_path):
        metrics = CommunicationMetrics()
        flow = FlowLedger()
        metrics.attach_flow(flow)
        with span("p"):
            metrics.record_message(0, 1, 40)
        payload = flow.report("unit", metrics=metrics, extra={"n": 2})
        assert payload["schema"] == FLOW_SCHEMA
        assert payload["parity_with_metrics"] is True
        assert payload["coverage"] == 1.0
        assert payload["n"] == 2
        path = write_flow_json(tmp_path, payload)
        assert path.name == "FLOW_unit.json"
        assert load_flow_json(path)["total_bits"] == 40

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "FLOW_bad.json"
        path.write_text(json.dumps({"schema": "nope"}))
        with pytest.raises(ConfigurationError):
            load_flow_json(path)

    def test_summary_shape(self):
        flow = FlowLedger()
        flow.charge(0, "p", 0, 1, 8)
        summary = flow.summary()
        assert summary["data_bits"] == 8
        assert summary["by_phase"] == {"p": 8}
        assert summary["coverage"] == 1.0
