"""The bench regression gate: ``obs diff`` against committed baselines.

Every benchmark in this repo writes a ``repro-bench/1`` record
(:mod:`repro.obs.bench`).  The committed copies under
``benchmarks/results/`` are the *baselines*: the bit counts in them are
deterministic functions of the seeds, so any drift is a real behavioral
change — a protocol edit that moved the paper's headline metric, or an
accounting bug.  Wall-clock numbers, by contrast, are hostage to the
machine that ran them.  The gate therefore splits verdicts:

* **hard failures** — any integer field of ``snapshot`` or any
  ``total_bits`` / ``max_bits_per_party`` / ``messages`` / ``parties``
  in ``phase_breakdown`` that differs at all (these are bit counts and
  structural counts: exactly reproducible, tolerance zero);
* **warnings** — ``wall_times`` entries that regressed by more than
  ``wall_tolerance`` (fractional; default +50%), and fields present on
  one side only.  Warnings never affect the exit code.

:func:`diff_bench` compares two loaded payloads, :func:`diff_dirs`
pairs ``BENCH_*.json`` files across two directories, and
``python -m repro obs diff`` turns the result into an exit status:
nonzero iff any hard failure anywhere.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.bench import load_bench_json

#: ``snapshot`` keys gated exactly (ints; floats are derived from them).
HARD_SNAPSHOT_KEYS = (
    "total_bits",
    "max_bits_per_party",
    "max_locality",
    "max_messages_per_party",
    "rounds",
    "num_parties",
)

#: ``phase_breakdown`` per-phase keys gated exactly.
HARD_PHASE_KEYS = ("total_bits", "max_bits_per_party", "messages", "parties")

#: Default wall-clock regression threshold (fraction of the baseline).
WALL_TOLERANCE = 0.5


@dataclass
class BenchDiff:
    """The verdict of comparing one fresh record to its baseline."""

    name: str
    hard_failures: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.hard_failures

    def to_wire(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "ok": self.ok,
            "hard_failures": list(self.hard_failures),
            "warnings": list(self.warnings),
        }


def diff_bench(
    baseline: Dict[str, Any],
    fresh: Dict[str, Any],
    wall_tolerance: float = WALL_TOLERANCE,
) -> BenchDiff:
    """Compare one fresh ``repro-bench/1`` payload against its baseline."""
    name = str(fresh.get("name") or baseline.get("name") or "?")
    diff = BenchDiff(name=name)

    base_snap = baseline.get("snapshot") or {}
    fresh_snap = fresh.get("snapshot") or {}
    for key in HARD_SNAPSHOT_KEYS:
        base_value = base_snap.get(key)
        fresh_value = fresh_snap.get(key)
        if base_value is None and fresh_value is None:
            continue
        if base_value is None or fresh_value is None:
            diff.warnings.append(
                f"snapshot.{key}: present on one side only "
                f"(baseline={base_value!r}, fresh={fresh_value!r})"
            )
            continue
        if base_value != fresh_value:
            diff.hard_failures.append(
                f"snapshot.{key}: baseline {base_value} != fresh "
                f"{fresh_value}"
            )

    base_phases = baseline.get("phase_breakdown") or {}
    fresh_phases = fresh.get("phase_breakdown") or {}
    for phase in sorted(set(base_phases) | set(fresh_phases)):
        if phase not in base_phases or phase not in fresh_phases:
            diff.warnings.append(
                f"phase {phase!r}: present only in "
                f"{'fresh' if phase in fresh_phases else 'baseline'}"
            )
            continue
        for key in HARD_PHASE_KEYS:
            base_value = base_phases[phase].get(key)
            fresh_value = fresh_phases[phase].get(key)
            if base_value != fresh_value:
                diff.hard_failures.append(
                    f"phase {phase!r}.{key}: baseline {base_value} "
                    f"!= fresh {fresh_value}"
                )

    base_walls = baseline.get("wall_times") or {}
    fresh_walls = fresh.get("wall_times") or {}
    for label in sorted(set(base_walls) | set(fresh_walls)):
        base_value = base_walls.get(label)
        fresh_value = fresh_walls.get(label)
        if not isinstance(base_value, (int, float)) or not isinstance(
            fresh_value, (int, float)
        ):
            continue  # null / missing walls carry no signal
        if base_value > 0 and fresh_value > base_value * (
            1.0 + wall_tolerance
        ):
            diff.warnings.append(
                f"wall {label}: {fresh_value:.3f}s is "
                f"{fresh_value / base_value:.2f}x the baseline "
                f"{base_value:.3f}s (warn-only)"
            )
    return diff


def diff_files(
    baseline_path: Union[str, Path],
    fresh_path: Union[str, Path],
    wall_tolerance: float = WALL_TOLERANCE,
) -> BenchDiff:
    """Compare two on-disk records."""
    return diff_bench(
        load_bench_json(baseline_path),
        load_bench_json(fresh_path),
        wall_tolerance=wall_tolerance,
    )


def pair_bench_files(
    baseline_dir: Union[str, Path], fresh_dir: Union[str, Path]
) -> List[Tuple[str, Optional[Path], Optional[Path]]]:
    """Match ``BENCH_*.json`` files by name across two directories."""
    baseline_dir, fresh_dir = Path(baseline_dir), Path(fresh_dir)
    names: Dict[str, List[Optional[Path]]] = {}
    for index, directory in enumerate((baseline_dir, fresh_dir)):
        if not directory.is_dir():
            continue
        for path in sorted(directory.glob("BENCH_*.json")):
            slot = names.setdefault(path.stem[len("BENCH_"):], [None, None])
            slot[index] = path
    return [
        (name, pair[0], pair[1]) for name, pair in sorted(names.items())
    ]


def diff_dirs(
    baseline_dir: Union[str, Path],
    fresh_dir: Union[str, Path],
    wall_tolerance: float = WALL_TOLERANCE,
) -> List[BenchDiff]:
    """Gate every fresh record in a directory against its baseline.

    A fresh record with no committed baseline (or vice versa) is a
    warning-only entry — new benchmarks must not fail the gate, and a
    retired one is visible without blocking.
    """
    results: List[BenchDiff] = []
    for name, baseline_path, fresh_path in pair_bench_files(
        baseline_dir, fresh_dir
    ):
        if baseline_path is None or fresh_path is None:
            side = "baseline" if baseline_path is None else "fresh copy"
            results.append(BenchDiff(
                name=name, warnings=[f"no {side} for BENCH_{name}.json"]
            ))
            continue
        results.append(
            diff_files(baseline_path, fresh_path, wall_tolerance)
        )
    return results


def render_diffs(results: List[BenchDiff]) -> str:
    """Human-readable multi-line summary of a gate run."""
    lines: List[str] = []
    for result in results:
        verdict = "ok" if result.ok else "FAIL"
        lines.append(f"{result.name}: {verdict}")
        for failure in result.hard_failures:
            lines.append(f"  HARD {failure}")
        for warning in result.warnings:
            lines.append(f"  warn {warning}")
    if not results:
        lines.append("no benchmark records to compare")
    return "\n".join(lines)


def diffs_to_json(results: List[BenchDiff]) -> str:
    """The machine-readable gate verdict (one JSON document)."""
    return json.dumps(
        {
            "ok": all(result.ok for result in results),
            "results": [result.to_wire() for result in results],
        },
        sort_keys=True,
        indent=2,
    ) + "\n"
