"""Lint run configuration: scopes, allowlists, and paths.

Scopes are **path substrings** matched against the forward-slash
relative path of each file (relative to the configured root).  This
keeps the default config usable both on the real tree
(``src/repro/protocols/balanced_ba.py`` matches scope ``protocols/``)
and on test fixture trees that mirror the layout
(``fixtures/protocols/det002_bad.py`` matches too).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Tuple

#: Default baseline file name, looked up relative to the lint root.
BASELINE_FILENAME = "lint-baseline.json"


@dataclass(frozen=True)
class LintConfig:
    """Everything a lint run needs besides the rule set.

    The defaults encode this repo's invariants; tests build narrowed
    configs rooted at fixture directories.
    """

    #: Directory all relative paths are reported against.
    root: Path = field(default_factory=Path.cwd)

    #: Path prefixes/fragments to lint (relative to root).
    paths: Tuple[str, ...] = ("src",)

    #: Directory names that are never descended into.
    exclude_dirs: Tuple[str, ...] = ("__pycache__", ".git", ".hypothesis")

    #: Rule ids to run; empty tuple means "all registered rules".
    rules: Tuple[str, ...] = ()

    # -- per-rule knobs -----------------------------------------------------

    #: DET001: files allowed to touch ``random``/``secrets``/``os.urandom``
    #: directly.  The seeded :class:`repro.utils.randomness.Randomness`
    #: wrapper is the one sanctioned consumer of :mod:`random`.
    det001_allow: Tuple[str, ...] = ("utils/randomness.py",)

    #: DET002: scopes in which wall-clock reads are forbidden (protocol
    #: logic must use the injected logical clock so replays are exact).
    det002_scopes: Tuple[str, ...] = (
        "protocols/", "srds/", "runtime/", "campaign/", "cluster/",
        "serve/", "asynchrony/",
    )

    #: ACC001: scopes in which raw transport/socket/queue sends are
    #: forbidden (all bytes must route through CommunicationMetrics).
    acc001_scopes: Tuple[str, ...] = ("protocols/", "srds/", "cluster/")

    #: ASY001: scopes in which dropped task handles / unawaited
    #: coroutines are flagged — the asyncio execution layers, where a
    #: garbage-collected pump stalls a round barrier nondeterministically.
    asy001_scopes: Tuple[str, ...] = (
        "runtime/", "cluster/", "serve/", "asynchrony/",
    )

    #: OBS001: instrumented modules — every metrics charge they make
    #: must happen under an active ``repro.obs`` phase span.  The
    #: cluster and gateway layers joined in PR 7: their data-plane
    #: charges feed the flow ledger's per-phase cells, so an unspanned
    #: charge there lands in ``(unattributed)`` and erodes the flow
    #: coverage gate; genuine control-plane sites carry pragmas.  The
    #: asynchronous scheduler and ABA protocol charge under spans too —
    #: their bits must attribute for the BENCH_aba comparison to mean
    #: anything.
    obs001_instrumented: Tuple[str, ...] = (
        "protocols/balanced_ba.py", "protocols/aba.py", "cluster/",
        "serve/", "asynchrony/",
    )

    #: SER001: wire modules — every top-level dataclass must have a
    #: registered encode/decode round-trip.
    ser001_wire_modules: Tuple[str, ...] = ("campaign/spec.py",)

    # -- interprocedural (xmod) knobs ---------------------------------------

    #: TRU001: modules whose ``decode_*``/``*.decode`` functions ingest
    #: adversary-controlled bytes.  Their returns are taint sources, and
    #: inside them every struct-unpacked field that escapes into the
    #: return value must be individually guarded.
    tru001_decoder_modules: Tuple[str, ...] = (
        "cluster/wire.py", "cluster/meshwire.py", "serve/wire.py",
        "runtime/transport.py",
    )

    #: TRU001: scopes where ``pickle.loads`` results also count as taint
    #: sources (checkpoint/control-plane payloads cross trust domains).
    tru001_pickle_scopes: Tuple[str, ...] = (
        "cluster/", "serve/", "runtime/",
    )

    #: TRU001: scopes that are taint *sinks* — protocol and SRDS logic
    #: must never consume wire-derived data that was not narrowed first.
    tru001_sink_scopes: Tuple[str, ...] = ("protocols/", "srds/")

    #: TRU001: ledger-charging method names that are sinks wherever they
    #: are called (the accounting the paper's bit bounds rest on).
    tru001_sink_methods: Tuple[str, ...] = (
        "record_message", "replay_digest", "charge_functionality",
    )

    #: TRU001: name fragments that mark a call as a sanitizer — its
    #: result is considered narrowed/validated.
    tru001_sanitizer_markers: Tuple[str, ...] = (
        "validate", "narrow", "sanitize",
    )

    #: TRU001: exception names whose raise-guards and try/except
    #: handlers count as malformed-input validation.
    tru001_guard_exceptions: Tuple[str, ...] = (
        "SerializationError", "ClusterError", "GatewayError",
        "NetworkError", "ReproError", "ConfigurationError",
        "ValueError", "TypeError", "KeyError", "AssertionError",
    )

    #: TRU001: how many direct-call levels taint is tracked through.
    tru001_depth: int = 3

    #: ASY002: scopes whose classes get shared-state lock discipline
    #: checks (same concurrency surfaces as ASY001).
    asy002_scopes: Tuple[str, ...] = (
        "runtime/", "cluster/", "serve/", "asynchrony/",
    )

    #: Baseline file (``None`` = ``root / lint-baseline.json``).
    baseline_path: Optional[Path] = None

    def resolved_baseline_path(self) -> Path:
        if self.baseline_path is not None:
            return self.baseline_path
        return self.root / BASELINE_FILENAME

    def in_scope(self, rel: str, scopes: Tuple[str, ...]) -> bool:
        """Whether ``rel`` (posix relative path) matches any scope."""
        return any(scope in rel for scope in scopes)


def default_config(root: Optional[Path] = None) -> LintConfig:
    """The repo configuration, rooted at ``root`` (default: auto-detect).

    Auto-detection walks up from the current directory looking for
    ``pyproject.toml`` so ``python -m repro lint`` works from any
    subdirectory of a checkout.
    """
    if root is None:
        candidate = Path.cwd()
        for parent in (candidate, *candidate.parents):
            if (parent / "pyproject.toml").exists():
                candidate = parent
                break
        root = candidate
    return LintConfig(root=root)
