"""Tests for the baseline boosts' internals and edge cases."""

import pytest

from repro.net.adversary import random_corruption, targeted_corruption
from repro.protocols.baselines.boosts import (
    BoostResult,
    _evaluate,
    _poll_outcome,
    all_to_all_ba,
    central_party_boost,
    ks09_boost,
    sqrt_boost,
)
from repro.net.metrics import CommunicationMetrics
from repro.utils.randomness import Randomness


class TestEvaluate:
    def test_none_output_breaks_agreement(self):
        plan = targeted_corruption(3, [])
        metrics = CommunicationMetrics()
        result = _evaluate({0: 1, 1: None, 2: 1}, plan, metrics, "x")
        assert not result.agreement

    def test_split_outputs_break_agreement(self):
        plan = targeted_corruption(3, [])
        metrics = CommunicationMetrics()
        result = _evaluate({0: 1, 1: 0, 2: 1}, plan, metrics, "x")
        assert not result.agreement

    def test_corrupt_outputs_ignored(self):
        plan = targeted_corruption(3, [2])
        metrics = CommunicationMetrics()
        result = _evaluate({0: 1, 1: 1, 2: 0}, plan, metrics, "x")
        assert result.agreement

    def test_protocol_label_preserved(self):
        plan = targeted_corruption(2, [])
        result = _evaluate({0: 1, 1: 1}, plan, CommunicationMetrics(),
                           "my-protocol")
        assert result.protocol == "my-protocol"


class TestPollOutcome:
    def test_no_corruption_always_correct(self, rng):
        plan = targeted_corruption(50, [])
        outputs = _poll_outcome(1, set(), plan, rng, responses_per_party=20)
        assert all(value == 1 for value in outputs.values())

    def test_majority_corrupt_sample_flips(self, rng):
        # With every responder corrupt, the poll always flips.
        plan = targeted_corruption(10, list(range(1, 10)))
        outputs = _poll_outcome(1, set(), plan, rng, responses_per_party=9)
        # Party 0 samples 9 of 10 parties: at least 8 corrupt.
        assert outputs[0] == 0

    def test_isolated_responders_dont_vote(self, rng):
        # Everyone isolated: polls are starved (good == bad == 0) and the
        # tie-break (good > bad fails) yields the flipped value — i.e. a
        # fully-isolated network cannot ride a polling boost.
        plan = targeted_corruption(20, [])
        isolated = set(range(20))
        outputs = _poll_outcome(1, isolated, plan, rng,
                                responses_per_party=10)
        assert all(value == 0 for value in outputs.values())


class TestBoostMetricsShape:
    @pytest.fixture
    def plan(self, rng):
        return random_corruption(128, 16, rng)

    def test_sqrt_charges_everyone_equally(self, plan, rng):
        result = sqrt_boost(1, set(), plan, rng)
        assert result.metrics.imbalance < 1.5

    def test_ks09_relay_locality_full(self, plan, rng):
        result = ks09_boost(1, set(), plan, rng)
        assert result.metrics.max_locality >= 127

    def test_central_mean_far_below_max(self, plan, rng):
        result = central_party_boost(1, set(), plan, rng)
        assert result.metrics.max_bits_per_party > (
            3 * result.metrics.mean_bits_per_party
        )

    def test_all_to_all_rounds_scale_with_t(self, rng):
        small_plan = random_corruption(64, 4, rng.fork("a"))
        large_plan = random_corruption(64, 10, rng.fork("b"))
        small = all_to_all_ba({i: 1 for i in range(64)}, small_plan,
                              rng.fork("c"))
        large = all_to_all_ba({i: 1 for i in range(64)}, large_plan,
                              rng.fork("d"))
        assert (
            large.metrics.max_bits_per_party
            > small.metrics.max_bits_per_party
        )

    def test_boost_result_is_frozen(self, plan, rng):
        result = sqrt_boost(1, set(), plan, rng)
        with pytest.raises(Exception):
            result.agreement = False
