"""``python -m repro cluster`` — the cluster operator interface.

Subcommands::

    cluster run [--workload {pi-ba,phase-king}] [--n N] [--workers K]
                [--scheme {snark,owf}] [--seed S] [--run-dir DIR]
                [--data-plane {mesh,relay}]
                [--checkpoint-interval I] [--kill ROUND:WORKER ...]
                [--metrics-out FILE] [--flow-out FILE] [--flow-cells N]
                [--spans-dir DIR] [--timeline-out FILE]
        Execute a workload sharded across K worker processes; print the
        agreement/parity summary and the run directory (checkpoints,
        worker logs, supervisor state).  ``--flow-out`` enables the
        wire-level flow ledger and writes its ``repro-flow/1`` report
        (exit 1 on a metrics-parity failure); ``--spans-dir`` /
        ``--timeline-out`` export the cross-process span tracks and the
        merged Perfetto timeline.

    cluster resume --run-dir DIR [same workload flags as run]
        Pick a crashed or interrupted run back up from its last durable
        barrier.  The workload flags must match the original run — the
        builders are deterministic, so the supervisor rebuilds the same
        job and validates it against the saved state.

    cluster status --run-dir DIR
        Describe a run directory: saved supervisor state, worker
        checkpoint inventory, halted parties.

    cluster bench [--n N] [--workers 1,2,4] [--scheme {snark,owf}]
                  [--seed S] [--results-dir DIR]
                  [--data-planes mesh,relay] [--bench-name NAME]
        The ``BENCH_cluster.json`` record: 1-vs-k-worker wall clock for
        pi_ba replay on each data plane with differential parity
        against ``run_parties``.

    cluster worker --host H --port P --worker-id W
                   [--heartbeat-interval SECONDS]
        Internal: one shard-owning worker process.  The supervisor
        spawns exactly this command line; you never run it by hand.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import ClusterError


def _parse_kill_plan(items: List[str]) -> Dict[int, int]:
    """``ROUND:WORKER`` pairs → the supervisor's SIGKILL schedule."""
    plan: Dict[int, int] = {}
    for item in items:
        round_str, _, worker_str = item.partition(":")
        try:
            plan[int(round_str)] = int(worker_str)
        except ValueError:
            raise ClusterError(
                f"--kill wants ROUND:WORKER, got {item!r}"
            ) from None
    return plan


def _workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", choices=("pi-ba", "phase-king"),
                        default="pi-ba")
    parser.add_argument("--n", type=int, default=16)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--scheme", choices=("snark", "owf"),
                        default="snark")
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument("--checkpoint-interval", type=int, default=8)
    parser.add_argument(
        "--data-plane", choices=("mesh", "relay"), default="mesh",
        help="how party frames travel: direct worker mesh (default) or "
             "the legacy supervisor relay; resume must match the "
             "original run",
    )
    parser.add_argument("--run-dir", type=Path, default=None)
    parser.add_argument(
        "--kill", action="append", default=[], metavar="ROUND:WORKER",
        help="SIGKILL worker WORKER after dispatching round ROUND "
             "(repeatable; exercises checkpoint recovery)",
    )
    parser.add_argument(
        "--trace-dir", type=Path, default=None,
        help="dump the merged per-party JSONL trace here (feed it to "
             "'python -m repro obs timeline' for a Perfetto view)",
    )
    parser.add_argument(
        "--metrics-out", type=Path, default=None,
        help="flush a Prometheus text snapshot here on exit "
             "(atomic; carries the flow summary as a comment line)",
    )
    parser.add_argument(
        "--flow-out", type=Path, default=None,
        help="write the wire-level repro-flow/1 report here "
             "(enables the flow ledger)",
    )
    parser.add_argument(
        "--flow-cells", type=int, default=0,
        help="flow-ledger cell capacity (0 = default when enabled)",
    )
    parser.add_argument(
        "--spans-dir", type=Path, default=None,
        help="dump supervisor + worker span tracks here (feed it to "
             "'python -m repro obs merge' for the merged timeline)",
    )
    parser.add_argument(
        "--timeline-out", type=Path, default=None,
        help="write the merged supervisor+worker Perfetto timeline here",
    )


def _dump_traces(result, trace_dir: Optional[Path]) -> None:
    """Write the merged per-party JSONL trace for timeline export."""
    if trace_dir is None:
        return
    trace_dir.mkdir(parents=True, exist_ok=True)
    result.trace.dump_dir(trace_dir)
    print(f"traces: {trace_dir}")


def _flow_report_name(flow_out: Path) -> str:
    name = flow_out.stem
    if name.startswith("FLOW_"):
        name = name[len("FLOW_"):]
    return name


def _dump_observability(args: argparse.Namespace, result, flow,
                        registry) -> int:
    """Write the run's flow / metrics / span artifacts; 0 unless the
    flow ledger failed bit-exact parity with the metrics ledger."""
    import json as _json

    from repro.obs.flush import flush_metrics_file, write_atomic_text
    from repro.obs.merge import (
        cluster_tracks,
        dump_span_dir,
        export_merged_trace,
    )

    status = 0
    if flow is not None:
        problems = flow.verify_against(result.metrics)
        if problems:
            status = 1
            print(f"flow parity FAILED: {problems[:3]}")
        payload = flow.report(
            _flow_report_name(args.flow_out),
            metrics=result.metrics,
            extra={
                "n": args.n,
                "workload": args.workload,
                "scheme": args.scheme,
                "seed": args.seed,
                "workers": args.workers,
                "rounds": result.rounds,
                "trace_id": result.trace_id,
            },
        )
        flow.close()
        write_atomic_text(
            args.flow_out,
            _json.dumps(payload, sort_keys=True, indent=2) + "\n",
        )
        print(
            f"flow: {args.flow_out} coverage={payload['coverage']} "
            f"parity={payload['parity_with_metrics']}"
        )
    if args.metrics_out is not None and registry is not None:
        flush_metrics_file(args.metrics_out, registry, flow=flow)
        print(f"metrics: {args.metrics_out}")
    if args.spans_dir is not None or args.timeline_out is not None:
        tracks = cluster_tracks(result)
        if args.spans_dir is not None:
            dump_span_dir(args.spans_dir, result.trace_id, tracks)
            print(f"spans: {args.spans_dir}")
        if args.timeline_out is not None:
            export_merged_trace(
                args.timeline_out, tracks, result.trace_id
            )
            print(f"timeline: {args.timeline_out}")
    return status


def _run_workload(args: argparse.Namespace, resume: bool) -> int:
    from repro.analysis.tables import format_bits
    from repro.cluster.drivers import (
        make_scheme,
        run_balanced_ba_cluster,
        run_phase_king_cluster,
    )
    from repro.cluster.supervisor import ClusterConfig
    from repro.net.adversary import random_corruption
    from repro.params import ProtocolParameters
    from repro.utils.randomness import Randomness

    if resume and args.run_dir is None:
        print("cluster resume needs --run-dir")
        return 2
    registry = None
    if args.metrics_out is not None:
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
    flow = None
    if args.flow_out is not None or args.flow_cells > 0:
        from repro.obs.flow import FlowLedger

        if args.flow_out is None:
            print("--flow-cells needs --flow-out")
            return 2
        flow = FlowLedger(
            max_cells=args.flow_cells or 65536,
            spill_path=args.flow_out.with_name(
                args.flow_out.name + ".spill.jsonl"
            ),
            registry=registry,
        )
    config = ClusterConfig(
        num_workers=args.workers,
        kill_plan=_parse_kill_plan(args.kill),
        registry=registry,
        flow=flow,
        data_plane=args.data_plane,
    )
    inputs = {i: i % 2 for i in range(args.n)}
    if args.workload == "phase-king":
        byzantine = (args.n - 1,) if args.n >= 4 else ()
        outputs, result = run_phase_king_cluster(
            inputs,
            byzantine,
            num_workers=args.workers,
            checkpoint_interval=args.checkpoint_interval,
            config=config,
            run_dir=args.run_dir,
            resume=resume,
        )
        decided = set(outputs.values())
        _dump_traces(result, args.trace_dir)
        obs_status = _dump_observability(args, result, flow, registry)
        print(
            f"phase-king n={args.n} workers={args.workers} "
            f"agree={len(decided) == 1} rounds={result.rounds} "
            f"restarts={result.restarts} "
            f"max/party={format_bits(result.metrics.max_bits_per_party)}"
        )
        print(f"run dir: {result.run_dir}")
        return 0 if len(decided) == 1 and obs_status == 0 else 1

    params = ProtocolParameters()
    rng = Randomness(args.seed)
    plan = random_corruption(
        args.n, params.max_corruptions(args.n), rng.fork("corruption")
    )
    ba_result, result = run_balanced_ba_cluster(
        inputs,
        plan,
        make_scheme(args.scheme),
        params,
        rng.fork("protocol"),
        num_workers=args.workers,
        checkpoint_interval=args.checkpoint_interval,
        config=config,
        run_dir=args.run_dir,
        resume=resume,
    )
    _dump_traces(result, args.trace_dir)
    obs_status = _dump_observability(args, result, flow, registry)
    print(
        f"pi_ba n={args.n} t={plan.t} scheme={args.scheme} "
        f"workers={args.workers} agree={ba_result.agreement} "
        f"rounds={result.rounds} restarts={result.restarts} "
        f"max/party={format_bits(ba_result.metrics.max_bits_per_party)}"
    )
    print(f"run dir: {result.run_dir}")
    return 0 if ba_result.agreement and obs_status == 0 else 1


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.cluster.supervisor import describe_run

    status = describe_run(args.run_dir)
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0 if status.get("has_state") else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.cluster.drivers import run_cluster_bench

    worker_counts = tuple(
        int(item) for item in args.workers.split(",") if item
    )
    data_planes = tuple(
        item for item in args.data_planes.split(",") if item
    )
    payload = run_cluster_bench(
        n=args.n,
        worker_counts=worker_counts,
        scheme_name=args.scheme,
        seed=args.seed,
        checkpoint_interval=args.checkpoint_interval,
        results_dir=args.results_dir,
        data_planes=data_planes,
        bench_name=args.bench_name,
    )
    extra = payload["extra"]
    print(
        f"cluster bench: n={extra['n']} scheme={extra['scheme']} "
        f"replay_rounds={extra['replay_rounds']}"
    )
    for key, value in sorted(payload["wall_times"].items()):
        print(f"  {key:<24} {value:8.3f}s")
    ok = True
    for plane, plane_parity in sorted(extra["parity"].items()):
        for workers, checks in sorted(
            plane_parity.items(), key=lambda kv: int(kv[0])
        ):
            verdict = all(checks.values())
            ok = ok and verdict
            print(
                f"  parity @ {plane}/{workers} workers: "
                f"{'ok' if verdict else 'MISMATCH ' + str(checks)}"
            )
    if args.results_dir is not None:
        print(f"  BENCH_{args.bench_name}.json -> {args.results_dir}")
    return 0 if ok else 1


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.cluster.worker import worker_main

    return worker_main(
        args.host,
        args.port,
        args.worker_id,
        heartbeat_interval=args.heartbeat_interval,
    )


def cmd_cluster(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro cluster",
        description="sharded multi-process party execution",
    )
    sub = parser.add_subparsers(dest="subcommand", required=True)

    run_parser = sub.add_parser("run", help="run a workload on the cluster")
    _workload_args(run_parser)

    resume_parser = sub.add_parser(
        "resume", help="resume a run from its last durable barrier"
    )
    _workload_args(resume_parser)

    status_parser = sub.add_parser("status", help="describe a run directory")
    status_parser.add_argument("--run-dir", type=Path, required=True)

    bench_parser = sub.add_parser(
        "bench", help="1-vs-k-worker scaling benchmark"
    )
    bench_parser.add_argument("--n", type=int, default=64)
    bench_parser.add_argument("--workers", default="1,2,4",
                              help="comma-separated worker counts")
    bench_parser.add_argument("--scheme", choices=("snark", "owf"),
                              default="snark")
    bench_parser.add_argument("--seed", type=int, default=2021)
    bench_parser.add_argument("--checkpoint-interval", type=int, default=8)
    bench_parser.add_argument("--results-dir", type=Path, default=None)
    bench_parser.add_argument(
        "--data-planes", default="mesh,relay",
        help="comma-separated data planes to time (mesh, relay)",
    )
    bench_parser.add_argument(
        "--bench-name", default="cluster",
        help="payload name: results land in BENCH_<name>.json "
             "(CI uses 'cluster_ci' for its scaled-down cell)",
    )

    worker_parser = sub.add_parser(
        "worker", help="internal: one worker process"
    )
    worker_parser.add_argument("--host", required=True)
    worker_parser.add_argument("--port", type=int, required=True)
    worker_parser.add_argument("--worker-id", type=int, required=True)
    worker_parser.add_argument("--heartbeat-interval", type=float,
                               default=0.25)

    args = parser.parse_args(argv)
    if args.subcommand == "run":
        return _run_workload(args, resume=False)
    if args.subcommand == "resume":
        return _run_workload(args, resume=True)
    if args.subcommand == "status":
        return _cmd_status(args)
    if args.subcommand == "bench":
        return _cmd_bench(args)
    if args.subcommand == "worker":
        return _cmd_worker(args)
    parser.print_help()
    return 2
