"""Gateway sessions: specs, admission control, pipelined repeated BA.

A *session* is one client-submitted unit of agreement work: ``repeat``
back-to-back pi_ba decisions for a fixed ``(n, scheme, seed)``.  The
:class:`SessionManager` admits sessions against a bounded concurrency
lane (explicit backpressure — an over-capacity submit gets a structured
reject with a retry-after hint, never a hidden queue), runs the
CPU-bound protocol executions on a thread pool so the asyncio gateway
stays responsive, and pipelines a session's repeated decisions through
one :class:`~repro.serve.setup_cache.SetupLease` so only the first
decision anywhere on a key pays SRDS keygen (Corollary 1.2's
amortization).

Every completed session returns the agreed value **together with its
per-party bit tallies** — the certificate that the polylog budget held:
the tallies are checked against the analytic ceiling of
:func:`repro.protocols.cost_model.pi_ba_per_party_budget`, and (because
all randomness is seed-derived) they are identical to a one-shot
:func:`~repro.protocols.balanced_ba.run_balanced_ba` of the same
``(workload, scheme, seed)`` — :func:`one_shot_reference` reproduces
that reference and the conformance tests pin the equality.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import GatewayError
from repro.net.adversary import random_corruption
from repro.net.metrics import CommunicationMetrics
from repro.obs.flow import FlowLedger, flow_tags
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanLog, recording
from repro.params import ProtocolParameters
from repro.protocols.balanced_ba import run_balanced_ba
from repro.protocols.cost_model import pi_ba_per_party_budget
from repro.serve import wire
from repro.serve.setup_cache import (
    SCHEME_LABELS,
    SetupCache,
    SetupLease,
    scheme_for,
)
from repro.utils.randomness import Randomness

#: Supported workloads (the certified-output service of Fig. 3).
WORKLOADS = ("pi-ba",)

#: Input patterns a spec may request.
INPUT_PATTERNS = ("split", "zero", "one")

#: Guard rails on spec fields (loopback service, but garbage in a JSON
#: line must not allocate unbounded work).
MAX_N = 4096
MAX_REPEAT = 10_000


@dataclass(frozen=True)
class SessionSpec:
    """What one client asked the gateway to decide."""

    workload: str = "pi-ba"
    n: int = 16
    scheme: str = "owf"
    seed: int = 2021
    repeat: int = 1
    inputs: str = "split"

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise GatewayError(
                f"unknown workload {self.workload!r} "
                f"(expected one of {WORKLOADS})"
            )
        if self.scheme not in SCHEME_LABELS:
            raise GatewayError(
                f"unknown scheme {self.scheme!r} "
                f"(expected one of {SCHEME_LABELS})"
            )
        if not isinstance(self.n, int) or not 4 <= self.n <= MAX_N:
            raise GatewayError(f"n must be an int in [4, {MAX_N}]")
        if not isinstance(self.seed, int):
            raise GatewayError("seed must be an int")
        if (
            not isinstance(self.repeat, int)
            or not 1 <= self.repeat <= MAX_REPEAT
        ):
            raise GatewayError(f"repeat must be an int in [1, {MAX_REPEAT}]")
        if self.inputs not in INPUT_PATTERNS:
            raise GatewayError(
                f"unknown inputs pattern {self.inputs!r} "
                f"(expected one of {INPUT_PATTERNS})"
            )

    @staticmethod
    def from_wire(payload: Dict[str, Any]) -> "SessionSpec":
        """Build a spec from a ``submit`` request, validating types."""
        fields_in = {}
        for name, kind in (
            ("workload", str), ("n", int), ("scheme", str),
            ("seed", int), ("repeat", int), ("inputs", str),
        ):
            if name in payload and payload[name] is not None:
                value = payload[name]
                if not isinstance(value, kind) or isinstance(value, bool):
                    raise GatewayError(
                        f"field {name!r} must be {kind.__name__}"
                    )
                fields_in[name] = value
        return SessionSpec(**fields_in)

    def to_wire(self) -> Dict[str, Any]:
        return {
            "workload": self.workload, "n": self.n, "scheme": self.scheme,
            "seed": self.seed, "repeat": self.repeat, "inputs": self.inputs,
        }

    def setup_key(self) -> Dict[str, Any]:
        """The (scheme, n, seed-domain) triple the setup cache keys on."""
        return {"scheme": self.scheme, "n": self.n, "seed": self.seed}


def make_inputs(spec: SessionSpec) -> Dict[int, int]:
    """The per-party input vector a spec's pattern denotes."""
    if spec.inputs == "split":
        return {i: i % 2 for i in range(spec.n)}
    value = 0 if spec.inputs == "zero" else 1
    return {i: value for i in range(spec.n)}


def _probe_base_signature_bytes(spec: SessionSpec, material: Any) -> int:
    """Wire size of one base signature under the session's key material."""
    pp = material.public_parameters
    scheme = scheme_for(spec.scheme)
    for virtual_id, signing_key in material.signing_keys.items():
        if signing_key is None:
            continue
        signature = scheme.sign(pp, virtual_id, signing_key, b"gateway-probe")
        if signature is not None:
            return signature.size_bytes()
    return 0


def run_decision(
    spec: SessionSpec,
    lease: SetupLease,
    flow: Optional[FlowLedger] = None,
    span_log: Optional[SpanLog] = None,
) -> Dict[str, Any]:
    """Execute one pi_ba decision for a spec over a setup lease.

    Seed derivation mirrors the one-shot drivers exactly: everything
    descends from ``Randomness(spec.seed)`` via stateless forks, so the
    decision — outputs *and* per-party bit tallies — is a pure function
    of the spec regardless of cache state.

    ``flow``, when given, receives every charge of the decision as
    traffic-matrix cells under ``kind="session"`` (the gateway's wire in
    the flow ledger); ``span_log`` collects the protocol's phase spans
    for the sessions track of a merged timeline.  Neither changes the
    decision or its tallies.
    """
    params = ProtocolParameters()
    rng = Randomness(spec.seed)
    plan = random_corruption(
        spec.n, params.max_corruptions(spec.n), rng.fork("c")
    )
    metrics = CommunicationMetrics()
    if flow is not None:
        metrics.attach_flow(flow)
    with ExitStack() as stack:
        if span_log is not None:
            stack.enter_context(recording(span_log))
        if flow is not None:
            stack.enter_context(flow_tags(kind="session"))
        result = run_balanced_ba(
            make_inputs(spec), plan, lease.scheme, params,
            rng.fork("session"),
            metrics=metrics,
            setup_provider=lease.provider,
        )
    per_party_bits = {
        str(party): metrics.tally_of(party).bits_total
        for party in sorted(metrics.party_ids)
    }
    budget_bits = pi_ba_per_party_budget(
        spec.n, params, result.certificate_bytes,
        _probe_base_signature_bytes(spec, lease._entry.material),
    )
    return {
        "value": result.agreed_value,
        "agreement": result.agreement,
        "validity": result.validity,
        "certificate_bytes": result.certificate_bytes,
        "per_party_bits": per_party_bits,
        "max_bits_per_party": result.metrics.max_bits_per_party,
        "total_bits": result.metrics.total_bits,
        "budget_bits": budget_bits,
        "within_budget": result.metrics.max_bits_per_party <= budget_bits,
        "num_virtual": result.num_virtual,
    }


def one_shot_reference(spec: SessionSpec) -> Dict[str, Any]:
    """The uncached single-invocation reference for a spec.

    Runs the identical derivation on a fresh scheme and a cold one-entry
    cache; gateway sessions must match its value and per-party tallies
    bit for bit (the bench and conformance tests enforce this).
    """
    cache = SetupCache(max_entries=1)
    lease = cache.lease(spec.scheme, spec.n, spec.seed)
    return run_decision(spec, lease)


#: Pluggable per-decision runner (tests inject slow/stub workloads).
DecisionRunner = Callable[[SessionSpec, SetupLease], Dict[str, Any]]


def flow_decision_runner(
    flow: Optional[FlowLedger], span_log: Optional[SpanLog] = None
) -> DecisionRunner:
    """Bind :func:`run_decision` to a shared flow ledger (and span log).

    The returned runner has the plain :data:`DecisionRunner` signature,
    so the :class:`SessionManager` plumbing is unchanged; the ledger
    accumulates across every decision of every session it serves.
    """

    def runner(spec: SessionSpec, lease: SetupLease) -> Dict[str, Any]:
        return run_decision(spec, lease, flow=flow, span_log=span_log)

    return runner


@dataclass
class SessionRecord:
    """One admitted session's lifecycle state."""

    session_id: str
    spec: SessionSpec
    #: Client-supplied (or gateway-minted) trace id — echoed on every
    #: response about this session, correlating client, gateway, and
    #: timeline artifacts.
    trace_id: str = ""
    state: str = "running"  # running | done | failed | cancelled
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None
    decisions_completed: int = 0
    wall_seconds: Optional[float] = None
    done_event: asyncio.Event = field(default_factory=asyncio.Event)
    cancel_requested: threading.Event = field(
        default_factory=threading.Event
    )

    def summary(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "session": self.session_id,
            "state": self.state,
            "spec": self.spec.to_wire(),
            "decisions_completed": self.decisions_completed,
        }
        if self.trace_id:
            payload["trace"] = self.trace_id
        if self.error is not None:
            payload["error"] = self.error
        return payload


class SessionManager:
    """Admission control + execution for multiplexed BA sessions.

    ``max_sessions`` bounds *concurrent* sessions (the lane semaphore);
    a submit beyond the bound is rejected with ``code="busy"`` and a
    ``retry_after`` hint sized from recent session wall times, so a
    well-behaved client backs off exactly as long as the lane needs to
    drain.  All methods except the decision runners run on the event
    loop thread; protocol executions run on the thread pool.
    """

    def __init__(
        self,
        *,
        max_sessions: int = 2,
        retry_after: float = 0.5,
        cache: Optional[SetupCache] = None,
        registry: Optional[MetricsRegistry] = None,
        decision_runner: Optional[DecisionRunner] = None,
        executor_workers: Optional[int] = None,
        flow: Optional[FlowLedger] = None,
        span_log: Optional[SpanLog] = None,
    ) -> None:
        if max_sessions < 1:
            raise GatewayError("max_sessions must be at least 1")
        self.max_sessions = max_sessions
        self._base_retry_after = retry_after
        self.registry = registry
        # Flow observability: when a ledger is given (and no custom
        # runner overrides it), every decision's charges land in it
        # under kind="session"; the span log collects the phase spans
        # for the merged timeline's sessions track.
        self.flow = flow
        self.span_log = span_log
        if decision_runner is None:
            decision_runner = (
                flow_decision_runner(flow, span_log)
                if flow is not None or span_log is not None
                else run_decision
            )
        self.cache = cache if cache is not None else SetupCache(
            registry=registry
        )
        self._decision_runner = decision_runner
        self._pool = ThreadPoolExecutor(
            max_workers=executor_workers or max_sessions,
            thread_name_prefix="repro-gateway-session",
        )
        self._records: Dict[str, SessionRecord] = {}
        self._tasks: Dict[str, "asyncio.Task[None]"] = {}
        self._active = 0
        self._admitting = True
        self._next_id = 0
        self._recent_walls: List[float] = []
        self._admitted_counter = None
        self._rejected_counter = None
        self._decisions_counter = None
        self._latency_histogram = None
        self._active_gauge = None
        if registry is not None:
            self._admitted_counter = registry.counter(
                "repro_gateway_sessions_admitted_total",
                "Sessions accepted past admission control",
            )
            self._rejected_counter = registry.counter(
                "repro_gateway_sessions_rejected_total",
                "Sessions rejected with backpressure", ("code",),
            )
            self._decisions_counter = registry.counter(
                "repro_gateway_decisions_total",
                "Completed BA decisions across all sessions",
            )
            self._latency_histogram = registry.histogram(
                "repro_gateway_session_seconds",
                "Wall-clock duration of one completed session",
            )
            self._active_gauge = registry.gauge(
                "repro_gateway_sessions_active",
                "Sessions currently holding a concurrency lane",
            )

    # -- admission ----------------------------------------------------------

    @property
    def active(self) -> int:
        """Sessions currently holding a lane."""
        return self._active

    def stop_admitting(self) -> None:
        """Graceful-shutdown step 1: every further submit is rejected."""
        self._admitting = False

    def retry_after_hint(self) -> float:
        """Backpressure hint: ~half a recent session, floored at base."""
        if self._recent_walls:
            recent = sum(self._recent_walls) / len(self._recent_walls)
            return max(self._base_retry_after, round(recent / 2, 3))
        return self._base_retry_after

    def submit(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Admit (or reject) one session; returns the wire response."""
        if not self._admitting:
            if self._rejected_counter is not None:
                self._rejected_counter.inc(code="shutting-down")
            return wire.reject(
                "shutting-down", "gateway is draining; not admitting"
            )
        try:
            spec = SessionSpec.from_wire(payload)
        except GatewayError as exc:
            return wire.reject("bad-request", str(exc))
        if self._active >= self.max_sessions:
            if self._rejected_counter is not None:
                self._rejected_counter.inc(code="busy")
            return wire.reject(
                "busy",
                f"all {self.max_sessions} session lanes are busy",
                retry_after=self.retry_after_hint(),
            )
        self._next_id += 1
        # Cross-process trace propagation: a client may stamp its own
        # trace id on the submit; otherwise the gateway mints a
        # deterministic one from the session counter and spec.
        trace = payload.get("trace")
        trace_id = (
            str(trace)
            if isinstance(trace, str) and trace
            else f"gateway-s{self._next_id}-{spec.workload}-n{spec.n}"
        )
        record = SessionRecord(
            session_id=f"s-{self._next_id}", spec=spec, trace_id=trace_id
        )
        self._records[record.session_id] = record
        self._active += 1
        if self._admitted_counter is not None:
            self._admitted_counter.inc()
        if self._active_gauge is not None:
            self._active_gauge.set(self._active)
        task = asyncio.get_running_loop().create_task(self._run(record))
        self._tasks[record.session_id] = task
        return wire.ok(
            session=record.session_id,
            state=record.state,
            setup_key=spec.setup_key(),
            trace=record.trace_id,
        )

    # -- execution ----------------------------------------------------------

    async def _run(self, record: SessionRecord) -> None:
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(self._pool, self._execute, record)
        except Exception as exc:  # lint: allow[EXC001] reason=session isolation: one failed session must not kill the gateway; the error is stored and reported to the awaiting client
            record.state = "failed"
            record.error = f"{type(exc).__name__}: {exc}"
        finally:
            self._active -= 1
            if self._active_gauge is not None:
                self._active_gauge.set(self._active)
            if record.wall_seconds is not None:
                self._recent_walls.append(record.wall_seconds)
                del self._recent_walls[:-8]
                if self._latency_histogram is not None:
                    self._latency_histogram.observe(record.wall_seconds)
            if self._decisions_counter is not None:
                self._decisions_counter.inc(record.decisions_completed)
            record.done_event.set()

    def _execute(self, record: SessionRecord) -> None:
        """Thread-pool body: pipelined repeated decisions over one lease."""
        import time

        spec = record.spec
        lease = self.cache.lease(spec.scheme, spec.n, spec.seed)
        decision_walls: List[float] = []
        last: Optional[Dict[str, Any]] = None
        started = time.perf_counter()  # lint: allow[DET002] reason=decision latency observability; protocol state never reads wall time
        for _ in range(spec.repeat):
            if record.cancel_requested.is_set():
                break
            turn = time.perf_counter()  # lint: allow[DET002] reason=decision latency observability; protocol state never reads wall time
            last = self._decision_runner(spec, lease)
            decision_walls.append(time.perf_counter() - turn)  # lint: allow[DET002] reason=decision latency observability; protocol state never reads wall time
            record.decisions_completed += 1
        record.wall_seconds = time.perf_counter() - started  # lint: allow[DET002] reason=decision latency observability; protocol state never reads wall time
        cancelled = record.cancel_requested.is_set()
        record.state = "cancelled" if cancelled else "done"
        if last is None:
            record.result = None
            return
        busy = sum(decision_walls)
        steady = decision_walls[1:]
        record.result = dict(last)
        record.result.update(
            spec=spec.to_wire(),
            decisions=record.decisions_completed,
            setup_cache={"hits": lease.hits, "misses": lease.misses},
            wall={
                "session_s": round(record.wall_seconds, 6),
                "first_decision_s": round(decision_walls[0], 6),
                "steady_mean_s": (
                    round(sum(steady) / len(steady), 6) if steady else None
                ),
                "decisions_per_sec": (
                    round(record.decisions_completed / busy, 3)
                    if busy > 0 else None
                ),
            },
        )

    # -- client-facing queries ----------------------------------------------

    def _record_or_none(self, session_id: str) -> Optional[SessionRecord]:
        return self._records.get(session_id)

    async def await_result(
        self, session_id: str, timeout: Optional[float] = None
    ) -> Dict[str, Any]:
        record = self._record_or_none(session_id)
        if record is None:
            return wire.reject(
                "unknown-session", f"no session {session_id!r}"
            )
        if timeout is not None:
            try:
                await asyncio.wait_for(record.done_event.wait(), timeout)
            except asyncio.TimeoutError:
                return wire.reject(
                    "timeout",
                    f"session {session_id} still {record.state} "
                    f"after {timeout}s",
                    retry_after=self.retry_after_hint(),
                )
        else:
            await record.done_event.wait()
        return self.result_response(record)

    def result_response(self, record: SessionRecord) -> Dict[str, Any]:
        if record.state == "failed":
            return wire.reject(
                "failed", record.error or "session failed"
            )
        return wire.ok(**record.summary(), result=record.result)

    def status(
        self, session_id: Optional[str] = None
    ) -> Dict[str, Any]:
        if session_id is not None:
            record = self._record_or_none(session_id)
            if record is None:
                return wire.reject(
                    "unknown-session", f"no session {session_id!r}"
                )
            return wire.ok(**record.summary())
        by_state: Dict[str, int] = {}
        for record in self._records.values():
            by_state[record.state] = by_state.get(record.state, 0) + 1
        payload = wire.ok(
            admitting=self._admitting,
            active=self._active,
            max_sessions=self.max_sessions,
            sessions=by_state,
            setup_cache=self.cache.stats(),
            retry_after=self.retry_after_hint(),
        )
        if self.flow is not None:
            payload["flow"] = self.flow.summary()
        return payload

    def cancel(self, session_id: str) -> Dict[str, Any]:
        record = self._record_or_none(session_id)
        if record is None:
            return wire.reject(
                "unknown-session", f"no session {session_id!r}"
            )
        record.cancel_requested.set()
        return wire.ok(session=session_id, state=record.state)

    # -- shutdown -----------------------------------------------------------

    async def drain(self, deadline: float) -> bool:
        """Wait for in-flight sessions; escalate to cooperative cancel.

        Phase 1 waits up to ``deadline`` seconds for every session task
        to finish on its own.  Phase 2 flags the stragglers' cancel
        events (honored between pipelined decisions) and waits one more
        deadline.  Returns ``True`` when nothing is left in flight.
        """
        for escalate in (False, True):
            pending = [
                task for task in self._tasks.values() if not task.done()
            ]
            if not pending:
                return True
            if escalate:
                for record in self._records.values():
                    if not record.done_event.is_set():
                        record.cancel_requested.set()
            done, still_pending = await asyncio.wait(
                pending, timeout=deadline
            )
            del done
            if not still_pending and escalate:
                return True
        return all(task.done() for task in self._tasks.values())

    def close(self) -> None:
        """Release the executor (after :meth:`drain`)."""
        self._pool.shutdown(wait=False)
