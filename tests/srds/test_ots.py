"""Tests for the OTS adapters and the OWF SRDS over each of them."""

import pytest

from repro.errors import ConfigurationError
from repro.srds.ots import LamportOts, WinternitzOts
from repro.srds.owf import OwfSRDS
from repro.utils.randomness import Randomness


@pytest.fixture(params=["lamport", "winternitz"])
def ots(request):
    if request.param == "lamport":
        return LamportOts(message_bits=32)
    return WinternitzOts(message_bits=32, w=4)


class TestAdapters:
    def test_sign_verify(self, ots):
        vk, sk = ots.keygen_from_seed(b"seed-one")
        signature = ots.sign(sk, b"m")
        assert ots.verify(vk, b"m", signature)
        assert not ots.verify(vk, b"x", signature)

    def test_oblivious_key_shape(self, ots):
        real_vk, _ = ots.keygen_from_seed(b"a")
        oblivious_vk = ots.oblivious_keygen(b"b")
        assert len(real_vk) == len(oblivious_vk)
        assert len(real_vk) == ots.verification_key_bytes()

    def test_signature_size_declared(self, ots):
        _, sk = ots.keygen_from_seed(b"a")
        assert len(ots.sign(sk, b"m")) == ots.signature_bytes()

    def test_garbage_rejected(self, ots):
        vk, _ = ots.keygen_from_seed(b"a")
        assert not ots.verify(vk, b"m", b"garbage")
        assert not ots.verify(b"garbage", b"m", b"garbage")

    def test_winternitz_smaller(self):
        lamport = LamportOts(message_bits=128)
        wots = WinternitzOts(message_bits=128, w=4)
        assert wots.signature_bytes() * 3 < lamport.signature_bytes()


class TestOwfSrdsOverOts:
    def _full_flow(self, scheme, n=128):
        rng = Randomness(55)
        pp = scheme.setup(n, rng.fork("s"))
        vks, sks = {}, {}
        for i in range(n):
            vks[i], sks[i] = scheme.keygen(pp, rng.fork(f"k{i}"))
        message = b"ots-flow"
        signatures = [
            s for s in (
                scheme.sign(pp, i, sks[i], message) for i in range(n)
            )
            if s is not None
        ]
        aggregate = scheme.aggregate(pp, vks, message, signatures)
        return scheme, pp, vks, message, aggregate

    def test_winternitz_instantiation_verifies(self):
        scheme = OwfSRDS(ots=WinternitzOts(message_bits=32, w=4))
        scheme, pp, vks, message, aggregate = self._full_flow(scheme)
        assert scheme.verify(pp, vks, message, aggregate)
        assert not scheme.verify(pp, vks, b"other", aggregate)

    def test_winternitz_aggregate_smaller_than_lamport(self):
        lamport_scheme = OwfSRDS(ots=LamportOts(message_bits=128))
        wots_scheme = OwfSRDS(ots=WinternitzOts(message_bits=128, w=4))
        _, _, _, _, lamport_aggregate = self._full_flow(lamport_scheme)
        _, _, _, _, wots_aggregate = self._full_flow(wots_scheme)
        assert (
            wots_aggregate.size_bytes() * 3 < lamport_aggregate.size_bytes()
        )

    def test_conflicting_config_rejected(self):
        with pytest.raises(ConfigurationError):
            OwfSRDS(message_bits=64, ots=LamportOts(message_bits=64))

    def test_ots_name_in_pp(self):
        scheme = OwfSRDS(ots=WinternitzOts(message_bits=32, w=4))
        pp = scheme.setup(64, Randomness(1))
        assert pp.extra["ots_name"] == "winternitz"
