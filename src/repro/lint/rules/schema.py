"""SCH001 — wire-schema drift between paired encoders and decoders.

A codec bug in this codebase is silent until two processes disagree at
runtime — the worst possible place for a Byzantine-agreement testbed to
discover that ``encode_X`` and ``decode_X`` drifted apart.  This rule
statically pairs both sides of every wire schema through the artifacts
they necessarily share, and fails the build on asymmetry:

**Struct-framed codecs.**  Module-level ``struct.Struct`` constants are
the pairing key: every ``CONST.pack(...)`` site and every ``CONST.
unpack*`` binding — in any module, cross-module uses included — must
agree with the format string's field count (arity drift), and the
identifiers feeding each pack position must agree *positionally* with
the canonical field names established by the decoder's unpack tuple
(order drift: ``pack(frame.recipient, frame.sender, ...)`` against a
decoder that unpacks ``sender, recipient, ...``).  Name pairing is
affix-tolerant (``sent`` pairs with ``sent_round``) and skips
constants, computed expressions, and ALL_CAPS tag names — only a
position whose identifier *matches a different canonical position* is
drift; unknown names are never guessed at.

**Dataclass-framed codecs.**  A dataclass with an ``encode`` method is
a wire schema too: every declared field must be read somewhere in the
``encode`` closure (the method itself plus the ``self.*`` helpers it
calls), otherwise the field rides the constructor but never the wire —
the classic "added a field, forgot the codec" drift.  Symmetrically,
any constructor call of such a dataclass (decoders live in other
modules, so this is checked project-wide) must only use keywords that
are declared fields of the class or its bases.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.config import LintConfig
from repro.lint.model import ModuleUnit, ProjectRule, RuleMeta, Severity, Violation
from repro.lint.xmod.project import (
    CallNode,
    ClassFacts,
    FunctionFacts,
    ProjectUnit,
    UnpackFact,
)

#: Format characters that consume one value regardless of repeat count.
_STRING_CODES = "sp"
#: Format characters that consume no value.
_PAD_CODE = "x"
_BYTE_ORDER = "@=<>!"


def struct_field_count(fmt: str) -> int:
    """Number of values a ``struct`` format string packs/unpacks."""
    count = 0
    digits = ""
    for char in fmt:
        if char in _BYTE_ORDER or char.isspace():
            digits = ""
            continue
        if char.isdigit():
            digits += char
            continue
        repeat = int(digits) if digits else 1
        digits = ""
        if char in _STRING_CODES:
            count += 1
        elif char != _PAD_CODE:
            count += repeat
    return count


def _is_tag_name(ident: str) -> bool:
    """ALL_CAPS identifiers are protocol tags, not field names."""
    stripped = ident.lstrip("_")
    return bool(stripped) and stripped == stripped.upper()


def _names_pair(left: str, right: str) -> bool:
    """Affix-tolerant field-name equality (``sent`` ~ ``sent_round``)."""
    a, b = left.lower(), right.lower()
    return (
        a == b
        or a.endswith("_" + b) or b.endswith("_" + a)
        or a.startswith(b + "_") or b.startswith(a + "_")
    )


class SchemaDriftRule(ProjectRule):
    """Encoder/decoder pairs must agree on field count and order."""

    meta = RuleMeta(
        rule_id="SCH001",
        name="wire-schema-drift",
        severity=Severity.ERROR,
        summary=(
            "paired encoders and decoders must agree on struct field "
            "count, field order, and dataclass field coverage"
        ),
        rationale=(
            "Every wire schema lives in two places — the pack and the "
            "unpack, the dataclass and its codec — and nothing at "
            "runtime checks they agree until two processes disagree. "
            "Drift (a reordered struct field, a dataclass field the "
            "encoder never reads) silently corrupts frames, charges, "
            "and round indices, invalidating the bit-accounting the "
            "paper's O(polylog) claims rest on."
        ),
        fix_hint=(
            "make the pack argument order match the decoder's unpack "
            "tuple, update both sides of the codec together, and "
            "encode every declared dataclass field"
        ),
    )

    # -- struct codec inventory ----------------------------------------------

    @staticmethod
    def _const_of(callee: str, project: ProjectUnit) -> Optional[str]:
        """Qualified struct const a ``CONST.pack``/``unpack*`` call uses."""
        if "." not in callee:
            return None
        head, _tail = callee.rsplit(".", 1)
        return head if head in project.struct_consts else None

    def _pack_sites(
        self, project: ProjectUnit,
    ) -> List[Tuple[str, str, FunctionFacts, CallNode, int]]:
        """Every ``CONST.pack*`` call: (const, module, function, call,
        index of the first packed-value argument)."""
        sites = []
        for _qualified, (modname, function) in sorted(
            project.functions.items()
        ):
            for call in function.calls:
                tail = call.callee.rsplit(".", 1)[-1]
                if tail not in ("pack", "pack_into"):
                    continue
                const = self._const_of(call.callee, project)
                if const is None:
                    continue
                skip = 2 if tail == "pack_into" else 0
                sites.append((const, modname, function, call, skip))
        return sites

    def _unpack_sites(
        self, project: ProjectUnit,
    ) -> List[Tuple[str, str, FunctionFacts, UnpackFact]]:
        sites = []
        for _qualified, (modname, function) in sorted(
            project.functions.items()
        ):
            for unpack in function.unpacks:
                const = self._const_of(unpack.callee, project)
                if const is not None:
                    sites.append((const, modname, function, unpack))
        return sites

    # -- struct checks --------------------------------------------------------

    def _check_structs(
        self,
        project: ProjectUnit,
        modules: Dict[str, ModuleUnit],
    ) -> Iterator[Violation]:
        pack_sites = self._pack_sites(project)
        unpack_sites = self._unpack_sites(project)

        # Canonical field names per const: the first unpack tuple (in
        # module/line order) with the full field count names the schema.
        canonical: Dict[str, List[str]] = {}
        for const, _modname, _function, unpack in unpack_sites:
            nfields = struct_field_count(project.struct_consts[const])
            if const not in canonical and len(unpack.fields) == nfields:
                canonical[const] = list(unpack.fields)

        for const, modname, function, call, skip in pack_sites:
            nfields = struct_field_count(project.struct_consts[const])
            rel = project.facts[modname].rel
            values = len(call.arg_roots) - skip
            if values != nfields:
                yield self.project_violation(
                    modules, rel, call.line,
                    message=(
                        f"{function.qualname}() packs {values} value(s) "
                        f"into {const.rsplit('.', 1)[-1]} "
                        f"({project.struct_consts[const]!r} has "
                        f"{nfields} field(s))"
                    ),
                )
                continue
            names = canonical.get(const)
            if names is None:
                continue
            for index in range(nfields):
                position = index + skip
                kind = call.arg_kinds[position]
                ident = call.arg_idents[position]
                if kind not in ("name", "attr") or ident is None:
                    continue
                if _is_tag_name(ident) or ident.startswith("_"):
                    continue
                if _names_pair(ident, names[index]):
                    continue
                moved_to = [
                    j for j, name in enumerate(names)
                    if j != index and _names_pair(ident, name)
                ]
                if not moved_to:
                    continue
                line = (
                    call.arg_lines[position]
                    if position < len(call.arg_lines) else call.line
                )
                yield self.project_violation(
                    modules, rel, line,
                    message=(
                        f"{function.qualname}() packs {ident!r} at "
                        f"{const.rsplit('.', 1)[-1]} position {index} "
                        f"({names[index]!r}), but the decoder unpacks "
                        f"{ident!r} at position {moved_to[0]} — "
                        "encoder/decoder field order drift"
                    ),
                )

        for const, modname, function, unpack in unpack_sites:
            nfields = struct_field_count(project.struct_consts[const])
            rel = project.facts[modname].rel
            if len(unpack.fields) != nfields:
                yield self.project_violation(
                    modules, rel, unpack.line,
                    message=(
                        f"{function.qualname}() unpacks "
                        f"{const.rsplit('.', 1)[-1]} into "
                        f"{len(unpack.fields)} name(s) "
                        f"({project.struct_consts[const]!r} has "
                        f"{nfields} field(s))"
                    ),
                )
                continue
            names = canonical.get(const)
            if names is None or unpack.fields == names:
                continue
            for index, ident in enumerate(unpack.fields):
                if ident.startswith("_") or _is_tag_name(ident):
                    continue
                if _names_pair(ident, names[index]):
                    continue
                moved_to = [
                    j for j, name in enumerate(names)
                    if j != index and _names_pair(ident, name)
                ]
                if not moved_to:
                    continue
                yield self.project_violation(
                    modules, rel, unpack.line,
                    message=(
                        f"{function.qualname}() unpacks {ident!r} at "
                        f"{const.rsplit('.', 1)[-1]} position {index}, "
                        f"but the canonical decoder binds {ident!r} at "
                        f"position {moved_to[0]} — decoder/decoder "
                        "field order drift"
                    ),
                )

    # -- dataclass codec checks ----------------------------------------------

    @staticmethod
    def _field_names(project: ProjectUnit, qualified: str,
                     depth: int = 0) -> Set[str]:
        """Declared field names of a dataclass and its dataclass bases."""
        if depth > 8:
            return set()
        entry = project.classes.get(qualified)
        if entry is None:
            return set()
        _modname, klass = entry
        names = {name for name, _line in klass.fields}
        for base in klass.bases:
            names |= SchemaDriftRule._field_names(project, base, depth + 1)
        return names

    @staticmethod
    def _encode_closure(klass: ClassFacts) -> Set[str]:
        """``self.*`` names reachable from ``encode`` one helper deep."""
        reads = set(klass.self_reads.get("encode", ()))
        for name in list(reads):
            if name in klass.methods:
                reads |= set(klass.self_reads.get(name, ()))
        return reads

    def _wire_dataclasses(
        self, project: ProjectUnit,
    ) -> Dict[str, Tuple[str, ClassFacts]]:
        """Round-trip wire schemas: an ``encode`` paired with a decoder.

        One-way encoders (verification keys flattened into hash input,
        constant-size proof tags) legitimately skip context fields;
        coverage drift is only meaningful when something decodes the
        bytes back.
        """
        return {
            qualified: (modname, klass)
            for qualified, (modname, klass) in project.classes.items()
            if klass.is_dataclass and klass.fields
            and "encode" in klass.methods
            and any(
                method.startswith(("decode", "from_"))
                for method in klass.methods
            )
        }

    def _check_dataclasses(
        self,
        project: ProjectUnit,
        modules: Dict[str, ModuleUnit],
    ) -> Iterator[Violation]:
        wire_classes = self._wire_dataclasses(project)
        for qualified in sorted(wire_classes):
            modname, klass = wire_classes[qualified]
            rel = project.facts[modname].rel
            covered = self._encode_closure(klass)
            for name, line in klass.fields:
                if name in covered:
                    continue
                yield self.project_violation(
                    modules, rel, line,
                    message=(
                        f"dataclass field {name!r} is never read by "
                        f"{klass.name}.encode() or its helpers — the "
                        "field rides the constructor but not the wire"
                    ),
                )
        # Constructor keyword drift: decoders (anywhere in the project)
        # must construct wire dataclasses with declared fields only.
        for _qualified, (modname, function) in sorted(
            project.functions.items()
        ):
            rel = project.facts[modname].rel
            for call in function.calls:
                target = call.callee
                if target not in wire_classes:
                    continue
                fields = self._field_names(project, target)
                for keyword in sorted(call.kw_roots):
                    if keyword in fields:
                        continue
                    yield self.project_violation(
                        modules, rel,
                        call.kw_lines.get(keyword, call.line),
                        message=(
                            f"{function.qualname}() constructs "
                            f"{target.rsplit('.', 1)[-1]} with "
                            f"{keyword!r}, which is not a declared "
                            "field of the dataclass — constructor/"
                            "schema drift"
                        ),
                    )

    # -- entry point ---------------------------------------------------------

    def check_project(
        self,
        project: ProjectUnit,
        modules: Dict[str, ModuleUnit],
        config: LintConfig,
    ) -> Iterator[Violation]:
        yield from self._check_structs(project, modules)
        yield from self._check_dataclasses(project, modules)
