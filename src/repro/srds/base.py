"""SRDS — succinctly reconstructed distributed signatures (Def. 2.1/2.2).

An SRDS scheme for ``n`` (virtual) parties is a quintuple

    (Setup, KeyGen, Sign, Aggregate, Verify)

where ``Aggregate`` decomposes into a deterministic filter ``Aggregate1``
(which may read all verification keys) and a succinct combiner
``Aggregate2`` (which must not), per Definition 2.2.  Verification checks
that a signature was aggregated from a *large* number of base signatures
on the message — without the verifier ever learning *who* signed, which
is what separates SRDS from multi-/aggregate-/threshold signatures.

Following the remark after Def. 2.1, every signature (base or aggregated)
encodes the minimum and maximum virtual index that contributed to it;
``min_index``/``max_index`` are the paper's ``min(sigma)``/``max(sigma)``
and drive the planar range checks of step 5(c) in Fig. 3.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import SignatureError
from repro.pki.registry import PKIMode


class SRDSSignature(abc.ABC):
    """Common surface of base and aggregated SRDS signatures."""

    @property
    @abc.abstractmethod
    def min_index(self) -> int:
        """Smallest virtual index aggregated into this signature."""

    @property
    @abc.abstractmethod
    def max_index(self) -> int:
        """Largest virtual index aggregated into this signature."""

    @abc.abstractmethod
    def encode(self) -> bytes:
        """Canonical wire encoding (what the network meter charges)."""

    def size_bytes(self) -> int:
        """Wire size in bytes."""
        return len(self.encode())

    @property
    def is_base(self) -> bool:
        """Whether this is an un-aggregated base signature."""
        return self.min_index == self.max_index and self._base_marker()

    def _base_marker(self) -> bool:
        return False


@dataclass(frozen=True)
class PublicParameters:
    """Output of SRDS ``Setup``: scheme-specific opaque parameters.

    ``num_parties`` is the number of *virtual* parties the scheme was set
    up for (the remark after Def. 2.1: in the BA protocol this exceeds the
    number of real participants).  ``acceptance_threshold`` is the number
    of distinct base contributions a verifying aggregate must attest to.
    """

    num_parties: int
    security_bits: int
    acceptance_threshold: int
    extra: Dict[str, object]


class SRDSScheme(abc.ABC):
    """The abstract SRDS scheme interface (Def. 2.1).

    Concrete schemes:

    * :class:`repro.srds.owf.OwfSRDS` — OWF + trusted PKI (Thm 2.7);
    * :class:`repro.srds.snark_based.SnarkSRDS` — CRH + SNARK + bare PKI
      and CRS (Thm 2.8).
    """

    # -- metadata used by Table 1 ------------------------------------------

    #: Human-readable scheme name.
    name: str = "abstract-srds"
    #: The PKI model the scheme's security proofs live in.
    pki_mode: PKIMode = PKIMode.TRUSTED
    #: The cryptographic assumptions (Table 1 column).
    assumptions: str = ""
    #: Whether the scheme additionally consumes a CRS.
    needs_crs: bool = False

    # -- Def. 2.1 algorithms --------------------------------------------------

    @abc.abstractmethod
    def setup(self, num_parties: int, rng) -> PublicParameters:
        """``Setup(1^kappa, 1^n) -> pp``."""

    @abc.abstractmethod
    def keygen(self, pp: PublicParameters, rng) -> Tuple[bytes, object]:
        """``KeyGen(pp) -> (vk, sk)``.

        ``vk`` is the published verification-key bytes; ``sk`` is an
        opaque signing handle (``None`` encodes "cannot sign", which the
        OWF scheme's oblivious keys use).
        """

    @abc.abstractmethod
    def sign(
        self,
        pp: PublicParameters,
        index: int,
        signing_key: object,
        message: bytes,
    ) -> Optional[SRDSSignature]:
        """``Sign(pp, i, sk, m) -> sigma`` (or ``None`` for bottom)."""

    @abc.abstractmethod
    def aggregate1(
        self,
        pp: PublicParameters,
        verification_keys: Dict[int, bytes],
        message: bytes,
        signatures: Sequence[SRDSSignature],
    ) -> List[SRDSSignature]:
        """The deterministic filter ``Aggregate1`` of Def. 2.2.

        Drops invalid/duplicate contributions using the verification
        keys; the surviving set ``S_sig`` has polylog size and is the
        only input (besides ``pp`` and ``m``) to :meth:`aggregate2`.
        """

    @abc.abstractmethod
    def aggregate2(
        self,
        pp: PublicParameters,
        message: bytes,
        filtered: Sequence[SRDSSignature],
    ) -> Optional[SRDSSignature]:
        """The succinct combiner ``Aggregate2`` of Def. 2.2.

        Must not consult the verification-key vector (its circuit size is
        required to be polylog; the key vector alone is Theta(n)).
        Returns ``None`` for bottom when the filtered set is empty.
        """

    @abc.abstractmethod
    def verify(
        self,
        pp: PublicParameters,
        verification_keys: Dict[int, bytes],
        message: bytes,
        signature: SRDSSignature,
    ) -> bool:
        """``Verify(pp, {vk}, m, sigma) -> {0, 1}``."""

    # -- derived conveniences --------------------------------------------------

    def aggregate(
        self,
        pp: PublicParameters,
        verification_keys: Dict[int, bytes],
        message: bytes,
        signatures: Sequence[SRDSSignature],
    ) -> Optional[SRDSSignature]:
        """``Aggregate = Aggregate2 . Aggregate1`` (Def. 2.2)."""
        filtered = self.aggregate1(pp, verification_keys, message, signatures)
        return self.aggregate2(pp, message, filtered)

    def describe(self) -> Dict[str, str]:
        """Metadata row used by the Table-1 reproduction."""
        return {
            "scheme": self.name,
            "setup": self.pki_mode.value + ("+crs" if self.needs_crs else ""),
            "assumptions": self.assumptions,
        }


def check_index_range(
    signature: SRDSSignature, lo: int, hi: int
) -> bool:
    """Whether a signature's contribution range lies inside ``[lo, hi)``.

    This is the step-5(c) check of Fig. 3 that, together with the planar
    ordering of virtual ids, prevents the same base signature from being
    aggregated through two different tree branches.
    """
    return lo <= signature.min_index and signature.max_index < hi


def ensure_same_message_space(message: bytes) -> bytes:
    """Validate a message (the scheme's message space M is all bytes)."""
    if not isinstance(message, (bytes, bytearray)):
        raise SignatureError("SRDS messages must be bytes")
    return bytes(message)
