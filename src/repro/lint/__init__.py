"""repro.lint — protocol-aware static analysis for the repro tree.

Seven domain rules machine-check the invariants the paper's
quantitative claims rest on:

========  =============================================================
DET001    all randomness descends from a seeded ``Randomness`` source
DET002    no wall-clock reads in protocol scopes (injected clock only)
ACC001    no byte path bypasses the ``CommunicationMetrics`` charge seam
OBS001    instrumented protocols charge inside ``repro.obs`` phase spans
ASY001    no fire-and-forget tasks / unawaited coroutines
EXC001    no silent broad excepts (narrow, re-raise, or justify)
SER001    wire-module dataclasses carry an encode/decode round-trip
========  =============================================================

Plus engine meta-rules LNT000 (malformed pragma), LNT001 (unused
pragma), LNT002 (parse error).  Suppression is explicit and audited:
``# lint: allow[RULE] reason=...`` pragmas in-source, or the committed
ratcheted baseline (``lint-baseline.json``) for legacy debt.  See
``docs/static_analysis.md`` and ``python -m repro lint explain <RULE>``.
"""

from repro.lint.baseline import Baseline, BaselineEntry, RatchetOutcome
from repro.lint.config import LintConfig, default_config
from repro.lint.engine import LintResult, run_lint
from repro.lint.model import ModuleUnit, Rule, RuleMeta, Severity, Violation
from repro.lint.rules import ALL_RULES, get_rule, rule_ids

__all__ = [
    "ALL_RULES",
    "Baseline",
    "BaselineEntry",
    "LintConfig",
    "LintResult",
    "ModuleUnit",
    "RatchetOutcome",
    "Rule",
    "RuleMeta",
    "Severity",
    "Violation",
    "default_config",
    "get_rule",
    "rule_ids",
    "run_lint",
]
