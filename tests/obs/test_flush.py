"""The shared --metrics-out flush: atomicity, flow summary comment."""

from __future__ import annotations

from repro.obs.flow import FlowLedger
from repro.obs.flush import (
    FLOW_COMMENT_PREFIX,
    flush_metrics_file,
    read_flow_summary,
    render_snapshot,
    write_atomic_text,
)
from repro.obs.registry import MetricsRegistry


class TestWriteAtomicText:
    def test_creates_parents_and_replaces(self, tmp_path):
        target = tmp_path / "deep" / "dir" / "out.txt"
        write_atomic_text(target, "one\n")
        write_atomic_text(target, "two\n")
        assert target.read_text() == "two\n"

    def test_leaves_no_temp_file(self, tmp_path):
        target = tmp_path / "out.txt"
        write_atomic_text(target, "x")
        assert list(tmp_path.iterdir()) == [target]


class TestSnapshot:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("repro_unit_total", "unit").inc()
        return registry

    def test_without_flow_is_plain_exposition(self):
        body = render_snapshot(self._registry())
        assert "repro_unit_total" in body
        assert FLOW_COMMENT_PREFIX not in body

    def test_flow_summary_rides_as_comment(self, tmp_path):
        flow = FlowLedger()
        flow.charge(0, "boost", 0, 1, 80)
        path = flush_metrics_file(
            tmp_path / "metrics.prom", self._registry(), flow=flow
        )
        text = path.read_text()
        assert "repro_unit_total" in text
        comment_lines = [
            line for line in text.splitlines()
            if line.startswith(FLOW_COMMENT_PREFIX)
        ]
        assert len(comment_lines) == 1
        summary = read_flow_summary(path)
        assert summary["data_bits"] == 80
        assert summary["by_phase"] == {"boost": 80}

    def test_read_flow_summary_absent(self, tmp_path):
        path = flush_metrics_file(tmp_path / "m.prom", self._registry())
        assert read_flow_summary(path) is None
