"""The (n, I)-party almost-everywhere communication tree.

This is the combinatorial object of Definition 2.3, extended with
repeated parties / virtual identities per Definition 3.4 and the idmap of
Fig. 3's setup:

* level 0 holds ``n * z`` *virtual identities* — each real party owns
  ``z`` of them;
* level 1 holds the leaf nodes; leaf ``k`` is assigned the parties owning
  the contiguous virtual-id range ``[k * z_star, (k+1) * z_star)`` (the
  planar, increasing-order property the robustness experiment requires);
* levels 2..height hold internal nodes of arity ``Theta(log n)``, each
  assigned a committee of ``Theta(log n)``-scaled size (the paper's
  ``log^3 n``);
* the root node's committee is the *supreme committee*.

The tree is a passive data structure; goodness/path analysis lives in
:mod:`repro.aetree.analysis`, and the interactive functionality wrapping
it (f_ae-comm) in :mod:`repro.functionalities.ae_comm`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TreeError
from repro.params import ProtocolParameters, ceil_log2
from repro.utils.randomness import Randomness

ROOT_LEVEL_MIN = 2


@dataclass
class TreeNode:
    """One node of the communication tree (levels >= 1)."""

    node_id: int
    level: int
    parent_id: Optional[int]
    children: Tuple[int, ...]
    committee: Tuple[int, ...]
    virtual_range: Tuple[int, int]  # [lo, hi) of covered virtual ids

    @property
    def is_leaf(self) -> bool:
        """Whether this node sits at level 1."""
        return self.level == 1


class CommTree:
    """An immutable almost-everywhere communication tree instance."""

    def __init__(
        self,
        n: int,
        z: int,
        z_star: int,
        virtual_owner: Sequence[int],
        nodes: Dict[int, TreeNode],
        root_id: int,
    ) -> None:
        self.n = n
        self.z = z
        self.z_star = z_star
        self.virtual_owner: Tuple[int, ...] = tuple(virtual_owner)
        self.nodes = nodes
        self.root_id = root_id
        self._party_virtuals: Dict[int, List[int]] = {}
        for virtual_id, owner in enumerate(self.virtual_owner):
            self._party_virtuals.setdefault(owner, []).append(virtual_id)

    # -- structural queries ---------------------------------------------------

    @property
    def num_virtual(self) -> int:
        """Total number of virtual identities (n * z)."""
        return len(self.virtual_owner)

    @property
    def root(self) -> TreeNode:
        """The root node (its committee is the supreme committee)."""
        return self.nodes[self.root_id]

    @property
    def supreme_committee(self) -> Tuple[int, ...]:
        """Party ids assigned to the root."""
        return self.root.committee

    @property
    def height(self) -> int:
        """The level of the root (leaves are level 1)."""
        return self.root.level

    @property
    def leaves(self) -> List[TreeNode]:
        """All leaf nodes, ordered by virtual-id range."""
        leaves = [node for node in self.nodes.values() if node.is_leaf]
        leaves.sort(key=lambda node: node.virtual_range[0])
        return leaves

    def level_nodes(self, level: int) -> List[TreeNode]:
        """All nodes at one level, ordered by virtual-id range."""
        nodes = [node for node in self.nodes.values() if node.level == level]
        nodes.sort(key=lambda node: node.virtual_range[0])
        return nodes

    def owner_of_virtual(self, virtual_id: int) -> int:
        """The real party owning a virtual identity (inverse idmap)."""
        return self.virtual_owner[virtual_id]

    def virtuals_of_party(self, party_id: int) -> List[int]:
        """The z virtual identities of one party (the idmap of Fig. 3)."""
        return list(self._party_virtuals.get(party_id, []))

    def leaf_of_virtual(self, virtual_id: int) -> TreeNode:
        """The leaf whose range contains a virtual id."""
        if not 0 <= virtual_id < self.num_virtual:
            raise TreeError(f"virtual id {virtual_id} out of range")
        for node in self.leaves:
            lo, hi = node.virtual_range
            if lo <= virtual_id < hi:
                return node
        raise TreeError(f"no leaf covers virtual id {virtual_id}")

    def leaves_of_party(self, party_id: int) -> List[TreeNode]:
        """The leaf nodes a party is assigned to (one per virtual id)."""
        return [
            self.leaf_of_virtual(virtual_id)
            for virtual_id in self.virtuals_of_party(party_id)
        ]

    def path_to_root(self, node_id: int) -> List[TreeNode]:
        """The node sequence from a node up to (and including) the root."""
        path: List[TreeNode] = []
        current: Optional[int] = node_id
        while current is not None:
            node = self.nodes[current]
            path.append(node)
            current = node.parent_id
        if path[-1].node_id != self.root_id:
            raise TreeError("path did not reach the root")
        return path

    def committees_of_party(self, party_id: int) -> List[TreeNode]:
        """All nodes (any level >= 2) whose committee includes the party."""
        return [
            node
            for node in self.nodes.values()
            if node.level >= 2 and party_id in node.committee
        ]


def build_tree(
    n: int,
    params: ProtocolParameters,
    rng: Randomness,
    honest_root_hint: Optional[Sequence[int]] = None,
) -> CommTree:
    """Construct a valid tree, simulating the KSSV'06 protocol's output.

    The real King et al. protocol builds this object interactively with
    polylog per-party communication and guarantees with high probability
    that the root committee is 2/3-honest.  Simulating the functionality,
    we sample committees with the given seeded randomness; if
    ``honest_root_hint`` (the honest party set) is provided, the root
    committee is resampled until 2/3-honest — modeling the whp guarantee
    rather than re-proving it (the interactive realization's *costs* are
    charged by f_ae-comm, see :mod:`repro.functionalities.ae_comm`).
    """
    if n < 4:
        raise TreeError(f"tree needs at least 4 parties, got {n}")
    z = params.virtual_factor * ceil_log2(n)
    z_star = params.leaf_committee_size(n)
    arity = params.tree_arity(n)
    committee_size = min(n, params.committee_size(n))

    # Level 0: each party owns z virtual identities; ownership is a seeded
    # random permutation of the multiset {0..n-1} x z, giving each leaf a
    # near-uniform mix of parties.
    slots = [party for party in range(n) for _ in range(z)]
    rng.shuffle(slots)
    num_virtual = n * z

    # Level 1: leaves cover contiguous virtual-id ranges of width z_star.
    leaf_ranges: List[Tuple[int, int]] = []
    start = 0
    while start < num_virtual:
        end = min(num_virtual, start + z_star)
        leaf_ranges.append((start, end))
        start = end
    if len(leaf_ranges) == 1:
        # Degenerate tiny-n case: force at least two leaves so the tree
        # has an internal level.
        lo, hi = leaf_ranges[0]
        mid = (lo + hi) // 2
        leaf_ranges = [(lo, mid), (mid, hi)]

    nodes: Dict[int, TreeNode] = {}
    next_id = 0
    current_level_ids: List[int] = []
    for lo, hi in leaf_ranges:
        committee = tuple(sorted({slots[v] for v in range(lo, hi)}))
        nodes[next_id] = TreeNode(
            node_id=next_id,
            level=1,
            parent_id=None,
            children=(),
            committee=committee,
            virtual_range=(lo, hi),
        )
        current_level_ids.append(next_id)
        next_id += 1

    # Levels 2..: group `arity` children per parent until one node remains.
    level = 2
    while len(current_level_ids) > 1 or level == 2:
        parent_ids: List[int] = []
        for chunk_start in range(0, len(current_level_ids), arity):
            child_ids = current_level_ids[chunk_start: chunk_start + arity]
            lo = nodes[child_ids[0]].virtual_range[0]
            hi = nodes[child_ids[-1]].virtual_range[1]
            committee = tuple(sorted(rng.sample(range(n), committee_size)))
            parent = TreeNode(
                node_id=next_id,
                level=level,
                parent_id=None,
                children=tuple(child_ids),
                committee=committee,
                virtual_range=(lo, hi),
            )
            nodes[next_id] = parent
            for child_id in child_ids:
                nodes[child_id].parent_id = next_id
            parent_ids.append(next_id)
            next_id += 1
        current_level_ids = parent_ids
        if len(current_level_ids) == 1:
            break
        level += 1

    root_id = current_level_ids[0]

    tree = CommTree(
        n=n,
        z=z,
        z_star=z_star,
        virtual_owner=slots,
        nodes=nodes,
        root_id=root_id,
    )

    if honest_root_hint is not None:
        _ensure_good_root(tree, set(honest_root_hint), committee_size, n, rng)
    return tree


def _ensure_good_root(
    tree: CommTree,
    honest: set,
    committee_size: int,
    n: int,
    rng: Randomness,
    max_attempts: int = 1000,
) -> None:
    """Resample the root committee until it is 2/3-honest.

    Models KSSV's whp guarantee (see :func:`build_tree`); a failure after
    ``max_attempts`` indicates the honest set itself is below 2/3 of n,
    which violates the model, so it is loud.
    """
    root = tree.nodes[tree.root_id]
    for _ in range(max_attempts):
        corrupt_count = sum(
            1 for party in root.committee if party not in honest
        )
        if 3 * corrupt_count < len(root.committee):
            return
        root.committee = tuple(sorted(rng.sample(range(n), committee_size)))
    raise TreeError(
        "could not find a 2/3-honest root committee; is the corruption "
        "budget below n/3?"
    )
