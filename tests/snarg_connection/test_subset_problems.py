"""Tests for the group subset problem family."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.snarg_connection.subset_problems import (
    AdditiveGroup,
    MultiplicativeGroup,
    SubsetInstance,
    XorGroup,
    decode_witness,
    encode_witness,
    sample_planted_instance,
    solve_brute_force,
)
from repro.utils.randomness import Randomness


@pytest.fixture(params=["additive", "multiplicative", "xor"])
def group(request):
    if request.param == "additive":
        return AdditiveGroup(modulus=10_000_019)
    if request.param == "multiplicative":
        return MultiplicativeGroup(prime_modulus=10_000_019)
    return XorGroup(width_bytes=8)


class TestGroups:
    def test_identity_neutral(self, group, rng):
        element = group.random_element(rng)
        combined = group.combine(element, group.identity())
        assert group.encode(combined) == group.encode(element)

    def test_commutative(self, group, rng):
        a = group.random_element(rng.fork("a"))
        b = group.random_element(rng.fork("b"))
        assert group.encode(group.combine(a, b)) == group.encode(
            group.combine(b, a)
        )

    def test_combine_all_order_invariant(self, group, rng):
        elements = [group.random_element(rng.fork(str(i))) for i in range(5)]
        forward = group.combine_all(elements)
        backward = group.combine_all(list(reversed(elements)))
        assert group.encode(forward) == group.encode(backward)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            AdditiveGroup(1)
        with pytest.raises(ConfigurationError):
            MultiplicativeGroup(2)
        with pytest.raises(ConfigurationError):
            XorGroup(0)


class TestInstances:
    def test_planted_witness_checks(self, group, rng):
        instance, witness = sample_planted_instance(group, 20, 6, rng)
        assert instance.check_witness(witness)

    def test_wrong_size_rejected(self, group, rng):
        instance, witness = sample_planted_instance(group, 20, 6, rng)
        assert not instance.check_witness(witness[:5])

    def test_duplicates_rejected(self, group, rng):
        instance, witness = sample_planted_instance(group, 20, 6, rng)
        assert not instance.check_witness(witness[:5] + witness[:1])

    def test_out_of_range_rejected(self, group, rng):
        instance, witness = sample_planted_instance(group, 20, 6, rng)
        assert not instance.check_witness(witness[:5] + [25])

    def test_random_subset_rarely_checks(self, rng):
        group = XorGroup(16)
        instance, _ = sample_planted_instance(group, 30, 8, rng)
        misses = sum(
            0 if instance.check_witness(
                sorted(rng.fork(f"s{i}").sample(range(30), 8))
            ) else 1
            for i in range(20)
        )
        assert misses >= 19  # a planted solution may be re-drawn once

    def test_invalid_sample_size_rejected(self, group, rng):
        with pytest.raises(ConfigurationError):
            sample_planted_instance(group, 10, 0, rng)
        with pytest.raises(ConfigurationError):
            sample_planted_instance(group, 10, 11, rng)

    def test_statement_injective_in_target(self, rng):
        group = XorGroup(8)
        instance, _ = sample_planted_instance(group, 10, 3, rng)
        other = SubsetInstance(
            group=group,
            elements=instance.elements,
            target=bytes(8),
            subset_size=3,
        )
        assert instance.statement_bytes() != other.statement_bytes()


class TestSolver:
    def test_solver_finds_planted(self, group, rng):
        instance, _ = sample_planted_instance(group, 14, 4, rng)
        solution = solve_brute_force(instance)
        assert solution is not None
        assert instance.check_witness(solution)

    def test_solver_reports_unsat(self, rng):
        group = XorGroup(16)
        instance, _ = sample_planted_instance(group, 12, 4, rng)
        # Shift the target: with 128-bit tags an accidental solution has
        # probability ~ C(12,4)/2^128.
        broken = SubsetInstance(
            group=group,
            elements=instance.elements,
            target=group.combine(instance.target, b"\x01" + bytes(15)),
            subset_size=4,
        )
        assert solve_brute_force(broken) is None

    def test_solver_refuses_huge_search(self, rng):
        group = XorGroup(8)
        instance, _ = sample_planted_instance(group, 64, 20, rng)
        with pytest.raises(ConfigurationError):
            solve_brute_force(instance)


class TestWitnessEncoding:
    @given(st.lists(st.integers(min_value=0, max_value=1000),
                    unique=True, max_size=20))
    def test_roundtrip(self, indices):
        assert decode_witness(encode_witness(indices)) == sorted(indices)
