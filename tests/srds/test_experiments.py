"""Tests for the Fig. 1 / Fig. 2 security experiments."""

import pytest

from repro.errors import ExperimentError
from repro.params import ProtocolParameters
from repro.pki.registry import PKIMode
from repro.srds import adversaries as adv
from repro.srds.base_sigs import HashRegistryBase
from repro.srds.experiments import (
    run_forgery_experiment,
    run_robustness_experiment,
)
from repro.srds.owf import OwfSRDS
from repro.srds.snark_based import SnarkSRDS
from repro.utils.randomness import Randomness

N, T = 64, 8


def _owf():
    return OwfSRDS(message_bits=32)


def _snark():
    return SnarkSRDS(base_scheme=HashRegistryBase())


SCHEMES = [
    ("owf", _owf, PKIMode.TRUSTED),
    ("snark", _snark, PKIMode.BARE),
]

ROBUSTNESS_ADVERSARIES = [
    adv.DroppingRobustnessAdversary,
    adv.DecoyRobustnessAdversary,
    adv.GarbageRobustnessAdversary,
    adv.ReplayRobustnessAdversary,
]

FORGERY_ADVERSARIES = [
    adv.CoalitionForgeryAdversary,
    adv.ReplayForgeryAdversary,
    adv.RandomProofForgeryAdversary,
]


class TestRobustness:
    @pytest.mark.parametrize("scheme_name,factory,mode", SCHEMES)
    @pytest.mark.parametrize("adversary_cls", ROBUSTNESS_ADVERSARIES)
    def test_challenger_wins(self, scheme_name, factory, mode, adversary_cls):
        ok = run_robustness_experiment(
            factory(), N, T, mode, adversary_cls(),
            ProtocolParameters(), Randomness(404),
        )
        assert ok, f"{scheme_name} lost robustness to {adversary_cls.__name__}"

    def test_budget_validation(self):
        with pytest.raises(ExperimentError):
            run_robustness_experiment(
                _owf(), 9, 3, PKIMode.TRUSTED,
                adv.DroppingRobustnessAdversary(),
            )


class TestForgery:
    @pytest.mark.parametrize("scheme_name,factory,mode", SCHEMES)
    @pytest.mark.parametrize("adversary_cls", FORGERY_ADVERSARIES)
    def test_adversary_loses(self, scheme_name, factory, mode, adversary_cls):
        won = run_forgery_experiment(
            factory(), N, T, mode, adversary_cls(),
            ProtocolParameters(), Randomness(505),
        )
        assert not won, (
            f"{scheme_name} forged by {adversary_cls.__name__}"
        )

    def test_threshold_tightness_snark(self):
        """Sanity: an *illegally large* coalition does forge — the game
        is not vacuous."""

        class MajorityCoalition(adv.CoalitionForgeryAdversary):
            def choose_targets(self, setup, rng):
                num_virtual = setup.tree.num_virtual
                honest = [
                    v for v in range(num_virtual)
                    if v not in setup.corrupt_virtual
                ]
                # Grab well past the majority threshold (model violation).
                chosen = set(honest[: (2 * num_virtual) // 3])
                return chosen, b"legitimate-message", {
                    v: self.target_message for v in chosen
                }

        scheme = _snark()
        # Bypass the |S ∪ I| check by running the phases manually: the
        # experiment driver enforces the budget, so the sanity check
        # must construct an over-budget coalition directly.
        rng = Randomness(7)
        pp = scheme.setup(60, rng.fork("s"))
        vks, sks = {}, {}
        for i in range(60):
            vks[i], sks[i] = scheme.keygen(pp, rng.fork(f"k{i}"))
        message = b"forged-target"
        coalition = [scheme.sign(pp, i, sks[i], message) for i in range(40)]
        forged = scheme.aggregate(pp, vks, message, coalition)
        assert scheme.verify(pp, vks, message, forged)

    def test_illegal_s_rejected(self):
        class OversizedS(adv.CoalitionForgeryAdversary):
            def choose_targets(self, setup, rng):
                num_virtual = setup.tree.num_virtual
                honest = [
                    v for v in range(num_virtual)
                    if v not in setup.corrupt_virtual
                ]
                chosen = set(honest[: num_virtual // 2])
                return chosen, b"m", {}

        with pytest.raises(ExperimentError):
            run_forgery_experiment(
                _snark(), N, T, PKIMode.BARE, OversizedS(),
                ProtocolParameters(), Randomness(1),
            )


class TestBarePkiKeyReplacement:
    def test_replacing_honest_key_rejected(self):
        class Cheater(adv.CoalitionForgeryAdversary):
            def replace_keys(self, setup, scheme, rng):
                honest_virtual = next(
                    v for v in range(setup.tree.num_virtual)
                    if v not in setup.corrupt_virtual
                )
                return {honest_virtual: b"evil"}

        with pytest.raises(ExperimentError):
            run_forgery_experiment(
                _snark(), N, T, PKIMode.BARE, Cheater(),
                ProtocolParameters(), Randomness(2),
            )

    def test_corrupt_key_replacement_does_not_help(self):
        class KeyReplacer(adv.CoalitionForgeryAdversary):
            def replace_keys(self, setup, scheme, rng):
                replacements = {}
                for virtual_id in list(setup.corrupt_virtual)[:5]:
                    new_vk, new_sk = scheme.keygen(setup.pp, rng)
                    setup.signing_keys[virtual_id] = new_sk
                    replacements[virtual_id] = new_vk
                return replacements

        won = run_forgery_experiment(
            _snark(), N, T, PKIMode.BARE, KeyReplacer(),
            ProtocolParameters(), Randomness(3),
        )
        assert not won
