"""Bracha reliable broadcast (echo/ready, t < n/3, no signatures).

The committee-internal sub-protocols (coin toss, f_aggr-sig) are stated
over a broadcast channel; §3.1 realizes it with deterministic BA.  This
module provides the other classic realization — Bracha's three-phase
reliable broadcast — which needs no setup at all and is the standard
building block in the asynchronous-consensus literature the paper's
Table 1 cites (CKS'20, BKLL'20).

Phases for sender s broadcasting v:

* **send**: s sends ``(SEND, v)`` to all;
* **echo**: on first ``(SEND, v)`` from s, send ``(ECHO, v)`` to all;
* **ready**: on ``(ECHO, v)`` from n - t distinct parties, or
  ``(READY, v)`` from t + 1 distinct parties, send ``(READY, v)`` to all
  (once);
* **deliver**: on ``(READY, v)`` from 2t + 1 distinct parties, output v.

Guarantees for t < n/3: if the sender is honest everyone delivers its
value; if *any* honest party delivers v, every honest party delivers v
(totality + agreement), even under sender equivocation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError, SerializationError
from repro.net.party import Envelope, Party
from repro.utils.serialization import decode_uint, encode_uint

_SEND, _ECHO, _READY = 0, 1, 2


def _encode(tag: int, value: int) -> bytes:
    return encode_uint(tag) + encode_uint(value)


def _decode(payload: bytes) -> Optional[Tuple[int, int]]:
    try:
        tag, pos = decode_uint(payload, 0)
        value, pos = decode_uint(payload, pos)
    except SerializationError:
        return None
    if pos != len(payload) or tag not in (_SEND, _ECHO, _READY):
        return None
    return tag, value


class BrachaParty(Party):
    """One participant of a single-sender Bracha broadcast."""

    def __init__(
        self,
        party_id: int,
        members: Sequence[int],
        max_faults: int,
        sender: int,
        sender_value: Optional[int] = None,
    ) -> None:
        super().__init__(party_id)
        if 3 * max_faults >= len(members):
            raise ConfigurationError("bracha needs t < n/3")
        self.members = list(members)
        self.t = max_faults
        self.sender = sender
        self.sender_value = sender_value
        self._echoed = False
        self._readied = False
        self._echoes: Dict[int, Set[int]] = {}
        self._readies: Dict[int, Set[int]] = {}
        self._accepted_send: Optional[int] = None

    def step(self, round_index: int, inbox: Sequence[Envelope]) -> List[Envelope]:
        outgoing: List[Envelope] = []
        if round_index == 0 and self.party_id == self.sender:
            value = self.sender_value if self.sender_value is not None else 0
            for peer in self.members:
                outgoing.append(self.send(peer, _encode(_SEND, value)))

        for envelope in inbox:
            decoded = _decode(envelope.payload)
            if decoded is None:
                continue
            tag, value = decoded
            if tag == _SEND:
                if envelope.sender != self.sender:
                    continue
                if self._accepted_send is None:
                    self._accepted_send = value
            elif tag == _ECHO:
                self._echoes.setdefault(value, set()).add(envelope.sender)
            elif tag == _READY:
                self._readies.setdefault(value, set()).add(envelope.sender)

        n = len(self.members)
        if not self._echoed and self._accepted_send is not None:
            self._echoed = True
            for peer in self.members:
                outgoing.append(
                    self.send(peer, _encode(_ECHO, self._accepted_send))
                )
        if not self._readied:
            for value, echoers in self._echoes.items():
                if len(echoers) >= n - self.t:
                    outgoing.extend(self._go_ready(value))
                    break
            else:
                for value, readiers in self._readies.items():
                    if len(readiers) >= self.t + 1:
                        outgoing.extend(self._go_ready(value))
                        break
        for value, readiers in self._readies.items():
            if len(readiers) >= 2 * self.t + 1:
                return outgoing + self.halt(value)
        if round_index > 8:
            return outgoing + self.halt(None)  # sender never spoke
        return outgoing

    def _go_ready(self, value: int) -> List[Envelope]:
        self._readied = True
        return [
            self.send(peer, _encode(_READY, value)) for peer in self.members
        ]


class EquivocatingBrachaSender(BrachaParty):
    """A corrupt sender sending different values to each half."""

    def step(self, round_index: int, inbox: Sequence[Envelope]) -> List[Envelope]:
        if round_index == 0 and self.party_id == self.sender:
            outgoing = []
            for position, peer in enumerate(self.members):
                outgoing.append(
                    self.send(peer, _encode(_SEND, position % 2))
                )
            return outgoing
        # Afterwards behave honestly with its own (first) value so the
        # run exercises the echo-quorum intersection argument.
        return super().step(round_index, inbox)


def run_bracha(
    members: Sequence[int],
    sender: int,
    value: int,
    byzantine: Sequence[int] = (),
    equivocating_sender: bool = False,
):
    """Convenience driver; returns ``(outputs, metrics)``."""
    from repro.net.metrics import CommunicationMetrics
    from repro.net.party import SilentParty
    from repro.net.simulator import SynchronousNetwork

    members = sorted(members)
    if sender not in members:
        raise ConfigurationError("sender must be a member")
    byzantine_set = set(byzantine)
    t = max(1, (len(members) - 1) // 3)
    if len(byzantine_set) + (1 if equivocating_sender else 0) > t:
        raise ConfigurationError("too many byzantine parties for t < n/3")

    parties: List[Party] = []
    for member in members:
        if member in byzantine_set:
            # A byzantine sender models a crashed/silent sender; honest
            # parties must terminate with None (totality fallback).
            parties.append(SilentParty(member))
        elif member == sender and equivocating_sender:
            parties.append(
                EquivocatingBrachaSender(member, members, t, sender,
                                         sender_value=value)
            )
        else:
            parties.append(
                BrachaParty(
                    member, members, t, sender,
                    sender_value=value if member == sender else None,
                )
            )
    metrics = CommunicationMetrics()
    network = SynchronousNetwork(parties, metrics=metrics)
    honest = [
        m for m in members
        if m not in byzantine_set
        and not (equivocating_sender and m == sender)
    ]
    network.run_until(honest, max_rounds=15)
    outputs = {member: network.parties[member].output for member in honest}
    return outputs, metrics
