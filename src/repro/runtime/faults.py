"""Seeded fault injection for the runtime — the scheduling adversary.

The synchronous simulator gives the adversary no scheduling power at
all: every envelope arrives exactly one round later, in sorted-sender
order.  A real network adversary controls far more — it can crash nodes,
delay individual links, reorder deliveries within a round, duplicate
messages, and partition the network.  :class:`FaultPlan` models all of
that *reproducibly*: every random decision is drawn from a fork of a
seeded :class:`~repro.utils.randomness.Randomness`, keyed by the
(round, sender, recipient, sequence) coordinates of the affected message
— so the same plan produces the same schedule regardless of how the
event loop happens to interleave party tasks.

Composability with the corruption model: a
:class:`~repro.net.adversary.CorruptionPlan` says *which parties the
adversary controls*; a :class:`FaultPlan` says *what the network does*.
The helpers at the bottom derive fault plans from corruption plans
(e.g. crash every corrupted party at a random round), matching the
paper's remark that crash faults are the weakest point on the Byzantine
spectrum.

Semantics (all applied by the :class:`~repro.runtime.synchronizer.
RoundSynchronizer`, not by transports — transports stay honest):

* **crash(party, round)** — the party takes no step at any round >= the
  crash round; messages already in flight still arrive.
* **delay** — a link delay of ``d`` moves a message's delivery from
  round ``r + 1`` to round ``r + 1 + d``.  Delayed messages are still
  charged at send time (the bits crossed the wire).
* **partition** — messages between the two groups during the partition
  window are silently dropped before they reach the transport (the link
  is down; nothing is charged).
* **duplication** — the recipient sees the frame twice in one inbox.
  Applied at the delivery layer after metrics charging: the duplicate is
  the network's artifact, not a second paid send.
* **reorder** — the within-round inbox permutation is randomized instead
  of the simulator's canonical (sender, seq) order.  Honest protocol
  logic must tolerate this (the paper's model promises delivery within
  the round, never an order).
* **latency** — a pluggable :class:`~repro.net.latency.LatencyModel`
  adds per-message extra rounds on top of the deterministic link delays
  (the seeded generalization of the historical ``random_delay_*``
  knobs; the asynchronous scheduler shares the same models).
* **join (churn)** — the party is *absent* until its join round: it
  takes no step, and messages that would be delivered to it before it
  joins are dropped before the transport (nobody is listening; nothing
  is charged).  Combined with crashes this models mid-protocol
  join/leave churn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, TypeVar

from repro.errors import ConfigurationError
from repro.net.adversary import CorruptionPlan
from repro.net.latency import LatencyModel
from repro.utils.randomness import Randomness

T = TypeVar("T")


@dataclass(frozen=True)
class LinkDelay:
    """Delay all ``sender → recipient`` messages by ``rounds`` extra rounds
    while ``first_round <= sent_round <= last_round`` (``None`` = forever)."""

    sender: int
    recipient: int
    rounds: int
    first_round: int = 0
    last_round: Optional[int] = None

    def applies(self, sent_round: int, sender: int, recipient: int) -> bool:
        if (sender, recipient) != (self.sender, self.recipient):
            return False
        if sent_round < self.first_round:
            return False
        return self.last_round is None or sent_round <= self.last_round


@dataclass(frozen=True)
class Partition:
    """Sever all links between ``group_a`` and ``group_b`` for sends in
    rounds ``[first_round, last_round]`` (both directions)."""

    group_a: FrozenSet[int]
    group_b: FrozenSet[int]
    first_round: int
    last_round: int

    def blocks(self, sent_round: int, sender: int, recipient: int) -> bool:
        if not self.first_round <= sent_round <= self.last_round:
            return False
        return (sender in self.group_a and recipient in self.group_b) or (
            sender in self.group_b and recipient in self.group_a
        )


@dataclass
class FaultPlan:
    """A reproducible schedule of network faults for one execution.

    Attributes:
        crashes: party id → first round at which the party stops stepping.
        joins: party id → first round at which the party is *present*
            (churn: absent parties take no step and receive nothing).
        delays: deterministic per-link delays.
        partitions: link-severing windows.
        reorder: randomize within-round inbox order (needs ``rng``).
        duplicate_probability: per-delivery chance of the recipient
            seeing the frame twice (needs ``rng`` if > 0).
        random_delay_probability / random_delay_max: per-message chance
            of a uniform 1..max extra-round delay (needs ``rng`` if > 0).
        latency: optional :class:`~repro.net.latency.LatencyModel`
            adding seeded per-message extra rounds (needs ``rng`` if the
            model draws).
        rng: the seeded source driving all probabilistic choices.  Forked
            per decision point, so the schedule is independent of event
            loop interleaving.
    """

    crashes: Dict[int, int] = field(default_factory=dict)
    joins: Dict[int, int] = field(default_factory=dict)
    delays: List[LinkDelay] = field(default_factory=list)
    partitions: List[Partition] = field(default_factory=list)
    reorder: bool = False
    duplicate_probability: float = 0.0
    random_delay_probability: float = 0.0
    random_delay_max: int = 0
    latency: Optional[LatencyModel] = None
    rng: Optional[Randomness] = None
    # Observability: how often each fault kind actually fired this
    # execution (fed into the repro.obs metrics registry by the
    # synchronizer; also directly readable via :meth:`fired_counts`).
    _fired: Dict[str, int] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        needs_rng = (
            self.reorder
            or self.duplicate_probability > 0
            or self.random_delay_probability > 0
            or (self.latency is not None and self.latency.needs_rng)
        )
        if needs_rng and self.rng is None:
            raise ConfigurationError(
                "this FaultPlan draws random choices; pass a seeded rng"
            )
        if not 0.0 <= self.duplicate_probability <= 1.0:
            raise ConfigurationError("duplicate_probability outside [0, 1]")
        if not 0.0 <= self.random_delay_probability <= 1.0:
            raise ConfigurationError("random_delay_probability outside [0, 1]")
        if self.random_delay_probability > 0 and self.random_delay_max < 1:
            raise ConfigurationError(
                "random delays need random_delay_max >= 1"
            )
        for party, round_index in self.crashes.items():
            if round_index < 0:
                raise ConfigurationError(
                    f"crash round for party {party} must be >= 0"
                )
        for party, round_index in self.joins.items():
            if round_index < 0:
                raise ConfigurationError(
                    f"join round for party {party} must be >= 0"
                )

    # -- queries used by the synchronizer ------------------------------------

    def _note(self, kind: str) -> None:
        self._fired[kind] = self._fired.get(kind, 0) + 1

    def fired_counts(self) -> Dict[str, int]:
        """How many times each fault kind actually fired (a copy)."""
        return dict(self._fired)

    def is_crashed(self, party_id: int, round_index: int) -> bool:
        """Whether the party has crashed by the given round."""
        crash_round = self.crashes.get(party_id)
        return crash_round is not None and round_index >= crash_round

    def is_absent(self, party_id: int, round_index: int) -> bool:
        """Whether the party has not yet joined (churn)."""
        join_round = self.joins.get(party_id)
        if join_round is not None and round_index < join_round:
            self._note("churn-absent")
            return True
        return False

    def drops(self, sent_round: int, sender: int, recipient: int) -> bool:
        """Whether the link is severed for this send."""
        dropped = any(
            p.blocks(sent_round, sender, recipient) for p in self.partitions
        )
        if dropped:
            self._note("partition-drop")
        return dropped

    def delay_of(
        self, sent_round: int, sender: int, recipient: int, seq: int
    ) -> int:
        """Extra delivery rounds for one message (deterministic + random)."""
        delay = sum(
            d.rounds
            for d in self.delays
            if d.applies(sent_round, sender, recipient)
        )
        if self.random_delay_probability > 0:
            coin = self._fork(f"delay/{sent_round}/{sender}/{recipient}/{seq}")
            if coin.bernoulli(self.random_delay_probability):
                delay += coin.random_int_range(1, self.random_delay_max)
        if self.latency is not None:
            delay += self.latency.extra_rounds(
                self.rng, sent_round, sender, recipient, seq
            )
        if delay > 0:
            self._note("delay")
        return delay

    def duplicates(
        self, sent_round: int, sender: int, recipient: int, seq: int
    ) -> bool:
        """Whether this delivery is duplicated at the recipient."""
        if self.duplicate_probability <= 0:
            return False
        coin = self._fork(f"dup/{sent_round}/{sender}/{recipient}/{seq}")
        duplicated = coin.bernoulli(self.duplicate_probability)
        if duplicated:
            self._note("duplicate")
        return duplicated

    def inbox_order(
        self, round_index: int, recipient: int, inbox: List[T]
    ) -> List[T]:
        """Permute one inbox (identity unless ``reorder`` is set)."""
        if not self.reorder or len(inbox) < 2:
            return inbox
        permuted = list(inbox)
        self._fork(f"reorder/{round_index}/{recipient}").shuffle(permuted)
        self._note("reorder")
        return permuted

    def _fork(self, label: str) -> Randomness:
        assert self.rng is not None
        return self.rng.fork(label)

    @property
    def max_extra_rounds(self) -> int:
        """Upper bound on added delivery latency (for run caps)."""
        deterministic = sum(d.rounds for d in self.delays)
        random_part = (
            self.random_delay_max if self.random_delay_probability > 0 else 0
        )
        latency_part = self.latency.bound if self.latency is not None else 0
        return deterministic + random_part + latency_part


# -- builders composing with the corruption model ---------------------------


def crash_corrupted(
    plan: CorruptionPlan,
    rng: Randomness,
    max_round: int,
    first_round: int = 0,
) -> FaultPlan:
    """Crash every corrupted party at an independent uniform round in
    ``[first_round, max_round]`` — the crash-fault projection of a
    Byzantine corruption plan."""
    if max_round < first_round:
        raise ConfigurationError("max_round must be >= first_round")
    crashes = {
        party: rng.fork(f"crash/{party}").random_int_range(
            first_round, max_round
        )
        for party in sorted(plan.corrupted)
    }
    return FaultPlan(crashes=crashes)


def adversarial_schedule(
    rng: Randomness,
    reorder: bool = True,
    duplicate_probability: float = 0.05,
    random_delay_probability: float = 0.0,
    random_delay_max: int = 0,
) -> FaultPlan:
    """A generic hostile-but-fair scheduler: reordering plus light
    duplication (and optional random delays), all seeded."""
    return FaultPlan(
        reorder=reorder,
        duplicate_probability=duplicate_probability,
        random_delay_probability=random_delay_probability,
        random_delay_max=random_delay_max,
        rng=rng,
    )


def crash_everyone(
    party_ids: Iterable[int], round_index: int
) -> FaultPlan:
    """Crash *every* party at one round — the total-failure schedule.

    This deliberately exceeds any corruption model: a protocol driven
    under it must either satisfy its invariants vacuously (no honest
    outputs) or fail loudly (a :class:`~repro.errors.NetworkError`
    timeout), never report a silent wrong answer.  The campaign's
    model-breaking schedules and the fault edge-case tests use it.
    """
    if round_index < 0:
        raise ConfigurationError("crash round must be >= 0")
    return FaultPlan(crashes={p: round_index for p in party_ids})


def churn_schedule(
    joiners: Dict[int, int],
    leavers: Optional[Dict[int, int]] = None,
) -> FaultPlan:
    """Mid-protocol join/leave churn as a fault plan.

    ``joiners`` maps party id → join round (absent before it);
    ``leavers`` maps party id → leave round (modeled as a crash: the
    party stops stepping, in-flight messages still land).  A party in
    both maps joins late *and* leaves — its join must precede its leave.
    """
    leavers = leavers or {}
    for party, join_round in joiners.items():
        leave_round = leavers.get(party)
        if leave_round is not None and leave_round <= join_round:
            raise ConfigurationError(
                f"party {party} would leave (round {leave_round}) before "
                f"joining (round {join_round})"
            )
    return FaultPlan(crashes=dict(leavers), joins=dict(joiners))


def partition_halves(
    party_ids: Iterable[int], first_round: int, last_round: int
) -> FaultPlan:
    """Split the party set into two halves and sever the cut for the
    given send-round window."""
    ids = sorted(party_ids)
    mid = len(ids) // 2
    return FaultPlan(
        partitions=[
            Partition(
                group_a=frozenset(ids[:mid]),
                group_b=frozenset(ids[mid:]),
                first_round=first_round,
                last_round=last_round,
            )
        ]
    )
