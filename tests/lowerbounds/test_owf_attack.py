"""Tests for the Thm 1.4 empirical attack (OWF necessity)."""

from repro.lowerbounds.owf_attack import (
    attack_success_rate,
    invert_public_key,
    run_owf_attack_trial,
    sign_with_secret,
    weak_keygen,
)
from repro.utils.randomness import Randomness


class TestWeakKeys:
    def test_keygen_deterministic_public(self, rng):
        keypair = weak_keygen(10, rng)
        assert len(keypair.public) == 32
        assert 0 <= keypair.secret < 1 << 10

    def test_inversion_within_budget(self, rng):
        keypair = weak_keygen(10, rng)
        recovered = invert_public_key(keypair.public, 10, effort_bits=12)
        assert recovered == keypair.secret

    def test_inversion_beyond_budget_fails(self, rng):
        keypair = weak_keygen(24, rng)
        assert invert_public_key(keypair.public, 24, effort_bits=8) is None

    def test_signature_tied_to_secret(self, rng):
        keypair = weak_keygen(10, rng)
        assert sign_with_secret(keypair.secret, 10, 1) != sign_with_secret(
            keypair.secret, 10, 0
        )


class TestAttackPhaseTransition:
    def test_invertible_keys_break_boost(self, rng):
        rate = attack_success_rate(
            n=80, t=12, messages_per_party=6, secret_bits=8,
            effort_bits=12, trials=15, rng=rng,
        )
        assert rate >= 0.6

    def test_strong_keys_resist(self, rng):
        rate = attack_success_rate(
            n=80, t=12, messages_per_party=6, secret_bits=40,
            effort_bits=12, trials=15, rng=rng,
        )
        assert rate <= 0.1

    def test_trial_reports_inversions(self, rng):
        weak = run_owf_attack_trial(
            n=60, t=10, messages_per_party=5, secret_bits=8,
            effort_bits=12, rng=rng.fork("w"),
        )
        strong = run_owf_attack_trial(
            n=60, t=10, messages_per_party=5, secret_bits=40,
            effort_bits=12, rng=rng.fork("s"),
        )
        assert weak.keys_inverted > 0
        assert strong.keys_inverted == 0
