#!/usr/bin/env python3
"""Standalone SRDS usage: succinct majority certificates for a release.

Scenario: a software vendor wants a *succinct* certificate that a
majority of its n validator nodes approved a release hash.  A classic
multi-signature needs Theta(n) bits just to say who signed (§1.2's
"culprit"); an SRDS certificate is constant-size.

The script builds both kinds of certificate over the same validator set,
aggregates recursively in committee-sized batches (as the communication
tree would), and prints sizes plus tamper-rejection checks.

Usage::

    python examples/srds_certificates.py [n]
"""

import sys

from repro.protocols.baselines.multisig import MultisigScheme
from repro.srds.base_sigs import HashRegistryBase
from repro.srds.snark_based import SnarkSRDS
from repro.utils.randomness import Randomness


def batched(items, size):
    """Yield consecutive batches of at most `size` items."""
    for start in range(0, len(items), size):
        yield items[start: start + size]


def build_certificate(scheme, n, message, rng, batch=32):
    """Deploy a scheme, sign with everyone, aggregate tree-style."""
    pp = scheme.setup(n, rng.fork("setup"))
    verification_keys, signing_keys = {}, {}
    for index in range(n):
        vk, sk = scheme.keygen(pp, rng.fork(f"kg-{index}"))
        verification_keys[index] = vk
        signing_keys[index] = sk

    signatures = [
        scheme.sign(pp, index, signing_keys[index], message)
        for index in range(n)
    ]
    # Recursive aggregation in polylog-size batches, like the tree does.
    layer = signatures
    while len(layer) > 1:
        layer = [
            scheme.aggregate(pp, verification_keys, message, group)
            for group in batched(layer, batch)
        ]
    certificate = layer[0]
    return pp, verification_keys, certificate


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    message = b"release-v2.1.0:sha256:9c1185a5c5e9fc54612808977ee8f548b2258d31"
    rng = Randomness(99)

    print(f"Majority certificate over n={n} validators for:\n  {message.decode()}\n")

    srds = SnarkSRDS(base_scheme=HashRegistryBase())
    pp, vks, certificate = build_certificate(srds, n, message, rng.fork("srds"))
    size_srds = len(certificate.encode())
    print("SRDS (SNARK-based) certificate:")
    print(f"  size:       {size_srds} bytes (independent of n)")
    print(f"  contributors attested: {certificate.count}/{n}")
    print(f"  verifies:   {srds.verify(pp, vks, message, certificate)}")
    print(f"  tampered:   {srds.verify(pp, vks, b'release-v6.6.6', certificate)}"
          "  (certificate bound to the message)")
    print()

    multisig = MultisigScheme()
    pp2, vks2, bitmap_cert = build_certificate(
        multisig, n, message, rng.fork("multisig")
    )
    size_multisig = len(bitmap_cert.encode())
    print("Multi-signature (bitmap) certificate:")
    print(f"  size:       {size_multisig} bytes (32B tag + n-bit signer "
          "bitmap — the Theta(n) culprit)")
    print(f"  verifies:   {multisig.verify(pp2, vks2, message, bitmap_cert)}")
    print()

    # The size race: constant vs Theta(n).
    print(f"{'n':>8} {'SRDS':>8} {'multisig':>10}")
    for scale in (256, 1024, 4096, 16384, 1 << 20):
        # SRDS certificates carry no per-party payload; the multisig
        # bitmap is (n + 7) // 8 bytes plus the fixed tag/framing.
        multisig_bytes = len(bitmap_cert.encode()) - (n + 7) // 8 + (
            (scale + 7) // 8
        )
        print(f"{scale:>8} {size_srds:>7}B {multisig_bytes:>9}B")
    print("\nThe multisig bitmap overtakes the ~141B SRDS certificate near"
          " n = 1000 and grows linearly forever after — the reason pi_ba")
    print("with multi-signatures is stuck at Theta(n) per-party"
          " communication (§1.2).")


if __name__ == "__main__":
    main()
