"""Executable SRDS security experiments (Fig. 1 and Fig. 2).

The paper defines robustness and unforgeability as games between a
challenger and an adversary; this module *runs* those games, so the F1 /
F2 benchmarks can report empirical win rates for concrete adversaries
and the tests can assert threshold tightness.

Conventions.  The SRDS operates over ``N`` *virtual* parties (the remark
after Def. 2.1); the adversary corrupts *real* parties — corrupting a
party corrupts all of its virtual identities.  ``mode`` selects bare vs
trusted PKI: in bare mode the adversary may replace corrupted virtual
identities' verification keys (step A.4(b) of Fig. 1).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.aetree.analysis import good_nodes, is_good_node
from repro.aetree.tree import CommTree, build_tree
from repro.errors import ExperimentError
from repro.net.adversary import CorruptionPlan, random_corruption
from repro.params import ProtocolParameters
from repro.pki.registry import PKIMode
from repro.srds.base import PublicParameters, SRDSScheme, SRDSSignature
from repro.utils.randomness import Randomness


@dataclass
class ExperimentSetup:
    """Shared state produced by the setup-and-corruption phase (A)."""

    pp: PublicParameters
    verification_keys: Dict[int, bytes]
    signing_keys: Dict[int, object]
    plan: CorruptionPlan              # over real parties
    corrupt_virtual: Set[int]
    tree: CommTree


class RobustnessAdversary(abc.ABC):
    """The adversary of the robustness experiment (Fig. 1)."""

    def replace_keys(
        self, setup: ExperimentSetup, scheme: SRDSScheme, rng: Randomness
    ) -> Dict[int, bytes]:
        """Step A.4(b): new verification keys for corrupt virtual ids
        (bare PKI only; ignored in trusted mode).  Default: keep keys."""
        return {}

    def choose_messages(
        self, setup: ExperimentSetup, rng: Randomness
    ) -> Tuple[bytes, Dict[int, bytes]]:
        """Step B.2: the target message m and per-party messages for the
        bad-path honest set N.  Default: m fixed, N signs a decoy."""
        return b"robustness-target", {}

    def corrupt_signatures(
        self,
        setup: ExperimentSetup,
        scheme: SRDSScheme,
        message: bytes,
        honest_signatures: Dict[int, SRDSSignature],
        rng: Randomness,
    ) -> Dict[int, SRDSSignature]:
        """Step B.4: corrupt virtual ids' signatures.  Default: silent."""
        return {}

    def bad_node_output(
        self,
        setup: ExperimentSetup,
        scheme: SRDSScheme,
        node,
        child_signatures: List[SRDSSignature],
        message: bytes,
        rng: Randomness,
    ) -> Optional[SRDSSignature]:
        """Step B.5 for bad nodes.  Default: drop the subtree."""
        return None


class ForgeryAdversary(abc.ABC):
    """The adversary of the forgery experiment (Fig. 2)."""

    def replace_keys(
        self, setup: ExperimentSetup, scheme: SRDSScheme, rng: Randomness
    ) -> Dict[int, bytes]:
        """Step A.4(b) (bare PKI only).  Default: keep keys."""
        return {}

    @abc.abstractmethod
    def choose_targets(
        self, setup: ExperimentSetup, rng: Randomness
    ) -> Tuple[Set[int], bytes, Dict[int, bytes]]:
        """Step B.(a): the set S (virtual ids), message m, and {m_i}."""

    @abc.abstractmethod
    def forge(
        self,
        setup: ExperimentSetup,
        scheme: SRDSScheme,
        message: bytes,
        honest_signatures: Dict[int, SRDSSignature],
        rng: Randomness,
    ) -> Tuple[Optional[SRDSSignature], bytes]:
        """Step B.(d): output (sigma', m')."""


def _run_setup(
    scheme: SRDSScheme,
    n: int,
    t: int,
    mode: PKIMode,
    params: ProtocolParameters,
    rng: Randomness,
    replace_keys_hook,
    plan: Optional[CorruptionPlan] = None,
) -> ExperimentSetup:
    """Phase A of both experiments.

    ``plan`` lets the caller pin the corrupted set (campaign cells and
    edge-case tests that target specific committees); by default the
    corruption is uniformly random, as in the original experiments.
    """
    if 3 * t >= n:
        raise ExperimentError("corruption budget must be below n/3")
    if plan is None:
        plan = random_corruption(n, t, rng.fork("corrupt"))
    else:
        if plan.n != n:
            raise ExperimentError(
                f"corruption plan is over {plan.n} parties, experiment has {n}"
            )
        if plan.t > t:
            raise ExperimentError(
                f"corruption plan corrupts {plan.t} parties, budget is {t}"
            )
    tree = build_tree(
        n, params, rng.fork("tree"), honest_root_hint=plan.honest
    )
    pp = scheme.setup(tree.num_virtual, rng.fork("setup"))
    verification_keys: Dict[int, bytes] = {}
    signing_keys: Dict[int, object] = {}
    for virtual_id in range(tree.num_virtual):
        vk, sk = scheme.keygen(pp, rng.fork(f"kg-{virtual_id}"))
        verification_keys[virtual_id] = vk
        signing_keys[virtual_id] = sk
    corrupt_virtual = {
        virtual_id
        for virtual_id in range(tree.num_virtual)
        if plan.is_corrupt(tree.owner_of_virtual(virtual_id))
    }
    setup = ExperimentSetup(
        pp=pp,
        verification_keys=verification_keys,
        signing_keys=signing_keys,
        plan=plan,
        corrupt_virtual=corrupt_virtual,
        tree=tree,
    )
    if mode is PKIMode.BARE:
        replacements = replace_keys_hook(setup)
        for virtual_id, new_key in replacements.items():
            if virtual_id not in corrupt_virtual:
                raise ExperimentError(
                    "adversary tried to replace an honest key"
                )
            verification_keys[virtual_id] = new_key
    return setup


def run_robustness_experiment(
    scheme: SRDSScheme,
    n: int,
    t: int,
    mode: PKIMode,
    adversary: RobustnessAdversary,
    params: Optional[ProtocolParameters] = None,
    rng: Optional[Randomness] = None,
    plan: Optional[CorruptionPlan] = None,
) -> bool:
    """Run Expt^robust (Fig. 1).

    Returns ``True`` when verification of the root aggregate *succeeds*
    — i.e. the challenger wins and the adversary fails.  A robust scheme
    returns True for (almost) every adversary and randomness.  ``plan``
    optionally pins the corrupted set (default: uniformly random).
    """
    params = params if params is not None else ProtocolParameters()
    rng = rng if rng is not None else Randomness(0)
    setup = _run_setup(
        scheme, n, t, mode, params, rng,
        lambda s: adversary.replace_keys(s, scheme, rng.fork("replace")),
        plan=plan,
    )
    tree = setup.tree

    # B.1-B.2: the tree is fixed by setup (Def. 2.3-valid by
    # construction; adversarial tree *choices* are modeled through the
    # corruption plan, which determines which nodes are bad); the
    # adversary picks the messages.
    message, bad_path_messages = adversary.choose_messages(
        setup, rng.fork("messages")
    )
    good = good_nodes(tree, setup.plan)
    bad_path_virtual: Set[int] = set()
    for leaf in tree.leaves:
        on_good_path = all(
            node.node_id in good for node in tree.path_to_root(leaf.node_id)
        )
        if not on_good_path:
            lo, hi = leaf.virtual_range
            bad_path_virtual.update(range(lo, hi))

    # B.3: honest signatures — bad-path honest parties may sign decoys.
    honest_signatures: Dict[int, SRDSSignature] = {}
    for virtual_id in range(tree.num_virtual):
        if virtual_id in setup.corrupt_virtual:
            continue
        if virtual_id in bad_path_virtual:
            sign_message = bad_path_messages.get(
                virtual_id, b"decoy:" + bytes([virtual_id % 251])
            )
        else:
            sign_message = message
        signature = scheme.sign(
            setup.pp, virtual_id, setup.signing_keys[virtual_id], sign_message
        )
        if signature is not None:
            honest_signatures[virtual_id] = signature

    # B.4: the adversary contributes corrupt signatures.
    corrupt_signatures = adversary.corrupt_signatures(
        setup, scheme, message, honest_signatures, rng.fork("corrupt-sigs")
    )

    # B.5: aggregate up the tree; good nodes by the challenger, bad nodes
    # by the adversary.
    signatures_by_virtual: Dict[int, SRDSSignature] = dict(honest_signatures)
    signatures_by_virtual.update(corrupt_signatures)

    node_outputs: Dict[int, Optional[SRDSSignature]] = {}
    for level in range(1, tree.height + 1):
        for node in tree.level_nodes(level):
            if node.is_leaf:
                lo, hi = node.virtual_range
                children_sigs = [
                    signatures_by_virtual[v]
                    for v in range(lo, hi)
                    if v in signatures_by_virtual
                ]
            else:
                children_sigs = [
                    node_outputs[child_id]
                    for child_id in node.children
                    if node_outputs.get(child_id) is not None
                ]
            if is_good_node(node, setup.plan.corrupted):
                node_outputs[node.node_id] = scheme.aggregate(
                    setup.pp, setup.verification_keys, message, children_sigs
                )
            else:
                node_outputs[node.node_id] = adversary.bad_node_output(
                    setup, scheme, node, children_sigs, message,
                    rng.fork(f"bad-{node.node_id}"),
                )

    root_signature = node_outputs.get(tree.root_id)
    if root_signature is None:
        return False
    return scheme.verify(
        setup.pp, setup.verification_keys, message, root_signature
    )


def run_forgery_experiment(
    scheme: SRDSScheme,
    n: int,
    t: int,
    mode: PKIMode,
    adversary: ForgeryAdversary,
    params: Optional[ProtocolParameters] = None,
    rng: Optional[Randomness] = None,
    plan: Optional[CorruptionPlan] = None,
) -> bool:
    """Run Expt^forge (Fig. 2).

    Returns ``True`` when the *adversary* wins: it produced sigma' on
    some m' != m that verifies.  An unforgeable scheme returns False for
    (almost) every adversary and randomness.  ``plan`` optionally pins
    the corrupted set (default: uniformly random).
    """
    params = params if params is not None else ProtocolParameters()
    rng = rng if rng is not None else Randomness(0)
    setup = _run_setup(
        scheme, n, t, mode, params, rng,
        lambda s: adversary.replace_keys(s, scheme, rng.fork("replace")),
        plan=plan,
    )
    num_virtual = setup.tree.num_virtual

    # B.(a): S, m, {m_i}.
    chosen_set, message, side_messages = adversary.choose_targets(
        setup, rng.fork("targets")
    )
    if chosen_set & setup.corrupt_virtual:
        raise ExperimentError("S must be disjoint from the corrupt set")
    if 3 * len(chosen_set | setup.corrupt_virtual) >= num_virtual:
        raise ExperimentError("|S ∪ I| must stay below n/3")

    # B.(b)-(c): challenger signs.
    honest_signatures: Dict[int, SRDSSignature] = {}
    for virtual_id in range(num_virtual):
        if virtual_id in setup.corrupt_virtual:
            continue
        if virtual_id in chosen_set:
            sign_message = side_messages.get(virtual_id, message)
        else:
            sign_message = message
        signature = scheme.sign(
            setup.pp, virtual_id, setup.signing_keys[virtual_id], sign_message
        )
        if signature is not None:
            honest_signatures[virtual_id] = signature

    # B.(d): the forgery attempt.
    forged_signature, forged_message = adversary.forge(
        setup, scheme, message, honest_signatures, rng.fork("forge")
    )
    if forged_signature is None or forged_message == message:
        return False
    return scheme.verify(
        setup.pp, setup.verification_keys, forged_message, forged_signature
    )
