"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``ba [n]`` — run pi_ba with both SRDS constructions; print agreement,
  certificate size, and per-party communication.
* ``attacks`` — the Thm 1.3 (CRS) and Thm 1.4 (OWF) attacks, summarized.
* ``tree [n]`` — build an almost-everywhere tree under random corruption
  and print its Def. 2.3 guarantees.
* ``runtime [n] [tcp] [trace-dir]`` — run protocols over the
  event-driven asyncio runtime: phase-king under a seeded fault plan
  (reordering, duplication, a crash), then the pi_ba differential
  parity check (hybrid-model reference vs wire replay over the
  transport).  Pass ``tcp`` to use loopback TCP sockets instead of
  in-process queues; pass a directory to dump per-party JSONL traces.
  ``--flow-out FILE`` attaches the wire-level flow ledger to the pi_ba
  replay and writes its ``repro-flow/1`` report; ``--metrics-out FILE``
  flushes the Prometheus snapshot (flow summary comment included)
  through the same atomic helper the cluster and gateway CLIs use.
* ``report [path]`` — assemble the benchmark records from
  ``benchmarks/results/`` into one measured-experiment report (stdout,
  or written to ``path``).
* ``obs report [path] [n] [--out dir]`` — observability: with no
  ``path``, run pi_ba fresh (default n=16) under both SRDS
  constructions with phase spans recording, print the per-phase and
  per-party communication tables, and verify that every party's phase
  sums equal its ``bits_total`` (exit 0 iff they all match); with a
  ``BENCH_*.json`` path, render that record; with a trace directory,
  summarize its per-party JSONL streams.  ``--out dir`` additionally
  writes ``BENCH_*.json`` records and Perfetto timeline JSON there.
* ``obs timeline <trace-dir> <out.json>`` — convert a runtime trace
  directory into Chrome trace-event JSON (loads in ui.perfetto.dev).
* ``obs top <FLOW_*.json> [--k N] [--spill]`` — the hottest cells of a
  wire-level flow report (who sent how many bits to whom, in which
  round/phase, over which wire); ``--spill`` also counts the evicted
  cells in the report's spill JSONL.
* ``obs flows <FLOW_*.json> [--by phase|kind|party]`` — the flow
  report's aggregate views: bits per protocol phase, per wire kind,
  and per party (sent/received, exact even under cell eviction).
* ``obs diff <baseline> <fresh> [--wall-tolerance F] [--json]`` — the
  bench regression gate: compare fresh ``BENCH_*.json`` records (file
  vs file, or directory vs directory) against committed baselines.
  Bit counts and structural counts are gated exactly (any drift is a
  hard failure, nonzero exit); wall clocks only warn.
* ``obs profile [n] [--phases a,b] [--memory] [--top K]`` — opt-in
  phase-scoped profiling: run pi_ba fresh under a cProfile-per-span
  collector (plus tracemalloc peaks with ``--memory``) and print the
  hottest functions of each selected phase.
* ``obs merge <spans-dir> <out.json> [--wall]`` — merge a span
  directory (supervisor + worker + session tracks; the cluster CLI's
  ``--spans-dir`` writes one) into a single Perfetto timeline, every
  track labeled with the run's shared trace id.
* ``lint {check,baseline,explain,rules}`` — protocol-aware static
  analysis: determinism (seeded randomness, injected clocks),
  bits-accounting (no byte path bypasses ``CommunicationMetrics``),
  async-safety, exception hygiene, and wire-codec rules with a
  ratcheted committed baseline (``lint check`` fails only on *new*
  violations; ``lint explain DET001`` documents a rule).
* ``cluster {run,resume,status,bench}`` — sharded multi-process party
  execution: shard the party set across worker OS processes with
  durable checkpoints and crash-restart recovery (``run --kill 3:1``
  SIGKILLs worker 1 mid-round to exercise resume), describe a run
  directory (``status``), pick an interrupted run back up (``resume``),
  or record the 1-vs-k-worker scaling benchmark with differential
  parity against the single-process runtime (``bench``).
* ``serve {run,client,bench}`` — the agreement-as-a-service gateway:
  a long-running asyncio server multiplexing concurrent BA sessions
  with admission control and explicit backpressure, amortized SRDS
  setup across sessions (Corollary 1.2), a newline-delimited JSON
  client protocol plus ``GET /metrics`` Prometheus scraping on the
  same port, and graceful SIGTERM drain.  ``serve bench`` records the
  pipelined repeated-BA throughput (``BENCH_gateway.json``) with
  bit-tally parity against a one-shot run.
* ``aba [n] [--seed S] [--policy latency|adversarial] [--latency NAME]
  [--adaptive NAME] [--bench DIR]`` — the asynchronous baseline: run
  MMR14 common-coin binary agreement over the adversarially-scheduled
  asyncio model (no round synchronizer), print the decision, round
  count, and per-party bits; ``--latency`` picks a delivery model
  (fixed/uniform/lognormal/partition-heal/random-delay), ``--policy
  adversarial`` hands delivery *order* to a seeded adversary,
  ``--adaptive`` arms a mid-run corruption strategy
  (adaptive-coin/adaptive-first-aux).  ``--bench DIR`` instead sweeps
  all models and both n in {16, 64} against π_ba on identical cells and
  writes ``BENCH_aba.json``.
* ``campaign {run,replay,minimize,list}`` — adversarial conformance
  campaigns: sweep Byzantine strategies x fault schedules x protocol
  configs with invariant checking (``run --budget 25 --seed 0``),
  re-execute a failing run from its single-line repro spec
  (``replay``), shrink it to a minimal failing instance
  (``minimize``), or show the matrix (``list``).

Longer, annotated versions of these demos live in ``examples/``.
"""

from __future__ import annotations

import sys

from repro.analysis.tables import format_bits
from repro.net.adversary import random_corruption
from repro.params import ProtocolParameters
from repro.utils.randomness import Randomness


def _cmd_ba(n: int) -> int:
    from repro.protocols.balanced_ba import run_balanced_ba
    from repro.srds.base_sigs import HashRegistryBase
    from repro.srds.owf import OwfSRDS
    from repro.srds.snark_based import SnarkSRDS

    params = ProtocolParameters()
    rng = Randomness(2021)
    plan = random_corruption(n, params.max_corruptions(n), rng.fork("c"))
    inputs = {i: i % 2 for i in range(n)}
    print(f"pi_ba: n={n}, t={plan.t}, split inputs")
    for label, scheme in (
        ("snark-srds", SnarkSRDS(base_scheme=HashRegistryBase())),
        ("owf-srds", OwfSRDS(message_bits=64)),
    ):
        result = run_balanced_ba(inputs, plan, scheme, params,
                                 rng.fork(label))
        print(
            f"  {label:<11} agree={result.agreement} y={result.agreed_value} "
            f"cert={result.certificate_bytes:,}B "
            f"max/party={format_bits(result.metrics.max_bits_per_party)} "
            f"imbalance={result.metrics.imbalance:.2f}"
        )
    return 0


def _cmd_runtime(n: int, kind: str, trace_dir=None,
                 metrics_out=None, flow_out=None) -> int:
    from repro.net.metrics import CommunicationMetrics
    from repro.protocols.balanced_ba import run_balanced_ba
    from repro.protocols.phase_king import run_phase_king
    from repro.runtime import (
        FaultPlan,
        TraceRecorder,
        run_balanced_ba_runtime,
        run_phase_king_runtime,
    )
    from repro.runtime.trace import summarize
    from repro.srds.base_sigs import HashRegistryBase
    from repro.srds.snark_based import SnarkSRDS

    flow = None
    registry = None
    if metrics_out is not None or flow_out is not None:
        from repro.obs.flow import FlowLedger
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        spill = (
            flow_out.with_name(flow_out.name + ".spill.jsonl")
            if flow_out is not None else None
        )
        flow = FlowLedger(spill_path=spill, registry=registry)

    params = ProtocolParameters()
    rng = Randomness(2021)
    print(f"runtime: n={n}, transport={kind}")

    # 1. Phase-king over the event-driven runtime, hostile schedule.
    inputs = {i: i % 2 for i in range(n)}
    byzantine = sorted(rng.fork("byz").sample(range(n), max(1, (n - 1) // 3)))
    faults = FaultPlan(
        crashes={byzantine[0]: 2},
        reorder=True,
        duplicate_probability=0.05,
        rng=rng.fork("faults"),
    )
    trace = TraceRecorder()
    outputs, metrics = run_phase_king_runtime(
        inputs, byzantine, transport=kind, fault_plan=faults, trace=trace
    )
    reference, _ = run_phase_king(inputs, byzantine)
    decided = set(outputs.values())
    print(
        f"  phase-king  honest={len(outputs)} byz={len(byzantine)} "
        f"(1 crashed@r2) agree={len(decided) == 1} "
        f"matches-sync={outputs == reference} "
        f"max/party={format_bits(metrics.max_bits_per_party)}"
    )
    counts = summarize(
        event for p in trace.party_ids for event in trace.events_of(p)
    )
    print(
        f"  trace       events={trace.count():,} "
        f"(send={counts.get('send', 0):,} recv={counts.get('recv', 0):,} "
        f"barriers={counts.get('round-barrier', 0):,}) "
        f"max-queue-depth={trace.max_queue_depth()}"
    )
    if trace_dir is not None:
        paths = trace.dump_dir(trace_dir)
        print(f"  trace       {len(paths)} JSONL files -> {trace_dir}")

    # 2. pi_ba: hybrid-model reference vs wire replay over the transport.
    plan_rng = Randomness(7)
    from repro.net.adversary import random_corruption

    plan = random_corruption(n, params.max_corruptions(n), plan_rng.fork("c"))
    scheme = SnarkSRDS(base_scheme=HashRegistryBase())
    ref = run_balanced_ba(inputs, plan, scheme, params, Randomness(99))
    runtime_metrics = CommunicationMetrics()
    runtime_metrics.attach_flow(flow)
    res, replay = run_balanced_ba_runtime(
        inputs, plan, scheme, params, Randomness(99), transport=kind,
        metrics=runtime_metrics,
    )
    parity = (
        res.outputs == ref.outputs
        and res.metrics.max_bits_per_party == ref.metrics.max_bits_per_party
        and res.metrics.total_bits == ref.metrics.total_bits
    )
    print(
        f"  pi_ba       t={plan.t} wire-replay rounds={replay.rounds} "
        f"agree={res.agreement} parity-with-hybrid={parity} "
        f"max/party={format_bits(res.metrics.max_bits_per_party)}"
    )

    if flow is not None:
        import json as json_mod

        from repro.obs.flush import flush_metrics_file, write_atomic_text

        flow_problems = flow.verify_against(runtime_metrics)
        print(f"  flow        coverage={flow.coverage():.1%} "
              f"parity-with-tallies={not flow_problems}")
        for problem in flow_problems:
            print(f"    {problem}")
        if flow_out is not None:
            name = flow_out.stem
            if name.startswith("FLOW_"):
                name = name[len("FLOW_"):]
            payload = flow.report(
                name, metrics=runtime_metrics,
                extra={"n": n, "transport": kind, "workload": "pi-ba"},
            )
            write_atomic_text(
                flow_out,
                json_mod.dumps(payload, sort_keys=True, indent=2) + "\n",
            )
            print(f"  flow        report -> {flow_out}")
        if metrics_out is not None:
            flush_metrics_file(metrics_out, registry, flow=flow)
            print(f"  metrics     snapshot -> {metrics_out}")
        flow.close()
        if flow_problems:
            return 1
    return 0 if parity else 1


def _cmd_aba(args) -> int:
    import pathlib

    from repro.asynchrony.adaptive import ADAPTIVE_STRATEGIES
    from repro.asynchrony.bench import MAX_EXPECTED_ROUNDS, run_aba_bench
    from repro.asynchrony.driver import run_aba
    from repro.net.latency import LATENCY_MODEL_NAMES

    n = 16
    seed = 2025
    policy = "latency"
    latency = None
    adaptive = None
    bench_dir = None
    rest = list(args)
    while rest:
        arg = rest.pop(0)
        if arg == "--seed":
            if not rest or not rest[0].lstrip("-").isdigit():
                print("--seed needs an integer")
                return 2
            seed = int(rest.pop(0))
        elif arg == "--policy":
            if not rest or rest[0] not in ("latency", "adversarial"):
                print("--policy needs one of: latency, adversarial")
                return 2
            policy = rest.pop(0)
        elif arg == "--latency":
            if not rest or rest[0] not in LATENCY_MODEL_NAMES:
                print(f"--latency needs one of: "
                      f"{', '.join(LATENCY_MODEL_NAMES)}")
                return 2
            latency = rest.pop(0)
        elif arg == "--adaptive":
            if not rest or rest[0] not in ADAPTIVE_STRATEGIES:
                print(f"--adaptive needs one of: "
                      f"{', '.join(sorted(ADAPTIVE_STRATEGIES))}")
                return 2
            adaptive = rest.pop(0)
        elif arg == "--bench":
            if not rest:
                print("--bench needs a results directory")
                return 2
            bench_dir = pathlib.Path(rest.pop(0))
        elif arg.isdigit():
            n = int(arg)
        else:
            print("usage: aba [n] [--seed S] "
                  "[--policy latency|adversarial] [--latency NAME] "
                  "[--adaptive NAME] [--bench DIR]")
            return 2

    if bench_dir is not None:
        payload = run_aba_bench(results_dir=bench_dir)
        print(f"BENCH_aba.json -> {bench_dir} "
              f"(round gate: <= {MAX_EXPECTED_ROUNDS})")
        for row in payload["extra"]["comparison"]:
            print(
                f"  n={row['n']:<3} "
                f"aba={format_bits(row['aba_max_bits_per_party'])}/party "
                f"pi_ba={format_bits(row['pi_ba_max_bits_per_party'])}/party "
                f"ratio={row['ratio_aba_over_pi_ba']:.2f}"
            )
        return 0

    result = run_aba(
        n, seed=seed, policy=policy, latency=latency, adaptive=adaptive
    )
    model = latency or ("(adversary picks order)"
                        if policy == "adversarial" else "fixed")
    print(f"aba: n={n} seed={seed} policy={policy} latency={model}"
          + (f" adaptive={adaptive}" if adaptive else ""))
    agreed = result.agreed_value
    print(
        f"  decided={agreed} rounds={result.rounds} "
        f"deliveries={result.deliveries:,} "
        f"corrupted={result.corrupted or '[]'} "
        f"max/party={format_bits(result.metrics.max_bits_per_party)}"
    )
    return 0 if agreed is not None else 1


def _cmd_attacks() -> int:
    from repro.lowerbounds.crs_attack import attack_success_rate as crs_rate
    from repro.lowerbounds.owf_attack import attack_success_rate as owf_rate

    rng = Randomness(1)
    crs = crs_rate(200, 30, 10, 40, rng.fork("crs"))
    pki = crs_rate(200, 30, 10, 40, rng.fork("pki"), with_pki=True)
    print(f"Thm 1.3  CRS-only single-round boost: victim errs {crs:.0%}")
    print(f"         with PKI/SRDS certificates:  victim errs {pki:.0%}")
    weak = owf_rate(80, 12, 6, secret_bits=8, effort_bits=12, trials=15,
                    rng=rng.fork("w"))
    strong = owf_rate(80, 12, 6, secret_bits=40, effort_bits=12, trials=15,
                      rng=rng.fork("s"))
    print(f"Thm 1.4  invertible (8-bit) PKI keys: victim errs {weak:.0%}")
    print(f"         one-way (40-bit) PKI keys:   victim errs {strong:.0%}")
    return 0


def _cmd_tree(n: int) -> int:
    from repro.aetree import analyze, build_tree

    params = ProtocolParameters()
    rng = Randomness(7)
    plan = random_corruption(n, params.max_corruptions(n), rng.fork("c"))
    tree = build_tree(n, params, rng.fork("t"), honest_root_hint=plan.honest)
    report = analyze(tree, plan)
    print(f"(n, I)-tree for n={n}, t={plan.t}:")
    print(f"  leaves={report.num_leaves} height={report.height} "
          f"z={tree.z} z*={tree.z_star}")
    print(f"  good-path leaves: {report.good_path_leaf_fraction:.1%}")
    print(f"  well-connected parties: {report.well_connected_fraction:.1%}")
    print(f"  supreme committee 2/3-honest: {report.root_is_good}")
    return 0


def _obs_fresh_report(n: int, out_dir=None) -> int:
    """Run pi_ba under both SRDS schemes with span recording and verify
    the phase attribution invariant; optionally persist BENCH + timeline."""
    import time as time_mod

    from repro.analysis.report import (
        render_party_phase_table,
        render_phase_breakdown,
    )
    from repro.obs.bench import bench_payload, write_bench_json
    from repro.obs.spans import SpanLog, recording, span
    from repro.net.metrics import CommunicationMetrics
    from repro.obs.timeline import export_chrome_trace
    from repro.protocols.balanced_ba import run_balanced_ba
    from repro.srds.base_sigs import HashRegistryBase
    from repro.srds.owf import OwfSRDS
    from repro.srds.snark_based import SnarkSRDS

    params = ProtocolParameters()
    rng = Randomness(2021)
    plan = random_corruption(n, params.max_corruptions(n), rng.fork("c"))
    inputs = {i: i % 2 for i in range(n)}
    print(f"obs report: pi_ba n={n}, t={plan.t}, split inputs")
    all_ok = True
    for label, scheme in (
        ("snark-srds", SnarkSRDS(base_scheme=HashRegistryBase())),
        ("owf-srds", OwfSRDS(message_bits=64)),
    ):
        log = SpanLog()
        metrics = CommunicationMetrics()
        started = time_mod.perf_counter()
        with recording(log):
            with span("obs-report", scheme=label):
                result = run_balanced_ba(
                    inputs, plan, scheme, params, rng.fork(label),
                    metrics=metrics,
                )
        elapsed = time_mod.perf_counter() - started
        print(f"\n== {label} "
              f"(agree={result.agreement}, wall={elapsed:.2f}s) ==")
        print(render_phase_breakdown(metrics.phase_breakdown()))
        print()
        print(render_party_phase_table(metrics))
        sums = [
            sum(metrics.bits_by_phase(p).values())
            for p in sorted(metrics.party_ids)
        ]
        totals = [
            metrics.tally_of(p).bits_total
            for p in sorted(metrics.party_ids)
        ]
        ok = (
            sums == totals
            and max(sums, default=0) == metrics.max_bits_per_party
        )
        all_ok = all_ok and ok
        print(
            f"invariant sum(bits_by_phase) == bits_total per party: "
            f"{'ok' if ok else 'VIOLATED'} "
            f"(max/party={format_bits(metrics.max_bits_per_party)})"
        )
        if out_dir is not None:
            payload = bench_payload(
                f"obs_report_{label.replace('-', '_')}",
                snapshot=metrics.snapshot(),
                phase_breakdown=metrics.phase_breakdown(),
                wall_times={"pi_ba": elapsed},
                extra={"n": n, "t": plan.t, "scheme": label,
                       "agreement": result.agreement},
            )
            bench_path = write_bench_json(out_dir, payload)
            timeline_path = export_chrome_trace(
                out_dir / f"timeline_{label.replace('-', '_')}.json",
                trace=None,
                spans=log,
            )
            print(f"wrote {bench_path} and {timeline_path}")
    return 0 if all_ok else 1


def _party_label(pid: int) -> str:
    """Human name for a flow-ledger endpoint id (pseudo ids included)."""
    from repro.cluster.supervisor import WORKER_PSEUDO_BASE
    from repro.obs.flow import FUNCTIONALITY, INFRA

    if pid == FUNCTIONALITY:
        return "F*"
    if pid == INFRA:
        return "infra"
    if pid <= WORKER_PSEUDO_BASE:
        return f"worker-{WORKER_PSEUDO_BASE - pid}"
    return str(pid)


def _obs_top(rest) -> int:
    import pathlib

    from repro.obs.flow import load_flow_json, load_spill

    k = 20
    spill = False
    target = None
    rest = list(rest)
    while rest:
        arg = rest.pop(0)
        if arg == "--k":
            if not rest or not rest[0].isdigit():
                print("--k needs a count")
                return 2
            k = int(rest.pop(0))
        elif arg == "--spill":
            spill = True
        else:
            target = pathlib.Path(arg)
    if target is None:
        print("usage: obs top <FLOW_*.json> [--k N] [--spill]")
        return 2
    payload = load_flow_json(target)
    print(
        f"flow report {payload['name']}: "
        f"{format_bits(payload['total_bits'])} data "
        f"(+{format_bits(payload['control_bits'])} control), "
        f"coverage={payload['coverage']:.1%}, "
        f"cells={payload['live_cells']} live "
        f"/ {payload['evicted_cells']} evicted"
    )
    cells = list(payload.get("top_cells", []))
    if spill and payload.get("spill_path"):
        spill_file = pathlib.Path(payload["spill_path"])
        if spill_file.exists():
            cells.extend(c.to_wire() for c in load_spill(spill_file))
            cells.sort(key=lambda c: (-c["bits"], c["round"], c["phase"]))
        else:
            print(f"  (spill file {spill_file} missing; live cells only)")
    print(f"{'bits':>14}  {'frames':>7}  {'rnd':>4}  "
          f"{'edge':<22}  {'kind':<10} phase")
    for cell in cells[:k]:
        edge = f"{_party_label(cell['src'])}->{_party_label(cell['dst'])}"
        print(
            f"{cell['bits']:>14,}  {cell['frames']:>7,}  "
            f"{cell['round']:>4}  {edge:<22}  "
            f"{cell['kind']:<10} {cell['phase']}"
        )
    return 0


def _obs_flows(rest) -> int:
    import pathlib

    from repro.obs.flow import load_flow_json

    by = None
    target = None
    rest = list(rest)
    while rest:
        arg = rest.pop(0)
        if arg == "--by":
            if not rest or rest[0] not in ("phase", "kind", "party"):
                print("--by needs one of: phase, kind, party")
                return 2
            by = rest.pop(0)
        else:
            target = pathlib.Path(arg)
    if target is None:
        print("usage: obs flows <FLOW_*.json> [--by phase|kind|party]")
        return 2
    payload = load_flow_json(target)
    total = payload["total_bits"]
    if by in (None, "phase"):
        print("bits by phase:")
        for phase, bits in sorted(
            payload["by_phase"].items(), key=lambda kv: (-kv[1], kv[0])
        ):
            share = bits / total if total else 0.0
            print(f"  {format_bits(bits):>12}  {share:>6.1%}  {phase}")
    if by in (None, "kind"):
        print("bits by wire kind:")
        for kind, bits in sorted(
            payload["by_kind"].items(), key=lambda kv: (-kv[1], kv[0])
        ):
            print(f"  {format_bits(bits):>12}  {kind}")
    if by in (None, "party"):
        per_party = payload["per_party_bits"]
        print(f"per-party (exact; {len(per_party)} parties):")
        rows = sorted(
            per_party.items(), key=lambda kv: (-kv[1]["total"], int(kv[0]))
        )
        for pid, sides in rows[:10]:
            print(
                f"  party {_party_label(int(pid)):>6}: "
                f"sent={format_bits(sides['sent'])} "
                f"recv={format_bits(sides['received'])}"
            )
        if len(rows) > 10:
            print(f"  ... and {len(rows) - 10} more")
    if payload.get("parity_with_metrics") is not None:
        print(f"parity with CommunicationMetrics: "
              f"{payload['parity_with_metrics']}")
    return 0


def _obs_diff(rest) -> int:
    import pathlib

    from repro.obs.regression import (
        WALL_TOLERANCE,
        diff_dirs,
        diff_files,
        diffs_to_json,
        render_diffs,
    )

    tolerance = WALL_TOLERANCE
    as_json = False
    paths = []
    rest = list(rest)
    while rest:
        arg = rest.pop(0)
        if arg == "--wall-tolerance":
            if not rest:
                print("--wall-tolerance needs a fraction")
                return 2
            tolerance = float(rest.pop(0))
        elif arg == "--json":
            as_json = True
        else:
            paths.append(pathlib.Path(arg))
    if len(paths) != 2:
        print("usage: obs diff <baseline> <fresh> "
              "[--wall-tolerance F] [--json]")
        return 2
    baseline, fresh = paths
    if baseline.is_dir() and fresh.is_dir():
        results = diff_dirs(baseline, fresh, wall_tolerance=tolerance)
    elif baseline.is_file() and fresh.is_file():
        results = [diff_files(baseline, fresh, wall_tolerance=tolerance)]
    else:
        print(f"need two files or two directories, got "
              f"{baseline} and {fresh}")
        return 2
    if as_json:
        print(diffs_to_json(results), end="")
    else:
        print(render_diffs(results))
    return 0 if all(result.ok for result in results) else 1


def _obs_profile(rest) -> int:
    from repro.net.metrics import CommunicationMetrics
    from repro.obs.profile import TOP_FUNCTIONS, PhaseProfiler
    from repro.obs.spans import recording
    from repro.protocols.balanced_ba import run_balanced_ba
    from repro.srds.base_sigs import HashRegistryBase
    from repro.srds.snark_based import SnarkSRDS

    n = 16
    phases = None
    memory = False
    top = TOP_FUNCTIONS
    rest = list(rest)
    while rest:
        arg = rest.pop(0)
        if arg == "--phases":
            if not rest:
                print("--phases needs a comma-separated list")
                return 2
            phases = {p for p in rest.pop(0).split(",") if p}
        elif arg == "--memory":
            memory = True
        elif arg == "--top":
            if not rest or not rest[0].isdigit():
                print("--top needs a count")
                return 2
            top = int(rest.pop(0))
        elif arg.isdigit():
            n = int(arg)
        else:
            print("usage: obs profile [n] [--phases a,b] "
                  "[--memory] [--top K]")
            return 2
    params = ProtocolParameters()
    rng = Randomness(2021)
    plan = random_corruption(n, params.max_corruptions(n), rng.fork("c"))
    inputs = {i: i % 2 for i in range(n)}
    watched = "all spans" if phases is None else ",".join(sorted(phases))
    print(f"obs profile: pi_ba n={n} t={plan.t} snark-srds "
          f"(profiling {watched}, memory={memory})")
    profiler = PhaseProfiler(phases=phases, memory=memory)
    metrics = CommunicationMetrics()
    try:
        with recording(profiler):  # type: ignore[arg-type]
            result = run_balanced_ba(
                inputs, plan, SnarkSRDS(base_scheme=HashRegistryBase()),
                params, rng.fork("profile"), metrics=metrics,
            )
    finally:
        profiler.stop()
    print(f"agree={result.agreement} "
          f"max/party={format_bits(metrics.max_bits_per_party)}\n")
    print(profiler.render(top))
    return 0


def _obs_merge(rest) -> int:
    import pathlib

    from repro.obs.merge import export_merged_trace, load_span_dir
    from repro.obs.timeline import validate_trace_events

    wall = "--wall" in rest
    paths = [arg for arg in rest if arg != "--wall"]
    if len(paths) != 2:
        print("usage: obs merge <spans-dir> <out.json> [--wall]")
        return 2
    trace_id, tracks = load_span_dir(pathlib.Path(paths[0]))
    path = export_merged_trace(
        pathlib.Path(paths[1]), tracks, trace_id,
        deterministic=False if wall else None,
    )
    import json as json_mod

    document = json_mod.loads(path.read_text(encoding="utf-8"))
    validate_trace_events(document["traceEvents"])
    spans = sum(len(records) for records in tracks.values())
    print(f"merged timeline: {len(tracks)} tracks "
          f"({', '.join(sorted(tracks))}), {spans} spans, "
          f"trace={trace_id or '(none)'} -> {path}")
    return 0


def _cmd_obs(args) -> int:
    import pathlib

    if not args:
        args = ["report"]
    sub, *rest = args
    if sub == "top":
        return _obs_top(rest)
    if sub == "flows":
        return _obs_flows(rest)
    if sub == "diff":
        return _obs_diff(rest)
    if sub == "profile":
        return _obs_profile(rest)
    if sub == "merge":
        return _obs_merge(rest)
    if sub == "timeline":
        from repro.obs.timeline import export_chrome_trace, load_trace_dir

        if len(rest) != 2:
            print("usage: obs timeline <trace-dir> <out.json>")
            return 2
        events = load_trace_dir(pathlib.Path(rest[0]))
        path = export_chrome_trace(pathlib.Path(rest[1]), trace=events)
        print(f"timeline ({sum(len(e) for e in events.values()):,} events, "
              f"{len(events)} parties) -> {path}")
        return 0
    if sub != "report":
        print("usage: obs {report,timeline,top,flows,diff,profile,merge}")
        return 2

    out_dir = None
    n = 16
    target = None
    rest = list(rest)
    while rest:
        arg = rest.pop(0)
        if arg == "--out":
            if not rest:
                print("--out needs a directory")
                return 2
            out_dir = pathlib.Path(rest.pop(0))
        elif arg.isdigit():
            n = int(arg)
        else:
            target = pathlib.Path(arg)

    if target is None:
        return _obs_fresh_report(n, out_dir)

    if target.is_dir():
        from repro.obs.timeline import export_chrome_trace, load_trace_dir
        from repro.runtime.trace import summarize

        events = load_trace_dir(target)
        if not events:
            print(f"no party-*.jsonl files under {target}")
            return 2
        print(f"trace dir {target}: {len(events)} parties")
        for party in sorted(events):
            counts = summarize(events[party])
            parts = " ".join(
                f"{kind}={count}" for kind, count in sorted(counts.items())
            )
            print(f"  party-{party}: {len(events[party])} events ({parts})")
        if out_dir is not None:
            path = export_chrome_trace(out_dir / "timeline.json", trace=events)
            print(f"timeline -> {path}")
        return 0

    if target.suffix == ".json":
        from repro.analysis.report import render_bench_record
        from repro.obs.bench import load_bench_json

        print(render_bench_record(load_bench_json(target)))
        return 0

    print(f"don't know how to report on {target}")
    return 2


def main(argv) -> int:
    if not argv:
        print(__doc__)
        return 2
    command, *args = argv
    if command == "ba":
        return _cmd_ba(int(args[0]) if args else 64)
    if command == "aba":
        return _cmd_aba(args)
    if command == "attacks":
        return _cmd_attacks()
    if command == "tree":
        return _cmd_tree(int(args[0]) if args else 256)
    if command == "runtime":
        import pathlib

        n = 16
        kind = "local"
        trace_dir = None
        metrics_out = None
        flow_out = None
        rest = list(args)
        while rest:
            arg = rest.pop(0)
            if arg in ("local", "tcp"):
                kind = arg
            elif arg.isdigit():
                n = int(arg)
            elif arg == "--metrics-out":
                if not rest:
                    print("--metrics-out needs a file")
                    return 2
                metrics_out = pathlib.Path(rest.pop(0))
            elif arg == "--flow-out":
                if not rest:
                    print("--flow-out needs a file")
                    return 2
                flow_out = pathlib.Path(rest.pop(0))
            else:
                trace_dir = arg
        return _cmd_runtime(n, kind, trace_dir, metrics_out, flow_out)
    if command == "report":
        import pathlib

        from repro.analysis.report import assemble_report, write_report

        if args:
            write_report(pathlib.Path(args[0]))
            print(f"report written to {args[0]}")
        else:
            print(assemble_report())
        return 0
    if command == "obs":
        return _cmd_obs(args)
    if command == "serve":
        from repro.serve.cli import cmd_serve

        return cmd_serve(args)
    if command == "campaign":
        from repro.campaign.cli import cmd_campaign

        return cmd_campaign(args)
    if command == "cluster":
        from repro.cluster.cli import cmd_cluster

        return cmd_cluster(args)
    if command == "lint":
        from repro.lint.cli import cmd_lint

        return cmd_lint(args)
    print(__doc__)
    return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
