"""Baseline ratchet: legacy debt passes, new debt fails, stale debt warns."""

import json

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.config import LintConfig
from repro.lint.engine import run_lint
from tests.lint.conftest import FIXTURES


def _det002_result():
    config = LintConfig(
        root=FIXTURES, paths=("protocols/det002_bad.py",), rules=("DET002",),
    )
    return run_lint(config)


def test_empty_baseline_reports_everything_as_new():
    result = _det002_result()
    outcome = Baseline([]).apply(result.violations)
    assert len(outcome.new) == 4
    assert outcome.baselined == []
    assert outcome.stale == []


def test_full_baseline_absorbs_known_violations():
    result = _det002_result()
    baseline = Baseline.from_violations(result.violations)
    outcome = baseline.apply(result.violations)
    assert outcome.new == []
    assert len(outcome.baselined) == 4
    assert outcome.stale == []


def test_ratchet_burns_down_but_never_up():
    result = _det002_result()
    baseline = Baseline.from_violations(result.violations)

    # Fixing one violation: the freed budget surfaces as a stale entry.
    fixed = result.violations[1:]
    outcome = baseline.apply(fixed)
    assert outcome.new == []
    assert len(outcome.baselined) == 3
    assert len(outcome.stale) == 1

    # Regressing past the budget: the extra occurrence is new.
    doubled = list(result.violations) + [result.violations[0]]
    outcome = baseline.apply(doubled)
    assert len(outcome.new) == 1
    assert len(outcome.baselined) == 4


def test_count_budget_is_per_key():
    result = _det002_result()
    violation = result.violations[0]
    baseline = Baseline.from_violations([violation, violation])
    outcome = baseline.apply([violation])
    assert outcome.new == []
    assert len(outcome.baselined) == 1
    assert len(outcome.stale) == 1  # the unused second occurrence


def test_save_load_round_trip(tmp_path):
    result = _det002_result()
    baseline = Baseline.from_violations(result.violations)
    path = tmp_path / "lint-baseline.json"
    baseline.save(path)

    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["schema"] == "repro-lint-baseline/1"
    assert payload["entries"] == sorted(
        payload["entries"],
        key=lambda e: (e["rule"], e["path"], e["symbol"], e["snippet"]),
    )

    reloaded = Baseline.load(path)
    outcome = reloaded.apply(result.violations)
    assert outcome.new == []


def test_missing_baseline_file_is_empty(tmp_path):
    baseline = Baseline.load(tmp_path / "does-not-exist.json")
    assert len(baseline) == 0


def test_malformed_baseline_is_rejected(tmp_path):
    import pytest

    from repro.errors import ConfigurationError

    path = tmp_path / "lint-baseline.json"
    path.write_text('{"schema": "other/9", "entries": []}', encoding="utf-8")
    with pytest.raises(ConfigurationError):
        Baseline.load(path)
    path.write_text("not json", encoding="utf-8")
    with pytest.raises(ConfigurationError):
        Baseline.load(path)


def test_baseline_keys_are_line_number_insensitive():
    # Shifting code down a line must not invalidate the baseline.
    import dataclasses

    result = _det002_result()
    violation = result.violations[0]
    baseline = Baseline([
        BaselineEntry(
            rule=violation.rule_id,
            path=violation.path,
            symbol=violation.symbol,
            snippet=violation.snippet,
            count=1,
        ),
    ])
    shifted = dataclasses.replace(violation, line=violation.line + 7)
    outcome = baseline.apply([shifted])
    assert outcome.new == []
    assert len(outcome.baselined) == 1
