"""TRU001 fixture (ok): sanctioned ingress patterns only.

``route_frame`` decodes under ``try/except`` over the malformed-input
exception (guarded construction); ``route_validated`` narrows through a
``validate_*`` sanitizer before charging the ledger.
"""

from xmod_tru_ok.cluster.wire import SerializationError, decode_header, validate_header


def route_frame(data, ledger):
    try:
        header = decode_header(data)
    except SerializationError:
        return None
    ledger.record_message(header.round_index, header.charge_bits)
    return header


def route_validated(data, ledger):
    header = validate_header(decode_header(data))
    ledger.record_message(header.round_index, header.charge_bits)
    return header
